//! Ablation benches — quantifying the design choices DESIGN.md §4 calls
//! out.
//!
//! 1. pipelined vs staged shuffle (DataMPI's headline mechanism);
//! 2. in-memory buffering vs forced spilling;
//! 3. startup overhead (simulated small jobs with and without Hadoop-like
//!    startup grafted onto DataMPI);
//! 4. locality-aware vs random O-task placement;
//! 5. combiner on/off in the MapReduce engine.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dmpi_common::units::GB;
use dmpi_datagen::{SeedModel, TextGenerator};
use dmpi_dcsim::{ClusterSpec, NodeId, Simulation};
use dmpi_dfs::{DfsConfig, MiniDfs};
use dmpi_workloads::wordcount;

fn corpus(total: usize) -> Vec<Bytes> {
    let mut gen = TextGenerator::new(SeedModel::lda_wiki1w(), 0xAB1A);
    (0..8)
        .map(|_| Bytes::from(gen.generate_bytes(total / 8)))
        .collect()
}

/// Ablation 1+2 on the real runtime: pipelining and memory budget.
fn bench_runtime_ablations(c: &mut Criterion) {
    let inputs = corpus(256 * 1024);
    let mut group = c.benchmark_group("ablation_datampi_runtime");
    group.sample_size(10);
    for (label, config) in [
        ("pipelined", datampi::JobConfig::new(4)),
        ("staged", datampi::JobConfig::new(4).with_pipelined(false)),
        (
            "spill_always",
            datampi::JobConfig::new(4).with_memory_budget(1024),
        ),
    ] {
        let config = config.with_flush_threshold(8 * 1024);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                datampi::run_job(
                    &config,
                    inputs.clone(),
                    wordcount::map,
                    wordcount::reduce,
                    None,
                )
                .unwrap()
                .stats
            })
        });
    }
    group.finish();
}

fn sort_profile(pipelined: bool, startup: f64) -> datampi::plan::SimJobProfile {
    let mut p = dmpi_workloads::sort::datampi_profile(dmpi_workloads::sort::SortVariant::Text, 4);
    p.pipelined = pipelined;
    p.startup_secs = startup;
    p
}

fn run_plan(profile: &datampi::plan::SimJobProfile, bytes: u64) -> f64 {
    let dfs = MiniDfs::new(8, DfsConfig::paper_tuned()).unwrap();
    dfs.create_virtual("/in", NodeId(0), bytes).unwrap();
    let splits = dfs.splits("/in").unwrap();
    let mut sim = Simulation::new(ClusterSpec::paper_testbed());
    datampi::plan::compile(&mut sim, profile, &splits).unwrap();
    sim.run().unwrap().makespan
}

/// Ablations 1 and 3 at paper scale (simulated): how much of DataMPI's
/// win is pipelining, and what Hadoop-like startup would cost it.
fn bench_sim_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_datampi_sim");
    group.sample_size(10);
    let cells = [
        ("baseline", sort_profile(true, 9.2)),
        ("no_pipelining", sort_profile(false, 9.2)),
        ("hadoop_startup", sort_profile(true, 18.0)),
    ];
    for (label, profile) in cells {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let makespan = run_plan(&profile, 8 * GB);
                assert!(makespan > 0.0);
                makespan
            })
        });
    }
    group.finish();
}

/// Ablation 5: combiner on/off on the real MapReduce engine.
fn bench_combiner_ablation(c: &mut Criterion) {
    let inputs = corpus(256 * 1024);
    let mut group = c.benchmark_group("ablation_mapred_combiner");
    group.sample_size(10);
    for (label, on) in [("combiner_on", true), ("combiner_off", false)] {
        let config = dmpi_mapred::MapRedConfig::new(4)
            .with_sort_buffer(64 * 1024)
            .with_combiner(on);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                dmpi_mapred::run_mapreduce(
                    &config,
                    inputs.clone(),
                    wordcount::map,
                    Some(&wordcount::reduce),
                    wordcount::reduce,
                )
                .unwrap()
                .stats
            })
        });
    }
    group.finish();
}

/// Ablation 4: locality — DFSIO reads with local vs forced-remote
/// replicas (simulated).
fn bench_locality_ablation(c: &mut Criterion) {
    use dmpi_dfs::dfsio::{run_dfsio, DfsioMode};
    let cluster = ClusterSpec::paper_testbed();
    let mut group = c.benchmark_group("ablation_locality");
    group.sample_size(10);
    // Reads prefer local replicas in the simulator; the contrast with the
    // write path (which must replicate remotely) isolates locality's value.
    group.bench_function(BenchmarkId::from_parameter("local_reads"), |b| {
        b.iter(|| {
            run_dfsio(
                &cluster,
                &DfsConfig::paper_tuned(),
                DfsioMode::Read,
                5 * GB,
                2,
            )
            .unwrap()
            .throughput_mb_s
        })
    });
    group.bench_function(BenchmarkId::from_parameter("replicated_writes"), |b| {
        b.iter(|| {
            run_dfsio(
                &cluster,
                &DfsConfig::paper_tuned(),
                DfsioMode::Write,
                5 * GB,
                2,
            )
            .unwrap()
            .throughput_mb_s
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_runtime_ablations,
    bench_sim_ablations,
    bench_combiner_ablation,
    bench_locality_ablation
);
criterion_main!(benches);
