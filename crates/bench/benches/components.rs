//! Component micro-benchmarks: the hot paths underneath every engine.
//!
//! These are the pieces whose per-byte costs the simulation profiles
//! abstract as rates — measuring them here keeps the calibration honest
//! and catches regressions in the building blocks (codec, framing,
//! partitioning, sorting, merging, KV buffering).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dmpi_common::codec;
use dmpi_common::compare::{merge_sorted_runs, sort_records, BytesComparator};
use dmpi_common::kv::{Record, RecordBatch};
use dmpi_common::partition::{HashPartitioner, Partitioner, RangePartitioner};
use dmpi_common::ser;
use dmpi_datagen::{SeedModel, TextGenerator};

fn text(bytes: usize, seed: u64) -> Vec<u8> {
    TextGenerator::new(SeedModel::lda_wiki1w(), seed).generate_bytes(bytes)
}

fn bench_codec(c: &mut Criterion) {
    let data = text(1 << 20, 1);
    let compressed = codec::compress(&data);
    let mut group = c.benchmark_group("codec_lz77");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("compress_1mb_text", |b| b.iter(|| codec::compress(&data)));
    group.bench_function("decompress_1mb_text", |b| {
        b.iter(|| codec::decompress(&compressed).unwrap())
    });
    group.finish();
}

fn bench_framing(c: &mut Criterion) {
    let batch: RecordBatch = text(1 << 18, 2)
        .split(|&b| b == b'\n')
        .filter(|l| !l.is_empty())
        .map(|l| Record::new(l.to_vec(), l.to_vec()))
        .collect();
    let framed = ser::frame_batch(&batch);
    let mut group = c.benchmark_group("record_framing");
    group.throughput(Throughput::Bytes(framed.len() as u64));
    group.bench_function("frame", |b| b.iter(|| ser::frame_batch(&batch)));
    group.bench_function("unframe", |b| {
        b.iter(|| ser::unframe_batch(&framed).unwrap())
    });
    group.finish();
}

fn bench_partitioners(c: &mut Criterion) {
    let keys: Vec<Vec<u8>> = (0..10_000)
        .map(|i| format!("key-{i}").into_bytes())
        .collect();
    let hash = HashPartitioner::new(32);
    let range = RangePartitioner::from_sample(keys.clone(), 32);
    let mut group = c.benchmark_group("partitioners");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function("hash_10k_keys", |b| {
        b.iter(|| keys.iter().map(|k| hash.partition(k)).sum::<usize>())
    });
    group.bench_function("range_10k_keys", |b| {
        b.iter(|| keys.iter().map(|k| range.partition(k)).sum::<usize>())
    });
    group.finish();
}

fn bench_sort_merge(c: &mut Criterion) {
    let records: Vec<Record> = text(1 << 18, 3)
        .split(|&b| b == b'\n')
        .filter(|l| !l.is_empty())
        .map(|l| Record::new(l.to_vec(), b"v".to_vec()))
        .collect();
    let mut runs: Vec<Vec<Record>> = records
        .chunks(records.len() / 8 + 1)
        .map(|c| c.to_vec())
        .collect();
    for run in runs.iter_mut() {
        sort_records(run, &BytesComparator);
    }
    let mut group = c.benchmark_group("sort_and_merge");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function(BenchmarkId::from_parameter("sort"), |b| {
        b.iter(|| {
            let mut v = records.clone();
            sort_records(&mut v, &BytesComparator);
            v.len()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("merge_8_runs"), |b| {
        b.iter(|| merge_sorted_runs(runs.clone(), &BytesComparator).len())
    });
    group.finish();
}

fn bench_kv_buffer(c: &mut Criterion) {
    use datampi::buffer::KvBuffer;
    use datampi::transport::{InProcTransport, Transport};
    let words: Vec<Vec<u8>> = (0..5000)
        .map(|i| format!("w{}", i % 500).into_bytes())
        .collect();
    let mut group = c.benchmark_group("datampi_kv_buffer");
    group.throughput(Throughput::Elements(words.len() as u64));
    group.bench_function("emit_5k_pairs_pipelined", |b| {
        b.iter(|| {
            let mut endpoints = InProcTransport::new(4, 1024).open().unwrap();
            let senders = endpoints[0].senders();
            // Endpoints stay alive (mailboxes open) for the whole emit.
            let _rx: Vec<_> = endpoints.iter_mut().map(|e| e.take_receiver()).collect();
            let mut buf = KvBuffer::new(senders, 0, 0, 4096, true);
            for w in &words {
                buf.emit_kv(w, b"1");
            }
            buf.finish().records
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_framing,
    bench_partitioners,
    bench_sort_merge,
    bench_kv_buffer
);
criterion_main!(benches);
