//! Figure 2 benches — the parameter-tuning experiments.
//!
//! * Figure 2(a): DFSIO write throughput per HDFS block size.
//! * Figure 2(b): Text Sort per tasks/workers-per-node setting.
//!
//! Criterion measures how long the *simulation itself* takes to evaluate
//! each tuning cell (wall-clock of the DES), while each iteration also
//! exercises the full DFS placement + fair-sharing machinery end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dmpi_common::units::{GB, MB};
use dmpi_dcsim::ClusterSpec;
use dmpi_dfs::dfsio::{run_dfsio, DfsioMode};
use dmpi_dfs::DfsConfig;
use dmpi_workloads::{run_sim, Engine, Workload};

fn fig2a_dfsio(c: &mut Criterion) {
    let cluster = ClusterSpec::paper_testbed();
    let mut group = c.benchmark_group("fig2a_dfsio_write");
    group.sample_size(10);
    for block_mb in [64u64, 128, 256, 512] {
        let config = DfsConfig::paper_tuned().with_block_size(block_mb * MB);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{block_mb}MB_block")),
            &config,
            |b, config| {
                b.iter(|| {
                    let r =
                        run_dfsio(&cluster, config, DfsioMode::Write, 10 * GB, 2).expect("dfsio");
                    assert!(r.throughput_mb_s > 0.0);
                    r.throughput_mb_s
                })
            },
        );
    }
    group.finish();
}

fn fig2b_tasks_per_node(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2b_tasks_tuning");
    group.sample_size(10);
    for tasks in [2u32, 4, 6] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{tasks}_tasks")),
            &tasks,
            |b, &tasks| {
                b.iter(|| {
                    let out = run_sim(
                        Workload::TextSort,
                        Engine::DataMpi,
                        GB * tasks as u64 * 8,
                        tasks,
                    )
                    .expect("sim");
                    out.seconds().expect("no OOM for DataMPI")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig2a_dfsio, fig2b_tasks_per_node);
criterion_main!(benches);
