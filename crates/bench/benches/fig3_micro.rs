//! Figure 3 benches — the micro-benchmarks on the **real executing
//! engines** at MB scale.
//!
//! The paper's Figure 3 compares job times at 4-64 GB, which this
//! repository reproduces with the calibrated simulator (`figures fig3a-d`).
//! These criterion benches run the same five workloads through the actual
//! DataMPI / MapReduce / RDD runtimes on megabyte inputs, so the relative
//! costs of the engines' real data paths (sort/spill vs pipelined KV
//! buffers vs RDD shuffles) are measured, not simulated.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dmpi_datagen::{seqfile, SeedModel, TextGenerator};
use dmpi_workloads::{grep, sort, wordcount};

const INPUT_BYTES: usize = 512 * 1024;
const SPLITS: usize = 8;

fn corpus() -> Vec<Bytes> {
    let mut gen = TextGenerator::new(SeedModel::lda_wiki1w(), 0xF163);
    (0..SPLITS)
        .map(|_| Bytes::from(gen.generate_bytes(INPUT_BYTES / SPLITS)))
        .collect()
}

fn seq_corpus() -> Vec<Bytes> {
    let mut gen = TextGenerator::new(SeedModel::lda_wiki1w(), 0xF164);
    (0..SPLITS)
        .map(|_| {
            let (img, _) = seqfile::to_seq_file(&gen.generate_bytes(INPUT_BYTES / SPLITS));
            Bytes::from(img)
        })
        .collect()
}

fn bench_wordcount(c: &mut Criterion) {
    let inputs = corpus();
    let total: u64 = inputs.iter().map(|b| b.len() as u64).sum();
    let mut group = c.benchmark_group("fig3c_wordcount_real");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(total));
    group.bench_function(BenchmarkId::from_parameter("datampi"), |b| {
        b.iter(|| wordcount::run_datampi(&datampi::JobConfig::new(4), inputs.clone()).unwrap())
    });
    group.bench_function(BenchmarkId::from_parameter("hadoop"), |b| {
        b.iter(|| {
            wordcount::run_mapred(&dmpi_mapred::MapRedConfig::new(4), inputs.clone()).unwrap()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("spark"), |b| {
        b.iter(|| {
            let ctx = dmpi_rddsim::SparkContext::new(dmpi_rddsim::SparkConfig::new(4)).unwrap();
            wordcount::run_spark(&ctx, inputs.clone()).unwrap()
        })
    });
    group.finish();
}

fn bench_text_sort(c: &mut Criterion) {
    let inputs = corpus();
    let total: u64 = inputs.iter().map(|b| b.len() as u64).sum();
    let mut group = c.benchmark_group("fig3b_text_sort_real");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(total));
    group.bench_function(BenchmarkId::from_parameter("datampi"), |b| {
        b.iter(|| sort::run_text_datampi(&datampi::JobConfig::new(4), inputs.clone()).unwrap())
    });
    group.bench_function(BenchmarkId::from_parameter("hadoop"), |b| {
        b.iter(|| {
            sort::run_text_mapred(&dmpi_mapred::MapRedConfig::new(4), inputs.clone()).unwrap()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("spark"), |b| {
        b.iter(|| {
            let ctx = dmpi_rddsim::SparkContext::new(
                dmpi_rddsim::SparkConfig::new(4).with_memory_budget(64 << 20),
            )
            .unwrap();
            sort::run_text_spark(&ctx, inputs.clone(), 4).unwrap()
        })
    });
    group.finish();
}

fn bench_normal_sort(c: &mut Criterion) {
    let inputs = seq_corpus();
    let total: u64 = inputs.iter().map(|b| b.len() as u64).sum();
    let mut group = c.benchmark_group("fig3a_normal_sort_real");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(total));
    group.bench_function(BenchmarkId::from_parameter("datampi"), |b| {
        b.iter(|| sort::run_normal_datampi(&datampi::JobConfig::new(4), inputs.clone()).unwrap())
    });
    group.bench_function(BenchmarkId::from_parameter("hadoop"), |b| {
        b.iter(|| {
            sort::run_normal_mapred(&dmpi_mapred::MapRedConfig::new(4), inputs.clone()).unwrap()
        })
    });
    group.finish();
}

fn bench_grep(c: &mut Criterion) {
    let inputs = corpus();
    let total: u64 = inputs.iter().map(|b| b.len() as u64).sum();
    let pattern = SeedModel::lda_wiki1w().word_at_rank(3).to_string();
    let mut group = c.benchmark_group("fig3d_grep_real");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(total));
    group.bench_function(BenchmarkId::from_parameter("datampi"), |b| {
        b.iter(|| grep::run_datampi(&datampi::JobConfig::new(4), inputs.clone(), &pattern).unwrap())
    });
    group.bench_function(BenchmarkId::from_parameter("hadoop"), |b| {
        b.iter(|| {
            grep::run_mapred(&dmpi_mapred::MapRedConfig::new(4), inputs.clone(), &pattern).unwrap()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("spark"), |b| {
        b.iter(|| {
            let ctx = dmpi_rddsim::SparkContext::new(dmpi_rddsim::SparkConfig::new(4)).unwrap();
            grep::run_spark(&ctx, inputs.clone(), &pattern).unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_wordcount,
    bench_text_sort,
    bench_normal_sort,
    bench_grep
);
criterion_main!(benches);
