//! Figure 4 bench — resource-utilization profiling.
//!
//! Each iteration runs the full simulated job that backs one Figure 4
//! panel set and produces its complete per-second time series; the bench
//! covers the metrics pipeline (fair-share integration into buckets) under
//! a realistic task graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dmpi_bench::figures::{fig4_data, Fig4Case};

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_resource_profiles");
    group.sample_size(10);
    for (label, case) in [
        ("sort_8gb", Fig4Case::Sort),
        ("wordcount_32gb", Fig4Case::WordCount),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let data = fig4_data(case).expect("profiling run");
                assert!(!data.runs.is_empty());
                // Every run carries non-empty series.
                for (_, secs, profile) in &data.runs {
                    assert!(*secs > 0.0);
                    assert!(!profile.is_empty());
                }
                data.runs.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
