//! Figure 5 bench — small jobs on the real engines.
//!
//! The paper's small-job experiment isolates framework overhead: tiny
//! input (128 MB there, kilobytes here), one task per worker. On the real
//! runtimes this measures job setup/teardown of each engine's machinery —
//! thread spawn, channel mesh, queue setup — the analog of the
//! JVM/scheduler overheads dominating Figure 5.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dmpi_datagen::{SeedModel, TextGenerator};
use dmpi_workloads::wordcount;

fn tiny_corpus() -> Vec<Bytes> {
    let mut gen = TextGenerator::new(SeedModel::lda_wiki1w(), 0x5A11);
    (0..4)
        .map(|_| Bytes::from(gen.generate_bytes(2048)))
        .collect()
}

fn bench_small_jobs(c: &mut Criterion) {
    let inputs = tiny_corpus();
    let mut group = c.benchmark_group("fig5_small_jobs_real");
    group.sample_size(20);
    group.bench_function(BenchmarkId::from_parameter("datampi"), |b| {
        b.iter(|| wordcount::run_datampi(&datampi::JobConfig::new(4), inputs.clone()).unwrap())
    });
    group.bench_function(BenchmarkId::from_parameter("hadoop"), |b| {
        b.iter(|| {
            wordcount::run_mapred(&dmpi_mapred::MapRedConfig::new(4), inputs.clone()).unwrap()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("spark"), |b| {
        b.iter(|| {
            let ctx = dmpi_rddsim::SparkContext::new(dmpi_rddsim::SparkConfig::new(4)).unwrap();
            wordcount::run_spark(&ctx, inputs.clone()).unwrap()
        })
    });
    group.finish();
}

/// The simulated Figure 5 cells (framework overhead at paper scale).
fn bench_small_jobs_sim(c: &mut Criterion) {
    use dmpi_common::units::MB;
    use dmpi_workloads::{run_sim, Engine, Workload};
    let mut group = c.benchmark_group("fig5_small_jobs_sim");
    group.sample_size(10);
    for engine in [Engine::Hadoop, Engine::Spark, Engine::DataMpi] {
        group.bench_function(BenchmarkId::from_parameter(format!("{engine}")), |b| {
            b.iter(|| {
                run_sim(Workload::WordCount, engine, 128 * MB, 1)
                    .unwrap()
                    .seconds()
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_small_jobs, bench_small_jobs_sim);
criterion_main!(benches);
