//! Figure 6 benches — the application benchmarks on the real engines.
//!
//! K-means first iteration and Naive Bayes training, executing the actual
//! algorithms (distance computation, term counting, model building) through
//! each engine's real data path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dmpi_workloads::bayes;
use dmpi_workloads::kmeans::{self, KMeans, TrainEngine};

fn bench_kmeans(c: &mut Criterion) {
    let params = KMeans {
        k: 5,
        dims: 128,
        max_iters: 1, // the paper times the first iteration
        tol: 0.0,
    };
    let (vectors, _) = kmeans::generate_clustered_vectors(40, 128, 0x6A);
    let inputs = kmeans::vectors_to_inputs(&vectors, 25);
    let mut group = c.benchmark_group("fig6a_kmeans_first_iteration_real");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("datampi"), |b| {
        b.iter(|| kmeans::train(&params, TrainEngine::DataMpi, &vectors, &inputs).unwrap())
    });
    group.bench_function(BenchmarkId::from_parameter("hadoop"), |b| {
        b.iter(|| kmeans::train(&params, TrainEngine::MapRed, &vectors, &inputs).unwrap())
    });
    group.bench_function(BenchmarkId::from_parameter("spark"), |b| {
        b.iter(|| {
            let ctx = dmpi_rddsim::SparkContext::new(dmpi_rddsim::SparkConfig::new(4)).unwrap();
            kmeans::train_spark(&params, &ctx, &vectors).unwrap()
        })
    });
    group.finish();
}

fn bench_kmeans_iterated_spark_cache(c: &mut Criterion) {
    // Spark's advantage on later iterations comes from the cache; this
    // bench runs five iterations so the cached path dominates.
    let params = KMeans {
        k: 3,
        dims: 64,
        max_iters: 5,
        tol: 0.0,
    };
    let (vectors, _) = kmeans::generate_clustered_vectors(30, 64, 0x6B);
    let mut group = c.benchmark_group("fig6a_kmeans_iterated");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("spark_cached"), |b| {
        b.iter(|| {
            let ctx = dmpi_rddsim::SparkContext::new(dmpi_rddsim::SparkConfig::new(4)).unwrap();
            kmeans::train_spark(&params, &ctx, &vectors).unwrap()
        })
    });
    let inputs = kmeans::vectors_to_inputs(&vectors, 30);
    group.bench_function(BenchmarkId::from_parameter("datampi_rerun"), |b| {
        b.iter(|| kmeans::train(&params, TrainEngine::DataMpi, &vectors, &inputs).unwrap())
    });
    group.finish();
}

fn bench_bayes(c: &mut Criterion) {
    let corpus = bayes::generate_corpus(20, 6, 0xBA1E5);
    let inputs = bayes::corpus_to_inputs(&corpus, 10);
    let mut group = c.benchmark_group("fig6b_naive_bayes_real");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("datampi"), |b| {
        b.iter(|| bayes::train_datampi(&datampi::JobConfig::new(4), inputs.clone()).unwrap())
    });
    group.bench_function(BenchmarkId::from_parameter("hadoop"), |b| {
        b.iter(|| bayes::train_mapred(&dmpi_mapred::MapRedConfig::new(4), inputs.clone()).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kmeans,
    bench_kmeans_iterated_spark_cache,
    bench_bayes
);
criterion_main!(benches);
