//! `figures` — regenerate the paper's tables and figures.
//!
//! ```text
//! figures all                 # print every table/figure
//! figures all --markdown      # print EXPERIMENTS.md content
//! figures all --write PATH    # write EXPERIMENTS.md to PATH
//! figures table1|table2|fig2a|fig2b|fig3a|fig3b|fig3c|fig3d|
//!         fig4sort|fig4wordcount|fig5|fig6a|fig6b|fig7
//! figures fig4sort --series cpu     # 10s-sampled time series
//! figures fig3b --csv               # CSV for plotting tools
//! figures ext-iter                  # extension: iterative K-means
//! figures ext-recovery              # extension: node-failure recovery
//! figures profile-real              # extension: sim-vs-real profile diff
//! figures profile-real --write PATH # also write BENCH_profile.json
//! figures transport-bench           # extension: in-proc vs TCP vs TCP+lz4
//! figures transport-bench --smoke   # CI variant: smaller grid, same gate
//! figures transport-bench --write PATH # also write BENCH_transport.json
//! figures pipeline-bench            # extension: combiner grid + spill probe
//! figures pipeline-bench --write PATH # also write BENCH_pipeline.json
//! figures spillfmt-bench            # extension: indexed spill-run format grid
//! figures spillfmt-bench --smoke    # CI variant: smaller grid, same <50% gate
//! figures spillfmt-bench --write PATH # also write BENCH_spillfmt.json
//! figures hotpath-bench             # extension: parallel-O/kernel grid
//! figures hotpath-bench --smoke     # CI variant: small grid + speedup gate
//! figures hotpath-bench --write PATH # also write BENCH_hotpath.json
//! figures straggler-bench           # extension: slow-rank/rank-leave defense grid
//! figures straggler-bench --smoke   # CI variant: shorter pauses, same 0.5x gate
//! figures straggler-bench --write PATH # also write BENCH_straggler.json
//! figures observe-bench             # extension: telemetry overhead pair
//! figures observe-bench --smoke     # CI variant: smaller job, same 1.05x gate
//! figures observe-bench --write PATH # also write BENCH_observe.json
//! figures service-bench             # extension: resident mesh vs one-shot launch
//! figures service-bench --smoke     # CI variant: fewer jobs, same p50 gate
//! figures service-bench --write PATH # also write BENCH_service.json
//! ```

use dmpi_bench::experiments;
use dmpi_bench::figures::{self, Fig4Case};

fn usage() -> ! {
    eprintln!(
        "usage: figures <all|table1|table2|fig2a|fig2b|fig3a|fig3b|fig3c|fig3d|\
         fig4sort|fig4wordcount|fig5|fig6a|fig6b|fig7|ext-iter|ext-recovery|profile-real|\
         transport-bench|pipeline-bench|spillfmt-bench|hotpath-bench|straggler-bench|\
         observe-bench|service-bench|summary> \
         [--markdown] \
         [--write PATH] [--csv] [--smoke] \
         [--series cpu|waitio|disk_read|disk_write|net|mem]"
    );
    std::process::exit(2);
}

fn render(table: dmpi_bench::Table, csv: bool) -> String {
    if csv {
        table.render_csv()
    } else {
        table.render_text()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(which) = args.first() else { usage() };
    let markdown = args.iter().any(|a| a == "--markdown");
    let csv = args.iter().any(|a| a == "--csv");
    let write_path = args
        .iter()
        .position(|a| a == "--write")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let series_metric = args
        .iter()
        .position(|a| a == "--series")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let result = (|| -> dmpi_common::Result<()> {
        match which.as_str() {
            "all" => {
                let entries = experiments::all_entries()?;
                if markdown || write_path.is_some() {
                    let md = experiments::render_markdown(&entries);
                    match &write_path {
                        Some(path) => {
                            std::fs::write(path, &md).map_err(|e| {
                                dmpi_common::Error::InvalidState(format!(
                                    "cannot write {path}: {e}"
                                ))
                            })?;
                            println!("wrote {path}");
                        }
                        None => println!("{md}"),
                    }
                } else {
                    for e in &entries {
                        println!("{}", e.table.render_text());
                        println!("paper: {}\n", e.paper);
                    }
                }
            }
            "table1" => println!("{}", render(figures::table1(), csv)),
            "table2" => println!("{}", render(figures::table2(), csv)),
            "fig2a" => println!("{}", render(figures::fig2a()?, csv)),
            "fig2b" => println!("{}", render(figures::fig2b()?, csv)),
            "fig3a" => println!("{}", render(figures::fig3a()?, csv)),
            "fig3b" => println!("{}", render(figures::fig3b()?, csv)),
            "fig3c" => println!("{}", render(figures::fig3c()?, csv)),
            "fig3d" => println!("{}", render(figures::fig3d()?, csv)),
            "fig4sort" | "fig4wordcount" => {
                let case = if which == "fig4sort" {
                    Fig4Case::Sort
                } else {
                    Fig4Case::WordCount
                };
                match series_metric {
                    Some(metric) => {
                        println!("{}", render(figures::fig4_series(case, &metric, 10)?, csv))
                    }
                    None => println!("{}", render(figures::fig4_averages(case)?, csv)),
                }
            }
            "fig5" => println!("{}", render(figures::fig5()?, csv)),
            "fig6a" => println!("{}", render(figures::fig6a()?, csv)),
            "fig6b" => println!("{}", render(figures::fig6b()?, csv)),
            "fig7" => println!("{}", render(figures::fig7()?, csv)),
            "ext-iter" => println!("{}", render(figures::fig_ext_iterations(16, 5)?, csv)),
            "ext-recovery" => println!(
                "{}",
                render(dmpi_bench::recovery::fig_ext_recovery(8)?, csv)
            ),
            "profile-real" => {
                let data = dmpi_bench::profile_real::profile_real_data(2, 200_000)?;
                println!(
                    "{}",
                    render(dmpi_bench::profile_real::render_table(&data), csv)
                );
                let artifact = write_path
                    .clone()
                    .unwrap_or_else(|| "BENCH_profile.json".to_string());
                let json = dmpi_bench::profile_real::render_artifact_json(&data);
                std::fs::write(&artifact, json).map_err(|e| {
                    dmpi_common::Error::InvalidState(format!("cannot write {artifact}: {e}"))
                })?;
                println!("wrote {artifact}");
            }
            "transport-bench" => {
                let smoke = args.iter().any(|a| a == "--smoke");
                let (ranks, tasks, bytes, stream_frames) = if smoke {
                    (2, 4, 16 * 1024, 128)
                } else {
                    (4, 8, 64 * 1024, 512)
                };
                let data = dmpi_bench::transport_bench::transport_bench_data(
                    ranks,
                    tasks,
                    bytes,
                    stream_frames,
                )?;
                println!(
                    "{}",
                    render(dmpi_bench::transport_bench::render_table(&data), csv)
                );
                // The regression gate runs in both modes: the raw stream
                // must sustain the committed floor on loopback.
                let rate = dmpi_bench::transport_bench::check_stream_gate(&data)?;
                println!(
                    "stream gate ok: {rate:.1} MB/s >= {:.0} MB/s",
                    dmpi_bench::transport_bench::STREAM_GATE_MB_S
                );
                let artifact = write_path
                    .clone()
                    .unwrap_or_else(|| "BENCH_transport.json".to_string());
                let json = dmpi_bench::transport_bench::render_artifact_json(&data);
                std::fs::write(&artifact, json).map_err(|e| {
                    dmpi_common::Error::InvalidState(format!("cannot write {artifact}: {e}"))
                })?;
                println!("wrote {artifact}");
            }
            "hotpath-bench" => {
                let smoke = args.iter().any(|a| a == "--smoke");
                let (ranks, tasks, bytes, trials) = if smoke {
                    (1, 2, 256 * 1024, 3)
                } else {
                    (2, 4, 512 * 1024, 3)
                };
                let data =
                    dmpi_bench::hotpath_bench::hotpath_bench_data(ranks, tasks, bytes, trials)?;
                println!(
                    "{}",
                    render(dmpi_bench::hotpath_bench::render_table(&data), csv)
                );
                let artifact = write_path
                    .clone()
                    .unwrap_or_else(|| "BENCH_hotpath.json".to_string());
                let json = dmpi_bench::hotpath_bench::render_artifact_json(&data);
                std::fs::write(&artifact, json).map_err(|e| {
                    dmpi_common::Error::InvalidState(format!("cannot write {artifact}: {e}"))
                })?;
                println!("wrote {artifact}");
                if smoke {
                    println!(
                        "{}",
                        dmpi_bench::hotpath_bench::speedup_gate(
                            &data,
                            dmpi_bench::hotpath_bench::GATE_MIN_SPEEDUP
                        )?
                    );
                }
            }
            "straggler-bench" => {
                let smoke = args.iter().any(|a| a == "--smoke");
                let (ranks, tasks, slow_ms) = if smoke { (3, 6, 150) } else { (3, 9, 300) };
                let data =
                    dmpi_bench::straggler_bench::straggler_bench_data(ranks, tasks, slow_ms, 42)?;
                println!(
                    "{}",
                    render(dmpi_bench::straggler_bench::render_table(&data), csv)
                );
                let artifact = write_path
                    .clone()
                    .unwrap_or_else(|| "BENCH_straggler.json".to_string());
                let json = dmpi_bench::straggler_bench::render_artifact_json(&data);
                std::fs::write(&artifact, json).map_err(|e| {
                    dmpi_common::Error::InvalidState(format!("cannot write {artifact}: {e}"))
                })?;
                println!("wrote {artifact}");
                println!(
                    "{}",
                    dmpi_bench::straggler_bench::completion_gate(&data, 0.5)?
                );
            }
            "observe-bench" => {
                let smoke = args.iter().any(|a| a == "--smoke");
                // Min-of-trials needs enough draws to shake scheduler
                // noise out of a ~30ms job on a loaded 1-core CI host;
                // 6 smoke trials keep the 1.05x gate honest, not flaky.
                let (ranks, tasks, split_bytes, trials) = if smoke {
                    (3, 8, 64 * 1024, 6)
                } else {
                    (4, 16, 256 * 1024, 5)
                };
                let data = dmpi_bench::observe_bench::observe_bench_data(
                    ranks,
                    tasks,
                    split_bytes,
                    trials,
                    42,
                )?;
                println!(
                    "{}",
                    render(dmpi_bench::observe_bench::render_table(&data), csv)
                );
                let artifact = write_path
                    .clone()
                    .unwrap_or_else(|| "BENCH_observe.json".to_string());
                let json = dmpi_bench::observe_bench::render_artifact_json(&data);
                std::fs::write(&artifact, json).map_err(|e| {
                    dmpi_common::Error::InvalidState(format!("cannot write {artifact}: {e}"))
                })?;
                println!("wrote {artifact}");
                println!("{}", dmpi_bench::observe_bench::overhead_gate(&data, 1.05)?);
            }
            "service-bench" => {
                let smoke = args.iter().any(|a| a == "--smoke");
                // Jobs are tiny on purpose: the quantity under test is
                // per-job launch overhead, which small jobs magnify. The
                // arrival gap keeps utilization below 1 — an overloaded
                // open loop measures queueing delay, not launch cost.
                let (ranks, jobs, tasks, bytes, gap_ms) = if smoke {
                    (2, 8, 2, 512, 60)
                } else {
                    (3, 24, 2, 4 * 1024, 60)
                };
                let data = dmpi_bench::service_bench::service_bench_data(
                    ranks, jobs, tasks, bytes, gap_ms, 42,
                )?;
                println!(
                    "{}",
                    render(dmpi_bench::service_bench::render_table(&data), csv)
                );
                let artifact = write_path
                    .clone()
                    .unwrap_or_else(|| "BENCH_service.json".to_string());
                let json = dmpi_bench::service_bench::render_artifact_json(&data);
                std::fs::write(&artifact, json).map_err(|e| {
                    dmpi_common::Error::InvalidState(format!("cannot write {artifact}: {e}"))
                })?;
                println!("wrote {artifact}");
                println!("{}", dmpi_bench::service_bench::submission_gate(&data)?);
            }
            "spillfmt-bench" => {
                let smoke = args.iter().any(|a| a == "--smoke");
                let (ranks, tasks, bytes) = if smoke {
                    (2, 4, 16 * 1024)
                } else {
                    (4, 8, 64 * 1024)
                };
                let data = dmpi_bench::spillfmt_bench::spillfmt_bench_data(ranks, tasks, bytes)?;
                println!(
                    "{}",
                    render(dmpi_bench::spillfmt_bench::render_table(&data), csv)
                );
                let artifact = write_path
                    .clone()
                    .unwrap_or_else(|| "BENCH_spillfmt.json".to_string());
                let json = dmpi_bench::spillfmt_bench::render_artifact_json(&data);
                std::fs::write(&artifact, json).map_err(|e| {
                    dmpi_common::Error::InvalidState(format!("cannot write {artifact}: {e}"))
                })?;
                println!("wrote {artifact}");
                // The regression gate runs in both modes: a
                // range-restricted merge must read < 50% of run bytes.
                println!("{}", dmpi_bench::spillfmt_bench::skip_gate(&data)?);
            }
            "pipeline-bench" => {
                let data = dmpi_bench::pipeline_bench::pipeline_bench_data(4, 8, 64 * 1024)?;
                println!(
                    "{}",
                    render(dmpi_bench::pipeline_bench::render_table(&data), csv)
                );
                let artifact = write_path
                    .clone()
                    .unwrap_or_else(|| "BENCH_pipeline.json".to_string());
                let json = dmpi_bench::pipeline_bench::render_artifact_json(&data);
                std::fs::write(&artifact, json).map_err(|e| {
                    dmpi_common::Error::InvalidState(format!("cannot write {artifact}: {e}"))
                })?;
                println!("wrote {artifact}");
            }
            "summary" => println!("{}", render(figures::section_4_7_summary()?, csv)),
            _ => usage(),
        }
        Ok(())
    })();

    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
