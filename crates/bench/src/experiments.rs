//! EXPERIMENTS.md generation: paper-reported values vs measured values
//! for every table and figure.

use dmpi_common::Result;

use crate::figures;
use crate::table::Table;

/// One experiment entry: the regenerated table plus what the paper
/// reports for it.
pub struct Entry {
    /// The regenerated table.
    pub table: Table,
    /// What the paper reports (prose summary of the original numbers).
    pub paper: &'static str,
    /// What to compare (the shape claim this reproduction must satisfy).
    pub claim: &'static str,
}

/// Generates every experiment entry (runs all simulations).
pub fn all_entries() -> Result<Vec<Entry>> {
    Ok(vec![
        Entry {
            table: figures::table1(),
            paper: "Five workloads: Sort, WordCount, Grep (micro), Naive Bayes (social network), K-means (e-commerce).",
            claim: "Catalogue matches Table 1 exactly.",
        },
        Entry {
            table: figures::table2(),
            paper: "8 nodes, 2x Xeon E5620, 16 GB DDR3, 150 GB free SATA disk, 1 GbE.",
            claim: "Simulated testbed mirrors the hardware table.",
        },
        Entry {
            table: figures::fig2a()?,
            paper: "DFSIO write throughput peaks at 256 MB blocks (roughly 15-30 MB/s across 5-20 GB files).",
            claim: "256 MB outperforms 64 MB; absolute band ~10-35 MB/s.",
        },
        Entry {
            table: figures::fig2b()?,
            paper: "All systems peak at 4 tasks/workers per node (50-200 MB/s Text Sort throughput).",
            claim: "Throughput at 4 tasks/node >= 2 and >= 6 for Hadoop and DataMPI.",
        },
        Entry {
            table: figures::fig3a()?,
            paper: "Normal Sort 4-32 GB: DataMPI improves on Hadoop by 29-33%; Spark OOMs at every size.",
            claim: "DataMPI/Hadoop ratio in the 0.62-0.75 band; no Spark column.",
        },
        Entry {
            table: figures::fig3b()?,
            paper: "Text Sort 8-64 GB: DataMPI 34-42% over Hadoop; 8 GB: DataMPI 69 s vs Hadoop 117 s vs Spark 114 s; Spark OOMs past 8 GB.",
            claim: "Ordering DataMPI < Spark <= Hadoop at 8 GB; Spark OOM at 16+ GB; 34-42% band.",
        },
        Entry {
            table: figures::fig3c()?,
            paper: "WordCount 8-64 GB: DataMPI ~ Spark, both 47-55% over Hadoop (32 GB: 130/130/275 s).",
            claim: "DataMPI within 20% of Spark; 47-55% improvement vs Hadoop.",
        },
        Entry {
            table: figures::fig3d()?,
            paper: "Grep 8-64 GB: DataMPI 33-42% over Hadoop and 19-29% over Spark.",
            claim: "DataMPI < Spark < Hadoop at every size.",
        },
        Entry {
            table: figures::fig4_averages(figures::Fig4Case::Sort)?,
            paper: "8 GB Text Sort averages (0-117 s): CPU 24/38/37 % (DataMPI/Spark/Hadoop), wait-IO 6/12/15 %, disk read ~50, write ~67-69 MB/s, net 62 vs 39-40 MB/s, memory 5/9/5 GB.",
            claim: "DataMPI: highest network throughput, lowest CPU and wait-IO; disk rates comparable across engines.",
        },
        Entry {
            table: figures::fig4_averages(figures::Fig4Case::WordCount)?,
            paper: "32 GB WordCount averages (0-275 s): CPU 47/30/80 %, disk read 44/44/20 MB/s, net ~0 for DataMPI & Hadoop vs 25 MB/s Spark, memory 5/5/9 GB.",
            claim: "Hadoop: highest CPU and memory; Spark: visible network traffic from non-local reads.",
        },
        Entry {
            table: figures::fig5()?,
            paper: "128 MB small jobs: DataMPI ~ Spark, averaging 54% faster than Hadoop.",
            claim: "DataMPI and Spark within a few seconds; both well under Hadoop.",
        },
        Entry {
            table: figures::fig6a()?,
            paper: "K-means first iteration 8-64 GB: DataMPI up to 39% over Hadoop, 33% over Spark; Spark sits between.",
            claim: "DataMPI fastest; Spark between DataMPI and Hadoop.",
        },
        Entry {
            table: figures::fig6b()?,
            paper: "Naive Bayes 8-64 GB: DataMPI ~33% over Hadoop on average (no Spark implementation in BigDataBench 2.1).",
            claim: "~33% improvement; two-engine table.",
        },
        Entry {
            table: figures::fig_ext_iterations(16, 5)?,
            paper: "Deferred to future work: 'we will give a detail performance comparison between Spark and DataMPI in the iterative applications' (§4.6).",
            claim: "Extension experiment: Hadoop pays a full job per iteration; Spark's cache and DataMPI's Iteration mode flatten the marginal cost; DataMPI leads at every cumulative point.",
        },
        Entry {
            table: crate::recovery::fig_ext_recovery(8)?,
            paper: "Not measured: the paper's testbed never loses a node. Fault tolerance is the standard argument for Hadoop's materialize-to-disk design; DataMPI's library answers with checkpointed key-value state.",
            claim: "Extension experiment: a mid-job node failure costs nonzero recovery time under both disciplines; on the same DAG, Hadoop-style re-execution of lost map output wastes at least as much as checkpoint/restart.",
        },
        Entry {
            table: crate::profile_real::fig_ext_profile_real()?,
            paper: "Not in the paper: its Figure 4 curves are measured on the real cluster only. This reproduction predicts them with a simulator, so the extension closes the loop — a real profiled run (this library's observe layer) against the simulator's prediction for the same workload.",
            claim: "Extension experiment: the observed per-resource curves (CPU, memory, network, disk write) are finite, nonzero where the model predicts activity, and the peak-normalized shape error is reported per resource.",
        },
        Entry {
            table: crate::pipeline_bench::fig_ext_pipeline()?,
            paper: "Not measured separately: the paper credits DataMPI's wins to overlapping key-value communication with computation and to avoiding Hadoop's collect-then-sort materialization; map-side combining is the standard lever for wordcount-class jobs (cf. the Spark-vs-MPI wordcount study in PAPERS.md).",
            claim: "Extension experiment: the O-side combiner ships strictly fewer shuffle bytes at equal (canonically identical) output for WordCount and Grep on both backends and both grouping modes, and the spill probe's peak resident records stay far below the record total — the A side groups by external merge, not re-materialization.",
        },
        Entry {
            table: crate::transport_bench::fig_ext_transport()?,
            paper: "Not measured: the paper's DataMPI rides MVAPICH2, whose interconnect saturation is the MPI library's problem. This reproduction owns its own wire, so the extension measures it — the same jobs over in-proc channels, a real TCP loopback mesh, and that mesh with per-batch LZ4, plus a compute-free frame stream.",
            claim: "Extension experiment: all transport configurations produce identical record counts; coalescing ships far fewer write syscalls than frames; LZ4 never inflates the wire; and the raw stream sustains hundreds of MB/s on loopback (gated in CI at 200 MB/s).",
        },
        Entry {
            table: figures::section_4_7_summary()?,
            paper: "§4.7's aggregates: 40%/54%/36% over Hadoop (micro/small/apps), 14%/33% over Spark, CPU 35/34/59%, network +55%/+59%.",
            claim: "Every aggregate lands within a few points of the paper's figure.",
        },
        Entry {
            table: figures::fig7()?,
            paper: "Seven-pronged summary: DataMPI leads every performance dimension; DataMPI & Spark use CPU ~40% and memory more efficiently than Hadoop; DataMPI has 55-59% higher network throughput.",
            claim: "DataMPI = 1.00 on all three performance dimensions; Hadoop trails on CPU/memory efficiency.",
        },
    ])
}

/// Renders the full EXPERIMENTS.md content.
pub fn render_markdown(entries: &[Entry]) -> String {
    let mut out = String::from(
        "# EXPERIMENTS — paper vs. reproduction\n\n\
         Every table and figure of *Performance Benefits of DataMPI: A Case\n\
         Study with BigDataBench*, regenerated by `cargo run -p dmpi-bench\n\
         --bin figures -- all --markdown`. Absolute times come from the\n\
         calibrated cluster simulation (see DESIGN.md §1); the reproduction\n\
         targets the paper's *shapes* — orderings, improvement bands,\n\
         crossovers and failure modes — not its exact seconds.\n\n",
    );
    for e in entries {
        out.push_str(&e.table.render_markdown());
        out.push_str(&format!("**Paper reports:** {}\n\n", e.paper));
        out.push_str(&format!("**Reproduction claim:** {}\n\n---\n\n", e.claim));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering_of_static_entries() {
        // Render only the cheap static tables to keep the test fast.
        let entries = vec![Entry {
            table: figures::table1(),
            paper: "five workloads",
            claim: "exact match",
        }];
        let md = render_markdown(&entries);
        assert!(md.contains("# EXPERIMENTS"));
        assert!(md.contains("### table1"));
        assert!(md.contains("**Paper reports:** five workloads"));
    }
}
