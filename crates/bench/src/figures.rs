//! Generators for every table and figure in the paper's evaluation.

use dmpi_common::units::{GB, MB};
use dmpi_common::Result;
use dmpi_dcsim::metrics::ResourceProfile;
use dmpi_dcsim::ClusterSpec;
use dmpi_dfs::dfsio::{run_dfsio, DfsioMode};
use dmpi_dfs::DfsConfig;
use dmpi_workloads::{run_sim, Engine, Outcome, Workload};

use crate::table::{fmt_secs_opt, Table};

/// The engines in the paper's plotting order.
pub const ENGINES: [Engine; 3] = [Engine::Hadoop, Engine::Spark, Engine::DataMpi];

/// Table 1 — representative workloads.
pub fn table1() -> Table {
    let mut t = Table::new(
        "table1",
        "Representative Workloads",
        &["No.", "Workload", "Type"],
    );
    for e in dmpi_workloads::catalog::TABLE1 {
        t.push_row(vec![e.no.to_string(), e.workload.into(), e.category.into()]);
    }
    t
}

/// Table 2 — hardware configuration of the (simulated) testbed.
pub fn table2() -> Table {
    let spec = ClusterSpec::paper_testbed();
    let mut t = Table::new(
        "table2",
        "Details of Hardware Configuration",
        &["Item", "Value"],
    );
    let rows = [
        ("CPU type", "Intel Xeon E5620 (2 sockets)".to_string()),
        ("# cores", "4 cores @2.4G per socket".to_string()),
        ("# threads", "16 per node (HT)".to_string()),
        (
            "modeled CPU",
            format!("{:.1} core-equivalents/node", spec.cpu_capacity),
        ),
        ("Memory", dmpi_common::units::fmt_bytes(spec.mem_bytes)),
        (
            "Disk",
            format!("SATA, {:.0} MB/s effective", spec.disk_bw / MB as f64),
        ),
        (
            "Network",
            format!("1 GbE, {:.0} MB/s per direction", spec.net_bw / MB as f64),
        ),
        ("Nodes", spec.nodes.to_string()),
    ];
    for (k, v) in rows {
        t.push_row(vec![k.into(), v]);
    }
    t
}

/// Figure 2(a) — DFSIO write throughput vs HDFS block size, for 5-20 GB
/// files.
pub fn fig2a() -> Result<Table> {
    let cluster = ClusterSpec::paper_testbed();
    let mut t = Table::new(
        "fig2a",
        "HDFS Block Size Tuning based on DFSIO (write throughput, MB/s)",
        &["Block (MB)", "5GB", "10GB", "15GB", "20GB"],
    );
    for block_mb in [64u64, 128, 256, 512] {
        let config = DfsConfig::paper_tuned().with_block_size(block_mb * MB);
        let mut row = vec![block_mb.to_string()];
        for gb in [5u64, 10, 15, 20] {
            let r = run_dfsio(&cluster, &config, DfsioMode::Write, gb * GB, 2)?;
            row.push(format!("{:.1}", r.throughput_mb_s));
        }
        t.push_row(row);
    }
    Ok(t)
}

/// Figure 2(b) — Text Sort throughput vs concurrent tasks/workers per
/// node. Hadoop/DataMPI process 1 GB per task, Spark 128 MB per worker
/// (§4.2).
pub fn fig2b() -> Result<Table> {
    let mut t = Table::new(
        "fig2b",
        "Tasks/Workers-per-node Tuning based on Text Sort (throughput, MB/s)",
        &["Tasks/node", "Hadoop", "Spark", "DataMPI"],
    );
    for tasks in [2u32, 4, 6] {
        let mut row = vec![tasks.to_string()];
        for engine in [Engine::Hadoop, Engine::Spark, Engine::DataMpi] {
            let per_task = match engine {
                Engine::Spark => 128 * MB,
                _ => GB,
            };
            let total = per_task * tasks as u64 * 8;
            let outcome = run_sim(Workload::TextSort, engine, total, tasks)?;
            let cell = match outcome.seconds() {
                Some(secs) => format!("{:.0}", total as f64 / MB as f64 / secs),
                None => "OOM".into(),
            };
            row.push(cell);
        }
        t.push_row(row);
    }
    Ok(t)
}

fn engine_column(outcomes: &[(u64, Vec<Option<f64>>)], headers: &[&str]) -> Table {
    let mut t = Table::new("", "", headers);
    for (size, times) in outcomes {
        let mut row = vec![format!("{size}")];
        row.extend(times.iter().map(|o| fmt_secs_opt(*o)));
        t.push_row(row);
    }
    t
}

fn fig3_generic(
    id: &str,
    title: &str,
    workload: Workload,
    sizes: &[u64],
    engines: &[Engine],
) -> Result<Table> {
    let mut outcomes = Vec::new();
    for &gb in sizes {
        let mut times = Vec::new();
        for &e in engines {
            times.push(run_sim(workload, e, gb * GB, 4)?.seconds());
        }
        outcomes.push((gb, times));
    }
    let mut headers = vec!["Size (GB)"];
    headers.extend(engines.iter().map(|e| match e {
        Engine::Hadoop => "Hadoop",
        Engine::Spark => "Spark",
        Engine::DataMpi => "DataMPI",
    }));
    let mut t = engine_column(&outcomes, &headers);
    t.id = id.to_string();
    t.title = format!("{title} (job execution time, s)");
    Ok(t)
}

/// Figure 3(a) — Normal Sort, Hadoop vs DataMPI, 4-32 GB.
pub fn fig3a() -> Result<Table> {
    fig3_generic(
        "fig3a",
        "Normal Sort",
        Workload::NormalSort,
        &[4, 8, 16, 32],
        &[Engine::Hadoop, Engine::DataMpi],
    )
}

/// Figure 3(b) — Text Sort, all three engines, 8-64 GB (Spark OOMs past
/// 8 GB).
pub fn fig3b() -> Result<Table> {
    fig3_generic(
        "fig3b",
        "Text Sort",
        Workload::TextSort,
        &[8, 16, 32, 64],
        &ENGINES,
    )
}

/// Figure 3(c) — WordCount, all three engines, 8-64 GB.
pub fn fig3c() -> Result<Table> {
    fig3_generic(
        "fig3c",
        "WordCount",
        Workload::WordCount,
        &[8, 16, 32, 64],
        &ENGINES,
    )
}

/// Figure 3(d) — Grep, all three engines, 8-64 GB.
pub fn fig3d() -> Result<Table> {
    fig3_generic("fig3d", "Grep", Workload::Grep, &[8, 16, 32, 64], &ENGINES)
}

/// Which Figure 4 case to profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig4Case {
    /// 8 GB Text Sort (Figure 4(a)-(d)).
    Sort,
    /// 32 GB WordCount (Figure 4(e)-(h)).
    WordCount,
}

impl Fig4Case {
    fn workload(self) -> Workload {
        match self {
            Fig4Case::Sort => Workload::TextSort,
            Fig4Case::WordCount => Workload::WordCount,
        }
    }
    fn bytes(self) -> u64 {
        match self {
            Fig4Case::Sort => 8 * GB,
            Fig4Case::WordCount => 32 * GB,
        }
    }
    /// The averaging window the paper uses (the slowest engine's runtime).
    fn label(self) -> &'static str {
        match self {
            Fig4Case::Sort => "8GB Text Sort",
            Fig4Case::WordCount => "32GB WordCount",
        }
    }
}

/// The profiled runs backing Figure 4 for one case.
pub struct Fig4Data {
    /// `(engine, job seconds, resource profile)` — engines that finished.
    pub runs: Vec<(Engine, f64, ResourceProfile)>,
    /// Full reports per finished engine (phase spans for the paper's
    /// phase-scoped averages).
    pub reports: Vec<(Engine, dmpi_dcsim::SimReport)>,
    /// The case profiled.
    pub case: Fig4Case,
}

impl Fig4Data {
    /// The input-reading phase of an engine (DataMPI's O phase, Hadoop's
    /// map phase, Spark's Stage 0) — the window the paper scopes its disk
    /// read averages to ("The average disk read throughputs of DataMPI O
    /// phase, Hadoop Map phase, and Spark Stage 0 are 50/49/46 MB/sec").
    pub fn input_phase(engine: Engine) -> &'static str {
        match engine {
            Engine::DataMpi => "O",
            Engine::Hadoop => "map",
            Engine::Spark => "stage0",
        }
    }

    /// Mean of a metric over an engine's input phase.
    pub fn phase_mean(
        &self,
        engine: Engine,
        series_of: impl Fn(&ResourceProfile) -> Vec<f64>,
    ) -> Option<f64> {
        let report = self
            .reports
            .iter()
            .find(|(e, _)| *e == engine)
            .map(|(_, r)| r)?;
        let (start, end) = report.phase_span(Self::input_phase(engine))?;
        let series = series_of(&report.profile);
        let lo = start.floor() as usize;
        let hi = (end.ceil() as usize).min(series.len());
        if hi <= lo {
            return None;
        }
        Some(series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64)
    }
}

/// Runs the Figure 4 profiling case on all (applicable) engines.
pub fn fig4_data(case: Fig4Case) -> Result<Fig4Data> {
    let mut runs = Vec::new();
    let mut reports = Vec::new();
    for engine in ENGINES {
        if let Outcome::Finished { seconds, report } =
            run_sim(case.workload(), engine, case.bytes(), 4)?
        {
            runs.push((engine, seconds, report.profile.clone()));
            reports.push((engine, *report));
        }
    }
    Ok(Fig4Data {
        runs,
        reports,
        case,
    })
}

/// Figure 4 summary table: the per-engine averages the paper quotes in
/// §4.4 (window = the slowest engine's runtime).
pub fn fig4_averages(case: Fig4Case) -> Result<Table> {
    let data = fig4_data(case)?;
    let window = data
        .runs
        .iter()
        .map(|(_, s, _)| *s)
        .fold(0.0f64, f64::max)
        .ceil() as usize;
    let mut t = Table::new(
        match case {
            Fig4Case::Sort => "fig4a-d",
            Fig4Case::WordCount => "fig4e-h",
        },
        format!(
            "Resource utilization of {} (averages over 0-{} s)",
            case.label(),
            window
        ),
        &[
            "Engine",
            "Time (s)",
            "CPU (%)",
            "WaitIO (%)",
            "DiskRd (MB/s)",
            "RdPhase (MB/s)",
            "DiskWt (MB/s)",
            "Net (MB/s)",
            "Mem (GB)",
        ],
    );
    for (engine, secs, p) in &data.runs {
        // The paper scopes disk-read averages to the input-reading phase
        // (O / map / Stage 0); report both the whole-window and the
        // phase-scoped figure.
        let phase_rd = data
            .phase_mean(*engine, |p| p.disk_read_mb_s.clone())
            .unwrap_or(0.0);
        t.push_row(vec![
            engine.to_string(),
            format!("{secs:.0}"),
            format!("{:.0}", ResourceProfile::mean(&p.cpu_util_pct, window)),
            format!("{:.0}", ResourceProfile::mean(&p.wait_io_pct, window)),
            format!("{:.0}", ResourceProfile::mean(&p.disk_read_mb_s, window)),
            format!("{phase_rd:.0}"),
            format!("{:.0}", ResourceProfile::mean(&p.disk_write_mb_s, window)),
            format!("{:.0}", ResourceProfile::mean(&p.net_mb_s, window)),
            format!("{:.1}", ResourceProfile::mean(&p.mem_gb, window)),
        ]);
    }
    Ok(t)
}

/// Figure 4 time-series table for one metric, sampled every `step`
/// seconds (the paper plots per-second curves; 10 s sampling keeps the
/// table readable while preserving the shape).
pub fn fig4_series(case: Fig4Case, metric: &str, step: usize) -> Result<Table> {
    let data = fig4_data(case)?;
    let select = |p: &ResourceProfile| -> Vec<f64> {
        match metric {
            "cpu" => p.cpu_util_pct.clone(),
            "waitio" => p.wait_io_pct.clone(),
            "disk_read" => p.disk_read_mb_s.clone(),
            "disk_write" => p.disk_write_mb_s.clone(),
            "net" => p.net_mb_s.clone(),
            "mem" => p.mem_gb.clone(),
            other => panic!("unknown metric {other}"),
        }
    };
    let mut headers = vec!["t (s)".to_string()];
    for (e, _, _) in &data.runs {
        headers.push(e.to_string());
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!("fig4-{}-{metric}", case.label().replace(' ', "_")),
        format!("{} of {}", metric, case.label()),
        &header_refs,
    );
    let longest = data.runs.iter().map(|(_, _, p)| p.len()).max().unwrap_or(0);
    let mut i = 0;
    while i < longest {
        let mut row = vec![i.to_string()];
        for (_, _, p) in &data.runs {
            let series = select(p);
            row.push(
                series
                    .get(i)
                    .map(|v| format!("{v:.1}"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        t.push_row(row);
        i += step.max(1);
    }
    Ok(t)
}

/// Figure 5 — small jobs: 128 MB input, one task/worker per node.
pub fn fig5() -> Result<Table> {
    let mut t = Table::new(
        "fig5",
        "Performance Comparison Based on Small Jobs (128 MB input, s)",
        &["Benchmark", "Hadoop", "Spark", "DataMPI"],
    );
    for (label, workload) in [
        ("Text Sort", Workload::TextSort),
        ("WordCount", Workload::WordCount),
        ("Grep", Workload::Grep),
    ] {
        let mut row = vec![label.to_string()];
        for engine in ENGINES {
            let outcome = run_sim(workload, engine, 128 * MB, 1)?;
            row.push(fmt_secs_opt(outcome.seconds()));
        }
        t.push_row(row);
    }
    Ok(t)
}

/// Figure 6(a) — K-means first-iteration time, 8-64 GB, all three engines.
pub fn fig6a() -> Result<Table> {
    fig3_generic(
        "fig6a",
        "K-means (first iteration)",
        Workload::KMeans,
        &[8, 16, 32, 64],
        &ENGINES,
    )
}

/// Figure 6(b) — Naive Bayes, 8-64 GB, Hadoop vs DataMPI.
pub fn fig6b() -> Result<Table> {
    fig3_generic(
        "fig6b",
        "Naive Bayes",
        Workload::NaiveBayes,
        &[8, 16, 32, 64],
        &[Engine::Hadoop, Engine::DataMpi],
    )
}

/// Extension experiment (the paper's §4.6 future work): K-means over
/// multiple training iterations. Hadoop re-launches a full job per
/// iteration; Spark caches the vectors after its first load; DataMPI's
/// Iteration mode keeps deserialized splits resident. Cells are
/// **cumulative** seconds after each iteration.
pub fn fig_ext_iterations(input_gb: u64, iterations: u32) -> Result<Table> {
    use dmpi_dcsim::{NodeId, Simulation};
    use dmpi_dfs::{DfsConfig, MiniDfs};
    use dmpi_workloads::{calib, kmeans};

    let cluster = ClusterSpec::paper_testbed();
    let dfs = MiniDfs::new(cluster.nodes, DfsConfig::paper_tuned())?;
    // One generated file per node (like the BigDataBench generator), so
    // primary replicas — and with them the map/O tasks — spread evenly.
    let per_file = input_gb * GB / cluster.nodes as u64;
    for i in 0..cluster.nodes {
        dfs.create_virtual(&format!("/kmeans/part-{i:05}"), NodeId(i), per_file)?;
    }
    let splits = dfs.splits_for_prefix("/kmeans/")?;

    // Hadoop: one full job per iteration (no residency anywhere).
    let hadoop_iteration = {
        let mut sim = Simulation::new(cluster.clone());
        let p = kmeans::hadoop_profile(4);
        dmpi_mapred::plan::compile(&mut sim, &p, &splits)?;
        sim.run()?.makespan
    };

    // DataMPI: cold first iteration, resident afterwards (Iteration mode).
    let datampi_run = |resident: bool| -> Result<f64> {
        let mut sim = Simulation::new(cluster.clone());
        let mut p = kmeans::datampi_profile(4);
        p.input_resident = resident;
        if resident {
            // Ranks are already up: iterations after the first pay no
            // startup/finalize barriers.
            p.startup_secs = 0.5;
            p.finalize_secs = 0.0;
        }
        datampi::plan::compile(&mut sim, &p, &splits)?;
        Ok(sim.run()?.makespan)
    };
    let datampi_cold = datampi_run(false)?;
    let datampi_warm = datampi_run(true)?;

    // Spark: stage0 loads + caches once; each iteration reruns over the
    // cache. Simulate the first job (load + iter) and a cache-only job.
    let spark_times = {
        let full = kmeans::spark_profile(splits.clone(), 4);
        let mut sim = Simulation::new(cluster.clone());
        dmpi_rddsim::plan::compile(&mut sim, &full)?;
        let first = sim.run()?.makespan;

        let mut warm = kmeans::spark_profile(splits.clone(), 4);
        warm.startup_secs = 0.3; // driver alive, task dispatch only
        warm.stages.remove(0); // no load stage: iterate over the cache
        let mut sim = Simulation::new(cluster);
        dmpi_rddsim::plan::compile(&mut sim, &warm)?;
        let repeat = sim.run()?.makespan;
        (first, repeat)
    };

    let mut t = Table::new(
        "fig-ext-iter",
        format!(
            "Extension: iterative K-means, {input_gb} GB, cumulative seconds              (the paper's deferred Spark-vs-DataMPI iterative comparison)"
        ),
        &["Iteration", "Hadoop", "Spark", "DataMPI"],
    );
    let mut h = 0.0;
    let mut s = 0.0;
    let mut d = 0.0;
    for i in 1..=iterations {
        h += hadoop_iteration;
        s += if i == 1 { spark_times.0 } else { spark_times.1 };
        d += if i == 1 { datampi_cold } else { datampi_warm };
        t.push_row(vec![
            i.to_string(),
            format!("{h:.0}"),
            format!("{s:.0}"),
            format!("{d:.0}"),
        ]);
    }
    let _ = calib::DATAMPI_STARTUP_SECS; // profiles already carry calib
    Ok(t)
}

/// §4.7's prose summary: the paper's aggregate improvement percentages,
/// recomputed from the simulated cells. Rows mirror the paper's sentences:
/// "Compared to Hadoop, DataMPI can averagely achieve 40%, 54%, and 36%
/// performance improvements when running micro-benchmarks, small jobs, and
/// application benchmarks. Compared to Spark, DataMPI can achieve 14% and
/// 33% ... the average CPU utilizations of DataMPI, Spark, and Hadoop are
/// 35%, 34%, and 59% ... DataMPI achieves 55% and 59% network throughput
/// improvements than Spark and Hadoop."
pub fn section_4_7_summary() -> Result<Table> {
    let avg_improvement = |cells: &[(Workload, u64)], against: Engine| -> Result<f64> {
        let mut imps = Vec::new();
        for &(w, gb) in cells {
            let d = run_sim(w, Engine::DataMpi, gb * GB, 4)?
                .seconds()
                .expect("DataMPI finishes");
            if let Some(other) = run_sim(w, against, gb * GB, 4)?.seconds() {
                imps.push(1.0 - d / other);
            }
        }
        Ok(imps.iter().sum::<f64>() / imps.len().max(1) as f64)
    };

    let micro: Vec<(Workload, u64)> = [8u64, 16, 32, 64]
        .iter()
        .flat_map(|&gb| {
            [Workload::TextSort, Workload::WordCount, Workload::Grep]
                .into_iter()
                .map(move |w| (w, gb))
        })
        .chain(
            [4u64, 8, 16, 32]
                .iter()
                .map(|&gb| (Workload::NormalSort, gb)),
        )
        .collect();
    let apps: Vec<(Workload, u64)> = [8u64, 16, 32, 64]
        .iter()
        .flat_map(|&gb| {
            [Workload::KMeans, Workload::NaiveBayes]
                .into_iter()
                .map(move |w| (w, gb))
        })
        .collect();

    // Small jobs: total time over the three 128 MB benchmarks.
    let small_total = |e: Engine| -> Result<f64> {
        let mut sum = 0.0;
        for w in [Workload::TextSort, Workload::WordCount, Workload::Grep] {
            sum += run_sim(w, e, 128 * MB, 1)?
                .seconds()
                .expect("small jobs run");
        }
        Ok(sum)
    };
    let small_d = small_total(Engine::DataMpi)?;
    let small_s = small_total(Engine::Spark)?;
    let small_h = small_total(Engine::Hadoop)?;

    // Resource aggregates from the two Figure 4 cases.
    let sort = fig4_data(Fig4Case::Sort)?;
    let wc = fig4_data(Fig4Case::WordCount)?;
    let mean_over = |e: Engine, f: &dyn Fn(&ResourceProfile, usize) -> f64| -> f64 {
        let mut acc = 0.0;
        let mut n = 0;
        for data in [&sort, &wc] {
            let window = data
                .runs
                .iter()
                .map(|(_, s, _)| *s)
                .fold(0.0f64, f64::max)
                .ceil() as usize;
            if let Some((_, _, p)) = data.runs.iter().find(|(re, _, _)| *re == e) {
                acc += f(p, window);
                n += 1;
            }
        }
        acc / n.max(1) as f64
    };
    let cpu = |e| mean_over(e, &|p, w| ResourceProfile::mean(&p.cpu_util_pct, w));
    // The paper's network comparison comes from the Sort case (§4.4:
    // 62 MB/s vs 39-40 MB/s); WordCount moves almost nothing.
    let net = |e: Engine| -> f64 {
        let window = sort
            .runs
            .iter()
            .map(|(_, s, _)| *s)
            .fold(0.0f64, f64::max)
            .ceil() as usize;
        sort.runs
            .iter()
            .find(|(re, _, _)| *re == e)
            .map(|(_, _, p)| ResourceProfile::mean(&p.net_mb_s, window))
            .unwrap_or(0.0)
    };

    let mut t = Table::new(
        "section4.7",
        "Discussion of Performance Results (paper's aggregate numbers)",
        &["Quantity", "Paper", "Reproduction"],
    );
    let rows: Vec<(&str, String, String)> = vec![
        (
            "micro-benchmarks: DataMPI vs Hadoop",
            "40%".into(),
            format!("{:.0}%", 100.0 * avg_improvement(&micro, Engine::Hadoop)?),
        ),
        (
            "micro-benchmarks: DataMPI vs Spark",
            "14%".into(),
            format!(
                "{:.0}%",
                100.0
                    * avg_improvement(
                        &[
                            (Workload::TextSort, 8),
                            (Workload::WordCount, 8),
                            (Workload::WordCount, 32),
                            (Workload::Grep, 8),
                            (Workload::Grep, 32),
                        ],
                        Engine::Spark
                    )?
            ),
        ),
        (
            "small jobs: DataMPI vs Hadoop",
            "54%".into(),
            format!("{:.0}%", 100.0 * (1.0 - small_d / small_h)),
        ),
        (
            "small jobs: DataMPI vs Spark",
            "similar".into(),
            format!("{:+.0}%", 100.0 * (1.0 - small_d / small_s)),
        ),
        (
            "applications: DataMPI vs Hadoop",
            "36%".into(),
            format!("{:.0}%", 100.0 * avg_improvement(&apps, Engine::Hadoop)?),
        ),
        (
            "applications: DataMPI vs Spark (K-means)",
            "33%".into(),
            format!(
                "{:.0}%",
                100.0
                    * avg_improvement(
                        &[(Workload::KMeans, 8), (Workload::KMeans, 32)],
                        Engine::Spark
                    )?
            ),
        ),
        (
            "avg CPU utilization DataMPI/Spark/Hadoop",
            "35/34/59%".into(),
            format!(
                "{:.0}/{:.0}/{:.0}%",
                cpu(Engine::DataMpi),
                cpu(Engine::Spark),
                cpu(Engine::Hadoop)
            ),
        ),
        (
            "network throughput: DataMPI vs Hadoop",
            "+59%".into(),
            format!(
                "{:+.0}%",
                100.0 * (net(Engine::DataMpi) / net(Engine::Hadoop).max(0.01) - 1.0)
            ),
        ),
        (
            "network throughput: DataMPI vs Spark",
            "+55%".into(),
            format!(
                "{:+.0}%",
                100.0 * (net(Engine::DataMpi) / net(Engine::Spark).max(0.01) - 1.0)
            ),
        ),
    ];
    for (q, paper, repro) in rows {
        t.push_row(vec![q.to_string(), paper, repro]);
    }
    Ok(t)
}

/// The seven evaluation dimensions of Figures 1/7.
pub const DIMENSIONS: [&str; 7] = [
    "Micro Benchmark Performance",
    "Small Job Performance",
    "Application Benchmark Performance",
    "CPU Efficiency",
    "Disk I/O Throughput",
    "Network Throughput",
    "Memory Efficiency",
];

/// Figure 7 — the seven-pronged summary. Scores are normalized to the
/// best engine per dimension (1.00 = best); performance dimensions use
/// inverse time, resource dimensions use the Figure 4 profiles.
pub fn fig7() -> Result<Table> {
    // Performance dimensions: geometric-mean inverse runtimes.
    let perf_score = |cells: Vec<Vec<Option<f64>>>| -> Vec<Option<f64>> {
        // cells[w][e]: per-workload per-engine seconds.
        let engines = cells.first().map(|r| r.len()).unwrap_or(0);
        (0..engines)
            .map(|e| {
                let mut product = 1.0f64;
                let mut n = 0;
                for row in &cells {
                    match row[e] {
                        Some(secs) => {
                            product *= 1.0 / secs;
                            n += 1;
                        }
                        None => return None, // OOM anywhere sinks the score
                    }
                }
                Some(product.powf(1.0 / n.max(1) as f64))
            })
            .collect()
    };

    let micro: Vec<Vec<Option<f64>>> = [
        (Workload::TextSort, 8u64),
        (Workload::WordCount, 32),
        (Workload::Grep, 32),
    ]
    .iter()
    .map(|&(w, gb)| {
        ENGINES
            .iter()
            .map(|&e| run_sim(w, e, gb * GB, 4).ok().and_then(|o| o.seconds()))
            .collect()
    })
    .collect();

    let small: Vec<Vec<Option<f64>>> = [Workload::TextSort, Workload::WordCount, Workload::Grep]
        .iter()
        .map(|&w| {
            ENGINES
                .iter()
                .map(|&e| run_sim(w, e, 128 * MB, 1).ok().and_then(|o| o.seconds()))
                .collect()
        })
        .collect();

    let apps: Vec<Vec<Option<f64>>> = vec![ENGINES
        .iter()
        .map(|&e| {
            run_sim(Workload::KMeans, e, 16 * GB, 4)
                .ok()
                .and_then(|o| o.seconds())
        })
        .collect()];

    // Resource dimensions from the two profiled cases.
    let sort = fig4_data(Fig4Case::Sort)?;
    let wc = fig4_data(Fig4Case::WordCount)?;
    let resource = |f: &dyn Fn(&ResourceProfile, usize) -> f64| -> Vec<Option<f64>> {
        ENGINES
            .iter()
            .map(|&e| {
                let mut acc = 0.0;
                let mut n = 0;
                for data in [&sort, &wc] {
                    let window = data
                        .runs
                        .iter()
                        .map(|(_, s, _)| *s)
                        .fold(0.0f64, f64::max)
                        .ceil() as usize;
                    if let Some((_, _, p)) = data.runs.iter().find(|(re, _, _)| *re == e) {
                        acc += f(p, window);
                        n += 1;
                    }
                }
                if n > 0 {
                    Some(acc / n as f64)
                } else {
                    None
                }
            })
            .collect()
    };
    // Efficiency = lower average utilization for the same work.
    let cpu = resource(&|p, w| 1.0 / ResourceProfile::mean(&p.cpu_util_pct, w).max(1.0));
    let disk = resource(&|p, w| {
        ResourceProfile::mean(&p.disk_read_mb_s, w) + ResourceProfile::mean(&p.disk_write_mb_s, w)
    });
    let net = resource(&|p, w| ResourceProfile::mean(&p.net_mb_s, w));
    let mem = resource(&|p, w| 1.0 / ResourceProfile::mean(&p.mem_gb, w).max(0.1));

    let rows: Vec<(&str, Vec<Option<f64>>)> = vec![
        (DIMENSIONS[0], perf_score(micro)),
        (DIMENSIONS[1], perf_score(small)),
        (DIMENSIONS[2], perf_score(apps)),
        (DIMENSIONS[3], cpu),
        (DIMENSIONS[4], disk),
        (DIMENSIONS[5], net),
        (DIMENSIONS[6], mem),
    ];

    let mut t = Table::new(
        "fig7",
        "Evaluation Results (scores normalized to the best engine per dimension)",
        &["Dimension", "Hadoop", "Spark", "DataMPI"],
    );
    for (dim, scores) in rows {
        let best = scores
            .iter()
            .flatten()
            .cloned()
            .fold(f64::MIN, f64::max)
            .max(f64::MIN_POSITIVE);
        let mut row = vec![dim.to_string()];
        for s in scores {
            row.push(match s {
                Some(v) => format!("{:.2}", v / best),
                None => "OOM".into(),
            });
        }
        t.push_row(row);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(cell: Option<&str>) -> Option<f64> {
        cell.and_then(|c| c.parse().ok())
    }

    #[test]
    fn table1_and_2_render() {
        assert_eq!(table1().rows.len(), 5);
        assert!(table2().render_text().contains("E5620"));
    }

    #[test]
    fn fig2a_peaks_away_from_smallest_block() {
        let t = fig2a().unwrap();
        assert_eq!(t.rows.len(), 4);
        let at = |block: &str, col: &str| parse(t.cell(block, col)).unwrap();
        // The paper's tuning conclusion: 256 MB beats 64 MB.
        assert!(at("256", "20GB") > at("64", "20GB"));
        // Absolute band ~15-30 MB/s.
        for block in ["64", "128", "256", "512"] {
            let v = at(block, "10GB");
            assert!((8.0..40.0).contains(&v), "{block}: {v}");
        }
    }

    #[test]
    fn fig2b_peaks_at_four_tasks() {
        let t = fig2b().unwrap();
        let at = |tasks: &str, engine: &str| parse(t.cell(tasks, engine)).unwrap();
        for engine in ["Hadoop", "DataMPI"] {
            let t2 = at("2", engine);
            let t4 = at("4", engine);
            let t6 = at("6", engine);
            assert!(t4 > t2, "{engine}: 4 tasks beat 2 ({t4} vs {t2})");
            assert!(t4 >= t6, "{engine}: 4 tasks >= 6 ({t4} vs {t6})");
        }
    }

    #[test]
    fn fig3b_reproduces_ordering_and_oom() {
        let t = fig3b().unwrap();
        assert_eq!(t.cell("16", "Spark"), Some("OOM"));
        assert_eq!(t.cell("64", "Spark"), Some("OOM"));
        let d = parse(t.cell("8", "DataMPI")).unwrap();
        let h = parse(t.cell("8", "Hadoop")).unwrap();
        let s = parse(t.cell("8", "Spark")).unwrap();
        assert!(d < s && s <= h);
    }

    #[test]
    fn fig5_small_jobs_shape() {
        let t = fig5().unwrap();
        for wl in ["Text Sort", "WordCount", "Grep"] {
            let h = parse(t.cell(wl, "Hadoop")).unwrap();
            let s = parse(t.cell(wl, "Spark")).unwrap();
            let d = parse(t.cell(wl, "DataMPI")).unwrap();
            // Paper: DataMPI ~ Spark, both far ahead of Hadoop (avg 54%).
            assert!(d < h * 0.65, "{wl}: d={d} h={h}");
            assert!((d - s).abs() <= 6.0, "{wl}: d={d} s={s}");
        }
    }

    #[test]
    fn fig4_averages_match_papers_direction() {
        let t = fig4_averages(Fig4Case::WordCount).unwrap();
        let cpu = |e: &str| parse(t.cell(e, "CPU (%)")).unwrap();
        // §4.4: Hadoop 80%, DataMPI 47%, Spark 30% — Hadoop burns the most.
        assert!(cpu("Hadoop") > cpu("DataMPI"));
        assert!(cpu("Hadoop") > cpu("Spark"));
        let mem = |e: &str| parse(t.cell(e, "Mem (GB)")).unwrap();
        // §4.4: Hadoop 9 GB vs 5 GB for the other two.
        assert!(mem("Hadoop") > mem("DataMPI"));
        assert!(mem("Hadoop") > mem("Spark"));
    }

    #[test]
    fn fig4_sort_network_favors_datampi() {
        let t = fig4_averages(Fig4Case::Sort).unwrap();
        let net = |e: &str| parse(t.cell(e, "Net (MB/s)")).unwrap();
        // §4.4: DataMPI 62 MB/s vs ~39-40 for Hadoop and Spark.
        assert!(net("DataMPI") > net("Hadoop") * 1.2);
    }

    #[test]
    fn fig4_series_has_samples() {
        let t = fig4_series(Fig4Case::Sort, "cpu", 10).unwrap();
        assert!(t.rows.len() >= 5);
        assert_eq!(t.headers.len(), 4); // t + three engines
    }

    #[test]
    fn fig6_tables_shape() {
        let a = fig6a().unwrap();
        let d = parse(a.cell("16", "DataMPI")).unwrap();
        let h = parse(a.cell("16", "Hadoop")).unwrap();
        assert!(d < h);
        let b = fig6b().unwrap();
        assert_eq!(b.headers.len(), 3, "no Spark column for Naive Bayes");
    }

    #[test]
    fn section_4_7_aggregates_land_in_band() {
        let t = section_4_7_summary().unwrap();
        let pct = |row: &str| -> f64 {
            t.cell(row, "Reproduction")
                .unwrap()
                .trim_end_matches('%')
                .trim_start_matches('+')
                .split('/')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        // Paper: 40% micro vs Hadoop.
        let micro = pct("micro-benchmarks: DataMPI vs Hadoop");
        assert!((30.0..50.0).contains(&micro), "micro {micro}");
        // Paper: 54% small jobs vs Hadoop.
        let small = pct("small jobs: DataMPI vs Hadoop");
        assert!((40.0..65.0).contains(&small), "small {small}");
        // Paper: 36% applications vs Hadoop.
        let apps = pct("applications: DataMPI vs Hadoop");
        assert!((25.0..45.0).contains(&apps), "apps {apps}");
        // Paper: DataMPI's network throughput leads Hadoop's by ~59%.
        let net = pct("network throughput: DataMPI vs Hadoop");
        assert!(net > 25.0, "net lead {net}");
    }

    #[test]
    fn extension_iterative_kmeans_shapes() {
        let t = fig_ext_iterations(16, 5).unwrap();
        assert_eq!(t.rows.len(), 5);
        let at = |iter: &str, e: &str| parse(t.cell(iter, e)).unwrap();
        // First iteration: DataMPI fastest (the paper's Figure 6(a) cell).
        assert!(at("1", "DataMPI") < at("1", "Hadoop"));
        assert!(at("1", "DataMPI") < at("1", "Spark"));
        // Marginal cost of iterations 2..5: Hadoop pays a full job; the
        // resident engines pay compute only.
        let slope = |e: &str| (at("5", e) - at("1", e)) / 4.0;
        assert!(slope("Spark") < slope("Hadoop") * 0.7, "cache pays off");
        assert!(
            slope("DataMPI") < slope("Hadoop") * 0.7,
            "residency pays off"
        );
        // By iteration 5 both residency engines lead Hadoop decisively.
        assert!(at("5", "Spark") < at("5", "Hadoop") * 0.8);
        assert!(at("5", "DataMPI") < at("5", "Hadoop") * 0.8);
    }

    #[test]
    fn fig7_datampi_leads_every_performance_dimension() {
        let t = fig7().unwrap();
        for dim in [DIMENSIONS[0], DIMENSIONS[2]] {
            let d = parse(t.cell(dim, "DataMPI")).unwrap();
            assert!(
                (d - 1.0).abs() < 1e-9,
                "DataMPI should be the 1.00 reference on '{dim}', got {d}"
            );
        }
        // Small jobs: the paper says DataMPI and Spark are *similar* — both
        // far ahead of Hadoop.
        let d = parse(t.cell(DIMENSIONS[1], "DataMPI")).unwrap();
        let h = parse(t.cell(DIMENSIONS[1], "Hadoop")).unwrap();
        assert!(d > 0.9, "DataMPI near the lead on small jobs: {d}");
        assert!(h < 0.6, "Hadoop far behind on small jobs: {h}");
        // CPU & memory efficiency: Hadoop worst (paper §4.7).
        for dim in [DIMENSIONS[3], DIMENSIONS[6]] {
            let h = parse(t.cell(dim, "Hadoop")).unwrap();
            let d = parse(t.cell(dim, "DataMPI")).unwrap();
            assert!(h < d, "{dim}: hadoop {h} vs datampi {d}");
        }
    }
}
