//! `figures hotpath-bench` — the hot-path saturation experiment:
//! workload × backend × intra-rank O parallelism × sort kernel.
//!
//! Every grid cell runs the same deterministic inputs through the real
//! threaded runtime and reports end-to-end throughput plus the tracer's
//! per-phase totals (O compute, A-side sort, spill sealing). Two claims
//! from the PR are *asserted*, not just measured:
//!
//! * **byte identity** — within one (workload, backend, kernel) group,
//!   every parallelism level must produce partition outputs identical to
//!   the sequential run, because workers' captured emissions are replayed
//!   in chunk order through the task's single real buffer;
//! * **speedup** (smoke gate) — on a machine with at least 4 cores,
//!   WordCount at `with_o_parallelism(4)` must beat the sequential run by
//!   the configured factor. On smaller machines the gate degrades to a
//!   report, since worker threads cannot beat one core.
//!
//! Results land in `BENCH_hotpath.json` (schema in BENCHMARKS.md).

use std::fmt::Write as _;
use std::time::Instant;

use datampi::transport::Backend;
use datampi::{JobConfig, PhaseTotals};
use dmpi_common::compare::SortKernel;
use dmpi_common::Result;
use dmpi_workloads::ExecWorkload;

use crate::table::Table;

/// The parallelism levels every grid cell sweeps.
pub const PARALLELISMS: [usize; 4] = [1, 2, 4, 8];

/// One workload measured in one grid cell (backend × parallelism ×
/// sort kernel). `seconds` is the best of the configured trials.
#[derive(Clone, Debug)]
pub struct HotpathRun {
    /// Launcher-facing workload name.
    pub workload: &'static str,
    /// `"inproc"` or `"tcp"`.
    pub backend: &'static str,
    /// `JobConfig::with_o_parallelism` setting.
    pub parallelism: usize,
    /// `"std"` (comparison sort) or `"radix"` (MSD radix on key bytes).
    pub kernel: &'static str,
    /// Best wall time across trials.
    pub seconds: f64,
    /// Records emitted by O tasks.
    pub records: u64,
    /// Framed intermediate bytes shipped to A partitions.
    pub bytes_shuffled: u64,
    /// `records / seconds` for the best trial.
    pub records_per_sec: f64,
    /// Tracer-attributed phase totals (worker time summed, not
    /// wall-clock: see `JobStats::phase_us`).
    pub phase_us: PhaseTotals,
}

/// The full benchmark grid plus the headline speedup reading.
#[derive(Clone, Debug)]
pub struct HotpathBenchData {
    /// Ranks used for every run.
    pub ranks: usize,
    /// O tasks per job.
    pub tasks: usize,
    /// Input bytes generated per O task.
    pub bytes_per_task: usize,
    /// Trials per cell (best wall time is kept).
    pub trials: usize,
    /// CPU cores the host reports (governs the smoke gate).
    pub cores: usize,
    /// Grid rows, parallelism-ascending within each
    /// (workload, backend, kernel) group.
    pub runs: Vec<HotpathRun>,
    /// WordCount in-proc radix throughput at n=4 over n=1.
    pub wordcount_speedup_n4: f64,
}

fn backend_name(backend: Backend) -> &'static str {
    match backend {
        Backend::InProc => "inproc",
        Backend::Tcp => "tcp",
    }
}

#[allow(clippy::too_many_arguments)] // one grid cell = one point in the sweep
fn run_cell(
    workload: ExecWorkload,
    backend: Backend,
    kernel: SortKernel,
    parallelism: usize,
    ranks: usize,
    tasks: usize,
    bytes_per_task: usize,
    trials: usize,
) -> Result<(HotpathRun, Vec<dmpi_common::RecordBatch>)> {
    // Chunk well below the split size so the executor actually fans out
    // even at the bench's MB-scale inputs (the library default targets
    // real splits).
    let chunk = (bytes_per_task / 16).max(1024);
    let config = JobConfig::new(ranks)
        .with_transport(backend)
        .with_o_parallelism(parallelism)
        .with_o_chunk_bytes(chunk)
        .with_sort_kernel(kernel)
        .with_observer(datampi::Observer::new());
    let inputs = workload.inputs(tasks, bytes_per_task, 42);
    let mut best: Option<(f64, datampi::JobOutput)> = None;
    for _ in 0..trials.max(1) {
        let start = Instant::now();
        let out = workload.run_inproc(&config, inputs.clone())?;
        let seconds = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(s, _)| seconds < *s) {
            best = Some((seconds, out));
        }
    }
    let (seconds, out) = best.expect("at least one trial ran");
    Ok((
        HotpathRun {
            workload: workload.name(),
            backend: backend_name(backend),
            parallelism,
            kernel: kernel.name(),
            seconds,
            records: out.stats.records_emitted,
            bytes_shuffled: out.stats.bytes_emitted,
            records_per_sec: out.stats.records_emitted as f64 / seconds.max(1e-9),
            phase_us: out.stats.phase_us,
        },
        out.partitions,
    ))
}

/// Runs the full grid. Within each (workload, backend, kernel) group the
/// sequential run is the reference; any parallel run whose partition
/// outputs differ fails the whole benchmark.
pub fn hotpath_bench_data(
    ranks: usize,
    tasks: usize,
    bytes_per_task: usize,
    trials: usize,
) -> Result<HotpathBenchData> {
    let mut runs = Vec::new();
    for workload in [ExecWorkload::WordCount, ExecWorkload::TextSort] {
        for backend in [Backend::InProc, Backend::Tcp] {
            for kernel in [SortKernel::Comparison, SortKernel::Radix] {
                let mut baseline: Option<Vec<dmpi_common::RecordBatch>> = None;
                for &n in &PARALLELISMS {
                    let (run, parts) = run_cell(
                        workload,
                        backend,
                        kernel,
                        n,
                        ranks,
                        tasks,
                        bytes_per_task,
                        trials,
                    )?;
                    match &baseline {
                        None => baseline = Some(parts),
                        Some(base) => {
                            let same = base.len() == parts.len()
                                && base
                                    .iter()
                                    .zip(&parts)
                                    .all(|(p, q)| p.records() == q.records());
                            if !same {
                                return Err(dmpi_common::Error::InvalidState(format!(
                                    "{} ({}, {}): parallelism {} changed the job output",
                                    run.workload, run.backend, run.kernel, n
                                )));
                            }
                        }
                    }
                    runs.push(run);
                }
            }
        }
    }

    let throughput = |n: usize| {
        runs.iter()
            .find(|r| {
                r.workload == "wordcount"
                    && r.backend == "inproc"
                    && r.kernel == "radix"
                    && r.parallelism == n
            })
            .map(|r| r.records_per_sec)
            .unwrap_or(0.0)
    };
    let base = throughput(1);
    let wordcount_speedup_n4 = if base > 0.0 {
        throughput(4) / base
    } else {
        0.0
    };

    Ok(HotpathBenchData {
        ranks,
        tasks,
        bytes_per_task,
        trials,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        runs,
        wordcount_speedup_n4,
    })
}

/// The speedup threshold the CI smoke gate enforces (and the one the
/// artifact's `gate_status` field is computed against).
pub const GATE_MIN_SPEEDUP: f64 = 1.3;

/// The CI smoke gate: n=4 WordCount must reach `min_speedup` × the
/// sequential throughput — enforced only when the host has at least
/// 4 cores, because worker threads cannot beat one core.
pub fn speedup_gate(data: &HotpathBenchData, min_speedup: f64) -> Result<String> {
    gate_message(data.cores, data.wordcount_speedup_n4, min_speedup)
}

/// Machine-readable verdict recorded in the artifact: on a <4-core host
/// the gate cannot be meaningful, so the artifact says
/// `"skipped_core_gated"` (with the measured ratio alongside) instead of
/// posing as a pass.
pub fn gate_status(cores: usize, speedup: f64, min_speedup: f64) -> &'static str {
    if cores < 4 {
        "skipped_core_gated"
    } else if speedup < min_speedup {
        "fail"
    } else {
        "pass"
    }
}

fn gate_message(cores: usize, speedup: f64, min_speedup: f64) -> Result<String> {
    if cores < 4 {
        return Ok(format!(
            "speedup gate: skipped ({cores} core(s) available; \
             measured {speedup:.2}x, threshold {min_speedup:.2}x needs >= 4 cores)"
        ));
    }
    if speedup < min_speedup {
        return Err(dmpi_common::Error::InvalidState(format!(
            "speedup gate: WordCount n=4 reached only {speedup:.2}x over n=1 \
             (threshold {min_speedup:.2}x on {cores} cores)"
        )));
    }
    Ok(format!(
        "speedup gate: ok ({speedup:.2}x >= {min_speedup:.2}x on {cores} cores)"
    ))
}

/// Renders the report table.
pub fn render_table(data: &HotpathBenchData) -> Table {
    let mut table = Table::new(
        "hotpath-bench",
        format!(
            "Hot path: {} ranks, {} O tasks, {} B/task, best of {} trial(s) on {} core(s); \
             WordCount n=4 speedup {:.2}x",
            data.ranks,
            data.tasks,
            data.bytes_per_task,
            data.trials,
            data.cores,
            data.wordcount_speedup_n4
        ),
        &[
            "Workload", "Backend", "Par", "Kernel", "Seconds", "kRec/s", "O ms", "Sort ms",
            "Spill ms",
        ],
    );
    for run in &data.runs {
        table.push_row(vec![
            run.workload.to_string(),
            run.backend.to_string(),
            run.parallelism.to_string(),
            run.kernel.to_string(),
            format!("{:.4}", run.seconds),
            format!("{:.1}", run.records_per_sec / 1000.0),
            format!("{:.2}", run.phase_us.o_task_us as f64 / 1000.0),
            format!("{:.2}", run.phase_us.sort_us as f64 / 1000.0),
            format!("{:.2}", run.phase_us.spill_us as f64 / 1000.0),
        ]);
    }
    table
}

/// Renders the `BENCH_hotpath.json` artifact (schema: BENCHMARKS.md).
pub fn render_artifact_json(data: &HotpathBenchData) -> String {
    let mut out = String::from("{\n  \"experiment\": \"hotpath-bench\",\n");
    let _ = writeln!(
        out,
        "  \"ranks\": {}, \"tasks\": {}, \"bytes_per_task\": {}, \"trials\": {}, \"cores\": {},",
        data.ranks, data.tasks, data.bytes_per_task, data.trials, data.cores
    );
    let _ = writeln!(
        out,
        "  \"wordcount_speedup_n4\": {:.4},",
        data.wordcount_speedup_n4
    );
    let _ = writeln!(
        out,
        "  \"gate_status\": \"{}\", \"gate_min_speedup\": {:.2},",
        gate_status(data.cores, data.wordcount_speedup_n4, GATE_MIN_SPEEDUP),
        GATE_MIN_SPEEDUP
    );
    out.push_str("  \"runs\": [\n");
    for (i, run) in data.runs.iter().enumerate() {
        let p = &run.phase_us;
        let _ = writeln!(
            out,
            "    {{\"workload\": \"{}\", \"backend\": \"{}\", \"parallelism\": {}, \
             \"kernel\": \"{}\", \"seconds\": {:.4}, \"records\": {}, \
             \"bytes_shuffled\": {}, \"records_per_sec\": {:.1}, \
             \"o_task_us\": {}, \"send_us\": {}, \"recv_us\": {}, \
             \"sort_us\": {}, \"spill_us\": {}, \"a_compute_us\": {}}}{}",
            run.workload,
            run.backend,
            run.parallelism,
            run.kernel,
            run.seconds,
            run.records,
            run.bytes_shuffled,
            run.records_per_sec,
            p.o_task_us,
            p.send_us,
            p.recv_us,
            p.sort_us,
            p.spill_us,
            p.a_compute_us,
            if i + 1 < data.runs.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_cell_and_parallelism_preserves_output() {
        let data = hotpath_bench_data(2, 3, 1500, 1).unwrap();
        // 2 workloads x 2 backends x 2 kernels x 4 parallelism levels.
        assert_eq!(data.runs.len(), 32);
        // Within each group, the counters must match the sequential run
        // exactly (partition identity is asserted inside the grid).
        for group in data.runs.chunks(PARALLELISMS.len()) {
            let base = &group[0];
            assert_eq!(base.parallelism, 1);
            assert!(base.records > 0);
            for run in group {
                assert_eq!(run.records, base.records);
                assert_eq!(run.bytes_shuffled, base.bytes_shuffled);
            }
        }
        // Both kernels of one (workload, backend) agree on the counters.
        let std_wc = &data.runs[0];
        let radix_wc = &data.runs[PARALLELISMS.len()];
        assert_eq!(std_wc.kernel, "std");
        assert_eq!(radix_wc.kernel, "radix");
        assert_eq!(std_wc.records, radix_wc.records);
        assert!(data.wordcount_speedup_n4 > 0.0);
    }

    #[test]
    fn artifact_json_is_complete() {
        let data = hotpath_bench_data(2, 2, 800, 1).unwrap();
        let json = render_artifact_json(&data);
        assert!(json.contains("\"experiment\": \"hotpath-bench\""));
        assert!(json.contains("\"wordcount_speedup_n4\""));
        assert!(json.contains("\"gate_status\""));
        assert!(json.contains("\"gate_min_speedup\": 1.30"));
        assert!(json.contains("\"kernel\": \"radix\""));
        assert!(json.contains("\"parallelism\": 8"));
        assert!(json.contains("\"spill_us\""));
        assert!(render_table(&data).render_text().contains("wordcount"));
    }

    #[test]
    fn gate_enforces_only_with_enough_cores() {
        assert!(gate_message(1, 0.9, 1.3).is_ok());
        assert!(gate_message(2, 0.9, 1.3).is_ok());
        assert!(gate_message(4, 1.5, 1.3).unwrap().contains("ok"));
        assert!(gate_message(4, 1.1, 1.3).is_err());
        assert!(gate_message(8, 1.31, 1.3).is_ok());
    }

    #[test]
    fn gate_status_reports_core_gated_skips_honestly() {
        assert_eq!(gate_status(1, 0.8, 1.3), "skipped_core_gated");
        assert_eq!(gate_status(3, 2.0, 1.3), "skipped_core_gated");
        assert_eq!(gate_status(4, 1.5, 1.3), "pass");
        assert_eq!(gate_status(4, 1.1, 1.3), "fail");
        assert_eq!(gate_status(8, 1.3, 1.3), "pass");
    }
}
