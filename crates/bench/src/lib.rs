//! `dmpi-bench` — the harness regenerating every table and figure of the
//! paper's evaluation (§4).
//!
//! | Item | Function | Paper content |
//! |------|----------|---------------|
//! | Table 1 | [`figures::table1`] | chosen workloads |
//! | Table 2 | [`figures::table2`] | hardware configuration |
//! | Fig 2(a) | [`figures::fig2a`] | DFSIO block-size tuning |
//! | Fig 2(b) | [`figures::fig2b`] | tasks/workers-per-node tuning |
//! | Fig 3(a-d) | [`figures::fig3a`]-[`figures::fig3d`] | micro-benchmark execution times |
//! | Fig 4(a-h) | [`figures::fig4_averages`], [`figures::fig4_series`] | resource-utilization time series |
//! | Fig 5 | [`figures::fig5`] | small-job performance |
//! | Fig 6(a-b) | [`figures::fig6a`], [`figures::fig6b`] | application benchmarks |
//! | Fig 7 | [`figures::fig7`] | seven-pronged summary |
//!
//! Absolute numbers come from the calibrated simulation
//! (`dmpi_workloads::run_sim`); the *shape* claims of the paper (who wins,
//! by what factor, where Spark OOMs, where curves peak) are asserted by
//! this crate's tests. `cargo run -p dmpi-bench --bin figures -- all`
//! prints everything and can regenerate `EXPERIMENTS.md`.

pub mod experiments;
pub mod figures;
pub mod hotpath_bench;
pub mod observe_bench;
pub mod pipeline_bench;
pub mod profile_real;
pub mod recovery;
pub mod service_bench;
pub mod spillfmt_bench;
pub mod straggler_bench;
pub mod table;
pub mod transport_bench;

pub use table::Table;
