//! `figures observe-bench` — what the telemetry plane costs.
//!
//! Runs the same in-process wordcount job twice per trial — once bare,
//! once under an [`Observer`] with every PR-7 instrument live (span
//! tracing, wire-path latency histograms, counter registry) — and
//! compares min-of-trials wall-clock. Two things are asserted, not just
//! reported:
//!
//! * **Overhead gate** — the observed run must finish within
//!   `max_ratio` (1.05× in CI) of the bare run ([`overhead_gate`]).
//!   Min-of-trials on both sides keeps scheduler noise out of the
//!   ratio.
//! * **Byte identity** — observation must never perturb the job:
//!   every partition of the observed run is compared record-by-record
//!   against the bare run inside [`observe_bench_data`].
//!
//! The artifact also proves the instruments actually fired (span and
//! histogram-sample counts), so a regression that silently disables
//! telemetry fails the bench rather than "winning" the gate.
//!
//! Results land in `BENCH_observe.json` (schema in BENCHMARKS.md).

use std::fmt::Write as _;
use std::time::Instant;

use bytes::Bytes;
use datampi::observe::{HistKind, Observer};
use datampi::task::{Collector, GroupedValues};
use datampi::{run_job, JobConfig, JobOutput};
use dmpi_common::ser::Writable;
use dmpi_common::{Error, Result};

use crate::table::Table;

/// The measured pair plus proof the instruments were live.
#[derive(Clone, Debug)]
pub struct ObserveBenchData {
    /// Mesh width of each job.
    pub ranks: usize,
    /// O tasks per job.
    pub tasks: usize,
    /// Approximate bytes per input split.
    pub split_bytes: usize,
    /// Timed repetitions per side (min is reported).
    pub trials: usize,
    /// Input seed.
    pub seed: u64,
    /// Min-of-trials wall-clock without an observer.
    pub bare_millis: f64,
    /// Min-of-trials wall-clock with the full telemetry plane on.
    pub observed_millis: f64,
    /// `observed_millis / bare_millis`.
    pub overhead_ratio: f64,
    /// Observed output byte-identical to the bare output — always true
    /// (the bench errors out otherwise); recorded for the artifact.
    pub identical: bool,
    /// Trace events the observed run produced.
    pub trace_events: usize,
    /// Samples across all wire-path latency histograms.
    pub histogram_samples: u64,
    /// Records counted by the observed run's registry.
    pub records_out: u64,
}

fn wc_o(_task: usize, split: &[u8], out: &mut dyn Collector) {
    for w in split.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
        out.collect(w, &1u64.to_bytes());
    }
}

fn wc_a(g: &GroupedValues, out: &mut dyn Collector) {
    let total: u64 = g.values.iter().map(|v| u64::from_bytes(v).unwrap()).sum();
    out.collect(&g.key, &total.to_bytes());
}

fn bench_inputs(tasks: usize, split_bytes: usize, seed: u64) -> Vec<Bytes> {
    (0..tasks)
        .map(|t| {
            let mut s = String::with_capacity(split_bytes + 16);
            let mut j = 0usize;
            while s.len() < split_bytes {
                let _ = write!(s, "w{} shared ", (seed as usize + t * 7 + j) % 251);
                j += 1;
            }
            Bytes::from(s)
        })
        .collect()
}

fn assert_identical(bare: &JobOutput, observed: &JobOutput) -> Result<()> {
    if bare.partitions.len() != observed.partitions.len() {
        return Err(Error::InvalidState(format!(
            "observe-bench: {} observed partitions vs {} bare",
            observed.partitions.len(),
            bare.partitions.len()
        )));
    }
    for (p, (a, b)) in bare.partitions.iter().zip(&observed.partitions).enumerate() {
        if a.records() != b.records() {
            return Err(Error::InvalidState(format!(
                "observe-bench: partition {p} differs under observation — \
                 telemetry must never perturb the job"
            )));
        }
    }
    Ok(())
}

/// Runs the bare/observed pair, `trials` times each, asserting byte
/// identity and that the instruments fired.
pub fn observe_bench_data(
    ranks: usize,
    tasks: usize,
    split_bytes: usize,
    trials: usize,
    seed: u64,
) -> Result<ObserveBenchData> {
    if trials == 0 {
        return Err(Error::InvalidState("observe-bench needs >= 1 trial".into()));
    }
    let inputs = || bench_inputs(tasks, split_bytes, seed);
    let bare_cfg = JobConfig::new(ranks);

    let mut bare_millis = f64::INFINITY;
    let mut bare_out = None;
    for _ in 0..trials {
        let start = Instant::now();
        let out = run_job(&bare_cfg, inputs(), wc_o, wc_a, None)?;
        bare_millis = bare_millis.min(start.elapsed().as_secs_f64() * 1e3);
        bare_out = Some(out);
    }
    let bare_out = bare_out.expect("trials >= 1");

    let mut observed_millis = f64::INFINITY;
    let mut observed = None;
    for _ in 0..trials {
        // A fresh observer per trial: each run pays the full cost of
        // span collection, histogram recording and counter updates.
        let obs = Observer::new();
        let cfg = JobConfig::new(ranks).with_observer(obs.clone());
        let start = Instant::now();
        let out = run_job(&cfg, inputs(), wc_o, wc_a, None)?;
        observed_millis = observed_millis.min(start.elapsed().as_secs_f64() * 1e3);
        observed = Some((out, obs));
    }
    let (observed_out, obs) = observed.expect("trials >= 1");
    assert_identical(&bare_out, &observed_out)?;

    let trace_events = obs.trace().len();
    let registry = obs.registry();
    let histogram_samples: u64 = HistKind::ALL
        .iter()
        .map(|k| registry.histograms().handle(*k).count())
        .sum();
    if trace_events == 0 || histogram_samples == 0 {
        return Err(Error::InvalidState(format!(
            "observe-bench: instruments were not live \
             ({trace_events} trace events, {histogram_samples} histogram samples) — \
             a 1.0x \"overhead\" against dead telemetry proves nothing"
        )));
    }
    let snapshot = registry.snapshot();

    Ok(ObserveBenchData {
        ranks,
        tasks,
        split_bytes,
        trials,
        seed,
        bare_millis,
        observed_millis,
        overhead_ratio: observed_millis / bare_millis.max(1e-9),
        identical: true, // asserted above
        trace_events,
        histogram_samples,
        records_out: snapshot.records_out,
    })
}

/// The PR's acceptance gate: the observed run must finish within
/// `max_ratio` (1.05× in CI) of the bare run.
pub fn overhead_gate(data: &ObserveBenchData, max_ratio: f64) -> Result<String> {
    if data.overhead_ratio > max_ratio {
        return Err(Error::InvalidState(format!(
            "observe gate: telemetry costs {:.3}x wall-clock (threshold {:.2}x; \
             bare {:.1}ms, observed {:.1}ms)",
            data.overhead_ratio, max_ratio, data.bare_millis, data.observed_millis
        )));
    }
    Ok(format!(
        "observe gate: ok (telemetry = {:.3}x wall-clock, threshold {:.2}x, \
         {} events / {} histogram samples live)",
        data.overhead_ratio, max_ratio, data.trace_events, data.histogram_samples
    ))
}

/// Renders the report table.
pub fn render_table(data: &ObserveBenchData) -> Table {
    let mut table = Table::new(
        "observe-bench",
        format!(
            "Telemetry overhead: {} ranks, {} O tasks x {} B splits, \
             min of {} trials, seed {}",
            data.ranks, data.tasks, data.split_bytes, data.trials, data.seed
        ),
        &[
            "Telemetry",
            "Millis",
            "Ratio",
            "Identical",
            "Events",
            "HistSamples",
            "Records",
        ],
    );
    table.push_row(vec![
        "off".into(),
        format!("{:.2}", data.bare_millis),
        "1.000".into(),
        "-".into(),
        "0".into(),
        "0".into(),
        "-".into(),
    ]);
    table.push_row(vec![
        "on".into(),
        format!("{:.2}", data.observed_millis),
        format!("{:.3}", data.overhead_ratio),
        data.identical.to_string(),
        data.trace_events.to_string(),
        data.histogram_samples.to_string(),
        data.records_out.to_string(),
    ]);
    table
}

/// Renders the `BENCH_observe.json` artifact (schema: BENCHMARKS.md).
pub fn render_artifact_json(data: &ObserveBenchData) -> String {
    let mut out = String::from("{\n  \"experiment\": \"observe-bench\",\n");
    let _ = writeln!(
        out,
        "  \"ranks\": {}, \"tasks\": {}, \"split_bytes\": {}, \"trials\": {}, \"seed\": {},",
        data.ranks, data.tasks, data.split_bytes, data.trials, data.seed
    );
    let _ = writeln!(
        out,
        "  \"bare_millis\": {:.3}, \"observed_millis\": {:.3}, \"overhead_ratio\": {:.4},",
        data.bare_millis, data.observed_millis, data.overhead_ratio
    );
    let _ = writeln!(
        out,
        "  \"identical\": {}, \"trace_events\": {}, \"histogram_samples\": {}, \
         \"records_out\": {}",
        data.identical, data.trace_events, data.histogram_samples, data.records_out
    );
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_is_identical_and_instruments_fire() {
        let data = observe_bench_data(3, 6, 2048, 2, 42).unwrap();
        assert!(data.identical);
        assert!(data.trace_events > 0);
        assert!(data.histogram_samples > 0);
        assert!(data.records_out > 0);
        assert!(data.bare_millis > 0.0 && data.observed_millis > 0.0);
    }

    #[test]
    fn artifact_json_is_complete() {
        let data = observe_bench_data(3, 4, 1024, 1, 7).unwrap();
        let json = render_artifact_json(&data);
        assert!(json.contains("\"experiment\": \"observe-bench\""));
        assert!(json.contains("\"overhead_ratio\""));
        assert!(json.contains("\"identical\": true"));
        assert!(json.contains("\"histogram_samples\""));
        assert!(render_table(&data).render_text().contains("observe-bench"));
    }

    #[test]
    fn gate_rejects_heavy_telemetry() {
        let mut data = observe_bench_data(3, 4, 1024, 1, 7).unwrap();
        data.overhead_ratio = 1.5; // pretend telemetry cost 50%
        assert!(overhead_gate(&data, 1.05).is_err());
        data.overhead_ratio = 1.01;
        assert!(overhead_gate(&data, 1.05).unwrap().contains("ok"));
    }
}
