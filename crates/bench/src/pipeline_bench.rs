//! `figures pipeline-bench` — the streaming-pipeline experiment:
//! O-side combiner on/off × sorted/hashed grouping × in-proc/TCP, plus a
//! spill-pressure probe of the A-side external merge.
//!
//! The combiner grid *runs* each associative workload (WordCount, Grep)
//! twice per cell on identical inputs — once shipping every emitted pair
//! and once folding per-destination buffers through the workload's
//! declared combiner first — and verifies the outputs agree before
//! reporting how many shuffle/wire bytes the fold saved. The spill probe
//! runs the TextSort job under a deliberately tiny A-side memory budget
//! and reports the peak number of records ever resident in one forming
//! run: far below the record total, because grouping is a k-way external
//! merge over sealed runs, not a re-materialization. Both halves land in
//! `BENCH_pipeline.json`.

use std::fmt::Write as _;
use std::time::Instant;

use datampi::observe::Observer;
use datampi::transport::Backend;
use datampi::JobConfig;
use dmpi_common::Result;
use dmpi_workloads::ExecWorkload;

use crate::table::Table;

/// One workload measured in one grid cell (backend × grouping ×
/// combiner setting).
#[derive(Clone, Debug)]
pub struct PipelineRun {
    /// Launcher-facing workload name.
    pub workload: &'static str,
    /// `"inproc"` or `"tcp"`.
    pub backend: &'static str,
    /// `"sorted"` (MapReduce mode) or `"hashed"` (Common mode).
    pub grouping: &'static str,
    /// Whether the workload's combiner was installed.
    pub combiner: bool,
    /// Wall time of the whole job.
    pub seconds: f64,
    /// Records emitted by O tasks (pre-combiner, equal across settings).
    pub records: u64,
    /// Framed intermediate bytes shipped to A partitions
    /// (post-combiner when one is installed).
    pub bytes_shuffled: u64,
    /// Encoded bytes written to sockets (0 for in-proc).
    pub wire_bytes: u64,
    /// Records fed into the combiner (0 when off).
    pub combiner_records_in: u64,
    /// Records the combiner shipped after folding (0 when off).
    pub combiner_records_out: u64,
}

/// The spill-pressure probe: one sort job under a tiny A-side budget.
#[derive(Clone, Debug)]
pub struct SpillProbe {
    /// A-side memory budget per partition, bytes.
    pub memory_budget: usize,
    /// Records emitted (= records ingested across A partitions).
    pub records: u64,
    /// Spill events (sealed sorted runs) across partitions.
    pub spills: u64,
    /// Bytes written by spills.
    pub spilled_bytes: u64,
    /// Largest number of records any forming run ever held — the
    /// streaming-merge evidence (`peak << records`).
    pub peak_resident_records: u64,
}

/// The full benchmark: the combiner grid plus the spill probe.
#[derive(Clone, Debug)]
pub struct PipelineBenchData {
    /// Ranks used for every run.
    pub ranks: usize,
    /// O tasks per job.
    pub tasks: usize,
    /// Input bytes generated per O task.
    pub bytes_per_task: usize,
    /// Combiner grid rows, combiner-off before combiner-on per cell.
    pub runs: Vec<PipelineRun>,
    /// The spill-pressure probe.
    pub spill: SpillProbe,
}

fn backend_name(backend: Backend) -> &'static str {
    match backend {
        Backend::InProc => "inproc",
        Backend::Tcp => "tcp",
    }
}

fn run_once(
    workload: ExecWorkload,
    backend: Backend,
    sorted: bool,
    combine: bool,
    ranks: usize,
    tasks: usize,
    bytes_per_task: usize,
) -> Result<(PipelineRun, Vec<dmpi_common::RecordBatch>)> {
    let inputs = workload.inputs(tasks, bytes_per_task, 42);
    let observer = Observer::new();
    let mut config = JobConfig::new(ranks)
        .with_transport(backend)
        .with_sorted_grouping(sorted)
        .with_observer(observer.clone());
    if combine {
        let combiner = workload
            .combiner()
            .expect("grid only includes combiner-capable workloads");
        config = config.with_combiner(combiner);
    }
    let start = Instant::now();
    let out = workload.run_raw(&config, inputs)?;
    let seconds = start.elapsed().as_secs_f64();
    let snapshot = observer.registry().snapshot();
    Ok((
        PipelineRun {
            workload: workload.name(),
            backend: backend_name(backend),
            grouping: if sorted { "sorted" } else { "hashed" },
            combiner: combine,
            seconds,
            records: out.stats.records_emitted,
            bytes_shuffled: out.stats.bytes_emitted,
            wire_bytes: snapshot.wire_bytes_sent,
            combiner_records_in: out.stats.combiner_records_in,
            combiner_records_out: out.stats.combiner_records_out,
        },
        out.partitions,
    ))
}

/// Canonicalizes one partition's output for comparison: in hashed mode
/// group order is first-appearance (combiner windows legitimately change
/// it), so compare as key-sorted record multisets; in sorted mode the
/// runtime already guarantees byte-identical order and sorting is a
/// no-op on an already-sorted batch.
fn canonical(partitions: Vec<dmpi_common::RecordBatch>) -> Vec<Vec<dmpi_common::Record>> {
    use dmpi_common::compare::{sort_records, BytesComparator};
    partitions
        .into_iter()
        .map(|p| {
            let mut records = p.into_records();
            sort_records(&mut records, &BytesComparator);
            records
        })
        .collect()
}

/// Runs the combiner grid and the spill probe.
///
/// Two invariants are asserted per grid cell, mirroring the PR's
/// correctness bar:
///
/// * combiner-on and combiner-off produce equal outputs (byte-identical
///   in sorted mode, canonically equal in hashed mode);
/// * combiner-on never ships more shuffle bytes than combiner-off.
pub fn pipeline_bench_data(
    ranks: usize,
    tasks: usize,
    bytes_per_task: usize,
) -> Result<PipelineBenchData> {
    let mut runs = Vec::new();
    for workload in [ExecWorkload::WordCount, ExecWorkload::Grep] {
        for backend in [Backend::InProc, Backend::Tcp] {
            for sorted in [true, false] {
                let (off, out_off) = run_once(
                    workload,
                    backend,
                    sorted,
                    false,
                    ranks,
                    tasks,
                    bytes_per_task,
                )?;
                let (on, out_on) = run_once(
                    workload,
                    backend,
                    sorted,
                    true,
                    ranks,
                    tasks,
                    bytes_per_task,
                )?;
                if canonical(out_off) != canonical(out_on) {
                    return Err(dmpi_common::Error::InvalidState(format!(
                        "{} ({}, {}): combiner changed the job output",
                        workload.name(),
                        off.backend,
                        off.grouping
                    )));
                }
                if on.bytes_shuffled > off.bytes_shuffled {
                    return Err(dmpi_common::Error::InvalidState(format!(
                        "{} ({}, {}): combiner shipped more bytes ({} > {})",
                        workload.name(),
                        off.backend,
                        off.grouping,
                        on.bytes_shuffled,
                        off.bytes_shuffled
                    )));
                }
                runs.push(off);
                runs.push(on);
            }
        }
    }

    // Spill probe: sort under a budget small enough that every partition
    // seals many runs, so the peak-resident reading is meaningful. Sort
    // emits (line, line), so per-partition intermediate bytes are about
    // 2x input / ranks; a budget of 1/16th of that forces 10+ runs.
    let budget = (tasks * bytes_per_task * 2 / ranks / 16).max(256);
    let workload = ExecWorkload::TextSort;
    let config = JobConfig::new(ranks).with_memory_budget(budget);
    let out = workload.run_inproc(&config, workload.inputs(tasks, bytes_per_task, 42))?;
    let spill = SpillProbe {
        memory_budget: budget,
        records: out.stats.records_emitted,
        spills: out.stats.spills,
        spilled_bytes: out.stats.spilled_bytes,
        peak_resident_records: out.stats.peak_resident_records,
    };

    Ok(PipelineBenchData {
        ranks,
        tasks,
        bytes_per_task,
        runs,
        spill,
    })
}

/// Renders the report table.
pub fn render_table(data: &PipelineBenchData) -> Table {
    render_table_named(data, "pipeline-bench")
}

/// The EXPERIMENTS.md entry: the same grid at a size cheap enough for
/// `figures all` to regenerate alongside every paper figure.
pub fn fig_ext_pipeline() -> Result<Table> {
    let data = pipeline_bench_data(2, 6, 8 * 1024)?;
    Ok(render_table_named(&data, "fig-ext-pipeline"))
}

fn render_table_named(data: &PipelineBenchData, name: &str) -> Table {
    let mut table = Table::new(
        name,
        format!(
            "Streaming pipeline: {} ranks, {} O tasks, {} B/task; spill probe budget {} B \
             (peak resident {} of {} records, {} spills)",
            data.ranks,
            data.tasks,
            data.bytes_per_task,
            data.spill.memory_budget,
            data.spill.peak_resident_records,
            data.spill.records,
            data.spill.spills
        ),
        &[
            "Workload",
            "Backend",
            "Grouping",
            "Combiner",
            "Seconds",
            "Shuffle KB",
            "Wire KB",
            "Comb in/out",
        ],
    );
    for run in &data.runs {
        table.push_row(vec![
            run.workload.to_string(),
            run.backend.to_string(),
            run.grouping.to_string(),
            if run.combiner { "on" } else { "off" }.to_string(),
            format!("{:.4}", run.seconds),
            format!("{:.1}", run.bytes_shuffled as f64 / 1024.0),
            format!("{:.1}", run.wire_bytes as f64 / 1024.0),
            if run.combiner {
                format!("{}/{}", run.combiner_records_in, run.combiner_records_out)
            } else {
                "-".to_string()
            },
        ]);
    }
    table
}

/// Renders the `BENCH_pipeline.json` artifact.
pub fn render_artifact_json(data: &PipelineBenchData) -> String {
    let mut out = String::from("{\n  \"experiment\": \"pipeline-bench\",\n");
    let _ = writeln!(
        out,
        "  \"ranks\": {}, \"tasks\": {}, \"bytes_per_task\": {},",
        data.ranks, data.tasks, data.bytes_per_task
    );
    out.push_str("  \"runs\": [\n");
    for (i, run) in data.runs.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"workload\": \"{}\", \"backend\": \"{}\", \"grouping\": \"{}\", \
             \"combiner\": {}, \"seconds\": {:.4}, \"records\": {}, \
             \"bytes_shuffled\": {}, \"wire_bytes\": {}, \
             \"combiner_records_in\": {}, \"combiner_records_out\": {}}}{}",
            run.workload,
            run.backend,
            run.grouping,
            run.combiner,
            run.seconds,
            run.records,
            run.bytes_shuffled,
            run.wire_bytes,
            run.combiner_records_in,
            run.combiner_records_out,
            if i + 1 < data.runs.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    let s = &data.spill;
    let _ = writeln!(
        out,
        "  \"spill_probe\": {{\"workload\": \"sort\", \"memory_budget\": {}, \
         \"records\": {}, \"spills\": {}, \"spilled_bytes\": {}, \
         \"peak_resident_records\": {}}}",
        s.memory_budget, s.records, s.spills, s.spilled_bytes, s.peak_resident_records
    );
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_cell_and_combiner_saves_bytes() {
        let data = pipeline_bench_data(2, 4, 1200).unwrap();
        // 2 workloads x 2 backends x 2 groupings x off/on.
        assert_eq!(data.runs.len(), 16);
        for pair in data.runs.chunks(2) {
            let (off, on) = (&pair[0], &pair[1]);
            assert!(!off.combiner);
            assert!(on.combiner);
            assert_eq!(off.records, on.records, "user emits are pre-combine");
            assert!(on.bytes_shuffled <= off.bytes_shuffled);
            assert!(on.combiner_records_out <= on.combiner_records_in);
            assert_eq!(off.combiner_records_in, 0);
        }
        // WordCount folds a small dictionary: the saving must be strict.
        let wc_sorted_inproc: Vec<_> = data
            .runs
            .iter()
            .filter(|r| {
                r.workload == "wordcount" && r.backend == "inproc" && r.grouping == "sorted"
            })
            .collect();
        assert!(wc_sorted_inproc[1].bytes_shuffled < wc_sorted_inproc[0].bytes_shuffled);
        // TCP rows really used sockets.
        assert!(data.runs.iter().any(|r| r.wire_bytes > 0));
        // The spill probe exercised the external merge.
        assert!(data.spill.spills > 0);
        assert!(data.spill.peak_resident_records < data.spill.records);
    }

    #[test]
    fn artifact_json_is_complete() {
        let data = pipeline_bench_data(2, 3, 600).unwrap();
        let json = render_artifact_json(&data);
        assert!(json.contains("\"experiment\": \"pipeline-bench\""));
        assert!(json.contains("\"combiner\": true"));
        assert!(json.contains("\"spill_probe\""));
        assert!(json.contains("\"peak_resident_records\""));
        assert!(render_table(&data).render_text().contains("wordcount"));
    }
}
