//! Sim-vs-real profile comparison — observability as a calibration check.
//!
//! The simulator predicts Figure-4-style resource curves; the `observe`
//! layer now measures the same curves on *real* runs. This module runs a
//! small WordCount for real under the sampling profiler, runs the
//! simulator's small-job WordCount, and diffs the two
//! [`ResourceProfile`]s per resource. The absolute scales differ wildly
//! (MB on one thread-per-rank process vs. GB on an 8-node cluster), so
//! the comparison is over *shape*: both series are resampled onto a
//! normalized time axis, peak-normalized, and diffed — the same way the
//! paper's Figure 4 argument is about where curves peak and plateau, not
//! absolute MB/s.

use std::fmt::Write as _;
use std::time::Duration;

use bytes::Bytes;

use datampi::observe::{Observer, ProfileSource, Profiler, Trace};
use datampi::{run_job, Collector, GroupedValues, JobConfig, JobStats};
use dmpi_common::ser::Writable;
use dmpi_common::units::MB;
use dmpi_common::{Error, Result};
use dmpi_dcsim::metrics::ResourceProfile;
use dmpi_workloads::{run_sim, Engine, Outcome, Workload};

use crate::table::Table;

/// Everything observed from one real profiled run.
pub struct RealRunProfile {
    /// Bucketed CPU/memory/net/disk time series from the sampling profiler.
    pub profile: ResourceProfile,
    /// End-of-job counters (includes per-phase wall-time totals).
    pub stats: JobStats,
    /// The merged span log.
    pub trace: Trace,
    /// Wall-clock job time in seconds.
    pub seconds: f64,
    /// Where the CPU/RSS series came from. When `/proc` is unreadable
    /// the profiler degrades to [`ProfileSource::Unavailable`] and those
    /// series are zeros, not measurements — the artifact labels them so
    /// downstream diffs can skip instead of "comparing" against zero.
    pub source: ProfileSource,
}

/// Deterministic word soup: `words` words drawn from a small vocabulary
/// with an LCG, split into `splits` inputs. Zipf-free but repetitive
/// enough that A-side grouping has real work to do.
pub fn wordcount_inputs(splits: usize, words: usize) -> Vec<Bytes> {
    let vocab: Vec<String> = (0..256).map(|i| format!("word{i:03}")).collect();
    let mut state = 0x2545f491_4f6cdd1du64;
    let mut out = Vec::with_capacity(splits);
    let per_split = words / splits.max(1);
    for _ in 0..splits {
        let mut text = String::with_capacity(per_split * 8);
        for i in 0..per_split {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let w = &vocab[(state >> 33) as usize % vocab.len()];
            text.push_str(w);
            text.push(if i % 12 == 11 { '\n' } else { ' ' });
        }
        out.push(Bytes::from(text));
    }
    out
}

fn wc_o(_task: usize, split: &[u8], out: &mut dyn Collector) {
    for line in split.split(|&b| b == b'\n') {
        for word in line.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
            out.collect(word, &1u64.to_bytes());
        }
    }
}

fn wc_a(group: &GroupedValues, out: &mut dyn Collector) {
    let total: u64 = group
        .values
        .iter()
        .map(|v| u64::from_bytes(v).unwrap_or(0))
        .sum();
    out.collect(&group.key, &total.to_bytes());
}

/// Runs a real WordCount over `ranks` rank threads with tracing and the
/// sampling profiler enabled, on roughly `total_words` words of input.
pub fn run_real_wordcount(ranks: usize, total_words: usize) -> Result<RealRunProfile> {
    let observer = Observer::new();
    // A small flush threshold keeps frames flowing throughout the run, so
    // the sampled network series has an actual shape, not one spike.
    let config = JobConfig::new(ranks)
        .with_flush_threshold(16 * 1024)
        .with_observer(observer.clone());
    let inputs = wordcount_inputs(ranks * 8, total_words);
    let profiler = Profiler::spawn(observer.clone(), Duration::from_millis(2), 0.010, ranks);
    let t0 = std::time::Instant::now();
    let out = run_job(&config, inputs, wc_o, wc_a, None);
    let seconds = t0.elapsed().as_secs_f64();
    let (profile, source) = profiler.stop_with_source();
    let out = out?;
    Ok(RealRunProfile {
        profile,
        stats: out.stats,
        trace: observer.trace(),
        seconds,
        source,
    })
}

/// Per-resource comparison of a real and a simulated series.
#[derive(Clone, Debug)]
pub struct ResourceError {
    /// Resource name (`cpu`, `mem`, `net`, `disk_write`).
    pub resource: &'static str,
    /// Whole-run mean of the real series, in its native unit.
    pub real_mean: f64,
    /// Whole-run mean of the simulated series, in its native unit.
    pub sim_mean: f64,
    /// Mean absolute difference of the peak-normalized, time-normalized
    /// curves, in percent of peak (0 = identical shape, 100 = maximally
    /// different).
    pub shape_error_pct: f64,
}

/// Averages `series` down (or interpolates up) to exactly `n` buckets.
fn resample(series: &[f64], n: usize) -> Vec<f64> {
    if series.is_empty() || n == 0 {
        return vec![0.0; n];
    }
    let m = series.len() as f64;
    (0..n)
        .map(|i| {
            let lo = (i as f64 / n as f64 * m) as usize;
            let hi = (((i + 1) as f64 / n as f64 * m).ceil() as usize).clamp(lo + 1, series.len());
            series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

fn normalize(series: &[f64]) -> Vec<f64> {
    let peak = series.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    if peak < 1e-12 {
        return vec![0.0; series.len()];
    }
    series.iter().map(|v| v / peak).collect()
}

/// Shape error between two series in percent of peak (see
/// [`ResourceError::shape_error_pct`]).
pub fn shape_error_pct(real: &[f64], sim: &[f64]) -> f64 {
    const BUCKETS: usize = 50;
    let a = normalize(&resample(real, BUCKETS));
    let b = normalize(&resample(sim, BUCKETS));
    let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
    diff / BUCKETS as f64 * 100.0
}

fn mean(series: &[f64]) -> f64 {
    ResourceProfile::mean(series, series.len())
}

/// Selects one resource series out of a [`ResourceProfile`].
type SeriesGetter = fn(&ResourceProfile) -> &Vec<f64>;

/// Compares a real profile against a simulated one, resource by resource.
pub fn compare_profiles(real: &ResourceProfile, sim: &ResourceProfile) -> Vec<ResourceError> {
    let series: [(&'static str, SeriesGetter); 4] = [
        ("cpu", |p| &p.cpu_util_pct),
        ("mem", |p| &p.mem_gb),
        ("net", |p| &p.net_mb_s),
        ("disk_write", |p| &p.disk_write_mb_s),
    ];
    series
        .iter()
        .map(|(name, get)| ResourceError {
            resource: name,
            real_mean: mean(get(real)),
            sim_mean: mean(get(sim)),
            shape_error_pct: shape_error_pct(get(real), get(sim)),
        })
        .collect()
}

/// The full experiment: real profiled WordCount vs. the simulator's
/// 128 MB small-job WordCount prediction.
pub struct ProfileRealData {
    /// The real run.
    pub real: RealRunProfile,
    /// The simulator's predicted profile.
    pub sim_profile: ResourceProfile,
    /// Simulated job seconds.
    pub sim_seconds: f64,
    /// Per-resource comparison.
    pub errors: Vec<ResourceError>,
}

/// Runs both sides of the comparison. `ranks` rank threads process
/// `total_words` words for real; the sim side is the paper-scale small
/// job (128 MB WordCount on the testbed).
pub fn profile_real_data(ranks: usize, total_words: usize) -> Result<ProfileRealData> {
    let real = run_real_wordcount(ranks, total_words)?;
    let Outcome::Finished { seconds, report } =
        run_sim(Workload::WordCount, Engine::DataMpi, 128 * MB, 1)?
    else {
        return Err(Error::InvalidState(
            "simulated WordCount did not finish".into(),
        ));
    };
    let sim_profile = report.profile.clone();
    let errors = compare_profiles(&real.profile, &sim_profile);
    Ok(ProfileRealData {
        real,
        sim_profile,
        sim_seconds: seconds,
        errors,
    })
}

/// The `fig-ext-profile-real` table: per-resource real vs. simulated
/// means and shape error.
pub fn fig_ext_profile_real() -> Result<Table> {
    let data = profile_real_data(2, 200_000)?;
    Ok(render_table(&data))
}

/// Renders the comparison table from already-computed data.
pub fn render_table(data: &ProfileRealData) -> Table {
    let mut t = Table::new(
        "fig-ext-profile-real",
        format!(
            "Observed vs. simulated WordCount profile (real: {} O tasks, {:.2} s, \
             {} spans; sim: 128MB small job, {:.0} s)",
            data.real.stats.o_tasks_run,
            data.real.seconds,
            data.real.trace.len(),
            data.sim_seconds
        ),
        &["Resource", "Real mean", "Sim mean", "Shape err (%)"],
    );
    for e in &data.errors {
        t.push_row(vec![
            e.resource.to_string(),
            format!("{:.2}", e.real_mean),
            format!("{:.2}", e.sim_mean),
            format!("{:.1}", e.shape_error_pct),
        ]);
    }
    t
}

/// Renders the `BENCH_profile.json` artifact: the per-resource error
/// summary future PRs diff to track sim-vs-real drift.
pub fn render_artifact_json(data: &ProfileRealData) -> String {
    let mut out = String::from("{\n  \"experiment\": \"fig-ext-profile-real\",\n");
    let _ = write!(
        out,
        "  \"workload\": \"wordcount\",\n  \"real_seconds\": {:.4},\n  \"sim_seconds\": {:.1},\n",
        data.real.seconds, data.sim_seconds
    );
    let _ = writeln!(
        out,
        "  \"profile_source\": \"{}\",",
        data.real.source.name()
    );
    let _ = writeln!(
        out,
        "  \"real_stats\": {{\"o_tasks\": {}, \"records\": {}, \"bytes\": {}, \"spans\": {}}},",
        data.real.stats.o_tasks_run,
        data.real.stats.records_emitted,
        data.real.stats.bytes_emitted,
        data.real.trace.len()
    );
    out.push_str("  \"resources\": [\n");
    for (i, e) in data.errors.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"resource\": \"{}\", \"real_mean\": {:.4}, \"sim_mean\": {:.4}, \
             \"shape_error_pct\": {:.2}}}{}",
            e.resource,
            e.real_mean,
            e.sim_mean,
            e.shape_error_pct,
            if i + 1 < data.errors.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_have_zero_shape_error() {
        let s = vec![0.0, 1.0, 4.0, 2.0, 0.5];
        assert!(shape_error_pct(&s, &s) < 1e-9);
        // Scale invariance: shape compares normalized curves.
        let scaled: Vec<f64> = s.iter().map(|v| v * 1000.0).collect();
        assert!(shape_error_pct(&s, &scaled) < 1e-9);
    }

    #[test]
    fn disjoint_series_have_large_shape_error() {
        let a = vec![1.0, 1.0, 0.0, 0.0];
        let b = vec![0.0, 0.0, 1.0, 1.0];
        let err = shape_error_pct(&a, &b);
        assert!(err > 90.0, "opposite shapes, got {err}");
        assert!(err <= 100.0 + 1e-9);
    }

    #[test]
    fn resample_preserves_mean_when_downsampling_evenly() {
        let s: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let r = resample(&s, 10);
        assert_eq!(r.len(), 10);
        let m_in = s.iter().sum::<f64>() / 100.0;
        let m_out = r.iter().sum::<f64>() / 10.0;
        assert!((m_in - m_out).abs() < 1e-9);
    }

    #[test]
    fn empty_and_zero_series_compare_cleanly() {
        assert_eq!(shape_error_pct(&[], &[]), 0.0);
        assert_eq!(shape_error_pct(&[0.0; 4], &[0.0; 8]), 0.0);
        let live = vec![1.0, 2.0, 3.0];
        let err = shape_error_pct(&live, &[]);
        assert!(err > 0.0 && err.is_finite());
    }

    #[test]
    fn real_wordcount_produces_profile_trace_and_stats() {
        let real = run_real_wordcount(2, 20_000).unwrap();
        assert!(real.stats.records_emitted > 0);
        assert!(real.stats.phase_us.o_task_us > 0, "phase totals derived");
        assert!(!real.trace.is_empty(), "spans recorded");
        let json = real.trace.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        // The profiler sampled at 2 ms into 10 ms buckets; even a fast run
        // yields at least one bucket with CPU activity.
        assert!(!real.profile.is_empty(), "bucketed series produced");
    }

    #[test]
    fn artifact_json_is_well_formed_enough() {
        let real = run_real_wordcount(2, 20_000).unwrap();
        let sim_profile = ResourceProfile {
            bucket_secs: 1.0,
            cpu_util_pct: vec![10.0, 20.0],
            wait_io_pct: vec![0.0, 0.0],
            disk_read_mb_s: vec![1.0, 1.0],
            disk_write_mb_s: vec![0.0, 0.5],
            net_mb_s: vec![5.0, 2.0],
            mem_gb: vec![1.0, 1.0],
            nodes_down: vec![0.0, 0.0],
        };
        let errors = compare_profiles(&real.profile, &sim_profile);
        assert_eq!(errors.len(), 4);
        for e in &errors {
            assert!(e.shape_error_pct.is_finite());
            assert!(e.shape_error_pct >= 0.0);
        }
        let data = ProfileRealData {
            real,
            sim_profile,
            sim_seconds: 30.0,
            errors,
        };
        let json = render_artifact_json(&data);
        assert!(json.contains("\"experiment\": \"fig-ext-profile-real\""));
        assert!(json.contains("\"resource\": \"cpu\""));
        // The source marker is always present and one of the two names.
        assert!(
            json.contains("\"profile_source\": \"proc\"")
                || json.contains("\"profile_source\": \"unavailable\"")
        );
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        let table = render_table(&data);
        assert_eq!(table.rows.len(), 4);
    }
}
