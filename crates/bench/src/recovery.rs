//! Extension experiment: recovery-time overhead of a single node failure.
//!
//! The paper's testbed never loses a node mid-run, but the fault-tolerance
//! story is the classic argument for Hadoop's materialize-everything
//! design. This experiment quantifies it in the simulator: the same Text
//! Sort job is run failure-free and with one node dying mid-job, under the
//! two recovery disciplines of [`dmpi_dcsim::RecoveryModel`]:
//!
//! * **DataMPI-style checkpoint/restart** — finished tasks' key-value
//!   output was checkpointed (the supervisor's `CheckpointStore` in the
//!   real execution path), so only in-flight work re-executes;
//! * **Hadoop-style re-execution** — completed map output lived on the
//!   dead node's local disk, so completed tasks whose consumers are
//!   unfinished re-execute as well.
//!
//! The headline number per row is `makespan(with failure) −
//! makespan(failure-free)`, i.e. [`SimReport::recovery_overhead_secs`].

use dmpi_common::units::GB;
use dmpi_common::Result;
use dmpi_dcsim::{ClusterSpec, NodeId, RecoveryModel, SimReport, Simulation};
use dmpi_dfs::{DfsConfig, MiniDfs};
use dmpi_workloads::sort::{self, SortVariant};

use crate::table::Table;

/// Node taken down mid-run.
const VICTIM: NodeId = NodeId(1);
/// Reboot time — a paper-scale "machine power-cycles and daemons rejoin".
const DOWNTIME_SECS: f64 = 30.0;
/// Failure instant as a fraction of the failure-free makespan. 0.7 lands
/// in the reduce/A phase of Text Sort: the node's map/O work is complete
/// (so the recovery disciplines actually diverge over its fate) while its
/// reducers are mid-flight.
const FAILURE_POINT: f64 = 0.7;

/// Which engine's Text Sort DAG a run is built from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Plan {
    /// The Hadoop-like staged MapReduce plan.
    Hadoop,
    /// The DataMPI pipelined O/A plan.
    DataMpi,
}

/// One (plan, recovery model) measurement: the failure-free baseline and
/// the run with the injected failure.
pub struct RecoveryRun {
    /// Row label for the table.
    pub label: &'static str,
    /// Which DAG.
    pub plan: Plan,
    /// Recovery discipline applied at the failure.
    pub model: RecoveryModel,
    /// Failure-free run.
    pub baseline: SimReport,
    /// Run with the node failure.
    pub failed: SimReport,
}

impl RecoveryRun {
    /// Extra seconds the failure cost end to end.
    pub fn overhead_secs(&self) -> f64 {
        self.failed.recovery_overhead_secs(&self.baseline)
    }
}

fn build_sim(
    plan: Plan,
    cluster: &ClusterSpec,
    splits: &[dmpi_dfs::InputSplit],
) -> Result<Simulation> {
    let mut sim = Simulation::new(cluster.clone());
    match plan {
        Plan::Hadoop => {
            let p = sort::hadoop_profile(SortVariant::Text, 4);
            dmpi_mapred::plan::compile(&mut sim, &p, splits)?;
        }
        Plan::DataMpi => {
            let p = sort::datampi_profile(SortVariant::Text, 4);
            datampi::plan::compile(&mut sim, &p, splits)?;
        }
    }
    Ok(sim)
}

/// Runs the three measurements on a Text Sort of `input_gb` GB:
///
/// 1. Hadoop plan, Hadoop-style re-execution (the real Hadoop story);
/// 2. Hadoop plan, checkpoint/restart (what checkpointing saves the *same*
///    DAG — the like-for-like comparison of the two disciplines);
/// 3. DataMPI plan, checkpoint/restart (the real DataMPI story).
pub fn run_recovery(input_gb: u64) -> Result<Vec<RecoveryRun>> {
    let cluster = ClusterSpec::paper_testbed();
    let dfs = MiniDfs::new(cluster.nodes, DfsConfig::paper_tuned())?;
    let per_file = input_gb * GB / cluster.nodes as u64;
    for i in 0..cluster.nodes {
        dfs.create_virtual(&format!("/sort/part-{i:05}"), NodeId(i), per_file)?;
    }
    let splits = dfs.splits_for_prefix("/sort/")?;

    let cases: [(&'static str, Plan, RecoveryModel); 3] = [
        (
            "Hadoop, re-execute lost maps",
            Plan::Hadoop,
            RecoveryModel::RerunCompleted,
        ),
        (
            "Hadoop, checkpointed outputs",
            Plan::Hadoop,
            RecoveryModel::CheckpointRestart,
        ),
        (
            "DataMPI, checkpointed O output",
            Plan::DataMpi,
            RecoveryModel::CheckpointRestart,
        ),
    ];
    let mut runs = Vec::with_capacity(cases.len());
    for (label, plan, model) in cases {
        let baseline = build_sim(plan, &cluster, &splits)?.run()?;
        let mut sim = build_sim(plan, &cluster, &splits)?;
        sim.inject_node_failure(
            VICTIM,
            baseline.makespan * FAILURE_POINT,
            DOWNTIME_SECS,
            model,
        )?;
        let failed = sim.run()?;
        runs.push(RecoveryRun {
            label,
            plan,
            model,
            baseline,
            failed,
        });
    }
    Ok(runs)
}

/// Renders [`run_recovery`] as a table for EXPERIMENTS.md.
pub fn fig_ext_recovery(input_gb: u64) -> Result<Table> {
    let runs = run_recovery(input_gb)?;
    let mut t = Table::new(
        "fig-ext-recovery",
        format!(
            "Extension: one node fails at 70% of a {input_gb} GB Text Sort \
             (30 s reboot; checkpoint/restart vs re-execution recovery)"
        ),
        &[
            "Engine / recovery",
            "No failure (s)",
            "With failure (s)",
            "Overhead (s)",
            "Tasks re-run",
            "Wasted compute (s)",
        ],
    );
    for r in &runs {
        t.push_row(vec![
            r.label.to_string(),
            format!("{:.1}", r.baseline.makespan),
            format!("{:.1}", r.failed.makespan),
            format!("{:.1}", r.overhead_secs()),
            r.failed.recovery.tasks_rerun.to_string(),
            format!("{:.1}", r.failed.recovery.wasted_secs),
        ]);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_costs_time_under_both_disciplines() {
        let runs = run_recovery(4).unwrap();
        assert_eq!(runs.len(), 3);
        for r in &runs {
            assert_eq!(r.failed.recovery.failures, 1, "{}", r.label);
            assert!(
                r.overhead_secs() > 0.0,
                "{}: overhead {}",
                r.label,
                r.overhead_secs()
            );
            assert!(r.baseline.recovery.is_clean());
        }
    }

    #[test]
    fn reexecution_costs_at_least_as_much_as_checkpointing() {
        let runs = run_recovery(4).unwrap();
        let rerun = runs
            .iter()
            .find(|r| r.plan == Plan::Hadoop && r.model == RecoveryModel::RerunCompleted)
            .unwrap();
        let ckpt = runs
            .iter()
            .find(|r| r.plan == Plan::Hadoop && r.model == RecoveryModel::CheckpointRestart)
            .unwrap();
        // Same DAG, same failure point: losing completed map output can
        // only add work.
        assert!(
            rerun.overhead_secs() >= ckpt.overhead_secs() - 1e-6,
            "rerun {} vs checkpoint {}",
            rerun.overhead_secs(),
            ckpt.overhead_secs()
        );
        assert!(rerun.failed.recovery.tasks_rerun >= ckpt.failed.recovery.tasks_rerun);
        // Re-execution invalidated at least one completed map.
        assert!(rerun.failed.recovery.wasted_secs > ckpt.failed.recovery.wasted_secs);
    }

    #[test]
    fn table_renders_all_rows() {
        let t = fig_ext_recovery(4).unwrap();
        let text = t.render_markdown();
        assert!(text.contains("Hadoop, re-execute lost maps"));
        assert!(text.contains("DataMPI, checkpointed O output"));
    }
}
