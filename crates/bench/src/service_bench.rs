//! `figures service-bench` — what staying resident is worth.
//!
//! The paper credits DataMPI's short-workload latency edge to resident,
//! communication-ready processes. This bench measures that claim on the
//! reproduction's own service: a real `dmpid`-style session (coordinator
//! plus resident worker mesh over loopback TCP, catalogue resolver,
//! fair-share admission) absorbs a seeded open-loop arrival stream from two
//! tenants, and every job's submit→done latency is recorded. The
//! baseline runs the *same* jobs through the real one-shot launcher —
//! one `dmpirun` process tree per job, paying process spawn, rendezvous
//! and mesh establishment every time. When the `dmpirun` binary is not
//! built (bare `cargo test -p dmpi-bench`), the baseline falls back to
//! a fresh in-process service session per job, which *understates* the
//! one-shot price (no process spawn) — the artifact records which
//! baseline ran.
//!
//! Reported: jobs/sec and p50/p99 job latency for both modes, plus the
//! resident-vs-one-shot p50 ratio the acceptance gate checks
//! ([`submission_gate`]: resident p50 must beat one-shot p50).
//!
//! Results land in `BENCH_service.json` (schema in BENCHMARKS.md).

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use datampi::service::{run_resident_worker, serve, AdmissionConfig, JobSpec, ServiceConfig};
use dmpi_common::{Error, Result};
use dmpi_workloads::CatalogueResolver;

use crate::table::Table;

/// Both modes' measurements over the same job stream.
#[derive(Clone, Debug)]
pub struct ServiceBenchData {
    /// Resident mesh width (= one-shot mesh width).
    pub ranks: usize,
    /// Distinct submitting tenants.
    pub tenants: usize,
    /// Total jobs per mode.
    pub jobs: usize,
    /// O tasks per job.
    pub tasks: usize,
    /// Bytes per input split.
    pub bytes_per_task: usize,
    /// Base input seed (job `j` runs at `seed + j` in both modes).
    pub seed: u64,
    /// Mean open-loop inter-arrival gap, ms.
    pub mean_gap_ms: u64,
    /// Resident-mesh p50 submit→done latency, ms.
    pub resident_p50_ms: f64,
    /// Resident-mesh p99 submit→done latency, ms.
    pub resident_p99_ms: f64,
    /// Resident-mesh throughput over the whole stream.
    pub resident_jobs_per_sec: f64,
    /// One-shot p50 launch→done latency, ms.
    pub oneshot_p50_ms: f64,
    /// One-shot p99 launch→done latency, ms.
    pub oneshot_p99_ms: f64,
    /// One-shot throughput (jobs run back-to-back).
    pub oneshot_jobs_per_sec: f64,
    /// `resident_p50_ms / oneshot_p50_ms` — below 1.0 means resident wins.
    pub p50_ratio: f64,
    /// Jobs the resident coordinator completed (must equal `jobs`).
    pub completed: u64,
    /// Which one-shot baseline ran: `"process"` (real `dmpirun` spawns)
    /// or `"in-process"` (fallback when the binary is not built).
    pub oneshot_mode: &'static str,
}

fn bench_fault(detail: String) -> Error {
    Error::InvalidState(detail)
}

/// Deterministic open-loop arrival gaps: a splitmix-style stream mapped
/// onto `[0, 2*mean]` ms, so the mean gap is `mean` without any clock
/// or OS randomness entering the schedule.
fn arrival_gaps(n: usize, mean_ms: u64, seed: u64) -> Vec<u64> {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    (0..n)
        .map(|_| {
            state = (state ^ (state >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            state ^= state >> 27;
            if mean_ms == 0 {
                0
            } else {
                (state >> 33) % (2 * mean_ms + 1)
            }
        })
        .collect()
}

fn spec_for(job: usize, tasks: usize, bytes_per_task: usize, seed: u64) -> JobSpec {
    JobSpec {
        id: 0,
        tenant: if job.is_multiple_of(2) {
            "alice"
        } else {
            "bob"
        }
        .to_string(),
        workload: "wordcount".to_string(),
        tasks,
        bytes_per_task,
        seed: seed + job as u64,
        o_parallelism: 1,
        out: None,
        spill_dir: None,
        spill_compress: false,
    }
}

/// Submits one job and blocks until its terminal line; returns the
/// submit→done latency in ms.
fn submit_and_wait(addr: SocketAddr, spec: &JobSpec) -> Result<f64> {
    let start = Instant::now();
    let mut stream =
        TcpStream::connect(addr).map_err(|e| bench_fault(format!("dial coordinator: {e}")))?;
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| bench_fault(e.to_string()))?);
    writeln!(stream, "{}", spec.submit_line())
        .map_err(|e| bench_fault(format!("send submit: {e}")))?;
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| bench_fault(format!("read reply: {e}")))?;
        if n == 0 {
            return Err(bench_fault("coordinator hung up mid-job".into()));
        }
        match line.split_whitespace().next() {
            Some("jobdone") => return Ok(start.elapsed().as_secs_f64() * 1e3),
            Some("jobfail") | Some("rejected") => {
                return Err(bench_fault(format!("job bounced: {}", line.trim_end())))
            }
            _ => {} // accepted, or future verbs
        }
    }
}

fn send_drain(addr: SocketAddr) -> Result<()> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| bench_fault(format!("dial for drain: {e}")))?;
    writeln!(stream, "drain").map_err(|e| bench_fault(format!("send drain: {e}")))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| bench_fault(e.to_string()))?);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| bench_fault(format!("read drained: {e}")))?;
        if n == 0 || line.starts_with("drained") {
            return Ok(());
        }
    }
}

/// Blocks until the coordinator reports a full mesh.
fn wait_mesh_ready(addr: SocketAddr, ranks: usize) -> Result<()> {
    let want = format!("ranks={ranks}/{ranks}");
    for _ in 0..600 {
        let Ok(mut stream) = TcpStream::connect(addr) else {
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        if writeln!(stream, "status").is_err() {
            continue;
        }
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) > 0 && line.contains(&want) {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    Err(bench_fault(format!(
        "mesh never reached {ranks} resident ranks"
    )))
}

/// One complete service session: coordinator + `ranks` resident worker
/// threads. Returns (address, coordinator handle, worker handles).
type Session = (
    SocketAddr,
    std::thread::JoinHandle<Result<datampi::service::ServiceSummary>>,
    Vec<std::thread::JoinHandle<Result<()>>>,
);

fn start_session(ranks: usize, slots: usize) -> Result<Session> {
    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| bench_fault(format!("bind coordinator: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| bench_fault(e.to_string()))?;
    let config = ServiceConfig {
        ranks,
        admission: AdmissionConfig {
            mesh_slots: slots,
            queue_limit: 4096,
            default_quota: slots,
        },
        report_dir: None,
    };
    let coord = std::thread::spawn(move || serve(listener, config));
    let workers = (0..ranks)
        .map(|_| std::thread::spawn(move || run_resident_worker(addr, Arc::new(CatalogueResolver))))
        .collect();
    Ok((addr, coord, workers))
}

/// Finds the real one-shot launcher. `figures` and `dmpirun` land in
/// the same target directory; test binaries live one level down in
/// `deps/`. `DMPI_ONESHOT_BIN` overrides both.
fn dmpirun_binary() -> Option<std::path::PathBuf> {
    if let Ok(p) = std::env::var("DMPI_ONESHOT_BIN") {
        let p = std::path::PathBuf::from(p);
        if p.is_file() {
            return Some(p);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?.to_path_buf();
    for _ in 0..2 {
        let cand = dir.join("dmpirun");
        if cand.is_file() {
            return Some(cand);
        }
        dir = dir.parent()?.to_path_buf();
    }
    None
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Runs the resident session and the one-shot baseline over the same
/// seeded job stream.
pub fn service_bench_data(
    ranks: usize,
    jobs: usize,
    tasks: usize,
    bytes_per_task: usize,
    mean_gap_ms: u64,
    seed: u64,
) -> Result<ServiceBenchData> {
    if ranks < 2 || jobs == 0 {
        return Err(bench_fault(
            "service-bench needs >= 2 ranks and >= 1 job".into(),
        ));
    }

    // --- Resident mode: one mesh, open-loop arrivals, concurrent jobs.
    // Slots above the rank count let arrival bursts overlap on the mesh
    // instead of queueing behind each other.
    let (addr, coord, workers) = start_session(ranks, (2 * ranks).max(4))?;
    wait_mesh_ready(addr, ranks)?;
    let gaps = arrival_gaps(jobs, mean_gap_ms, seed);
    let stream_start = Instant::now();
    let mut inflight = Vec::with_capacity(jobs);
    for (j, gap) in gaps.iter().enumerate() {
        std::thread::sleep(Duration::from_millis(*gap));
        let spec = spec_for(j, tasks, bytes_per_task, seed);
        inflight.push(std::thread::spawn(move || submit_and_wait(addr, &spec)));
    }
    let mut resident_ms = Vec::with_capacity(jobs);
    for handle in inflight {
        resident_ms.push(
            handle
                .join()
                .map_err(|_| bench_fault("resident submitter thread panicked".into()))??,
        );
    }
    let resident_span = stream_start.elapsed().as_secs_f64();
    send_drain(addr)?;
    let summary = coord
        .join()
        .map_err(|_| bench_fault("coordinator thread panicked".into()))??;
    for w in workers {
        w.join()
            .map_err(|_| bench_fault("worker thread panicked".into()))??;
    }
    if summary.completed != jobs as u64 {
        return Err(bench_fault(format!(
            "resident session completed {} of {jobs} jobs",
            summary.completed
        )));
    }

    // --- One-shot baseline: the same jobs through the real one-shot
    // launcher — one `dmpirun` process tree per job, paying process
    // spawn + rendezvous + mesh establishment every time. Fallback when
    // the binary is not built: a fresh in-process session per job
    // (understates the one-shot price — no process spawn).
    let launcher = dmpirun_binary();
    let mut oneshot_ms = Vec::with_capacity(jobs);
    let oneshot_start = Instant::now();
    for j in 0..jobs {
        let start = Instant::now();
        match &launcher {
            Some(bin) => {
                let out = std::process::Command::new(bin)
                    .args(["--ranks", &ranks.to_string()])
                    .args(["--tasks", &tasks.to_string()])
                    .args(["--bytes-per-task", &bytes_per_task.to_string()])
                    .args(["--seed", &(seed + j as u64).to_string()])
                    .arg("wordcount")
                    .output()
                    .map_err(|e| bench_fault(format!("spawn {}: {e}", bin.display())))?;
                if !out.status.success() {
                    return Err(bench_fault(format!(
                        "one-shot dmpirun failed: {}",
                        String::from_utf8_lossy(&out.stderr)
                    )));
                }
            }
            None => {
                let (addr, coord, workers) = start_session(ranks, 1)?;
                let spec = spec_for(j, tasks, bytes_per_task, seed);
                // Submit immediately: admission queues until the mesh
                // forms, so the latency includes worker join + mesh
                // establishment.
                submit_and_wait(addr, &spec)?;
                send_drain(addr)?;
                coord
                    .join()
                    .map_err(|_| bench_fault("one-shot coordinator panicked".into()))??;
                for w in workers {
                    w.join()
                        .map_err(|_| bench_fault("one-shot worker panicked".into()))??;
                }
            }
        }
        oneshot_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }
    let oneshot_span = oneshot_start.elapsed().as_secs_f64();

    resident_ms.sort_by(|a, b| a.total_cmp(b));
    oneshot_ms.sort_by(|a, b| a.total_cmp(b));
    let resident_p50 = percentile(&resident_ms, 50.0);
    let oneshot_p50 = percentile(&oneshot_ms, 50.0);
    Ok(ServiceBenchData {
        ranks,
        tenants: 2,
        jobs,
        tasks,
        bytes_per_task,
        seed,
        mean_gap_ms,
        resident_p50_ms: resident_p50,
        resident_p99_ms: percentile(&resident_ms, 99.0),
        resident_jobs_per_sec: jobs as f64 / resident_span.max(1e-9),
        oneshot_p50_ms: oneshot_p50,
        oneshot_p99_ms: percentile(&oneshot_ms, 99.0),
        oneshot_jobs_per_sec: jobs as f64 / oneshot_span.max(1e-9),
        p50_ratio: resident_p50 / oneshot_p50.max(1e-9),
        completed: summary.completed,
        oneshot_mode: if launcher.is_some() {
            "process"
        } else {
            "in-process"
        },
    })
}

/// The PR's acceptance gate: resident-mesh submission latency must beat
/// the one-shot launch latency at the median.
pub fn submission_gate(data: &ServiceBenchData) -> Result<String> {
    if data.p50_ratio >= 1.0 {
        return Err(bench_fault(format!(
            "service gate: resident p50 {:.1}ms is not below one-shot p50 {:.1}ms \
             (ratio {:.3})",
            data.resident_p50_ms, data.oneshot_p50_ms, data.p50_ratio
        )));
    }
    Ok(format!(
        "service gate: ok (resident p50 {:.1}ms vs one-shot p50 {:.1}ms, ratio {:.3})",
        data.resident_p50_ms, data.oneshot_p50_ms, data.p50_ratio
    ))
}

/// Renders the report table.
pub fn render_table(data: &ServiceBenchData) -> Table {
    let mut table = Table::new(
        "service-bench",
        format!(
            "Resident mesh vs one-shot launch: {} ranks, {} jobs from {} tenants, \
             {} tasks x {} B, mean gap {} ms, seed {}",
            data.ranks,
            data.jobs,
            data.tenants,
            data.tasks,
            data.bytes_per_task,
            data.mean_gap_ms,
            data.seed
        ),
        &["Mode", "p50 ms", "p99 ms", "Jobs/sec"],
    );
    table.push_row(vec![
        "resident".into(),
        format!("{:.2}", data.resident_p50_ms),
        format!("{:.2}", data.resident_p99_ms),
        format!("{:.2}", data.resident_jobs_per_sec),
    ]);
    table.push_row(vec![
        "one-shot".into(),
        format!("{:.2}", data.oneshot_p50_ms),
        format!("{:.2}", data.oneshot_p99_ms),
        format!("{:.2}", data.oneshot_jobs_per_sec),
    ]);
    table
}

/// Renders the `BENCH_service.json` artifact (schema: BENCHMARKS.md).
pub fn render_artifact_json(data: &ServiceBenchData) -> String {
    let mut out = String::from(
        "{\n  \"experiment\": \"service-bench\",\n  \"schema\": \"dmpi-service-bench/v1\",\n",
    );
    let _ = writeln!(
        out,
        "  \"ranks\": {}, \"tenants\": {}, \"jobs\": {}, \"tasks\": {}, \
         \"bytes_per_task\": {}, \"mean_gap_ms\": {}, \"seed\": {},",
        data.ranks,
        data.tenants,
        data.jobs,
        data.tasks,
        data.bytes_per_task,
        data.mean_gap_ms,
        data.seed
    );
    let _ = writeln!(
        out,
        "  \"resident\": {{ \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"jobs_per_sec\": {:.3}, \
         \"completed\": {} }},",
        data.resident_p50_ms, data.resident_p99_ms, data.resident_jobs_per_sec, data.completed
    );
    let _ = writeln!(
        out,
        "  \"oneshot\": {{ \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"jobs_per_sec\": {:.3}, \
         \"mode\": \"{}\" }},",
        data.oneshot_p50_ms, data.oneshot_p99_ms, data.oneshot_jobs_per_sec, data.oneshot_mode
    );
    let _ = writeln!(out, "  \"p50_ratio\": {:.4}", data.p50_ratio);
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_deterministic_with_the_right_mean_scale() {
        let a = arrival_gaps(64, 10, 7);
        assert_eq!(a, arrival_gaps(64, 10, 7));
        assert_ne!(a, arrival_gaps(64, 10, 8));
        assert!(a.iter().all(|&g| g <= 20));
        assert_eq!(arrival_gaps(8, 0, 1), vec![0; 8]);
    }

    #[test]
    fn percentiles_pick_sane_ranks() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 99.0), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn resident_session_runs_a_two_tenant_stream() {
        let data = service_bench_data(2, 4, 2, 512, 0, 42).unwrap();
        assert_eq!(data.completed, 4);
        assert!(data.resident_p50_ms > 0.0 && data.oneshot_p50_ms > 0.0);
        let json = render_artifact_json(&data);
        assert!(json.contains("\"schema\": \"dmpi-service-bench/v1\""));
        assert!(json.contains("\"p50_ratio\""));
        assert!(render_table(&data).render_text().contains("service-bench"));
    }

    #[test]
    fn gate_logic_compares_medians() {
        let mut data = service_bench_data(2, 2, 2, 512, 0, 7).unwrap();
        data.p50_ratio = 0.5;
        assert!(submission_gate(&data).unwrap().contains("ok"));
        data.p50_ratio = 1.2;
        assert!(submission_gate(&data).is_err());
    }
}
