//! `figures spillfmt-bench` — the indexed spill-run format experiment.
//!
//! Four probes, all landing in `BENCH_spillfmt.json`:
//!
//! * **Storage grid** — the TextSort job under spill pressure across
//!   {memory, disk} x {raw, lz4}; every cell's partition outputs are
//!   verified byte-identical to the seed (in-memory, uncompressed)
//!   grouping before any number is reported.
//! * **Indexed-skip probe** — a range-restricted merge over sealed runs;
//!   the footer index must let the merge read **less than half** of the
//!   runs' stored bytes (the CI gate).
//! * **Lookup probe** — cold full scan vs warm indexed point lookups on
//!   one sealed run: the index turns O(run) reads into O(block).
//! * **External-sort probe** — input ≥ 8x the memory budget; the
//!   forming run's byte high-water mark must stay pinned at the budget
//!   (plus one frame) while the sort completes through disk runs.

use std::fmt::Write as _;
use std::time::Instant;

use bytes::Bytes;
use datampi::store::PartitionStore;
use datampi::{JobConfig, KeyRange, SealedRun, SpillConfig, SpillReadCounters, WireCompression};
use dmpi_common::{ser, Error, Record, Result};
use dmpi_workloads::ExecWorkload;

use crate::table::Table;

/// The indexed-skip gate: a range-restricted merge must read strictly
/// less than this fraction of the runs' stored bytes.
pub const SKIP_GATE_FRACTION: f64 = 0.5;

/// One cell of the {memory,disk} x {raw,lz4} grid.
#[derive(Clone, Debug)]
pub struct SpillCell {
    /// `"memory"` or `"disk"`.
    pub storage: &'static str,
    /// `"raw"` or `"lz4"`.
    pub compression: &'static str,
    /// Wall time of the whole job.
    pub seconds: f64,
    /// Sealed runs across partitions.
    pub spills: u64,
    /// Raw framed-record bytes spilled.
    pub spilled_bytes: u64,
    /// Bytes the sealed runs occupy (blocks post-compression + index).
    pub spilled_wire_bytes: u64,
    /// Blocks the merge read back.
    pub blocks_read: u64,
}

/// The range-restricted merge probe.
#[derive(Clone, Debug)]
pub struct SkipProbe {
    /// Blocks across all sealed runs.
    pub total_blocks: u64,
    /// Blocks the restricted merge actually read.
    pub blocks_read: u64,
    /// Blocks skipped whole via the footer index.
    pub blocks_skipped: u64,
    /// Stored bytes across all sealed runs.
    pub run_bytes: u64,
    /// Stored bytes the restricted merge read.
    pub stored_bytes_read: u64,
}

impl SkipProbe {
    /// Fraction of the runs' stored bytes the restricted merge read.
    pub fn read_fraction(&self) -> f64 {
        self.stored_bytes_read as f64 / self.run_bytes.max(1) as f64
    }
}

/// Cold full scan vs warm indexed point lookups on one sealed run.
#[derive(Clone, Debug)]
pub struct LookupProbe {
    /// Blocks in the probed run.
    pub run_blocks: u64,
    /// Point lookups issued.
    pub lookups: u64,
    /// Blocks read by one cold full scan.
    pub cold_blocks: u64,
    /// Blocks read by all indexed lookups together.
    pub indexed_blocks: u64,
    /// Wall time of the cold scan.
    pub cold_seconds: f64,
    /// Wall time of all indexed lookups.
    pub indexed_seconds: f64,
}

/// The external-sort probe: residency stays bounded as input grows.
#[derive(Clone, Debug)]
pub struct ExtSortProbe {
    /// A-side memory budget, bytes.
    pub memory_budget: usize,
    /// Total ingested record bytes (>= 8x the budget).
    pub input_bytes: u64,
    /// Sealed disk runs.
    pub spills: u64,
    /// Forming-run byte high-water mark.
    pub peak_mem_bytes: u64,
    /// Largest single ingested frame (the allowed overshoot).
    pub max_frame_bytes: u64,
}

/// The full benchmark.
#[derive(Clone, Debug)]
pub struct SpillfmtBenchData {
    /// Ranks used for the storage grid.
    pub ranks: usize,
    /// O tasks per grid job.
    pub tasks: usize,
    /// Input bytes per O task.
    pub bytes_per_task: usize,
    /// The storage grid, seed cell first.
    pub cells: Vec<SpillCell>,
    /// The indexed-skip probe.
    pub skip: SkipProbe,
    /// The lookup probe.
    pub lookup: LookupProbe,
    /// The external-sort probe.
    pub extsort: ExtSortProbe,
}

fn scratch_dir(label: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dmpi-spillbench-{label}-{}", std::process::id()))
}

/// Deterministic record stream with a wide, collision-heavy key space.
fn gen_records(n: usize, keys: u64, seed: u64) -> Vec<Record> {
    let mut x = seed | 1;
    (0..n)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            Record {
                key: Bytes::from(format!("k{:08}", x % keys)),
                value: Bytes::from(format!("v{i:08}-{}", "q".repeat((x % 29) as usize))),
            }
        })
        .collect()
}

fn fill_store(
    records: &[Record],
    budget: usize,
    cfg: SpillConfig,
) -> Result<(PartitionStore, u64)> {
    let mut store = PartitionStore::new(budget, true);
    store.set_spill_config(cfg);
    let mut max_frame = 0u64;
    for chunk in records.chunks(32) {
        let mut payload = Vec::new();
        for r in chunk {
            ser::frame_record(&mut payload, r);
        }
        max_frame = max_frame.max(payload.len() as u64);
        store.ingest(Bytes::from(payload))?;
    }
    store.finish_ingest();
    Ok((store, max_frame))
}

/// Runs the grid, the skip/lookup probes, and the external-sort probe.
///
/// Correctness is asserted before any number is reported: every grid
/// cell's partitions must equal the seed cell's byte for byte, and the
/// external-sort residency bound must hold.
pub fn spillfmt_bench_data(
    ranks: usize,
    tasks: usize,
    bytes_per_task: usize,
) -> Result<SpillfmtBenchData> {
    // ---- Storage grid: TextSort under spill pressure ----
    let workload = ExecWorkload::TextSort;
    let inputs = workload.inputs(tasks, bytes_per_task, 42);
    let budget = (tasks * bytes_per_task * 2 / ranks / 16).max(512);
    let mut cells = Vec::new();
    let mut seed_partitions: Option<Vec<dmpi_common::RecordBatch>> = None;
    for (storage, disk) in [("memory", false), ("disk", true)] {
        for (compression, lz4) in [("raw", false), ("lz4", true)] {
            let mut config = JobConfig::new(ranks)
                .with_sorted_grouping(true)
                .with_memory_budget(budget);
            let dir = disk.then(|| scratch_dir(compression));
            if let Some(d) = &dir {
                config = config.with_spill_dir(d.clone());
            }
            if lz4 {
                config = config.with_spill_compression(WireCompression::Lz4);
            }
            let start = Instant::now();
            let out = workload.run_inproc(&config, inputs.clone())?;
            let seconds = start.elapsed().as_secs_f64();
            match &seed_partitions {
                None => seed_partitions = Some(out.partitions.clone()),
                Some(seed) => {
                    let same = seed.len() == out.partitions.len()
                        && seed
                            .iter()
                            .zip(&out.partitions)
                            .all(|(p, q)| p.records() == q.records());
                    if !same {
                        return Err(Error::InvalidState(format!(
                            "spillfmt grid cell ({storage}, {compression}) diverged \
                             from the seed grouping"
                        )));
                    }
                }
            }
            cells.push(SpillCell {
                storage,
                compression,
                seconds,
                spills: out.stats.spills,
                spilled_bytes: out.stats.spilled_bytes,
                spilled_wire_bytes: out.stats.spilled_wire_bytes,
                blocks_read: out.stats.spill_blocks_read,
            });
            if let Some(d) = dir {
                let _ = std::fs::remove_dir_all(&d);
            }
        }
    }

    // ---- Indexed-skip probe: merge restricted to ~5% of the keyspace ----
    // Geometry is fixed, not scaled with the grid: the gate needs runs
    // of many narrow blocks (16 KiB runs of 1 KiB blocks) so the footer
    // index has something to skip.
    let records = gen_records(8192, 100_000, 7);
    let skip_budget = 16 * 1024;
    let (mut store, _) = fill_store(
        &records,
        skip_budget,
        SpillConfig::default().with_block_bytes(1024),
    )?;
    // Seal everything so the probe measures pure indexed-run reads.
    store.seal_all();
    let run_bytes: u64 = store
        .sealed_run_handles()
        .iter()
        .map(|r| r.index().stored_bytes)
        .sum();
    let total_blocks: u64 = store
        .sealed_run_handles()
        .iter()
        .map(|r| r.index().blocks.len() as u64)
        .sum();
    let counters = store.read_counters();
    let range = KeyRange::new(&b"k00047000"[..], &b"k00052000"[..]);
    let mut stream = store.into_group_stream_range(Some(range))?;
    let mut groups = 0u64;
    while let Some(_g) = stream.next_group()? {
        groups += 1;
    }
    if groups == 0 {
        return Err(Error::InvalidState(
            "skip probe range matched no groups".into(),
        ));
    }
    let snap = counters.snapshot();
    let skip = SkipProbe {
        total_blocks,
        blocks_read: snap.blocks_read,
        blocks_skipped: snap.blocks_skipped,
        run_bytes,
        stored_bytes_read: snap.stored_bytes_read,
    };

    // ---- Lookup probe: cold scan vs warm indexed lookups ----
    let mut sorted = gen_records(tasks * bytes_per_task / 64, 50_000, 11);
    sorted.sort_by(|a, b| a.key.cmp(&b.key));
    let mut writer = datampi::spillfmt::RunWriter::new(2048, true, true);
    for r in &sorted {
        writer.push(r);
    }
    let (image, index) = writer.finish();
    let run = SealedRun::mem(image, index);
    let cold = SpillReadCounters::new();
    let cold_start = Instant::now();
    let mut reader = run.open(&cold, None)?;
    while reader.next_record()?.is_some() {}
    let cold_seconds = cold_start.elapsed().as_secs_f64();
    let warm = SpillReadCounters::new();
    let probes: Vec<Bytes> = sorted
        .iter()
        .step_by((sorted.len() / 16).max(1))
        .map(|r| r.key.clone())
        .collect();
    let warm_start = Instant::now();
    for key in &probes {
        if run.lookup(key, &warm)?.is_empty() {
            return Err(Error::InvalidState("indexed lookup missed a key".into()));
        }
    }
    let indexed_seconds = warm_start.elapsed().as_secs_f64();
    let lookup = LookupProbe {
        run_blocks: run.index().blocks.len() as u64,
        lookups: probes.len() as u64,
        cold_blocks: cold.snapshot().blocks_read,
        indexed_blocks: warm.snapshot().blocks_read,
        cold_seconds,
        indexed_seconds,
    };

    // ---- External-sort probe: 8x-budget input, bounded residency ----
    let ext_budget = 4096usize;
    let ext_records = gen_records(6_000, 5_000, 23);
    let input_bytes: u64 = ext_records
        .iter()
        .map(|r| (r.key.len() + r.value.len()) as u64)
        .sum();
    let ext_dir = scratch_dir("extsort");
    let (mut ext_store, max_frame) = fill_store(
        &ext_records,
        ext_budget,
        SpillConfig::default()
            .with_dir(ext_dir.clone())
            .with_compression(true),
    )?;
    ext_store.seal_all();
    let st = ext_store.stats();
    if input_bytes < 8 * ext_budget as u64 {
        return Err(Error::InvalidState(
            "external-sort probe input must be >= 8x the budget".into(),
        ));
    }
    if st.peak_mem_bytes > ext_budget as u64 + max_frame {
        return Err(Error::InvalidState(format!(
            "external sort residency unbounded: peak {} > budget {} + frame {}",
            st.peak_mem_bytes, ext_budget, max_frame
        )));
    }
    let mut stream = ext_store.into_group_stream()?;
    let mut ext_groups = 0u64;
    while let Some(_g) = stream.next_group()? {
        ext_groups += 1;
    }
    if ext_groups == 0 {
        return Err(Error::InvalidState(
            "external sort produced no groups".into(),
        ));
    }
    drop(stream);
    let _ = std::fs::remove_dir_all(&ext_dir);
    let extsort = ExtSortProbe {
        memory_budget: ext_budget,
        input_bytes,
        spills: st.spills,
        peak_mem_bytes: st.peak_mem_bytes,
        max_frame_bytes: max_frame,
    };

    Ok(SpillfmtBenchData {
        ranks,
        tasks,
        bytes_per_task,
        cells,
        skip,
        lookup,
        extsort,
    })
}

/// The CI gate: the range-restricted merge must have read less than
/// [`SKIP_GATE_FRACTION`] of the runs' stored bytes.
pub fn skip_gate(data: &SpillfmtBenchData) -> Result<String> {
    let f = data.skip.read_fraction();
    if f >= SKIP_GATE_FRACTION {
        return Err(Error::InvalidState(format!(
            "indexed-skip gate failed: restricted merge read {:.1}% of run bytes \
             ({} of {}), gate is {:.0}%",
            f * 100.0,
            data.skip.stored_bytes_read,
            data.skip.run_bytes,
            SKIP_GATE_FRACTION * 100.0
        )));
    }
    Ok(format!(
        "indexed-skip gate ok: restricted merge read {:.1}% of run bytes \
         ({} of {} blocks) < {:.0}%",
        f * 100.0,
        data.skip.blocks_read,
        data.skip.total_blocks,
        SKIP_GATE_FRACTION * 100.0
    ))
}

/// Renders the report table.
pub fn render_table(data: &SpillfmtBenchData) -> Table {
    let mut table = Table::new(
        "spillfmt-bench",
        format!(
            "Indexed spill runs: {} ranks, {} tasks, {} B/task; skip probe read \
             {}/{} blocks ({:.1}% of bytes); lookup {} probes read {} blocks vs {} cold; \
             external sort peak {} B under budget {} B",
            data.ranks,
            data.tasks,
            data.bytes_per_task,
            data.skip.blocks_read,
            data.skip.total_blocks,
            data.skip.read_fraction() * 100.0,
            data.lookup.lookups,
            data.lookup.indexed_blocks,
            data.lookup.cold_blocks,
            data.extsort.peak_mem_bytes,
            data.extsort.memory_budget,
        ),
        &[
            "Storage",
            "Seconds",
            "Spills",
            "Raw KB",
            "Stored KB",
            "Blocks read",
        ],
    );
    for c in &data.cells {
        table.push_row(vec![
            format!("{}/{}", c.storage, c.compression),
            format!("{:.4}", c.seconds),
            c.spills.to_string(),
            format!("{:.1}", c.spilled_bytes as f64 / 1024.0),
            format!("{:.1}", c.spilled_wire_bytes as f64 / 1024.0),
            c.blocks_read.to_string(),
        ]);
    }
    table
}

/// Renders the `BENCH_spillfmt.json` artifact.
pub fn render_artifact_json(data: &SpillfmtBenchData) -> String {
    let mut out = String::from("{\n  \"experiment\": \"spillfmt-bench\",\n");
    let _ = writeln!(
        out,
        "  \"ranks\": {}, \"tasks\": {}, \"bytes_per_task\": {},",
        data.ranks, data.tasks, data.bytes_per_task
    );
    out.push_str("  \"cells\": [\n");
    for (i, c) in data.cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"storage\": \"{}\", \"compression\": \"{}\", \"seconds\": {:.4}, \
             \"spills\": {}, \"spilled_bytes\": {}, \"spilled_wire_bytes\": {}, \
             \"blocks_read\": {}, \"identical_to_seed\": true}}{}",
            c.storage,
            c.compression,
            c.seconds,
            c.spills,
            c.spilled_bytes,
            c.spilled_wire_bytes,
            c.blocks_read,
            if i + 1 < data.cells.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    let s = &data.skip;
    let _ = writeln!(
        out,
        "  \"skip_probe\": {{\"total_blocks\": {}, \"blocks_read\": {}, \
         \"blocks_skipped\": {}, \"run_bytes\": {}, \"stored_bytes_read\": {}, \
         \"read_fraction\": {:.4}}},",
        s.total_blocks,
        s.blocks_read,
        s.blocks_skipped,
        s.run_bytes,
        s.stored_bytes_read,
        s.read_fraction()
    );
    let l = &data.lookup;
    let _ = writeln!(
        out,
        "  \"lookup_probe\": {{\"run_blocks\": {}, \"lookups\": {}, \
         \"cold_blocks\": {}, \"indexed_blocks\": {}, \"cold_seconds\": {:.6}, \
         \"indexed_seconds\": {:.6}}},",
        l.run_blocks, l.lookups, l.cold_blocks, l.indexed_blocks, l.cold_seconds, l.indexed_seconds
    );
    let e = &data.extsort;
    let _ = writeln!(
        out,
        "  \"external_sort\": {{\"memory_budget\": {}, \"input_bytes\": {}, \
         \"spills\": {}, \"peak_mem_bytes\": {}, \"max_frame_bytes\": {}}}",
        e.memory_budget, e.input_bytes, e.spills, e.peak_mem_bytes, e.max_frame_bytes
    );
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_identical_and_gates_hold() {
        let data = spillfmt_bench_data(2, 4, 16 * 1024).unwrap();
        // 2 storages x 2 compressions.
        assert_eq!(data.cells.len(), 4);
        for c in &data.cells {
            assert!(c.spills > 0, "{}/{} must spill", c.storage, c.compression);
        }
        // LZ4 cells store less than they spilled; raw cells store more
        // (index + trailer overhead on top of the raw framing).
        for c in data.cells.iter().filter(|c| c.compression == "lz4") {
            assert!(c.spilled_wire_bytes < c.spilled_bytes);
        }
        // The indexed-skip gate holds with margin at bench scale.
        let msg = skip_gate(&data).unwrap();
        assert!(msg.contains("ok"));
        assert!(data.skip.read_fraction() < SKIP_GATE_FRACTION);
        // Indexed lookups touch far fewer blocks than the cold scan.
        assert_eq!(data.lookup.cold_blocks, data.lookup.run_blocks);
        assert!(data.lookup.indexed_blocks < data.lookup.cold_blocks * 2);
        // The external-sort probe is 8x-budget and bounded by build.
        assert!(data.extsort.input_bytes >= 8 * data.extsort.memory_budget as u64);
        assert!(
            data.extsort.peak_mem_bytes
                <= data.extsort.memory_budget as u64 + data.extsort.max_frame_bytes
        );
        assert!(data.extsort.spills >= 8);
    }

    #[test]
    fn artifact_json_is_complete() {
        let data = spillfmt_bench_data(2, 3, 8 * 1024).unwrap();
        let json = render_artifact_json(&data);
        assert!(json.contains("\"experiment\": \"spillfmt-bench\""));
        assert!(json.contains("\"skip_probe\""));
        assert!(json.contains("\"lookup_probe\""));
        assert!(json.contains("\"external_sort\""));
        assert!(json.contains("\"identical_to_seed\": true"));
        assert!(render_table(&data).render_text().contains("disk/lz4"));
    }
}
