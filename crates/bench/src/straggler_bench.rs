//! `figures straggler-bench` — completion time and wasted work with and
//! without the straggler defenses, under seeded fault injections.
//!
//! Two scenarios, each measured with the defense off and on:
//!
//! * **slow-rank** — one rank is paced by a seeded
//!   [`SlowRank`](datampi::fault::FaultEvent::SlowRank) injection (a
//!   fixed pause before every one of its O tasks). Off = the static
//!   `task % ranks` schedule rides it out; on = work stealing drains the
//!   slow rank's queue while the outlier detector launches speculative
//!   duplicates of whatever it is already running (first-writer-wins).
//!   The PR's acceptance gate lives here: defended completion must come
//!   in at **≤ 0.5×** the undefended time ([`completion_gate`]).
//! * **rank-leave** — a rank dies mid-job
//!   ([`rank_panic`](datampi::FaultPlan::rank_panic)) under
//!   checkpointing. Off = the fixed-width supervisor restarts at full
//!   width; on = the elastic supervisor shrinks the mesh by one rank and
//!   finishes by *recovering* the checkpointed tasks (re-bucketed to the
//!   narrow width) instead of re-running them.
//!
//! Every cell's output is compared against a clean, undisturbed run at
//! the cell's final width — **byte-identical per partition** is asserted
//! inside [`straggler_bench_data`], not just reported, because the whole
//! point of capture-replay commits and width-portable checkpoints is
//! that the defenses never perturb what the job computes.
//!
//! Results land in `BENCH_straggler.json` (schema in BENCHMARKS.md).
//! The pauses dominate compute by design, so the ≤ 0.5× gate holds even
//! on a single-core CI host.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use bytes::Bytes;
use datampi::supervisor::{supervise_job, supervise_job_elastic, ElasticPolicy, RetryPolicy};
use datampi::task::{Collector, GroupedValues};
use datampi::{run_job, FaultPlan, JobConfig, JobOutput, Scheduling, SpeculationConfig};
use dmpi_common::ser::Writable;
use dmpi_common::{Error, Result};

use crate::table::Table;

/// One measured (scenario, defense) cell.
#[derive(Clone, Debug)]
pub struct StragglerCell {
    /// `"slow-rank"` or `"rank-leave"`.
    pub scenario: &'static str,
    /// `"off"` or `"on"`.
    pub defense: &'static str,
    /// End-to-end completion time.
    pub millis: f64,
    /// Bytes emitted by attempts that lost or failed (the supervisor's
    /// and speculation layer's shared waste ledger).
    pub wasted_bytes: u64,
    /// Output byte-identical to a clean run at `final_ranks` — always
    /// true (the grid errors out otherwise); recorded for the artifact.
    pub identical: bool,
    /// Speculative duplicates that won their race.
    pub speculative_commits: u64,
    /// Queued splits moved off their slow home rank.
    pub tasks_stolen: u64,
    /// Tasks replayed from the checkpoint instead of re-run.
    pub o_tasks_recovered: u64,
    /// Mesh width on the successful attempt.
    pub final_ranks: usize,
    /// Attempts the supervisor needed (1 = no restart).
    pub attempts: u32,
}

/// The full 2×2 grid plus the headline ratio.
#[derive(Clone, Debug)]
pub struct StragglerBenchData {
    /// Mesh width every scenario starts at.
    pub ranks: usize,
    /// O tasks per job.
    pub tasks: usize,
    /// The injected per-task pause on the slow rank.
    pub slow_ms: u64,
    /// Seed for inputs and every injection.
    pub seed: u64,
    /// The four cells, slow-rank first.
    pub cells: Vec<StragglerCell>,
    /// Undefended / defended completion time for the slow-rank scenario
    /// (bigger is better; the gate wants ≥ 2).
    pub slow_rank_speedup: f64,
}

fn wc_o(_task: usize, split: &[u8], out: &mut dyn Collector) {
    for w in split.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
        out.collect(w, &1u64.to_bytes());
    }
}

fn wc_a(g: &GroupedValues, out: &mut dyn Collector) {
    let total: u64 = g.values.iter().map(|v| u64::from_bytes(v).unwrap()).sum();
    out.collect(&g.key, &total.to_bytes());
}

fn bench_inputs(tasks: usize, seed: u64) -> Vec<Bytes> {
    (0..tasks)
        .map(|t| {
            let mut s = String::new();
            for j in 0..24 {
                let _ = write!(s, "w{} shared ", (seed as usize + t * 7 + j) % 13);
            }
            Bytes::from(s)
        })
        .collect()
}

/// Byte-identity per partition against a clean run at `width`; `Err`
/// names the cell if any partition differs.
fn assert_identical(
    cell: &str,
    out: &JobOutput,
    tasks: usize,
    seed: u64,
    width: usize,
) -> Result<()> {
    let clean = run_job(
        &JobConfig::new(width),
        bench_inputs(tasks, seed),
        wc_o,
        wc_a,
        None,
    )?;
    if out.partitions.len() != clean.partitions.len() {
        return Err(Error::InvalidState(format!(
            "{cell}: {} partitions vs clean {}",
            out.partitions.len(),
            clean.partitions.len()
        )));
    }
    for (p, (a, b)) in out.partitions.iter().zip(&clean.partitions).enumerate() {
        if a.records() != b.records() {
            return Err(Error::InvalidState(format!(
                "{cell}: partition {p} differs from the clean width-{width} run"
            )));
        }
    }
    Ok(())
}

fn cell_from_stats(
    scenario: &'static str,
    defense: &'static str,
    millis: f64,
    out: &JobOutput,
    final_ranks: usize,
) -> StragglerCell {
    StragglerCell {
        scenario,
        defense,
        millis,
        wasted_bytes: out.stats.wasted_bytes,
        identical: true, // asserted before the cell is built
        speculative_commits: out.stats.speculative_commits,
        tasks_stolen: out.stats.tasks_stolen,
        o_tasks_recovered: out.stats.o_tasks_recovered,
        final_ranks,
        attempts: out.stats.attempts.max(1),
    }
}

/// Runs the 2×2 grid. `slow_ms` is the injected pause per O task of the
/// slow rank; `ranks`/`tasks` size each job.
pub fn straggler_bench_data(
    ranks: usize,
    tasks: usize,
    slow_ms: u64,
    seed: u64,
) -> Result<StragglerBenchData> {
    if ranks < 3 {
        return Err(Error::InvalidState(
            "straggler-bench needs >= 3 ranks (rank 1 slows, rank ranks-1 leaves)".into(),
        ));
    }
    let inputs = || bench_inputs(tasks, seed);
    let slow_rank = 1usize;
    let mut cells = Vec::with_capacity(4);

    // --- slow-rank, defense off: static schedule rides out the pauses.
    let off_cfg = JobConfig::new(ranks)
        .with_scheduling(Scheduling::Static {
            work_stealing: false,
        })
        .with_faults(FaultPlan::new(seed).slow_rank(slow_rank, 0, slow_ms));
    let start = Instant::now();
    let off_out = run_job(&off_cfg, inputs(), wc_o, wc_a, None)?;
    let off_millis = start.elapsed().as_secs_f64() * 1e3;
    assert_identical("slow-rank/off", &off_out, tasks, seed, ranks)?;
    cells.push(cell_from_stats(
        "slow-rank",
        "off",
        off_millis,
        &off_out,
        ranks,
    ));

    // --- slow-rank, defense on: stealing + speculation.
    let on_cfg = JobConfig::new(ranks)
        .with_scheduling(Scheduling::Static {
            work_stealing: true,
        })
        .with_speculation(SpeculationConfig::enabled().with_seed(seed))
        .with_faults(FaultPlan::new(seed).slow_rank(slow_rank, 0, slow_ms));
    let start = Instant::now();
    let on_out = run_job(&on_cfg, inputs(), wc_o, wc_a, None)?;
    let on_millis = start.elapsed().as_secs_f64() * 1e3;
    assert_identical("slow-rank/on", &on_out, tasks, seed, ranks)?;
    cells.push(cell_from_stats(
        "slow-rank",
        "on",
        on_millis,
        &on_out,
        ranks,
    ));

    // --- rank-leave, defense off: fixed-width restart.
    let leave_plan = || FaultPlan::new(seed).rank_panic(ranks - 1, 0);
    let policy = RetryPolicy::new(4).with_backoff(Duration::ZERO);
    let fixed_cfg = JobConfig::new(ranks)
        .with_checkpointing(true)
        .with_faults(leave_plan());
    let start = Instant::now();
    let fixed_out = supervise_job(&fixed_cfg, &policy, inputs(), wc_o, wc_a)?;
    let fixed_millis = start.elapsed().as_secs_f64() * 1e3;
    assert_identical("rank-leave/off", &fixed_out, tasks, seed, ranks)?;
    cells.push(cell_from_stats(
        "rank-leave",
        "off",
        fixed_millis,
        &fixed_out,
        ranks,
    ));

    // --- rank-leave, defense on: elastic width shrink over checkpoints.
    let elastic_cfg = JobConfig::new(ranks)
        .with_checkpointing(true)
        .with_faults(leave_plan());
    let start = Instant::now();
    let elastic = supervise_job_elastic(
        &elastic_cfg,
        &policy,
        &ElasticPolicy::default(),
        inputs(),
        wc_o,
        wc_a,
    )?;
    let elastic_millis = start.elapsed().as_secs_f64() * 1e3;
    if elastic.final_ranks != ranks - 1 || elastic.shrinks != 1 {
        return Err(Error::InvalidState(format!(
            "rank-leave/on: expected one width shrink to {} ranks, got {} ({} shrinks)",
            ranks - 1,
            elastic.final_ranks,
            elastic.shrinks
        )));
    }
    assert_identical(
        "rank-leave/on",
        &elastic.output,
        tasks,
        seed,
        elastic.final_ranks,
    )?;
    cells.push(cell_from_stats(
        "rank-leave",
        "on",
        elastic_millis,
        &elastic.output,
        elastic.final_ranks,
    ));

    let slow_rank_speedup = off_millis / on_millis.max(1e-9);
    Ok(StragglerBenchData {
        ranks,
        tasks,
        slow_ms,
        seed,
        cells,
        slow_rank_speedup,
    })
}

/// The PR's acceptance gate: defended slow-rank completion must be at
/// most `max_ratio` (0.5 in CI) of the undefended time.
pub fn completion_gate(data: &StragglerBenchData, max_ratio: f64) -> Result<String> {
    let ratio = 1.0 / data.slow_rank_speedup.max(1e-9);
    if ratio > max_ratio {
        return Err(Error::InvalidState(format!(
            "straggler gate: defended completion is {:.2}x the undefended time \
             (threshold {:.2}x; speedup only {:.2}x)",
            ratio, max_ratio, data.slow_rank_speedup
        )));
    }
    Ok(format!(
        "straggler gate: ok (defended = {:.2}x undefended, threshold {:.2}x, speedup {:.2}x)",
        ratio, max_ratio, data.slow_rank_speedup
    ))
}

/// Renders the report table.
pub fn render_table(data: &StragglerBenchData) -> Table {
    let mut table = Table::new(
        "straggler-bench",
        format!(
            "Straggler defense: {} ranks, {} O tasks, {} ms/task slow-rank pause, seed {}; \
             slow-rank speedup {:.2}x",
            data.ranks, data.tasks, data.slow_ms, data.seed, data.slow_rank_speedup
        ),
        &[
            "Scenario",
            "Defense",
            "Millis",
            "Wasted B",
            "Identical",
            "SpecWins",
            "Stolen",
            "Recovered",
            "Ranks",
            "Attempts",
        ],
    );
    for c in &data.cells {
        table.push_row(vec![
            c.scenario.to_string(),
            c.defense.to_string(),
            format!("{:.1}", c.millis),
            c.wasted_bytes.to_string(),
            c.identical.to_string(),
            c.speculative_commits.to_string(),
            c.tasks_stolen.to_string(),
            c.o_tasks_recovered.to_string(),
            c.final_ranks.to_string(),
            c.attempts.to_string(),
        ]);
    }
    table
}

/// Renders the `BENCH_straggler.json` artifact (schema: BENCHMARKS.md).
pub fn render_artifact_json(data: &StragglerBenchData) -> String {
    let mut out = String::from("{\n  \"experiment\": \"straggler-bench\",\n");
    let _ = writeln!(
        out,
        "  \"ranks\": {}, \"tasks\": {}, \"slow_ms\": {}, \"seed\": {},",
        data.ranks, data.tasks, data.slow_ms, data.seed
    );
    let _ = writeln!(
        out,
        "  \"slow_rank_speedup\": {:.4},",
        data.slow_rank_speedup
    );
    out.push_str("  \"cells\": [\n");
    for (i, c) in data.cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"scenario\": \"{}\", \"defense\": \"{}\", \"millis\": {:.2}, \
             \"wasted_bytes\": {}, \"identical\": {}, \"speculative_commits\": {}, \
             \"tasks_stolen\": {}, \"o_tasks_recovered\": {}, \"final_ranks\": {}, \
             \"attempts\": {}}}{}",
            c.scenario,
            c.defense,
            c.millis,
            c.wasted_bytes,
            c.identical,
            c.speculative_commits,
            c.tasks_stolen,
            c.o_tasks_recovered,
            c.final_ranks,
            c.attempts,
            if i + 1 < data.cells.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_measures_rescues_and_stays_identical() {
        // Small but pause-dominated: 120ms per slowed task keeps the
        // ratio far under the 0.5 gate even on one core.
        let data = straggler_bench_data(3, 6, 120, 42).unwrap();
        assert_eq!(data.cells.len(), 4);
        assert!(data.cells.iter().all(|c| c.identical));

        let off = &data.cells[0];
        let on = &data.cells[1];
        assert_eq!((off.scenario, off.defense), ("slow-rank", "off"));
        assert!(off.millis >= 2.0 * 120.0 * 0.9, "two slowed tasks ride out");
        assert!(
            on.speculative_commits + on.tasks_stolen > 0,
            "the defense actually did something: {on:?}"
        );
        assert!(data.slow_rank_speedup >= 2.0, "{data:?}");
        assert!(completion_gate(&data, 0.5).unwrap().contains("ok"));

        let leave_on = &data.cells[3];
        assert_eq!((leave_on.scenario, leave_on.defense), ("rank-leave", "on"));
        assert_eq!(leave_on.final_ranks, 2, "width shrank by one");
        assert!(
            leave_on.o_tasks_recovered > 0,
            "shrink recovered checkpoints instead of restarting: {leave_on:?}"
        );
        assert!(leave_on.attempts >= 2);
    }

    #[test]
    fn artifact_json_is_complete() {
        let data = straggler_bench_data(3, 6, 60, 7).unwrap();
        let json = render_artifact_json(&data);
        assert!(json.contains("\"experiment\": \"straggler-bench\""));
        assert!(json.contains("\"scenario\": \"slow-rank\""));
        assert!(json.contains("\"scenario\": \"rank-leave\""));
        assert!(json.contains("\"slow_rank_speedup\""));
        assert!(json.contains("\"identical\": true"));
        assert!(render_table(&data).render_text().contains("rank-leave"));
        // Exactly the 2x2 grid, defense off/on per scenario.
        assert_eq!(json.matches("\"defense\": \"off\"").count(), 2);
        assert_eq!(json.matches("\"defense\": \"on\"").count(), 2);
    }

    #[test]
    fn gate_rejects_insufficient_rescue() {
        let mut data = straggler_bench_data(3, 6, 60, 7).unwrap();
        data.slow_rank_speedup = 1.2; // pretend the defense barely helped
        assert!(completion_gate(&data, 0.5).is_err());
    }
}
