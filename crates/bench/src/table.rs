//! A small text-table type shared by every figure generator.

/// A rectangular table with a title, rendered as aligned text or Markdown.
#[derive(Clone, Debug)]
pub struct Table {
    /// Identifier (e.g. `"fig3b"`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row must match `headers.len()`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Column widths for aligned rendering.
    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    /// Renders as aligned plain text.
    pub fn render_text(&self) -> String {
        let w = self.widths();
        let mut out = format!("[{}] {}\n", self.id, self.title);
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = w[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(w.iter().sum::<usize>() + 2 * (w.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Renders as a Markdown table (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        out
    }

    /// Renders as CSV (RFC-4180 quoting where needed) for plotting tools.
    pub fn render_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Looks up a cell by row predicate and column header (test helper).
    pub fn cell(&self, row_match: &str, column: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == column)?;
        self.rows
            .iter()
            .find(|r| r.first().map(String::as_str) == Some(row_match))
            .and_then(|r| r.get(col))
            .map(String::as_str)
    }
}

/// Formats an optional seconds value (`OOM` when absent).
pub fn fmt_secs_opt(secs: Option<f64>) -> String {
    match secs {
        Some(s) => format!("{s:.0}"),
        None => "OOM".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t1", "sample", &["size", "Hadoop", "DataMPI"]);
        t.push_row(vec!["8".into(), "117".into(), "69".into()]);
        t.push_row(vec!["16".into(), "226".into(), "147".into()]);
        t
    }

    #[test]
    fn text_rendering_aligns() {
        let text = sample().render_text();
        assert!(text.contains("[t1] sample"));
        assert!(text.contains("size  Hadoop  DataMPI"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().render_markdown();
        assert!(md.starts_with("### t1"));
        assert!(md.contains("| size | Hadoop | DataMPI |"));
        assert!(md.contains("| 8 | 117 | 69 |"));
    }

    #[test]
    fn cell_lookup() {
        let t = sample();
        assert_eq!(t.cell("8", "DataMPI"), Some("69"));
        assert_eq!(t.cell("16", "Hadoop"), Some("226"));
        assert_eq!(t.cell("99", "Hadoop"), None);
        assert_eq!(t.cell("8", "Spark"), None);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", "x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_rendering_quotes_when_needed() {
        let mut t = Table::new("c", "csv", &["a", "b"]);
        t.push_row(vec!["plain".into(), "with,comma".into()]);
        t.push_row(vec!["with\"quote".into(), "x".into()]);
        let csv = t.render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"with,comma\"");
        assert_eq!(lines[2], "\"with\"\"quote\",x");
    }

    #[test]
    fn oom_formatting() {
        assert_eq!(fmt_secs_opt(Some(12.4)), "12");
        assert_eq!(fmt_secs_opt(None), "OOM");
    }
}
