//! `figures transport-bench` — in-proc vs TCP throughput for the
//! really-executable catalogue (WordCount and Sort), plus a raw frame
//! stream that measures what the event-loop transport alone sustains.
//!
//! Unlike the calibrated simulation behind the paper figures, this
//! benchmark *runs* the DataMPI runtime on identical inputs per
//! workload — over the in-proc channel backend, over a real TCP
//! loopback mesh, and over the same mesh with per-batch LZ4 wire
//! compression — and reports wall time, shuffled bytes, the wire/raw
//! compression ratio, write syscalls per frame (the coalescing win),
//! and throughput for each. A separate 2-rank **stream** microbench
//! pushes bulk frames through the transport with no O/A compute in the
//! way; that row is the one gated in CI (see [`STREAM_GATE_MB_S`]),
//! because workload rows measure the whole job, compute included.
//!
//! The artifact (`BENCH_transport.json`) records both sections; its
//! schema is documented in BENCHMARKS.md.

use std::fmt::Write as _;
use std::time::Instant;

use bytes::Bytes;
use datampi::comm::Frame;
use datampi::observe::Observer;
use datampi::transport::{Backend, TcpOptions, TcpTransport, Transport};
use datampi::{JobConfig, WireCompression};
use dmpi_common::Result;
use dmpi_workloads::ExecWorkload;

use crate::table::Table;

/// Floor on the raw stream's uncompressed loopback throughput, MB/s.
/// Set at ≥4x the thread-per-peer transport's best committed workload
/// number (sort over TCP: 43 MB/s) with headroom — the event loop with
/// coalescing sustains hundreds of MB/s on loopback.
pub const STREAM_GATE_MB_S: f64 = 200.0;

/// One workload measured on one backend configuration.
#[derive(Clone, Debug)]
pub struct TransportRun {
    /// Launcher-facing workload name.
    pub workload: &'static str,
    /// `"inproc"`, `"tcp"`, or `"tcp+lz4"`.
    pub backend: &'static str,
    /// Wall time of the whole job.
    pub seconds: f64,
    /// Framed intermediate bytes the O side emitted.
    pub bytes_emitted: u64,
    /// Records emitted (identical across backends by contract).
    pub records: u64,
    /// Encoded bytes written to sockets, post-compression (0 in-proc).
    pub wire_bytes: u64,
    /// Pre-batching frame bytes handed to the wire encoders (0 in-proc).
    pub raw_bytes: u64,
    /// Logical frames shipped on the wire (0 in-proc).
    pub frames: u64,
    /// Coalesced wire batches sealed (0 in-proc).
    pub batches: u64,
    /// Socket write syscalls (0 in-proc).
    pub syscalls: u64,
    /// Shuffle throughput, emitted MB per wall second.
    pub mb_per_s: f64,
}

impl TransportRun {
    /// Wire bytes per raw byte — < 1.0 when compression is winning.
    pub fn wire_ratio(&self) -> f64 {
        if self.raw_bytes == 0 {
            0.0
        } else {
            self.wire_bytes as f64 / self.raw_bytes as f64
        }
    }

    /// Write syscalls per logical frame — « 1.0 when coalescing wins.
    pub fn syscalls_per_frame(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.syscalls as f64 / self.frames as f64
        }
    }
}

/// One raw 2-rank stream measurement: bulk data frames pushed through
/// the transport with no compute attached.
#[derive(Clone, Debug)]
pub struct StreamRun {
    /// `"tcp"` or `"tcp+lz4"`.
    pub backend: &'static str,
    /// Payload bytes per frame.
    pub payload_bytes: usize,
    /// Data frames streamed.
    pub frames: u64,
    /// Wall time from first send to last frame verified.
    pub seconds: f64,
    /// Encoded bytes that crossed the socket.
    pub wire_bytes: u64,
    /// Pre-batching bytes handed to the encoder.
    pub raw_bytes: u64,
    /// Wire batches sealed.
    pub batches: u64,
    /// Socket write syscalls.
    pub syscalls: u64,
    /// Payload throughput, MB of frame payload per wall second.
    pub mb_per_s: f64,
}

/// The full benchmark: workload grid plus the raw stream section.
#[derive(Clone, Debug)]
pub struct TransportBenchData {
    /// Mesh width used for every workload run.
    pub ranks: usize,
    /// O tasks per job.
    pub tasks: usize,
    /// Input bytes generated per O task.
    pub bytes_per_task: usize,
    /// Coalescing watermark every TCP run used.
    pub batch_bytes: usize,
    /// One entry per (workload, backend config), in-proc first.
    pub runs: Vec<TransportRun>,
    /// Raw stream rows: uncompressed first, then lz4.
    pub streams: Vec<StreamRun>,
}

fn run_once(
    workload: ExecWorkload,
    backend: Backend,
    compression: WireCompression,
    ranks: usize,
    tasks: usize,
    bytes_per_task: usize,
) -> Result<TransportRun> {
    let inputs = workload.inputs(tasks, bytes_per_task, 42);
    let observer = Observer::new();
    let config = JobConfig::new(ranks)
        .with_transport(backend)
        .with_wire_compression(compression)
        .with_observer(observer.clone());
    let start = Instant::now();
    let out = workload.run_inproc(&config, inputs)?;
    let seconds = start.elapsed().as_secs_f64();
    let snapshot = observer.registry().snapshot();
    let mb = out.stats.bytes_emitted as f64 / (1024.0 * 1024.0);
    let name = match (backend, compression) {
        (Backend::InProc, _) => "inproc",
        (Backend::Tcp, WireCompression::None) => "tcp",
        (Backend::Tcp, WireCompression::Lz4) => "tcp+lz4",
    };
    Ok(TransportRun {
        workload: workload.name(),
        backend: name,
        seconds,
        bytes_emitted: out.stats.bytes_emitted,
        records: out.stats.records_emitted,
        wire_bytes: snapshot.wire_bytes_sent,
        raw_bytes: snapshot.wire_raw_bytes_sent,
        frames: snapshot.wire_frames_sent,
        batches: snapshot.wire_batches_sent,
        syscalls: snapshot.wire_send_syscalls,
        mb_per_s: if seconds > 0.0 { mb / seconds } else { 0.0 },
    })
}

/// Streams `frames` data frames of `payload_bytes` each from rank 0 to
/// rank 1 over a 2-rank loopback mesh and reports payload throughput.
/// The payload is catalogue text (compressible like real shuffle data);
/// every received frame passes its CRC gate before it counts.
pub fn stream_once(
    compression: WireCompression,
    payload_bytes: usize,
    frames: u64,
) -> Result<StreamRun> {
    // Text payload from the same generator the workloads read, so the
    // lz4 row sees realistic (not synthetic) compressibility.
    let text = ExecWorkload::WordCount.inputs(1, payload_bytes.max(1), 42);
    let mut payload = text
        .first()
        .map(|b| b.to_vec())
        .filter(|b| !b.is_empty())
        .unwrap_or_else(|| vec![b'x'; payload_bytes.max(1)]);
    payload.resize(payload_bytes.max(1), b' ');
    let payload = Bytes::from(payload);

    let opts = TcpOptions {
        compression,
        ..TcpOptions::default()
    };
    let mut fabric = TcpTransport::loopback(2, opts);
    let mut eps = fabric.open()?;
    let mut ep1 = eps.pop().expect("two endpoints");
    let ep0 = eps.pop().expect("two endpoints");

    let rx = ep1.take_receiver();
    let sink = std::thread::spawn(move || -> Result<u64> {
        let mut data = 0u64;
        let mut eofs = 0usize;
        while eofs < 2 {
            match rx.recv()? {
                Some(f @ Frame::Data { .. }) => {
                    f.verify()?;
                    data += 1;
                }
                Some(Frame::Eof { .. }) => eofs += 1,
                None => break,
            }
        }
        Ok(data)
    });

    let senders = ep0.senders();
    let ep1_senders = ep1.senders();
    let start = Instant::now();
    for _ in 0..frames {
        senders[1].send(Frame::data(0, 0, payload.clone()));
    }
    for s in &senders {
        s.send(Frame::Eof { from_rank: 0 });
    }
    for s in &ep1_senders {
        s.send(Frame::Eof { from_rank: 1 });
    }
    let received = sink.join().expect("stream sink panicked")?;
    let seconds = start.elapsed().as_secs_f64();
    drop(senders);
    drop(ep1_senders);
    let wire = ep0.close();
    ep1.close();
    if received != frames {
        return Err(dmpi_common::Error::InvalidState(format!(
            "stream lost frames: sent {frames}, received {received}"
        )));
    }
    let mb = (frames as f64 * payload.len() as f64) / (1024.0 * 1024.0);
    Ok(StreamRun {
        backend: match compression {
            WireCompression::None => "tcp",
            WireCompression::Lz4 => "tcp+lz4",
        },
        payload_bytes: payload.len(),
        frames,
        seconds,
        wire_bytes: wire.bytes_sent,
        raw_bytes: wire.raw_bytes_sent,
        batches: wire.batches_sent,
        syscalls: wire.send_syscalls,
        mb_per_s: if seconds > 0.0 { mb / seconds } else { 0.0 },
    })
}

/// Best-of-`n` wrapper around [`stream_once`]: the stream measures peak
/// sustainable transport throughput, and a single run is at the mercy of
/// whatever else the host is doing (CI runs it right after the full test
/// suite), so the gate compares against the best of a few short runs.
fn stream_best_of(
    n: usize,
    compression: WireCompression,
    payload_bytes: usize,
    frames: u64,
) -> Result<StreamRun> {
    let mut best: Option<StreamRun> = None;
    for _ in 0..n.max(1) {
        let run = stream_once(compression, payload_bytes, frames)?;
        if best.as_ref().is_none_or(|b| run.mb_per_s > b.mb_per_s) {
            best = Some(run);
        }
    }
    Ok(best.expect("n >= 1 stream runs"))
}

/// Runs WordCount and Sort over {in-proc, tcp, tcp+lz4} with identical
/// inputs, then the raw stream pair. All backends of a workload must
/// emit identical record counts — the transport is plumbing, not
/// semantics — and that invariant is asserted here.
pub fn transport_bench_data(
    ranks: usize,
    tasks: usize,
    bytes_per_task: usize,
    stream_frames: u64,
) -> Result<TransportBenchData> {
    let mut runs = Vec::new();
    for workload in [ExecWorkload::WordCount, ExecWorkload::TextSort] {
        let grid = [
            (Backend::InProc, WireCompression::None),
            (Backend::Tcp, WireCompression::None),
            (Backend::Tcp, WireCompression::Lz4),
        ];
        for (backend, compression) in grid {
            let run = run_once(workload, backend, compression, ranks, tasks, bytes_per_task)?;
            if let Some(first) = runs
                .iter()
                .find(|r: &&TransportRun| r.workload == run.workload)
            {
                if first.records != run.records {
                    return Err(dmpi_common::Error::InvalidState(format!(
                        "{}: backends disagree on record count ({} vs {})",
                        run.workload, first.records, run.records
                    )));
                }
            }
            runs.push(run);
        }
    }
    let streams = vec![
        stream_best_of(3, WireCompression::None, 256 * 1024, stream_frames)?,
        stream_best_of(3, WireCompression::Lz4, 256 * 1024, stream_frames)?,
    ];
    Ok(TransportBenchData {
        ranks,
        tasks,
        bytes_per_task,
        batch_bytes: datampi::config::DEFAULT_WIRE_BATCH_BYTES,
        runs,
        streams,
    })
}

/// The CI gate: the uncompressed raw stream must sustain
/// [`STREAM_GATE_MB_S`] on loopback. Returns the measured number.
pub fn check_stream_gate(data: &TransportBenchData) -> Result<f64> {
    let stream = data
        .streams
        .iter()
        .find(|s| s.backend == "tcp")
        .ok_or_else(|| dmpi_common::Error::InvalidState("no uncompressed stream row".into()))?;
    if stream.mb_per_s < STREAM_GATE_MB_S {
        return Err(dmpi_common::Error::InvalidState(format!(
            "transport regression: raw stream sustained {:.1} MB/s, gate is {:.0} MB/s",
            stream.mb_per_s, STREAM_GATE_MB_S
        )));
    }
    Ok(stream.mb_per_s)
}

/// The EXPERIMENTS.md entry: a reduced grid plus the stream pair, run
/// by `figures all` alongside the paper figures.
pub fn fig_ext_transport() -> Result<Table> {
    let data = transport_bench_data(2, 4, 16 * 1024, 64)?;
    Ok(render_table_named(&data, "fig-ext-transport-v2"))
}

/// Renders the report table (workload grid plus stream rows).
pub fn render_table(data: &TransportBenchData) -> Table {
    render_table_named(data, "transport-bench")
}

fn render_table_named(data: &TransportBenchData, name: &str) -> Table {
    let mut table = Table::new(
        name,
        format!(
            "Transport backends: {} ranks, {} O tasks, {} B/task, {} KiB batches",
            data.ranks,
            data.tasks,
            data.bytes_per_task,
            data.batch_bytes / 1024
        ),
        &[
            "Workload",
            "Backend",
            "Seconds",
            "Shuffle MB",
            "Wire MB",
            "Wire/Raw",
            "Sys/Frame",
            "MB/s",
        ],
    );
    for run in &data.runs {
        table.push_row(vec![
            run.workload.to_string(),
            run.backend.to_string(),
            format!("{:.4}", run.seconds),
            format!("{:.2}", run.bytes_emitted as f64 / (1024.0 * 1024.0)),
            format!("{:.2}", run.wire_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.3}", run.wire_ratio()),
            format!("{:.3}", run.syscalls_per_frame()),
            format!("{:.1}", run.mb_per_s),
        ]);
    }
    for s in &data.streams {
        table.push_row(vec![
            "stream".to_string(),
            s.backend.to_string(),
            format!("{:.4}", s.seconds),
            format!(
                "{:.2}",
                s.frames as f64 * s.payload_bytes as f64 / (1024.0 * 1024.0)
            ),
            format!("{:.2}", s.wire_bytes as f64 / (1024.0 * 1024.0)),
            format!(
                "{:.3}",
                if s.raw_bytes == 0 {
                    0.0
                } else {
                    s.wire_bytes as f64 / s.raw_bytes as f64
                }
            ),
            format!(
                "{:.3}",
                if s.frames == 0 {
                    0.0
                } else {
                    s.syscalls as f64 / s.frames as f64
                }
            ),
            format!("{:.1}", s.mb_per_s),
        ]);
    }
    table
}

/// Renders the `BENCH_transport.json` artifact.
pub fn render_artifact_json(data: &TransportBenchData) -> String {
    let mut out = String::from("{\n  \"experiment\": \"transport-bench\",\n");
    let _ = writeln!(
        out,
        "  \"ranks\": {}, \"tasks\": {}, \"bytes_per_task\": {}, \"batch_bytes\": {},",
        data.ranks, data.tasks, data.bytes_per_task, data.batch_bytes
    );
    out.push_str("  \"runs\": [\n");
    for (i, run) in data.runs.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"workload\": \"{}\", \"backend\": \"{}\", \"seconds\": {:.4}, \
             \"bytes_emitted\": {}, \"records\": {}, \"wire_bytes\": {}, \
             \"raw_bytes\": {}, \"frames\": {}, \"batches\": {}, \"syscalls\": {}, \
             \"mb_per_s\": {:.2}}}{}",
            run.workload,
            run.backend,
            run.seconds,
            run.bytes_emitted,
            run.records,
            run.wire_bytes,
            run.raw_bytes,
            run.frames,
            run.batches,
            run.syscalls,
            run.mb_per_s,
            if i + 1 < data.runs.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n  \"streams\": [\n");
    for (i, s) in data.streams.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"backend\": \"{}\", \"payload_bytes\": {}, \"frames\": {}, \
             \"seconds\": {:.4}, \"wire_bytes\": {}, \"raw_bytes\": {}, \"batches\": {}, \
             \"syscalls\": {}, \"mb_per_s\": {:.2}}}{}",
            s.backend,
            s.payload_bytes,
            s.frames,
            s.seconds,
            s.wire_bytes,
            s.raw_bytes,
            s.batches,
            s.syscalls,
            s.mb_per_s,
            if i + 1 < data.streams.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_measures_all_backends_and_tcp_reports_wire_detail() {
        let data = transport_bench_data(2, 4, 1500, 16).unwrap();
        assert_eq!(data.runs.len(), 6, "2 workloads x 3 backend configs");
        for trio in data.runs.chunks(3) {
            assert_eq!(trio[0].backend, "inproc");
            assert_eq!(trio[1].backend, "tcp");
            assert_eq!(trio[2].backend, "tcp+lz4");
            assert_eq!(trio[0].records, trio[1].records);
            assert_eq!(trio[0].records, trio[2].records);
            assert_eq!(trio[0].wire_bytes, 0, "in-proc moves handles, not bytes");
            for tcp in &trio[1..] {
                assert!(tcp.wire_bytes > 0, "tcp encodes onto real sockets");
                assert!(tcp.raw_bytes > 0 && tcp.frames > 0 && tcp.batches > 0);
                assert!(tcp.batches <= tcp.frames, "batches pack >= 1 frame");
            }
            assert!(
                trio[2].wire_bytes <= trio[1].wire_bytes,
                "lz4 never inflates the wire (worst case: stored batches)"
            );
        }
        assert_eq!(data.streams.len(), 2);
        for s in &data.streams {
            assert!(s.frames == 16 && s.wire_bytes > 0 && s.mb_per_s > 0.0);
        }
        let json = render_artifact_json(&data);
        assert!(json.contains("\"backend\": \"tcp+lz4\""));
        assert!(json.contains("\"streams\": ["));
        let text = render_table(&data).render_text();
        assert!(text.contains("wordcount") && text.contains("stream"));
    }
}
