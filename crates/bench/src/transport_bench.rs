//! `figures transport-bench` — in-proc vs TCP throughput for the
//! really-executable catalogue (WordCount and Sort).
//!
//! Unlike the calibrated simulation behind the paper figures, this
//! benchmark *runs* the DataMPI runtime twice per workload on identical
//! inputs — once over the in-proc channel backend and once over a real
//! TCP loopback mesh — and reports wall time, shuffled bytes, and
//! throughput for each. The artifact (`BENCH_transport.json`) records
//! the cost of serialising frames onto real sockets relative to moving
//! `Bytes` handles between threads.

use std::fmt::Write as _;
use std::time::Instant;

use datampi::observe::Observer;
use datampi::transport::Backend;
use datampi::JobConfig;
use dmpi_common::Result;
use dmpi_workloads::ExecWorkload;

use crate::table::Table;

/// One workload measured on one backend.
#[derive(Clone, Debug)]
pub struct TransportRun {
    /// Launcher-facing workload name.
    pub workload: &'static str,
    /// `"inproc"` or `"tcp"`.
    pub backend: &'static str,
    /// Wall time of the whole job.
    pub seconds: f64,
    /// Framed intermediate bytes the O side emitted.
    pub bytes_emitted: u64,
    /// Records emitted (identical across backends by contract).
    pub records: u64,
    /// Encoded bytes written to sockets (0 for in-proc).
    pub wire_bytes: u64,
    /// Shuffle throughput, emitted MB per wall second.
    pub mb_per_s: f64,
}

/// The full benchmark: every row of the report table.
#[derive(Clone, Debug)]
pub struct TransportBenchData {
    /// Mesh width used for every run.
    pub ranks: usize,
    /// O tasks per job.
    pub tasks: usize,
    /// Input bytes generated per O task.
    pub bytes_per_task: usize,
    /// One entry per (workload, backend) pair, in-proc first.
    pub runs: Vec<TransportRun>,
}

fn backend_name(backend: Backend) -> &'static str {
    match backend {
        Backend::InProc => "inproc",
        Backend::Tcp => "tcp",
    }
}

fn run_once(
    workload: ExecWorkload,
    backend: Backend,
    ranks: usize,
    tasks: usize,
    bytes_per_task: usize,
) -> Result<TransportRun> {
    let inputs = workload.inputs(tasks, bytes_per_task, 42);
    let observer = Observer::new();
    let config = JobConfig::new(ranks)
        .with_transport(backend)
        .with_observer(observer.clone());
    let start = Instant::now();
    let out = workload.run_inproc(&config, inputs)?;
    let seconds = start.elapsed().as_secs_f64();
    let snapshot = observer.registry().snapshot();
    let mb = out.stats.bytes_emitted as f64 / (1024.0 * 1024.0);
    Ok(TransportRun {
        workload: workload.name(),
        backend: backend_name(backend),
        seconds,
        bytes_emitted: out.stats.bytes_emitted,
        records: out.stats.records_emitted,
        wire_bytes: snapshot.wire_bytes_sent,
        mb_per_s: if seconds > 0.0 { mb / seconds } else { 0.0 },
    })
}

/// Runs WordCount and Sort on both backends with identical inputs.
/// Both backends must emit identical record counts — the transport is
/// plumbing, not semantics — and that invariant is asserted here.
pub fn transport_bench_data(
    ranks: usize,
    tasks: usize,
    bytes_per_task: usize,
) -> Result<TransportBenchData> {
    let mut runs = Vec::new();
    for workload in [ExecWorkload::WordCount, ExecWorkload::TextSort] {
        let inproc = run_once(workload, Backend::InProc, ranks, tasks, bytes_per_task)?;
        let tcp = run_once(workload, Backend::Tcp, ranks, tasks, bytes_per_task)?;
        if inproc.records != tcp.records {
            return Err(dmpi_common::Error::InvalidState(format!(
                "{}: backends disagree on record count ({} vs {})",
                workload.name(),
                inproc.records,
                tcp.records
            )));
        }
        runs.push(inproc);
        runs.push(tcp);
    }
    Ok(TransportBenchData {
        ranks,
        tasks,
        bytes_per_task,
        runs,
    })
}

/// Renders the report table.
pub fn render_table(data: &TransportBenchData) -> Table {
    let mut table = Table::new(
        "transport-bench",
        format!(
            "Transport backends: {} ranks, {} O tasks, {} B/task",
            data.ranks, data.tasks, data.bytes_per_task
        ),
        &[
            "Workload",
            "Backend",
            "Seconds",
            "Shuffle MB",
            "Wire MB",
            "MB/s",
        ],
    );
    for run in &data.runs {
        table.push_row(vec![
            run.workload.to_string(),
            run.backend.to_string(),
            format!("{:.4}", run.seconds),
            format!("{:.2}", run.bytes_emitted as f64 / (1024.0 * 1024.0)),
            format!("{:.2}", run.wire_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.1}", run.mb_per_s),
        ]);
    }
    table
}

/// Renders the `BENCH_transport.json` artifact.
pub fn render_artifact_json(data: &TransportBenchData) -> String {
    let mut out = String::from("{\n  \"experiment\": \"transport-bench\",\n");
    let _ = writeln!(
        out,
        "  \"ranks\": {}, \"tasks\": {}, \"bytes_per_task\": {},",
        data.ranks, data.tasks, data.bytes_per_task
    );
    out.push_str("  \"runs\": [\n");
    for (i, run) in data.runs.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"workload\": \"{}\", \"backend\": \"{}\", \"seconds\": {:.4}, \
             \"bytes_emitted\": {}, \"records\": {}, \"wire_bytes\": {}, \
             \"mb_per_s\": {:.2}}}{}",
            run.workload,
            run.backend,
            run.seconds,
            run.bytes_emitted,
            run.records,
            run.wire_bytes,
            run.mb_per_s,
            if i + 1 < data.runs.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_backends_measured_and_tcp_reports_wire_bytes() {
        let data = transport_bench_data(2, 4, 1500).unwrap();
        assert_eq!(data.runs.len(), 4, "2 workloads x 2 backends");
        for pair in data.runs.chunks(2) {
            assert_eq!(pair[0].backend, "inproc");
            assert_eq!(pair[1].backend, "tcp");
            assert_eq!(pair[0].records, pair[1].records);
            assert_eq!(pair[0].wire_bytes, 0, "in-proc moves handles, not bytes");
            assert!(pair[1].wire_bytes > 0, "tcp encodes onto real sockets");
        }
        let json = render_artifact_json(&data);
        assert!(json.contains("\"backend\": \"tcp\""));
        assert!(render_table(&data).render_text().contains("wordcount"));
    }
}
