//! A from-scratch LZ77 block codec.
//!
//! The paper's *Normal Sort* workload reads **compressed sequence files**
//! produced by BigDataBench's `ToSeqFile` (Gzip-compressed). We cannot ship
//! gzip, so this module implements a self-contained LZ77 codec with greedy
//! hash-chain matching over a 64 KiB window. What matters for reproducing
//! the workload is preserved: the on-disk input is substantially smaller
//! than the logical data, and reading it costs CPU (decompression) instead
//! of disk bandwidth.
//!
//! ## Block format
//!
//! ```text
//! varint(uncompressed_len)
//! token*            where token is either
//!   varint(len << 1 | 0) byte[len]        -- literal run
//!   varint(len << 1 | 1) varint(distance) -- match: copy `len` bytes from
//!                                            `distance` bytes back
//! ```
//!
//! Matches may overlap their own output (distance < len), RLE-style.

use crate::error::{Error, Result};
use crate::varint;

/// Minimum match length worth encoding — below this a literal is smaller.
const MIN_MATCH: usize = 4;
/// Maximum match length per token (keeps varints short; runs just split).
const MAX_MATCH: usize = 1 << 16;
/// Sliding-window size: how far back a match may reach.
const WINDOW: usize = 1 << 16;
/// Number of hash-chain buckets (power of two).
const HASH_BUCKETS: usize = 1 << 15;
/// How many chain candidates to try before giving up (compression quality
/// vs speed knob).
const MAX_CHAIN_PROBES: usize = 16;

#[inline]
fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9e37_79b1) >> (32 - 15)) as usize & (HASH_BUCKETS - 1)
}

/// Compresses `input` into a self-describing block.
///
/// # Examples
/// ```
/// let data = b"to be or not to be, that is the question".repeat(20);
/// let block = dmpi_common::codec::compress(&data);
/// assert!(block.len() < data.len() / 2);
/// assert_eq!(dmpi_common::codec::decompress(&block).unwrap(), data);
/// ```
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    varint::write_u64(&mut out, input.len() as u64);

    // head[h] -> most recent position with hash h; prev[pos % WINDOW] -> the
    // previous position in that chain.
    let mut head = vec![usize::MAX; HASH_BUCKETS];
    let mut prev = vec![usize::MAX; WINDOW];

    let mut literal_start = 0usize;
    let mut pos = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, input: &[u8]| {
        let mut start = from;
        while start < to {
            let len = (to - start).min(MAX_MATCH);
            varint::write_u64(out, (len as u64) << 1);
            out.extend_from_slice(&input[start..start + len]);
            start += len;
        }
    };

    while pos + MIN_MATCH <= input.len() {
        let h = hash4(&input[pos..]);
        let mut candidate = head[h];
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut probes = 0;
        while candidate != usize::MAX && probes < MAX_CHAIN_PROBES {
            let dist = pos - candidate;
            if dist > WINDOW {
                break;
            }
            let max_len = (input.len() - pos).min(MAX_MATCH);
            let mut len = 0;
            while len < max_len && input[candidate + len] == input[pos + len] {
                len += 1;
            }
            if len > best_len {
                best_len = len;
                best_dist = dist;
                if len == max_len {
                    break;
                }
            }
            candidate = prev[candidate % WINDOW];
            probes += 1;
        }

        if best_len >= MIN_MATCH {
            flush_literals(&mut out, literal_start, pos, input);
            varint::write_u64(&mut out, ((best_len as u64) << 1) | 1);
            varint::write_u64(&mut out, best_dist as u64);
            // Insert hash entries for the matched region (sparsely: every
            // position would be ideal but costs; stride 1 is fine here).
            let end = pos + best_len;
            while pos < end && pos + MIN_MATCH <= input.len() {
                let h = hash4(&input[pos..]);
                prev[pos % WINDOW] = head[h];
                head[h] = pos;
                pos += 1;
            }
            pos = end;
            literal_start = pos;
        } else {
            prev[pos % WINDOW] = head[h];
            head[h] = pos;
            pos += 1;
        }
    }
    flush_literals(&mut out, literal_start, input.len(), input);
    out
}

/// Decompresses a block produced by [`compress`].
pub fn decompress(block: &[u8]) -> Result<Vec<u8>> {
    let (expected_len, mut offset) = varint::read_u64(block)?;
    let expected_len =
        usize::try_from(expected_len).map_err(|_| Error::Codec("length overflow".into()))?;
    let mut out = Vec::with_capacity(expected_len);
    while offset < block.len() {
        let (token, n) = varint::read_u64(&block[offset..])?;
        offset += n;
        let len = (token >> 1) as usize;
        if token & 1 == 0 {
            // literal run
            let end = offset
                .checked_add(len)
                .ok_or_else(|| Error::Codec("literal length overflow".into()))?;
            if end > block.len() {
                return Err(Error::Codec("literal run past end of block".into()));
            }
            out.extend_from_slice(&block[offset..end]);
            offset = end;
        } else {
            // match
            let (dist, n) = varint::read_u64(&block[offset..])?;
            offset += n;
            let dist = dist as usize;
            if dist == 0 || dist > out.len() {
                return Err(Error::Codec(format!(
                    "bad match distance {dist} at output length {}",
                    out.len()
                )));
            }
            let start = out.len() - dist;
            // Overlapping copies must proceed byte-by-byte.
            for i in 0..len {
                let b = out[start + i];
                out.push(b);
            }
        }
        if out.len() > expected_len {
            return Err(Error::Codec(format!(
                "decompressed past declared length: {} > {expected_len}",
                out.len()
            )));
        }
    }
    if out.len() != expected_len {
        return Err(Error::Codec(format!(
            "short block: got {} of {expected_len} bytes",
            out.len()
        )));
    }
    Ok(out)
}

/// Reads just the declared uncompressed length of a block without
/// decompressing — the simulator uses this for cost accounting.
pub fn uncompressed_len(block: &[u8]) -> Result<u64> {
    Ok(varint::read_u64(block)?.0)
}

/// Compression ratio achieved on `input` (uncompressed / compressed). Used
/// by `datagen` to report corpus statistics to the simulator.
pub fn ratio(input: &[u8]) -> f64 {
    if input.is_empty() {
        return 1.0;
    }
    let c = compress(input);
    input.len() as f64 / c.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data, "round trip failed for {} bytes", data.len());
        assert_eq!(uncompressed_len(&c).unwrap(), data.len() as u64);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
        round_trip(b"abcd");
    }

    #[test]
    fn repetitive_input_compresses_well() {
        let data = b"the quick brown fox ".repeat(500);
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 5,
            "expected >5x on repetitive text, got {} -> {}",
            data.len(),
            c.len()
        );
        round_trip(&data);
    }

    #[test]
    fn rle_style_overlapping_matches() {
        let data = vec![b'x'; 100_000];
        let c = compress(&data);
        assert!(c.len() < 100, "pure run should collapse, got {}", c.len());
        round_trip(&data);
    }

    #[test]
    fn incompressible_input_survives() {
        // Pseudo-random bytes: expansion must be bounded and reversible.
        let mut state = 0x12345678u64;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() < data.len() + data.len() / 16 + 32);
        round_trip(&data);
    }

    #[test]
    fn text_like_input() {
        let mut data = Vec::new();
        for i in 0..2000 {
            data.extend_from_slice(
                format!("line {} of synthetic wiki text corpus\n", i % 97).as_bytes(),
            );
        }
        let c = compress(&data);
        assert!(c.len() < data.len() / 2);
        round_trip(&data);
    }

    #[test]
    fn corrupt_blocks_are_rejected_not_panicking() {
        let c = compress(b"hello world hello world hello world");
        // truncation
        for cut in 1..c.len() {
            let _ = decompress(&c[..cut]); // must not panic
        }
        // bit flips
        for i in 0..c.len() {
            let mut bad = c.clone();
            bad[i] ^= 0xff;
            let _ = decompress(&bad); // must not panic; may error or differ
        }
    }

    #[test]
    fn bad_distance_is_an_error() {
        let mut block = Vec::new();
        varint::write_u64(&mut block, 10); // claims 10 bytes
        varint::write_u64(&mut block, (4 << 1) | 1); // match len 4
        varint::write_u64(&mut block, 3); // distance 3 with empty output
        assert!(decompress(&block).is_err());
    }

    #[test]
    fn declared_length_mismatch_is_an_error() {
        let mut block = Vec::new();
        varint::write_u64(&mut block, 100); // claims 100 bytes
        varint::write_u64(&mut block, 3 << 1); // literal of 3
        block.extend_from_slice(b"abc");
        assert!(decompress(&block).is_err());
    }

    #[test]
    fn ratio_reports_sensibly() {
        assert!(ratio(&b"ab".repeat(10_000)) > 5.0);
        assert!((ratio(b"") - 1.0).abs() < f64::EPSILON);
    }
}
