//! Raw-byte comparators, after Hadoop's `RawComparator`.
//!
//! Sorting serialized records without deserializing them is one of the core
//! MapReduce efficiency tricks; both the mapred engine's sort/spill path and
//! DataMPI's A-side grouping use these comparators.

use std::cmp::Ordering;

use crate::kv::Record;
use crate::varint;

/// Compares two serialized keys.
pub trait RawComparator: Send + Sync {
    /// Compares raw key bytes.
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering;

    /// Compares two records by key (default: delegate to `compare`).
    fn compare_records(&self, a: &Record, b: &Record) -> Ordering {
        self.compare(&a.key, &b.key)
    }
}

/// Lexicographic byte comparison — correct for UTF-8 text keys and for the
/// sequence-file keys used by the Sort workloads.
#[derive(Clone, Copy, Debug, Default)]
pub struct BytesComparator;

impl RawComparator for BytesComparator {
    #[inline]
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        a.cmp(b)
    }
}

/// Compares keys that are varint-encoded `u64`s numerically.
#[derive(Clone, Copy, Debug, Default)]
pub struct VarintU64Comparator;

impl RawComparator for VarintU64Comparator {
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        let av = varint::read_u64(a).map(|(v, _)| v).unwrap_or(u64::MAX);
        let bv = varint::read_u64(b).map(|(v, _)| v).unwrap_or(u64::MAX);
        av.cmp(&bv)
    }
}

/// Reverses another comparator (descending sorts).
#[derive(Clone, Copy, Debug)]
pub struct Reversed<C>(pub C);

impl<C: RawComparator> RawComparator for Reversed<C> {
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        self.0.compare(b, a)
    }
}

/// Sorts a mutable slice of records with a raw comparator, breaking key ties
/// by value bytes so results are fully deterministic.
///
/// # Stability invariant
///
/// This uses an **unstable** sort on purpose. The effective comparator —
/// `(cmp(key), value)` everywhere in this codebase, `(key, value, run)`
/// in the A-side merge — is *total up to indistinguishability*: two
/// records it reports `Equal` for have byte-identical keys and values, so
/// any permutation of them is the same output. Stability therefore buys
/// nothing, while `sort_unstable_by` (pdqsort) avoids the stable sort's
/// allocation and runs faster on the spill path. Callers adding a new
/// comparator must preserve that property (or sort stably themselves) if
/// they care about the relative order of equal-comparing records.
pub fn sort_records<C: RawComparator>(records: &mut [Record], cmp: &C) {
    records.sort_unstable_by(|a, b| {
        cmp.compare(&a.key, &b.key)
            .then_with(|| a.value.cmp(&b.value))
    });
}

/// Partitions at or below this size sort via the comparison fallback
/// instead of another radix pass — counting 257 buckets costs more than
/// pdqsort on tiny slices.
const RADIX_FALLBACK_AT: usize = 64;

/// Which kernel seals a sorted spill run. Both kernels produce the exact
/// same order — `(key bytes lexicographic, then value)` — so the choice
/// is purely a performance dimension (benchmarked by
/// `figures hotpath-bench`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SortKernel {
    /// `sort_unstable_by` over the `(key, value)` comparator (pdqsort).
    Comparison,
    /// MSD radix on key bytes with the comparison fallback on small
    /// partitions — the default production kernel.
    #[default]
    Radix,
}

impl SortKernel {
    /// Kernel name for benchmark tables (`"std"` / `"radix"`).
    pub fn name(self) -> &'static str {
        match self {
            SortKernel::Comparison => "std",
            SortKernel::Radix => "radix",
        }
    }

    /// Sorts `records` into `(key, value)` order with this kernel.
    pub fn sort(self, records: &mut [Record]) {
        match self {
            SortKernel::Comparison => sort_records(records, &BytesComparator),
            SortKernel::Radix => radix_sort_records(records),
        }
    }
}

/// Sorts records by raw key bytes (then value) with an MSD radix sort —
/// equivalent to `sort_records(records, &BytesComparator)`, byte for
/// byte, but distribution-based: one counting pass per shared-prefix
/// depth instead of `O(n log n)` full key comparisons.
///
/// Partitions at or below `RADIX_FALLBACK_AT` records fall back to
/// `sort_unstable_by` with the same `(key, value)` tiebreak (the total
/// order documented on [`sort_records`], so unstable is safe). Keys
/// shorter than the current depth form their own leading bucket; records
/// inside it have fully-equal keys and are ordered by value only.
pub fn radix_sort_records(records: &mut [Record]) {
    // Explicit work stack: recursion depth would otherwise track the
    // longest shared key prefix, which adversarial inputs control.
    let mut work: Vec<(usize, usize, usize)> = vec![(0, records.len(), 0)];
    while let Some((lo, hi, depth)) = work.pop() {
        let part = &mut records[lo..hi];
        if part.len() <= RADIX_FALLBACK_AT {
            // All keys in this partition share their first `depth` bytes,
            // so comparing full keys is equivalent and simplest.
            part.sort_unstable_by(|a, b| a.key.cmp(&b.key).then_with(|| a.value.cmp(&b.value)));
            continue;
        }
        // Bucket 0 = keys exhausted at this depth (they sort first);
        // bucket b+1 = key byte `b` at this depth.
        let bucket = |r: &Record| -> usize {
            match r.key.get(depth) {
                Some(&b) => b as usize + 1,
                None => 0,
            }
        };
        let mut counts = [0usize; 257];
        for r in part.iter() {
            counts[bucket(r)] += 1;
        }
        let mut starts = [0usize; 257];
        let mut sum = 0usize;
        for (s, c) in starts.iter_mut().zip(counts.iter()) {
            *s = sum;
            sum += c;
        }
        // American-flag pass: swap each record into its bucket region.
        let mut heads = starts;
        let mut ends = [0usize; 257];
        for b in 0..257 {
            ends[b] = starts[b] + counts[b];
        }
        for b in 0..257 {
            while heads[b] < ends[b] {
                let tb = bucket(&part[heads[b]]);
                if tb == b {
                    heads[b] += 1;
                } else {
                    part.swap(heads[b], heads[tb]);
                    heads[tb] += 1;
                }
            }
        }
        // Exhausted-key bucket: keys are fully equal here (shorter keys
        // landed in bucket 0 at an earlier depth), so order by value.
        if counts[0] > 1 {
            part[starts[0]..starts[0] + counts[0]].sort_unstable_by(|a, b| a.value.cmp(&b.value));
        }
        for b in 1..257 {
            if counts[b] > 1 {
                work.push((lo + starts[b], lo + starts[b] + counts[b], depth + 1));
            }
        }
    }
}

/// Checks that `records` is non-decreasing under `cmp` — used by tests and
/// by merge-phase debug assertions.
pub fn is_sorted<C: RawComparator>(records: &[Record], cmp: &C) -> bool {
    records
        .windows(2)
        .all(|w| cmp.compare(&w[0].key, &w[1].key) != Ordering::Greater)
}

/// K-way merge of already-sorted runs into one sorted vector.
///
/// This is the algorithm both the mapred engine's spill merge and DataMPI's
/// A-side grouped iteration use. Runs must each be sorted under `cmp`.
pub fn merge_sorted_runs<C: RawComparator>(runs: Vec<Vec<Record>>, cmp: &C) -> Vec<Record> {
    use std::collections::BinaryHeap;

    struct HeapItem {
        /// Sort key ordering is inverted because BinaryHeap is a max-heap.
        ord: Vec<u8>,
        tiebreak: Vec<u8>,
        run: usize,
        idx: usize,
    }
    impl PartialEq for HeapItem {
        fn eq(&self, other: &Self) -> bool {
            self.ord == other.ord && self.tiebreak == other.tiebreak && self.run == other.run
        }
    }
    impl Eq for HeapItem {}
    impl PartialOrd for HeapItem {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for HeapItem {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reverse for min-heap behaviour; run index keeps it total.
            other
                .ord
                .cmp(&self.ord)
                .then_with(|| other.tiebreak.cmp(&self.tiebreak))
                .then_with(|| other.run.cmp(&self.run))
        }
    }

    let total: usize = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut heap = BinaryHeap::with_capacity(runs.len());
    for (i, run) in runs.iter().enumerate() {
        if let Some(first) = run.first() {
            debug_assert!(is_sorted(run, cmp), "merge input run {i} not sorted");
            heap.push(HeapItem {
                ord: first.key.to_vec(),
                tiebreak: first.value.to_vec(),
                run: i,
                idx: 0,
            });
        }
    }
    while let Some(item) = heap.pop() {
        let rec = runs[item.run][item.idx].clone();
        out.push(rec);
        let next = item.idx + 1;
        if next < runs[item.run].len() {
            let r = &runs[item.run][next];
            heap.push(HeapItem {
                ord: r.key.to_vec(),
                tiebreak: r.value.to_vec(),
                run: item.run,
                idx: next,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn rec(k: &str, v: &str) -> Record {
        Record::from_strs(k, v)
    }

    #[test]
    fn bytes_comparator_is_lexicographic() {
        let c = BytesComparator;
        assert_eq!(c.compare(b"a", b"b"), Ordering::Less);
        assert_eq!(c.compare(b"ab", b"a"), Ordering::Greater);
        assert_eq!(c.compare(b"", b""), Ordering::Equal);
    }

    #[test]
    fn varint_comparator_is_numeric() {
        let c = VarintU64Comparator;
        let mut a = Vec::new();
        let mut b = Vec::new();
        varint::write_u64(&mut a, 300); // two bytes
        varint::write_u64(&mut b, 5); // one byte but numerically smaller
        assert_eq!(c.compare(&a, &b), Ordering::Greater);
        // Lexicographic on raw bytes would have said Less (0xAC < 0x05 is
        // false, but multi-byte comparisons are what trips naive code).
    }

    #[test]
    fn reversed_flips_order() {
        let c = Reversed(BytesComparator);
        assert_eq!(c.compare(b"a", b"b"), Ordering::Greater);
    }

    #[test]
    fn sort_and_check() {
        let mut v = vec![rec("c", "1"), rec("a", "2"), rec("b", "3"), rec("a", "1")];
        assert!(!is_sorted(&v, &BytesComparator));
        sort_records(&mut v, &BytesComparator);
        assert!(is_sorted(&v, &BytesComparator));
        assert_eq!(v[0].value_utf8(), "1"); // ("a","1") before ("a","2")
    }

    #[test]
    fn merge_of_sorted_runs_equals_global_sort() {
        let run1 = vec![rec("a", "1"), rec("d", "4"), rec("f", "6")];
        let run2 = vec![rec("b", "2"), rec("e", "5")];
        let run3 = vec![rec("c", "3")];
        let merged = merge_sorted_runs(
            vec![run1.clone(), run2.clone(), run3.clone()],
            &BytesComparator,
        );
        let mut all: Vec<Record> = run1.into_iter().chain(run2).chain(run3).collect();
        sort_records(&mut all, &BytesComparator);
        assert_eq!(merged, all);
    }

    #[test]
    fn merge_handles_empty_runs_and_duplicates() {
        let merged = merge_sorted_runs(
            vec![
                vec![],
                vec![rec("x", "2"), rec("x", "3")],
                vec![rec("x", "1")],
            ],
            &BytesComparator,
        );
        assert_eq!(merged.len(), 3);
        assert!(is_sorted(&merged, &BytesComparator));
        let values: Vec<String> = merged.iter().map(|r| r.value_utf8()).collect();
        assert_eq!(values, ["1", "2", "3"]);
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        assert!(merge_sorted_runs(vec![], &BytesComparator).is_empty());
        assert!(merge_sorted_runs(vec![vec![], vec![]], &BytesComparator).is_empty());
    }

    /// Reference order: the stable comparison sort the radix kernel must
    /// reproduce byte-for-byte.
    fn reference_sort(mut v: Vec<Record>) -> Vec<Record> {
        v.sort_by(|a, b| a.key.cmp(&b.key).then_with(|| a.value.cmp(&b.value)));
        v
    }

    fn assert_radix_matches(v: Vec<Record>) {
        let expected = reference_sort(v.clone());
        let mut radix = v.clone();
        radix_sort_records(&mut radix);
        assert_eq!(radix, expected, "radix kernel diverged from sort_by");
        let mut std = v;
        SortKernel::Comparison.sort(&mut std);
        assert_eq!(std, expected, "comparison kernel diverged from sort_by");
    }

    /// Deterministic pseudo-random byte strings (xorshift; no external RNG).
    fn rand_bytes(state: &mut u64, max_len: usize) -> Vec<u8> {
        let mut step = || {
            *state ^= *state << 13;
            *state ^= *state >> 7;
            *state ^= *state << 17;
            *state
        };
        let len = (step() as usize) % (max_len + 1);
        (0..len).map(|_| (step() & 0xff) as u8).collect()
    }

    #[test]
    fn radix_handles_shared_prefixes() {
        // Hundreds of keys sharing a long common prefix: forces deep
        // recursion through single-occupancy depths (work-stack path).
        let mut v = Vec::new();
        for i in 0..300u32 {
            let key = format!("shared/prefix/deeply/nested/{:03}", i % 150);
            v.push(rec(&key, &format!("{}", 299 - i)));
        }
        assert_radix_matches(v);
    }

    #[test]
    fn radix_handles_empty_and_tiny_keys() {
        let mut v = Vec::new();
        for i in 0..200u32 {
            // Empty keys, 1-byte keys (all 256 values appear via i % 256
            // over two laps), and a sprinkle of 2-byte keys.
            match i % 3 {
                0 => v.push(Record::new(
                    Bytes::new(),
                    Bytes::from(vec![(i & 0xff) as u8]),
                )),
                1 => v.push(Record::new(
                    Bytes::from(vec![((i * 7) & 0xff) as u8]),
                    Bytes::from(format!("{i}")),
                )),
                _ => v.push(Record::new(
                    Bytes::from(vec![(i & 0xff) as u8, ((i * 3) & 0xff) as u8]),
                    Bytes::new(),
                )),
            }
        }
        assert_radix_matches(v);
    }

    #[test]
    fn radix_handles_identical_long_keys() {
        // All keys equal: everything funnels into the exhausted bucket at
        // the deepest level; order must come from values alone.
        let key = "k".repeat(100);
        let v: Vec<Record> = (0..200u32)
            .map(|i| rec(&key, &format!("{:03}", (i * 37) % 200)))
            .collect();
        assert_radix_matches(v);
    }

    #[test]
    fn radix_matches_reference_on_random_inputs() {
        let mut state = 0x9e3779b97f4a7c15u64;
        for case in 0..8 {
            let n = 1 + (case * 157) % 1500; // spans fallback and radix paths
            let v: Vec<Record> = (0..n)
                .map(|_| {
                    Record::new(
                        Bytes::from(rand_bytes(&mut state, 12)),
                        Bytes::from(rand_bytes(&mut state, 6)),
                    )
                })
                .collect();
            assert_radix_matches(v);
        }
    }

    #[test]
    fn radix_handles_keys_that_are_prefixes_of_each_other() {
        // "a", "aa", "aaa", ... interleaved in reverse: each depth has a
        // nonempty exhausted bucket alongside a continuing bucket.
        let mut v = Vec::new();
        for len in (0..80usize).rev() {
            v.push(rec(&"a".repeat(len), &format!("{len}")));
            v.push(rec(&"a".repeat(len), "dup"));
        }
        assert_radix_matches(v);
    }

    #[test]
    fn sort_kernel_names_and_default() {
        assert_eq!(SortKernel::default(), SortKernel::Radix);
        assert_eq!(SortKernel::Radix.name(), "radix");
        assert_eq!(SortKernel::Comparison.name(), "std");
    }
}
