//! Raw-byte comparators, after Hadoop's `RawComparator`.
//!
//! Sorting serialized records without deserializing them is one of the core
//! MapReduce efficiency tricks; both the mapred engine's sort/spill path and
//! DataMPI's A-side grouping use these comparators.

use std::cmp::Ordering;

use crate::kv::Record;
use crate::varint;

/// Compares two serialized keys.
pub trait RawComparator: Send + Sync {
    /// Compares raw key bytes.
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering;

    /// Compares two records by key (default: delegate to `compare`).
    fn compare_records(&self, a: &Record, b: &Record) -> Ordering {
        self.compare(&a.key, &b.key)
    }
}

/// Lexicographic byte comparison — correct for UTF-8 text keys and for the
/// sequence-file keys used by the Sort workloads.
#[derive(Clone, Copy, Debug, Default)]
pub struct BytesComparator;

impl RawComparator for BytesComparator {
    #[inline]
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        a.cmp(b)
    }
}

/// Compares keys that are varint-encoded `u64`s numerically.
#[derive(Clone, Copy, Debug, Default)]
pub struct VarintU64Comparator;

impl RawComparator for VarintU64Comparator {
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        let av = varint::read_u64(a).map(|(v, _)| v).unwrap_or(u64::MAX);
        let bv = varint::read_u64(b).map(|(v, _)| v).unwrap_or(u64::MAX);
        av.cmp(&bv)
    }
}

/// Reverses another comparator (descending sorts).
#[derive(Clone, Copy, Debug)]
pub struct Reversed<C>(pub C);

impl<C: RawComparator> RawComparator for Reversed<C> {
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        self.0.compare(b, a)
    }
}

/// Sorts a mutable slice of records with a raw comparator, breaking key ties
/// by value bytes so results are fully deterministic.
pub fn sort_records<C: RawComparator>(records: &mut [Record], cmp: &C) {
    records.sort_by(|a, b| {
        cmp.compare(&a.key, &b.key)
            .then_with(|| a.value.cmp(&b.value))
    });
}

/// Checks that `records` is non-decreasing under `cmp` — used by tests and
/// by merge-phase debug assertions.
pub fn is_sorted<C: RawComparator>(records: &[Record], cmp: &C) -> bool {
    records
        .windows(2)
        .all(|w| cmp.compare(&w[0].key, &w[1].key) != Ordering::Greater)
}

/// K-way merge of already-sorted runs into one sorted vector.
///
/// This is the algorithm both the mapred engine's spill merge and DataMPI's
/// A-side grouped iteration use. Runs must each be sorted under `cmp`.
pub fn merge_sorted_runs<C: RawComparator>(runs: Vec<Vec<Record>>, cmp: &C) -> Vec<Record> {
    use std::collections::BinaryHeap;

    struct HeapItem {
        /// Sort key ordering is inverted because BinaryHeap is a max-heap.
        ord: Vec<u8>,
        tiebreak: Vec<u8>,
        run: usize,
        idx: usize,
    }
    impl PartialEq for HeapItem {
        fn eq(&self, other: &Self) -> bool {
            self.ord == other.ord && self.tiebreak == other.tiebreak && self.run == other.run
        }
    }
    impl Eq for HeapItem {}
    impl PartialOrd for HeapItem {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for HeapItem {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reverse for min-heap behaviour; run index keeps it total.
            other
                .ord
                .cmp(&self.ord)
                .then_with(|| other.tiebreak.cmp(&self.tiebreak))
                .then_with(|| other.run.cmp(&self.run))
        }
    }

    let total: usize = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut heap = BinaryHeap::with_capacity(runs.len());
    for (i, run) in runs.iter().enumerate() {
        if let Some(first) = run.first() {
            debug_assert!(is_sorted(run, cmp), "merge input run {i} not sorted");
            heap.push(HeapItem {
                ord: first.key.to_vec(),
                tiebreak: first.value.to_vec(),
                run: i,
                idx: 0,
            });
        }
    }
    while let Some(item) = heap.pop() {
        let rec = runs[item.run][item.idx].clone();
        out.push(rec);
        let next = item.idx + 1;
        if next < runs[item.run].len() {
            let r = &runs[item.run][next];
            heap.push(HeapItem {
                ord: r.key.to_vec(),
                tiebreak: r.value.to_vec(),
                run: item.run,
                idx: next,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(k: &str, v: &str) -> Record {
        Record::from_strs(k, v)
    }

    #[test]
    fn bytes_comparator_is_lexicographic() {
        let c = BytesComparator;
        assert_eq!(c.compare(b"a", b"b"), Ordering::Less);
        assert_eq!(c.compare(b"ab", b"a"), Ordering::Greater);
        assert_eq!(c.compare(b"", b""), Ordering::Equal);
    }

    #[test]
    fn varint_comparator_is_numeric() {
        let c = VarintU64Comparator;
        let mut a = Vec::new();
        let mut b = Vec::new();
        varint::write_u64(&mut a, 300); // two bytes
        varint::write_u64(&mut b, 5); // one byte but numerically smaller
        assert_eq!(c.compare(&a, &b), Ordering::Greater);
        // Lexicographic on raw bytes would have said Less (0xAC < 0x05 is
        // false, but multi-byte comparisons are what trips naive code).
    }

    #[test]
    fn reversed_flips_order() {
        let c = Reversed(BytesComparator);
        assert_eq!(c.compare(b"a", b"b"), Ordering::Greater);
    }

    #[test]
    fn sort_and_check() {
        let mut v = vec![rec("c", "1"), rec("a", "2"), rec("b", "3"), rec("a", "1")];
        assert!(!is_sorted(&v, &BytesComparator));
        sort_records(&mut v, &BytesComparator);
        assert!(is_sorted(&v, &BytesComparator));
        assert_eq!(v[0].value_utf8(), "1"); // ("a","1") before ("a","2")
    }

    #[test]
    fn merge_of_sorted_runs_equals_global_sort() {
        let run1 = vec![rec("a", "1"), rec("d", "4"), rec("f", "6")];
        let run2 = vec![rec("b", "2"), rec("e", "5")];
        let run3 = vec![rec("c", "3")];
        let merged = merge_sorted_runs(
            vec![run1.clone(), run2.clone(), run3.clone()],
            &BytesComparator,
        );
        let mut all: Vec<Record> = run1.into_iter().chain(run2).chain(run3).collect();
        sort_records(&mut all, &BytesComparator);
        assert_eq!(merged, all);
    }

    #[test]
    fn merge_handles_empty_runs_and_duplicates() {
        let merged = merge_sorted_runs(
            vec![
                vec![],
                vec![rec("x", "2"), rec("x", "3")],
                vec![rec("x", "1")],
            ],
            &BytesComparator,
        );
        assert_eq!(merged.len(), 3);
        assert!(is_sorted(&merged, &BytesComparator));
        let values: Vec<String> = merged.iter().map(|r| r.value_utf8()).collect();
        assert_eq!(values, ["1", "2", "3"]);
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        assert!(merge_sorted_runs(vec![], &BytesComparator).is_empty());
        assert!(merge_sorted_runs(vec![vec![], vec![]], &BytesComparator).is_empty());
    }
}
