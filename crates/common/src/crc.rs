//! CRC-32 (IEEE 802.3) — the checksum HDFS attaches to every block.
//!
//! Slicing-by-8 table implementation built at first use: eight derived
//! 256-entry tables let the hot loop fold 8 input bytes per iteration
//! instead of one, which matters because every TCP frame payload is
//! CRC-stamped on send and verified on receive — at hundreds of MB/s of
//! shuffle traffic the bytewise loop was the transport's bottleneck.
//! The DFS uses the same routine to detect silent block corruption on
//! read (`dfs.verify` / the corruption-injection tests), mirroring
//! HDFS's per-chunk checksumming.

use std::sync::OnceLock;

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Slicing-by-8 tables: `tables[0]` is the classic bytewise table;
/// `tables[k][b]` is the CRC contribution of byte `b` seen `k` positions
/// earlier in an 8-byte block.
fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut tables = [[0u32; 256]; 8];
        for (i, entry) in tables[0].iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = tables[k - 1][i];
                tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            }
        }
        tables
    })
}

fn update_state(mut crc: u32, data: &[u8]) -> u32 {
    let t = tables();
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        crc = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xff) as usize];
    }
    crc
}

/// Computes the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    !update_state(!0u32, data)
}

/// Incremental CRC-32 computation over multiple chunks.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a new computation.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds a chunk.
    pub fn update(&mut self, data: &[u8]) {
        self.state = update_state(self.state, data);
    }

    /// Finishes, returning the checksum.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sliced_loop_matches_bytewise_reference_at_every_length() {
        // Lengths straddling the 8-byte block boundary exercise both the
        // sliced main loop and the remainder tail.
        let data: Vec<u8> = (0..257u32).map(|i| (i * 31 + 7) as u8).collect();
        let t = tables();
        for len in 0..data.len() {
            let mut reference = !0u32;
            for &b in &data[..len] {
                reference = (reference >> 8) ^ t[0][((reference ^ b as u32) & 0xff) as usize];
            }
            assert_eq!(crc32(&data[..len]), !reference, "length {len}");
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"hello cruel checksummed world";
        let mut inc = Crc32::new();
        inc.update(&data[..7]);
        inc.update(&data[7..20]);
        inc.update(&data[20..]);
        assert_eq!(inc.finalize(), crc32(data));
    }

    #[test]
    fn incremental_split_points_do_not_matter() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i ^ (i >> 3)) as u8).collect();
        let oneshot = crc32(&data);
        for split in [1usize, 3, 7, 8, 9, 64, 500, 1023] {
            let mut inc = Crc32::new();
            inc.update(&data[..split]);
            inc.update(&data[split..]);
            assert_eq!(inc.finalize(), oneshot, "split {split}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = vec![0xA5u8; 256];
        let base = crc32(&data);
        for i in (0..data.len()).step_by(17) {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {i}:{bit} undetected");
            }
        }
    }

    #[test]
    fn empty_update_is_identity() {
        let mut a = Crc32::new();
        a.update(b"");
        a.update(b"x");
        assert_eq!(a.finalize(), crc32(b"x"));
    }
}
