//! CRC-32 (IEEE 802.3) — the checksum HDFS attaches to every block.
//!
//! Table-driven implementation built at first use. The DFS uses it to
//! detect silent block corruption on read (`dfs.verify` / the
//! corruption-injection tests), mirroring HDFS's per-chunk checksumming.

use std::sync::OnceLock;

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// Computes the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// Incremental CRC-32 computation over multiple chunks.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a new computation.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds a chunk.
    pub fn update(&mut self, data: &[u8]) {
        let table = table();
        for &b in data {
            self.state = (self.state >> 8) ^ table[((self.state ^ b as u32) & 0xff) as usize];
        }
    }

    /// Finishes, returning the checksum.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"hello cruel checksummed world";
        let mut inc = Crc32::new();
        inc.update(&data[..7]);
        inc.update(&data[7..20]);
        inc.update(&data[20..]);
        assert_eq!(inc.finalize(), crc32(data));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = vec![0xA5u8; 256];
        let base = crc32(&data);
        for i in (0..data.len()).step_by(17) {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {i}:{bit} undetected");
            }
        }
    }

    #[test]
    fn empty_update_is_identity() {
        let mut a = Crc32::new();
        a.update(b"");
        a.update(b"x");
        assert_eq!(a.finalize(), crc32(b"x"));
    }
}
