//! Workspace-wide error type.
//!
//! Every crate in the workspace funnels failures through [`Error`]. The
//! variants cover the three broad failure domains of the reproduced system:
//! data corruption (serialization / codec), resource exhaustion (the Spark
//! OOM behaviour studied in Figure 3(b) of the paper), and distributed
//! bookkeeping mistakes (missing blocks, unknown tasks).

use std::fmt;

/// Convenient alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Unified error for all `datampi-rs` crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A serialized record or file frame could not be decoded.
    Corrupt(String),
    /// A varint overflowed or was truncated.
    Varint(String),
    /// The LZ77 codec hit an invalid back-reference or truncated block.
    Codec(String),
    /// A memory budget was exceeded (Spark-style OutOfMemory).
    OutOfMemory {
        /// What was being allocated when the budget ran out.
        context: String,
        /// Bytes requested by the failing allocation.
        requested: u64,
        /// Bytes still available under the budget.
        available: u64,
    },
    /// A DFS path, block, or replica was not found.
    NotFound(String),
    /// An operation was attempted against an entity in the wrong state
    /// (e.g. reading an unfinished file, double-finishing a task).
    InvalidState(String),
    /// A configuration value was out of range or inconsistent.
    Config(String),
    /// A simulated component failed (injected fault or modeled crash).
    Fault(String),
    /// A task exceeded its retry budget and the job was aborted.
    JobAborted(String),
}

impl Error {
    /// Shorthand for a corruption error with formatted context.
    pub fn corrupt(msg: impl Into<String>) -> Self {
        Error::Corrupt(msg.into())
    }

    /// True if this error is the simulated OutOfMemory condition.
    pub fn is_oom(&self) -> bool {
        matches!(self, Error::OutOfMemory { .. })
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Corrupt(m) => write!(f, "corrupt data: {m}"),
            Error::Varint(m) => write!(f, "varint error: {m}"),
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::OutOfMemory {
                context,
                requested,
                available,
            } => write!(
                f,
                "out of memory in {context}: requested {requested} B, {available} B available"
            ),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::InvalidState(m) => write!(f, "invalid state: {m}"),
            Error::Config(m) => write!(f, "bad configuration: {m}"),
            Error::Fault(m) => write!(f, "injected fault: {m}"),
            Error::JobAborted(m) => write!(f, "job aborted: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = Error::OutOfMemory {
            context: "block manager".into(),
            requested: 1024,
            available: 512,
        };
        let s = e.to_string();
        assert!(s.contains("block manager"));
        assert!(s.contains("1024"));
        assert!(s.contains("512"));
        assert!(e.is_oom());
    }

    #[test]
    fn non_oom_variants_report_not_oom() {
        assert!(!Error::corrupt("x").is_oom());
        assert!(!Error::NotFound("p".into()).is_oom());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::corrupt("a"), Error::Corrupt("a".into()));
        assert_ne!(Error::corrupt("a"), Error::corrupt("b"));
    }
}
