//! Workspace-wide error type.
//!
//! Every crate in the workspace funnels failures through [`Error`]. The
//! variants cover the three broad failure domains of the reproduced system:
//! data corruption (serialization / codec), resource exhaustion (the Spark
//! OOM behaviour studied in Figure 3(b) of the paper), and distributed
//! bookkeeping mistakes (missing blocks, unknown tasks).

use std::fmt;

/// Convenient alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Classification of a [`FaultCause`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A deliberately injected task error (fault-injection harness).
    InjectedError,
    /// User code panicked inside a task.
    TaskPanic,
    /// A whole worker rank died before finishing its work.
    RankDeath,
    /// A frame failed its CRC32 integrity check on receipt.
    CorruptFrame,
    /// A simulated cluster node failed.
    NodeFailure,
    /// The interconnect failed: a connection could not be established, a
    /// peer's stream closed before its EOF frame, or a wire frame could
    /// not be decoded.
    Transport,
    /// A fault with no richer classification.
    Other,
}

/// Structured cause carried by [`Error::Fault`], so supervisors and tests
/// can match on *what* failed (which task, which rank, which attempt)
/// instead of grepping a formatted string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultCause {
    /// What kind of fault this is.
    pub kind: FaultKind,
    /// The task (split index) involved, if any.
    pub task: Option<usize>,
    /// The worker rank involved, if any.
    pub rank: Option<usize>,
    /// The job attempt on which the fault fired, if known.
    pub attempt: Option<u32>,
    /// Free-form human context.
    pub detail: String,
}

impl FaultCause {
    /// A cause of `kind` with no located task/rank/attempt yet.
    pub fn new(kind: FaultKind, detail: impl Into<String>) -> Self {
        FaultCause {
            kind,
            task: None,
            rank: None,
            attempt: None,
            detail: detail.into(),
        }
    }

    /// Builder: the task involved.
    pub fn task(mut self, task: usize) -> Self {
        self.task = Some(task);
        self
    }

    /// Builder: the rank involved.
    pub fn rank(mut self, rank: usize) -> Self {
        self.rank = Some(rank);
        self
    }

    /// Builder: the attempt on which the fault fired.
    pub fn attempt(mut self, attempt: u32) -> Self {
        self.attempt = Some(attempt);
        self
    }

    /// True for faults produced by the injection harness (as opposed to
    /// genuine panics or corruption found in the wild).
    pub fn is_injected(&self) -> bool {
        self.kind == FaultKind::InjectedError
    }
}

impl fmt::Display for FaultCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            FaultKind::InjectedError => "injected error",
            FaultKind::TaskPanic => "task panic",
            FaultKind::RankDeath => "rank death",
            FaultKind::CorruptFrame => "corrupt frame",
            FaultKind::NodeFailure => "node failure",
            FaultKind::Transport => "transport failure",
            FaultKind::Other => "fault",
        };
        write!(f, "{kind}")?;
        if let Some(t) = self.task {
            write!(f, " [task {t}]")?;
        }
        if let Some(r) = self.rank {
            write!(f, " [rank {r}]")?;
        }
        if let Some(a) = self.attempt {
            write!(f, " [attempt {a}]")?;
        }
        if !self.detail.is_empty() {
            write!(f, ": {}", self.detail)?;
        }
        Ok(())
    }
}

/// Unified error for all `datampi-rs` crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A serialized record or file frame could not be decoded.
    Corrupt(String),
    /// A varint overflowed or was truncated.
    Varint(String),
    /// The LZ77 codec hit an invalid back-reference or truncated block.
    Codec(String),
    /// A memory budget was exceeded (Spark-style OutOfMemory).
    OutOfMemory {
        /// What was being allocated when the budget ran out.
        context: String,
        /// Bytes requested by the failing allocation.
        requested: u64,
        /// Bytes still available under the budget.
        available: u64,
    },
    /// A DFS path, block, or replica was not found.
    NotFound(String),
    /// An operation was attempted against an entity in the wrong state
    /// (e.g. reading an unfinished file, double-finishing a task).
    InvalidState(String),
    /// A configuration value was out of range or inconsistent.
    Config(String),
    /// A simulated component failed (injected fault or modeled crash),
    /// with a structured [`FaultCause`] saying what, where, and when.
    Fault(FaultCause),
    /// A task exceeded its retry budget and the job was aborted.
    JobAborted(String),
}

impl Error {
    /// Shorthand for a corruption error with formatted context.
    pub fn corrupt(msg: impl Into<String>) -> Self {
        Error::Corrupt(msg.into())
    }

    /// True if this error is the simulated OutOfMemory condition.
    pub fn is_oom(&self) -> bool {
        matches!(self, Error::OutOfMemory { .. })
    }

    /// Shorthand for a fault with a structured cause.
    pub fn fault(cause: FaultCause) -> Self {
        Error::Fault(cause)
    }

    /// Shorthand for an unclassified fault carrying only a message.
    pub fn fault_msg(detail: impl Into<String>) -> Self {
        Error::Fault(FaultCause::new(FaultKind::Other, detail))
    }

    /// The structured fault cause, if this error is a fault.
    pub fn fault_cause(&self) -> Option<&FaultCause> {
        match self {
            Error::Fault(cause) => Some(cause),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Corrupt(m) => write!(f, "corrupt data: {m}"),
            Error::Varint(m) => write!(f, "varint error: {m}"),
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::OutOfMemory {
                context,
                requested,
                available,
            } => write!(
                f,
                "out of memory in {context}: requested {requested} B, {available} B available"
            ),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::InvalidState(m) => write!(f, "invalid state: {m}"),
            Error::Config(m) => write!(f, "bad configuration: {m}"),
            Error::Fault(cause) => write!(f, "fault: {cause}"),
            Error::JobAborted(m) => write!(f, "job aborted: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = Error::OutOfMemory {
            context: "block manager".into(),
            requested: 1024,
            available: 512,
        };
        let s = e.to_string();
        assert!(s.contains("block manager"));
        assert!(s.contains("1024"));
        assert!(s.contains("512"));
        assert!(e.is_oom());
    }

    #[test]
    fn non_oom_variants_report_not_oom() {
        assert!(!Error::corrupt("x").is_oom());
        assert!(!Error::NotFound("p".into()).is_oom());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::corrupt("a"), Error::Corrupt("a".into()));
        assert_ne!(Error::corrupt("a"), Error::corrupt("b"));
    }

    #[test]
    fn fault_causes_are_structured_and_matchable() {
        let e = Error::fault(
            FaultCause::new(FaultKind::InjectedError, "scheduled by plan")
                .task(2)
                .rank(1)
                .attempt(0),
        );
        let cause = e.fault_cause().expect("is a fault");
        assert_eq!(cause.kind, FaultKind::InjectedError);
        assert_eq!(cause.task, Some(2));
        assert_eq!(cause.rank, Some(1));
        assert_eq!(cause.attempt, Some(0));
        assert!(cause.is_injected());
        let s = e.to_string();
        assert!(s.contains("injected error"), "{s}");
        assert!(s.contains("task 2"), "{s}");
        assert!(Error::Config("x".into()).fault_cause().is_none());
    }

    #[test]
    fn unclassified_fault_shorthand() {
        let e = Error::fault_msg("something broke");
        assert_eq!(e.fault_cause().unwrap().kind, FaultKind::Other);
        assert!(!e.fault_cause().unwrap().is_injected());
        assert!(e.to_string().contains("something broke"));
    }
}
