//! Key-value grouping abstractions shared by every engine: emission
//! surfaces (`Collector`), grouped values, and the two grouping
//! disciplines (key-sorted vs hash-clustered).
//!
//! DataMPI's A tasks, Hadoop's reducers and Spark's `reduceByKey` all
//! consume `(key, [values])` groups produced from a stream of records;
//! defining the surface once keeps the three engines' user functions
//! interchangeable, which the integration tests exploit to check that all
//! engines compute identical results.

use bytes::Bytes;

use crate::kv::{Record, RecordBatch};

/// Emission surface handed to O functions (wraps the partitioned buffer).
pub trait Collector {
    /// Emits one key-value pair.
    fn collect(&mut self, key: &[u8], value: &[u8]);
}

/// A key and all values received for it at one A partition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupedValues {
    /// The group's key.
    pub key: Bytes,
    /// All values emitted for the key, in arrival (or sorted) order.
    pub values: Vec<Bytes>,
}

impl GroupedValues {
    /// Number of values in the group.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the group carries no values (cannot normally happen).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Groups a run of records by key. If the records are key-sorted the
/// grouping is a single pass; for unsorted (Common-mode) input, equal keys
/// are still adjacent only if pre-grouped, so this helper always handles
/// the general case by keeping a map for non-adjacent keys being
/// impossible after sorting — the runtime sorts or hash-clusters first.
pub fn group_sorted(records: Vec<Record>) -> Vec<GroupedValues> {
    let mut groups: Vec<GroupedValues> = Vec::new();
    for rec in records {
        match groups.last_mut() {
            Some(g) if g.key == rec.key => g.values.push(rec.value),
            _ => groups.push(GroupedValues {
                key: rec.key,
                values: vec![rec.value],
            }),
        }
    }
    groups
}

/// Clusters unsorted records by key using a hash map (Common mode).
/// Group order follows first appearance of each key, which keeps the
/// output deterministic for a given arrival order.
pub fn group_hashed(records: Vec<Record>) -> Vec<GroupedValues> {
    use crate::hashing::FnvHashMap;
    let mut index: FnvHashMap<Bytes, usize> = FnvHashMap::default();
    let mut groups: Vec<GroupedValues> = Vec::new();
    for rec in records {
        match index.get(&rec.key) {
            Some(&i) => groups[i].values.push(rec.value),
            None => {
                index.insert(rec.key.clone(), groups.len());
                groups.push(GroupedValues {
                    key: rec.key,
                    values: vec![rec.value],
                });
            }
        }
    }
    groups
}

/// A simple collector writing into a [`RecordBatch`] — the A-side output
/// surface and a convenient test double for O functions.
#[derive(Default)]
pub struct BatchCollector {
    /// Collected records.
    pub batch: RecordBatch,
}

impl Collector for BatchCollector {
    fn collect(&mut self, key: &[u8], value: &[u8]) {
        self.batch.push(Record::new(key.to_vec(), value.to_vec()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(k: &str, v: &str) -> Record {
        Record::from_strs(k, v)
    }

    #[test]
    fn group_sorted_merges_adjacent_keys() {
        let groups = group_sorted(vec![
            rec("a", "1"),
            rec("a", "2"),
            rec("b", "3"),
            rec("c", "4"),
            rec("c", "5"),
        ]);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[1].len(), 1);
        assert_eq!(groups[2].values[1], Bytes::from_static(b"5"));
    }

    #[test]
    fn group_hashed_handles_interleaved_keys() {
        let groups = group_hashed(vec![
            rec("x", "1"),
            rec("y", "2"),
            rec("x", "3"),
            rec("y", "4"),
        ]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].key, Bytes::from_static(b"x"));
        assert_eq!(groups[0].values.len(), 2);
        assert_eq!(groups[1].values.len(), 2);
    }

    #[test]
    fn empty_input_empty_groups() {
        assert!(group_sorted(vec![]).is_empty());
        assert!(group_hashed(vec![]).is_empty());
        let g = GroupedValues {
            key: Bytes::new(),
            values: vec![],
        };
        assert!(g.is_empty());
    }

    #[test]
    fn batch_collector_collects() {
        let mut c = BatchCollector::default();
        c.collect(b"k", b"v");
        c.collect(b"k2", b"v2");
        assert_eq!(c.batch.len(), 2);
        assert_eq!(c.batch.records()[1].key_utf8(), "k2");
    }
}
