//! Fast non-cryptographic hashing for hot partitioning paths.
//!
//! Hash partitioning runs once per emitted record, so the default SipHash is
//! needlessly slow (see the Rust Performance Book's hashing chapter). We use
//! FNV-1a, which is tiny, allocation-free and deterministic across runs —
//! determinism matters because partition assignment must be stable between a
//! job's O phase and its A phase, and between real execution and simulation.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes a byte slice with FNV-1a.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Hashes with an explicit seed, for hash families (used by the data
/// generator's independent streams).
#[inline]
pub fn fnv1a_seeded(bytes: &[u8], seed: u64) -> u64 {
    let mut hash = FNV_OFFSET ^ seed.wrapping_mul(FNV_PRIME);
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A `std::hash::BuildHasher` producing FNV-1a hashers, for use with
/// `HashMap`/`HashSet` on hot paths.
#[derive(Clone, Copy, Debug, Default)]
pub struct FnvBuildHasher;

impl std::hash::BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;
    fn build_hasher(&self) -> FnvHasher {
        FnvHasher { state: FNV_OFFSET }
    }
}

/// Incremental FNV-1a hasher.
#[derive(Clone, Debug)]
pub struct FnvHasher {
    state: u64,
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.state
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }
}

/// A `HashMap` keyed with FNV-1a — the workhorse map for word counting and
/// term-frequency aggregation.
pub type FnvHashMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>;
/// A `HashSet` hashed with FNV-1a.
pub type FnvHashSet<K> = std::collections::HashSet<K, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hasher};

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn seeded_streams_differ() {
        assert_ne!(fnv1a_seeded(b"x", 1), fnv1a_seeded(b"x", 2));
        assert_eq!(fnv1a_seeded(b"x", 7), fnv1a_seeded(b"x", 7));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = FnvBuildHasher.build_hasher();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn fnv_map_works() {
        let mut m: FnvHashMap<String, u64> = FnvHashMap::default();
        for w in ["a", "b", "a"] {
            *m.entry(w.to_string()).or_default() += 1;
        }
        assert_eq!(m["a"], 2);
        assert_eq!(m["b"], 1);
    }

    #[test]
    fn distribution_is_reasonable() {
        // Hash 10k distinct keys into 16 buckets; no bucket should be wildly
        // over- or under-full (loose 3x bound — catches gross brokenness).
        let mut buckets = [0u32; 16];
        for i in 0..10_000 {
            let h = fnv1a(format!("key-{i}").as_bytes());
            buckets[(h % 16) as usize] += 1;
        }
        let expected = 10_000 / 16;
        for &b in &buckets {
            assert!(b > expected / 3, "bucket underfull: {b}");
            assert!(b < expected * 3, "bucket overfull: {b}");
        }
    }
}
