//! Key-value records — the unit of data in every engine.
//!
//! DataMPI is a *key-value pair based* communication library: O tasks emit
//! `(key, value)` pairs which the library partitions, moves, and groups for
//! A tasks. Hadoop's map/reduce and Spark's pair-RDD operations speak the
//! same language, so one record type serves all three engines.

use std::fmt;

use bytes::Bytes;

/// A single serialized key-value record.
///
/// Keys and values are opaque byte strings; typed views are layered on top
/// via [`crate::ser::Writable`]. `Bytes` keeps cloning cheap (reference
/// counted) which matters when a record is fanned out to several consumers
/// (e.g. replicated DFS writes).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Record {
    /// Serialized key bytes.
    pub key: Bytes,
    /// Serialized value bytes.
    pub value: Bytes,
}

impl Record {
    /// Builds a record from anything convertible to `Bytes`.
    pub fn new(key: impl Into<Bytes>, value: impl Into<Bytes>) -> Self {
        Record {
            key: key.into(),
            value: value.into(),
        }
    }

    /// Builds a record from UTF-8 string slices (one copy per field,
    /// straight into the shared storage — no intermediate `Vec`).
    pub fn from_strs(key: &str, value: &str) -> Self {
        Record {
            key: Bytes::copy_from_slice(key.as_bytes()),
            value: Bytes::copy_from_slice(value.as_bytes()),
        }
    }

    /// Total payload size in bytes (key + value, excluding framing).
    pub fn payload_len(&self) -> usize {
        self.key.len() + self.value.len()
    }

    /// Size of this record when framed on disk or on the wire:
    /// `varint(key_len) + varint(value_len) + key + value`.
    pub fn framed_len(&self) -> usize {
        crate::varint::encoded_len(self.key.len() as u64)
            + crate::varint::encoded_len(self.value.len() as u64)
            + self.payload_len()
    }

    /// Key as UTF-8, replacing invalid sequences (debug/display helper).
    pub fn key_utf8(&self) -> String {
        String::from_utf8_lossy(&self.key).into_owned()
    }

    /// Value as UTF-8, replacing invalid sequences (debug/display helper).
    pub fn value_utf8(&self) -> String {
        String::from_utf8_lossy(&self.value).into_owned()
    }
}

impl fmt::Debug for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Record({:?} => {:?})",
            self.key_utf8(),
            self.value_utf8()
        )
    }
}

/// An ordered batch of records plus cached aggregate sizes.
///
/// Batches are the granularity at which the executing runtimes move data
/// between tasks and at which the simulator charges I/O costs, so the
/// aggregate byte count is maintained incrementally instead of recomputed.
#[derive(Clone, Debug, Default)]
pub struct RecordBatch {
    records: Vec<Record>,
    payload_bytes: u64,
    framed_bytes: u64,
}

impl RecordBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with room for `n` records.
    pub fn with_capacity(n: usize) -> Self {
        RecordBatch {
            records: Vec::with_capacity(n),
            payload_bytes: 0,
            framed_bytes: 0,
        }
    }

    /// Appends a record, updating cached sizes.
    pub fn push(&mut self, rec: Record) {
        self.payload_bytes += rec.payload_len() as u64;
        self.framed_bytes += rec.framed_len() as u64;
        self.records.push(rec);
    }

    /// Moves all records out of `other` into `self`.
    pub fn append(&mut self, other: &mut RecordBatch) {
        self.payload_bytes += other.payload_bytes;
        self.framed_bytes += other.framed_bytes;
        self.records.append(&mut other.records);
        other.payload_bytes = 0;
        other.framed_bytes = 0;
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Sum of key+value payload bytes.
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// Sum of framed record sizes (what the batch occupies on disk/wire).
    pub fn framed_bytes(&self) -> u64 {
        self.framed_bytes
    }

    /// Immutable view of the records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Consumes the batch, yielding its records.
    pub fn into_records(self) -> Vec<Record> {
        self.records
    }

    /// Sorts records by raw key bytes (then value for determinism).
    /// Unstable sort: the `(key, value)` comparator already fixes the
    /// order of every distinguishable pair (see
    /// [`crate::compare::sort_records`]'s invariant note).
    pub fn sort_by_key(&mut self) {
        self.records
            .sort_unstable_by(|a, b| a.key.cmp(&b.key).then_with(|| a.value.cmp(&b.value)));
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, Record> {
        self.records.iter()
    }
}

impl FromIterator<Record> for RecordBatch {
    fn from_iter<T: IntoIterator<Item = Record>>(iter: T) -> Self {
        let mut batch = RecordBatch::new();
        for r in iter {
            batch.push(r);
        }
        batch
    }
}

impl IntoIterator for RecordBatch {
    type Item = Record;
    type IntoIter = std::vec::IntoIter<Record>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

impl<'a> IntoIterator for &'a RecordBatch {
    type Item = &'a Record;
    type IntoIter = std::slice::Iter<'a, Record>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_sizes() {
        let r = Record::from_strs("key", "value");
        assert_eq!(r.payload_len(), 8);
        // one varint byte per length for short fields
        assert_eq!(r.framed_len(), 10);
    }

    #[test]
    fn batch_tracks_sizes_incrementally() {
        let mut b = RecordBatch::new();
        assert!(b.is_empty());
        b.push(Record::from_strs("a", "1"));
        b.push(Record::from_strs("bb", "22"));
        assert_eq!(b.len(), 2);
        assert_eq!(b.payload_bytes(), 6);
        let expected_framed: u64 = b.iter().map(|r| r.framed_len() as u64).sum();
        assert_eq!(b.framed_bytes(), expected_framed);
    }

    #[test]
    fn append_moves_and_zeroes_source() {
        let mut a: RecordBatch = [Record::from_strs("x", "1")].into_iter().collect();
        let mut b: RecordBatch = [Record::from_strs("y", "2")].into_iter().collect();
        a.append(&mut b);
        assert_eq!(a.len(), 2);
        assert!(b.is_empty());
        assert_eq!(b.payload_bytes(), 0);
        assert_eq!(b.framed_bytes(), 0);
    }

    #[test]
    fn sort_by_key_orders_lexicographically() {
        let mut b: RecordBatch = [
            Record::from_strs("pear", "3"),
            Record::from_strs("apple", "1"),
            Record::from_strs("apple", "0"),
            Record::from_strs("fig", "2"),
        ]
        .into_iter()
        .collect();
        b.sort_by_key();
        let keys: Vec<String> = b.iter().map(|r| r.key_utf8()).collect();
        assert_eq!(keys, ["apple", "apple", "fig", "pear"]);
        // ties broken by value for determinism
        assert_eq!(b.records()[0].value_utf8(), "0");
    }

    #[test]
    fn debug_is_readable() {
        let r = Record::from_strs("k", "v");
        assert_eq!(format!("{r:?}"), "Record(\"k\" => \"v\")");
    }
}
