//! Shared foundations for the `datampi-rs` workspace.
//!
//! This crate provides the vocabulary types used by every other crate in the
//! reproduction of *"Performance Benefits of DataMPI: A Case Study with
//! BigDataBench"*:
//!
//! * [`kv`] — key-value records, the unit of data movement in all three
//!   engines (DataMPI, the Hadoop-like MapReduce engine, the Spark-like RDD
//!   engine).
//! * [`ser`] — a `Writable`-style binary serialization layer with
//!   length-prefixed framing, mirroring Hadoop's on-disk/on-wire record
//!   format.
//! * [`varint`] — LEB128 variable-length integers used by the framing layer
//!   and the block codec.
//! * [`compare`] — raw-byte comparators so sorting can operate on serialized
//!   records without deserializing them (Hadoop's `RawComparator` idea).
//! * [`partition`] — hash and range partitioners mapping keys to reducer /
//!   A-communicator indices.
//! * [`codec`] — a from-scratch LZ77 block codec standing in for Hadoop's
//!   `GzipCodec` (used by the *Normal Sort* workload's compressed sequence
//!   files).
//! * [`hashing`] — a fast FNV-1a hasher for hot hash-partitioning paths.
//! * [`units`] — byte-size constants and formatting helpers.
//! * [`error`] — the shared error type.

#![warn(missing_docs)]

pub mod codec;
pub mod compare;
pub mod crc;
pub mod error;
pub mod group;
pub mod hashing;
pub mod kv;
pub mod partition;
pub mod ser;
pub mod units;
pub mod varint;

pub use error::{Error, FaultCause, FaultKind, Result};
pub use kv::{Record, RecordBatch};
