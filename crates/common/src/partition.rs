//! Partitioners: mapping keys to reducer / A-communicator indices.
//!
//! DataMPI's O tasks emit key-value pairs that the library partitions across
//! the A communicator; Hadoop's map output is partitioned across reducers;
//! Spark's `reduceByKey` partitions across shuffle blocks. All three engines
//! share these implementations so that a given key lands on the same logical
//! partition everywhere — which the integration tests rely on to compare
//! engine outputs.

use crate::hashing::fnv1a;

/// Maps a serialized key to a partition in `[0, num_partitions)`.
pub trait Partitioner: Send + Sync {
    /// Number of partitions this partitioner produces.
    fn num_partitions(&self) -> usize;

    /// Partition index for `key`. Must be `< num_partitions()`.
    fn partition(&self, key: &[u8]) -> usize;
}

/// Hash partitioning — the default in Hadoop, Spark and DataMPI.
#[derive(Clone, Copy, Debug)]
pub struct HashPartitioner {
    parts: usize,
}

impl HashPartitioner {
    /// Creates a hash partitioner over `parts` partitions.
    ///
    /// # Panics
    /// Panics if `parts == 0`.
    pub fn new(parts: usize) -> Self {
        assert!(parts > 0, "partition count must be positive");
        HashPartitioner { parts }
    }
}

impl Partitioner for HashPartitioner {
    fn num_partitions(&self) -> usize {
        self.parts
    }
    #[inline]
    fn partition(&self, key: &[u8]) -> usize {
        (fnv1a(key) % self.parts as u64) as usize
    }
}

/// Range partitioning for total-order sort (Hadoop's `TotalOrderPartitioner`).
///
/// Given `p` partitions, `p - 1` sorted split points divide the key space;
/// keys less than split `i` go to partition `i`. The Sort workloads build
/// the split points by sampling the input.
#[derive(Clone, Debug)]
pub struct RangePartitioner {
    splits: Vec<Vec<u8>>,
}

impl RangePartitioner {
    /// Creates a range partitioner from sorted split points. `splits.len()+1`
    /// is the partition count.
    ///
    /// # Panics
    /// Panics if the split points are not strictly sorted.
    pub fn new(splits: Vec<Vec<u8>>) -> Self {
        assert!(
            splits.windows(2).all(|w| w[0] < w[1]),
            "split points must be strictly increasing"
        );
        RangePartitioner { splits }
    }

    /// Builds split points from a sample of keys so that partitions receive
    /// roughly equal key counts. `parts` must be positive.
    pub fn from_sample(mut sample: Vec<Vec<u8>>, parts: usize) -> Self {
        assert!(parts > 0, "partition count must be positive");
        sample.sort();
        sample.dedup();
        let mut splits = Vec::with_capacity(parts.saturating_sub(1));
        if !sample.is_empty() {
            for i in 1..parts {
                let idx = i * sample.len() / parts;
                let candidate = sample[idx.min(sample.len() - 1)].clone();
                if splits.last().is_none_or(|last| *last < candidate) {
                    splits.push(candidate);
                }
            }
        }
        RangePartitioner { splits }
    }

    /// The split points.
    pub fn splits(&self) -> &[Vec<u8>] {
        &self.splits
    }
}

impl Partitioner for RangePartitioner {
    fn num_partitions(&self) -> usize {
        self.splits.len() + 1
    }
    fn partition(&self, key: &[u8]) -> usize {
        // partition_point: first split > key ⇒ that index is the partition.
        self.splits.partition_point(|s| s.as_slice() <= key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partition_in_range_and_deterministic() {
        let p = HashPartitioner::new(7);
        for i in 0..1000 {
            let key = format!("key{i}");
            let a = p.partition(key.as_bytes());
            let b = p.partition(key.as_bytes());
            assert_eq!(a, b);
            assert!(a < 7);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_partitions_panics() {
        HashPartitioner::new(0);
    }

    #[test]
    fn hash_partitions_are_roughly_balanced() {
        let p = HashPartitioner::new(8);
        let mut counts = vec![0usize; 8];
        for i in 0..8000 {
            counts[p.partition(format!("k{i}").as_bytes())] += 1;
        }
        for &c in &counts {
            assert!((500..=1500).contains(&c), "unbalanced bucket: {c}");
        }
    }

    #[test]
    fn range_partitioner_respects_splits() {
        let p = RangePartitioner::new(vec![b"g".to_vec(), b"p".to_vec()]);
        assert_eq!(p.num_partitions(), 3);
        assert_eq!(p.partition(b"apple"), 0);
        assert_eq!(p.partition(b"g"), 1); // split point itself goes right
        assert_eq!(p.partition(b"mango"), 1);
        assert_eq!(p.partition(b"pear"), 2);
        assert_eq!(p.partition(b"zebra"), 2);
    }

    #[test]
    fn range_partitioner_is_monotone() {
        let p = RangePartitioner::new(vec![b"d".to_vec(), b"m".to_vec(), b"t".to_vec()]);
        let keys: Vec<&[u8]> = vec![b"a", b"d", b"e", b"m", b"n", b"t", b"z"];
        let parts: Vec<usize> = keys.iter().map(|k| p.partition(k)).collect();
        assert!(parts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn from_sample_balances_partitions() {
        let sample: Vec<Vec<u8>> = (0..1000u32)
            .map(|i| format!("{i:05}").into_bytes())
            .collect();
        let p = RangePartitioner::from_sample(sample, 4);
        assert_eq!(p.num_partitions(), 4);
        let mut counts = vec![0usize; 4];
        for i in 0..1000u32 {
            counts[p.partition(format!("{i:05}").as_bytes())] += 1;
        }
        for &c in &counts {
            assert!((150..=350).contains(&c), "unbalanced range bucket: {c}");
        }
    }

    #[test]
    fn from_sample_with_few_distinct_keys() {
        // Fewer distinct keys than partitions must not panic and must still
        // produce a valid partitioner.
        let sample = vec![b"a".to_vec(), b"a".to_vec(), b"b".to_vec()];
        let p = RangePartitioner::from_sample(sample, 8);
        assert!(p.num_partitions() <= 8);
        assert!(p.partition(b"a") < p.num_partitions());
    }

    #[test]
    fn from_sample_empty_sample_gives_single_partition() {
        let p = RangePartitioner::from_sample(vec![], 4);
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.partition(b"anything"), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_splits_panic() {
        RangePartitioner::new(vec![b"m".to_vec(), b"a".to_vec()]);
    }
}
