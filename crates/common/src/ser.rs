//! `Writable`-style binary serialization and record framing.
//!
//! Hadoop moves data as `Writable` values framed with varint lengths; the
//! DataMPI paper keeps the same key-value representation on the wire. This
//! module provides:
//!
//! * the [`Writable`] trait with implementations for the primitive types the
//!   workloads need (`u64`, `i64`, `f64`, `String`, `Vec<f64>` for K-means
//!   centroids, …),
//! * [`frame_record`] / [`read_framed_record`] — the length-prefixed record
//!   format used by sequence files, spill files and network transfers,
//! * [`RecordReader`] / [`RecordWriter`] — streaming views over framed byte
//!   buffers.

use bytes::Bytes;

use crate::error::{Error, Result};
use crate::kv::{Record, RecordBatch};
use crate::varint;

/// A type that can serialize itself to bytes and back — the moral
/// equivalent of Hadoop's `Writable`.
pub trait Writable: Sized {
    /// Appends the serialized form of `self` to `out`.
    fn write_to(&self, out: &mut Vec<u8>);

    /// Decodes a value from the front of `buf`, returning it and the number
    /// of bytes consumed.
    fn read_from(buf: &[u8]) -> Result<(Self, usize)>;

    /// Serializes into a fresh vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out);
        out
    }

    /// Decodes a value that must occupy the entire buffer.
    fn from_bytes(buf: &[u8]) -> Result<Self> {
        let (v, n) = Self::read_from(buf)?;
        if n != buf.len() {
            return Err(Error::corrupt(format!(
                "trailing garbage: consumed {n} of {} bytes",
                buf.len()
            )));
        }
        Ok(v)
    }
}

impl Writable for u64 {
    fn write_to(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, *self);
    }
    fn read_from(buf: &[u8]) -> Result<(Self, usize)> {
        varint::read_u64(buf)
    }
}

impl Writable for i64 {
    fn write_to(&self, out: &mut Vec<u8>) {
        varint::write_i64(out, *self);
    }
    fn read_from(buf: &[u8]) -> Result<(Self, usize)> {
        varint::read_i64(buf)
    }
}

impl Writable for u32 {
    fn write_to(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, *self as u64);
    }
    fn read_from(buf: &[u8]) -> Result<(Self, usize)> {
        let (v, n) = varint::read_u64(buf)?;
        let v = u32::try_from(v).map_err(|_| Error::corrupt("u32 overflow"))?;
        Ok((v, n))
    }
}

impl Writable for f64 {
    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_from(buf: &[u8]) -> Result<(Self, usize)> {
        if buf.len() < 8 {
            return Err(Error::corrupt("truncated f64"));
        }
        let mut arr = [0u8; 8];
        arr.copy_from_slice(&buf[..8]);
        Ok((f64::from_le_bytes(arr), 8))
    }
}

impl Writable for String {
    fn write_to(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
    fn read_from(buf: &[u8]) -> Result<(Self, usize)> {
        let (len, header) = varint::read_u64(buf)?;
        let len = len as usize;
        let end = header
            .checked_add(len)
            .ok_or_else(|| Error::corrupt("string length overflow"))?;
        if buf.len() < end {
            return Err(Error::corrupt("truncated string"));
        }
        let s = std::str::from_utf8(&buf[header..end])
            .map_err(|_| Error::corrupt("invalid utf-8"))?
            .to_owned();
        Ok((s, end))
    }
}

impl<T: Writable> Writable for Vec<T> {
    fn write_to(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, self.len() as u64);
        for item in self {
            item.write_to(out);
        }
    }
    fn read_from(buf: &[u8]) -> Result<(Self, usize)> {
        let (len, mut offset) = varint::read_u64(buf)?;
        let len = usize::try_from(len).map_err(|_| Error::corrupt("vec length overflow"))?;
        // Guard against adversarial headers: never pre-allocate more slots
        // than there are bytes left to decode from.
        let mut items = Vec::with_capacity(len.min(buf.len().saturating_sub(offset)).max(1));
        for _ in 0..len {
            let (item, n) = T::read_from(&buf[offset..])?;
            offset += n;
            items.push(item);
        }
        Ok((items, offset))
    }
}

impl<A: Writable, B: Writable> Writable for (A, B) {
    fn write_to(&self, out: &mut Vec<u8>) {
        self.0.write_to(out);
        self.1.write_to(out);
    }
    fn read_from(buf: &[u8]) -> Result<(Self, usize)> {
        let (a, na) = A::read_from(buf)?;
        let (b, nb) = B::read_from(&buf[na..])?;
        Ok(((a, b), na + nb))
    }
}

/// Appends the framed form of a record: `varint(klen) varint(vlen) key value`.
pub fn frame_record(out: &mut Vec<u8>, rec: &Record) {
    varint::write_u64(out, rec.key.len() as u64);
    varint::write_u64(out, rec.value.len() as u64);
    out.extend_from_slice(&rec.key);
    out.extend_from_slice(&rec.value);
}

/// Parses one record frame's layout from the front of `buf`: returns
/// `(key_start, key_len, value_len, total)` offsets without building any
/// `Record`. Shared by the copying, zero-copy and borrowing decoders.
#[inline]
fn frame_layout(buf: &[u8]) -> Result<(usize, usize, usize, usize)> {
    let (klen, n1) = varint::read_u64(buf)?;
    let (vlen, n2) = varint::read_u64(&buf[n1..])?;
    let header = n1 + n2;
    let klen = klen as usize;
    let vlen = vlen as usize;
    let total = header
        .checked_add(klen)
        .and_then(|x| x.checked_add(vlen))
        .ok_or_else(|| Error::corrupt("record length overflow"))?;
    if buf.len() < total {
        return Err(Error::corrupt(format!(
            "truncated record: need {total} bytes, have {}",
            buf.len()
        )));
    }
    Ok((header, klen, vlen, total))
}

/// Decodes one framed record from the front of `buf` (copying the key and
/// value into fresh storage). When the frame lives in a refcounted
/// [`Bytes`] buffer, prefer [`read_framed_record_shared`], which decodes
/// without per-record copies.
pub fn read_framed_record(buf: &[u8]) -> Result<(Record, usize)> {
    let (header, klen, _vlen, total) = frame_layout(buf)?;
    let key = Bytes::copy_from_slice(&buf[header..header + klen]);
    let value = Bytes::copy_from_slice(&buf[header + klen..total]);
    Ok((Record { key, value }, total))
}

/// Zero-copy decode of one framed record starting at `offset` within a
/// refcounted `payload`: the returned record's key and value are
/// [`Bytes::slice`] views sharing the payload's storage — no per-record
/// `to_vec`. Returns the record and the number of bytes consumed.
///
/// The shared storage stays alive as long as any decoded record does, so
/// this is the right decode for frames whose records are consumed soon
/// (the A-side ingest path); it would be the wrong one for sampling a few
/// records out of a huge buffer that should otherwise be freed.
pub fn read_framed_record_shared(payload: &Bytes, offset: usize) -> Result<(Record, usize)> {
    let buf = &payload[offset..];
    let (header, klen, _vlen, total) = frame_layout(buf)?;
    let key = payload.slice(offset + header..offset + header + klen);
    let value = payload.slice(offset + header + klen..offset + total);
    Ok((Record { key, value }, total))
}

/// Borrowing decode of one framed record: returns `(key, value)` slices
/// into `buf` plus the bytes consumed, allocating nothing. The hot-path
/// decode for callers that immediately re-emit or re-frame the pair (e.g.
/// replaying a worker's captured emissions into a send buffer).
pub fn read_framed_kv(buf: &[u8]) -> Result<(&[u8], &[u8], usize)> {
    let (header, klen, _vlen, total) = frame_layout(buf)?;
    Ok((
        &buf[header..header + klen],
        &buf[header + klen..total],
        total,
    ))
}

/// Serializes a whole batch into framed bytes.
pub fn frame_batch(batch: &RecordBatch) -> Vec<u8> {
    let mut out = Vec::with_capacity(batch.framed_bytes() as usize);
    for rec in batch {
        frame_record(&mut out, rec);
    }
    out
}

/// Decodes a buffer of consecutive framed records into a batch.
pub fn unframe_batch(buf: &[u8]) -> Result<RecordBatch> {
    let mut reader = RecordReader::new(buf);
    let mut batch = RecordBatch::new();
    while let Some(rec) = reader.next_record()? {
        batch.push(rec);
    }
    Ok(batch)
}

/// Streaming writer that frames records into an owned buffer.
#[derive(Default)]
pub struct RecordWriter {
    buf: Vec<u8>,
    records: u64,
}

impl RecordWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Frames one record.
    pub fn write(&mut self, rec: &Record) {
        frame_record(&mut self.buf, rec);
        self.records += 1;
    }

    /// Number of records written so far.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Bytes accumulated so far.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Finishes, yielding the framed bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Streaming reader over a buffer of framed records.
pub struct RecordReader<'a> {
    buf: &'a [u8],
    offset: usize,
}

impl<'a> RecordReader<'a> {
    /// Wraps a framed buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        RecordReader { buf, offset: 0 }
    }

    /// Decodes the next record, or `None` at end of buffer.
    pub fn next_record(&mut self) -> Result<Option<Record>> {
        if self.offset == self.buf.len() {
            return Ok(None);
        }
        let (rec, n) = read_framed_record(&self.buf[self.offset..])?;
        self.offset += n;
        Ok(Some(rec))
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.offset
    }
}

/// Streaming zero-copy reader over a refcounted framed buffer: each
/// decoded record's key and value share the buffer's storage via
/// [`Bytes::slice`] instead of copying (see
/// [`read_framed_record_shared`]).
pub struct SharedRecordReader {
    buf: Bytes,
    offset: usize,
}

impl SharedRecordReader {
    /// Wraps a framed refcounted buffer.
    pub fn new(buf: Bytes) -> Self {
        SharedRecordReader { buf, offset: 0 }
    }

    /// Decodes the next record, or `None` at end of buffer.
    pub fn next_record(&mut self) -> Result<Option<Record>> {
        if self.offset == self.buf.len() {
            return Ok(None);
        }
        let (rec, n) = read_framed_record_shared(&self.buf, self.offset)?;
        self.offset += n;
        Ok(Some(rec))
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        for v in [0u64, 1, 300, u64::MAX] {
            assert_eq!(u64::from_bytes(&v.to_bytes()).unwrap(), v);
        }
        for v in [0i64, -5, i64::MIN, i64::MAX] {
            assert_eq!(i64::from_bytes(&v.to_bytes()).unwrap(), v);
        }
        for v in [0.0f64, -1.5, f64::MAX, f64::MIN_POSITIVE] {
            assert_eq!(f64::from_bytes(&v.to_bytes()).unwrap(), v);
        }
        let s = "héllo wörld".to_string();
        assert_eq!(String::from_bytes(&s.to_bytes()).unwrap(), s);
    }

    #[test]
    fn vec_and_tuple_round_trips() {
        let centroid: Vec<f64> = vec![1.0, 2.5, -3.75];
        assert_eq!(
            Vec::<f64>::from_bytes(&centroid.to_bytes()).unwrap(),
            centroid
        );
        let pair = ("word".to_string(), 42u64);
        assert_eq!(<(String, u64)>::from_bytes(&pair.to_bytes()).unwrap(), pair);
    }

    #[test]
    fn from_bytes_rejects_trailing_garbage() {
        let mut b = 7u64.to_bytes();
        b.push(0);
        assert!(u64::from_bytes(&b).is_err());
    }

    #[test]
    fn record_framing_round_trip() {
        let recs = vec![
            Record::from_strs("", ""),
            Record::from_strs("k", "v"),
            Record::new(vec![0u8, 255, 128], vec![1u8; 1000]),
        ];
        let batch: RecordBatch = recs.clone().into_iter().collect();
        let framed = frame_batch(&batch);
        assert_eq!(framed.len() as u64, batch.framed_bytes());
        let decoded = unframe_batch(&framed).unwrap();
        assert_eq!(decoded.records(), &recs[..]);
    }

    #[test]
    fn truncated_record_is_an_error() {
        let mut buf = Vec::new();
        frame_record(&mut buf, &Record::from_strs("key", "value"));
        buf.truncate(buf.len() - 1);
        assert!(unframe_batch(&buf).is_err());
    }

    #[test]
    fn writer_reader_streaming() {
        let mut w = RecordWriter::new();
        for i in 0..100 {
            w.write(&Record::from_strs(&format!("k{i}"), &format!("v{i}")));
        }
        assert_eq!(w.record_count(), 100);
        let bytes = w.into_bytes();
        let mut r = RecordReader::new(&bytes);
        let mut count = 0;
        while let Some(rec) = r.next_record().unwrap() {
            assert_eq!(rec.key_utf8(), format!("k{count}"));
            count += 1;
        }
        assert_eq!(count, 100);
        assert_eq!(r.position(), bytes.len());
    }

    #[test]
    fn shared_reader_is_zero_copy_and_agrees_with_the_copying_reader() {
        let recs = vec![
            Record::from_strs("", ""),
            Record::from_strs("key", "value"),
            Record::new(vec![0u8, 255, 128], vec![9u8; 64]),
        ];
        let batch: RecordBatch = recs.clone().into_iter().collect();
        let framed = Bytes::from(frame_batch(&batch));

        let mut shared = SharedRecordReader::new(framed.clone());
        let mut copying = RecordReader::new(&framed);
        let base = framed.as_ref().as_ptr() as usize;
        let mut seen = 0;
        while let Some(a) = shared.next_record().unwrap() {
            let b = copying.next_record().unwrap().unwrap();
            assert_eq!(a, b);
            // The shared decode's key/value point into the frame buffer.
            if !a.key.is_empty() {
                let p = a.key.as_ref().as_ptr() as usize;
                assert!(p >= base && p < base + framed.len(), "key not shared");
            }
            seen += 1;
        }
        assert_eq!(seen, recs.len());
        assert!(copying.next_record().unwrap().is_none());
        assert_eq!(shared.position(), framed.len());
    }

    #[test]
    fn borrowing_kv_decode_matches_framing() {
        let mut buf = Vec::new();
        frame_record(&mut buf, &Record::from_strs("alpha", "beta"));
        frame_record(&mut buf, &Record::from_strs("", "x"));
        let (k, v, n) = read_framed_kv(&buf).unwrap();
        assert_eq!((k, v), (&b"alpha"[..], &b"beta"[..]));
        let (k2, v2, n2) = read_framed_kv(&buf[n..]).unwrap();
        assert_eq!((k2, v2), (&b""[..], &b"x"[..]));
        assert_eq!(n + n2, buf.len());
        assert!(read_framed_kv(&buf[..n - 1]).is_err());
    }

    #[test]
    fn invalid_utf8_string_is_an_error() {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(String::from_bytes(&buf).is_err());
    }

    #[test]
    fn hostile_vec_header_does_not_overallocate() {
        // Claims u64::MAX elements with no payload — must error, not abort.
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, u64::MAX);
        assert!(Vec::<u64>::from_bytes(&buf).is_err());
    }
}
