//! Byte-size and time units shared by the simulator, engines and harness.

/// One kibibyte.
pub const KB: u64 = 1 << 10;
/// One mebibyte.
pub const MB: u64 = 1 << 20;
/// One gibibyte.
pub const GB: u64 = 1 << 30;

/// Formats a byte count with a binary-unit suffix (e.g. `256.0 MB`).
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if bytes >= GB {
        format!("{:.1} GB", b / GB as f64)
    } else if bytes >= MB {
        format!("{:.1} MB", b / MB as f64)
    } else if bytes >= KB {
        format!("{:.1} KB", b / KB as f64)
    } else {
        format!("{bytes} B")
    }
}

/// Formats seconds as `SSS.T s` or `M m SS s` for readability in harness
/// output.
pub fn fmt_secs(secs: f64) -> String {
    if secs >= 120.0 {
        let m = (secs / 60.0).floor() as u64;
        format!("{m} m {:.0} s", secs - m as f64 * 60.0)
    } else {
        format!("{secs:.1} s")
    }
}

/// Throughput in MB/s given bytes moved over elapsed seconds.
pub fn throughput_mb_s(bytes: u64, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    bytes as f64 / MB as f64 / secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_binary() {
        assert_eq!(KB, 1024);
        assert_eq!(MB, 1024 * 1024);
        assert_eq!(GB, 1024 * 1024 * 1024);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2 * KB), "2.0 KB");
        assert_eq!(fmt_bytes(256 * MB), "256.0 MB");
        assert_eq!(fmt_bytes(8 * GB), "8.0 GB");
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_secs(69.0), "69.0 s");
        assert_eq!(fmt_secs(275.0), "4 m 35 s");
    }

    #[test]
    fn throughput_math() {
        assert!((throughput_mb_s(100 * MB, 2.0) - 50.0).abs() < 1e-9);
        assert_eq!(throughput_mb_s(MB, 0.0), 0.0);
    }
}
