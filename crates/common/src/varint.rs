//! LEB128 variable-length integer encoding.
//!
//! Record framing (see [`crate::ser`]) and the LZ77 block codec both store
//! lengths as varints, the same trick Hadoop's `WritableUtils.writeVInt`
//! plays to keep small records small. Encoding is unsigned LEB128; signed
//! values go through zigzag.

use crate::error::{Error, Result};

/// Maximum number of bytes an encoded `u64` can occupy.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends the LEB128 encoding of `value` to `out`, returning the number of
/// bytes written.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) -> usize {
    let mut n = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        n += 1;
        if value == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a LEB128 `u64` from the front of `buf`, returning the value and
/// the number of bytes consumed.
pub fn read_u64(buf: &[u8]) -> Result<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(Error::Varint("varint longer than 10 bytes".into()));
        }
        let payload = (byte & 0x7f) as u64;
        value = value
            .checked_add(
                payload
                    .checked_shl(shift)
                    .ok_or_else(|| Error::Varint("varint shift overflow".into()))?,
            )
            .ok_or_else(|| Error::Varint("varint value overflow".into()))?;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(Error::Varint("truncated varint".into()))
}

/// Zigzag-encodes a signed integer so small magnitudes stay small.
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a zigzag-encoded signed integer.
pub fn write_i64(out: &mut Vec<u8>, value: i64) -> usize {
    write_u64(out, zigzag_encode(value))
}

/// Reads a zigzag-encoded signed integer.
pub fn read_i64(buf: &[u8]) -> Result<(i64, usize)> {
    let (raw, n) = read_u64(buf)?;
    Ok((zigzag_decode(raw), n))
}

/// Number of bytes [`write_u64`] would emit for `value`.
pub fn encoded_len(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_boundaries() {
        let cases = [
            0u64,
            1,
            127,
            128,
            255,
            256,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &cases {
            let mut buf = Vec::new();
            let wrote = write_u64(&mut buf, v);
            assert_eq!(wrote, buf.len());
            assert_eq!(wrote, encoded_len(v), "encoded_len mismatch for {v}");
            let (decoded, read) = read_u64(&buf).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(read, buf.len());
        }
    }

    #[test]
    fn signed_round_trip() {
        for &v in &[0i64, 1, -1, 63, -64, 64, -65, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let (decoded, _) = read_i64(&buf).unwrap();
            assert_eq!(decoded, v);
        }
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        buf.pop();
        assert!(read_u64(&buf).is_err());
        assert!(read_u64(&[]).is_err());
    }

    #[test]
    fn overlong_varint_is_an_error() {
        // Eleven continuation bytes can never be a valid u64.
        let buf = [0x80u8; 11];
        assert!(read_u64(&buf).is_err());
    }

    #[test]
    fn zigzag_small_magnitudes_stay_small() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        for v in -1000..1000 {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn decoding_ignores_trailing_bytes() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 300);
        buf.extend_from_slice(&[0xde, 0xad]);
        let (v, n) = read_u64(&buf).unwrap();
        assert_eq!(v, 300);
        assert_eq!(n, 2);
    }
}
