//! Property-based tests for the common crate's foundations: the
//! serialization, codec, comparator, and partitioner invariants every
//! engine depends on.

use proptest::prelude::*;

use dmpi_common::codec;
use dmpi_common::compare::{is_sorted, merge_sorted_runs, sort_records, BytesComparator};
use dmpi_common::kv::{Record, RecordBatch};
use dmpi_common::partition::{HashPartitioner, Partitioner, RangePartitioner};
use dmpi_common::ser::{self, Writable};
use dmpi_common::varint;

proptest! {
    #[test]
    fn varint_round_trips(v in any::<u64>()) {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, v);
        let (decoded, n) = varint::read_u64(&buf).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(n, buf.len());
        prop_assert_eq!(n, varint::encoded_len(v));
    }

    #[test]
    fn signed_varint_round_trips(v in any::<i64>()) {
        let mut buf = Vec::new();
        varint::write_i64(&mut buf, v);
        prop_assert_eq!(varint::read_i64(&buf).unwrap().0, v);
    }

    #[test]
    fn varint_decoding_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..24)) {
        let _ = varint::read_u64(&bytes);
    }

    #[test]
    fn codec_round_trips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let compressed = codec::compress(&data);
        let decompressed = codec::decompress(&compressed).unwrap();
        prop_assert_eq!(decompressed, data);
    }

    #[test]
    fn codec_rejects_corruption_without_panicking(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        flip in any::<u8>(),
        pos in any::<prop::sample::Index>(),
    ) {
        let mut compressed = codec::compress(&data);
        let i = pos.index(compressed.len());
        compressed[i] ^= flip;
        // Any outcome but a panic is fine; if it decodes, length must obey
        // the header.
        if let Ok(out) = codec::decompress(&compressed) {
            let declared = codec::uncompressed_len(&compressed).unwrap();
            prop_assert_eq!(out.len() as u64, declared);
        }
    }

    #[test]
    fn record_framing_round_trips(
        pairs in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..64),
             proptest::collection::vec(any::<u8>(), 0..64)),
            0..32,
        )
    ) {
        let batch: RecordBatch = pairs
            .iter()
            .map(|(k, v)| Record::new(k.clone(), v.clone()))
            .collect();
        let framed = ser::frame_batch(&batch);
        prop_assert_eq!(framed.len() as u64, batch.framed_bytes());
        let decoded = ser::unframe_batch(&framed).unwrap();
        prop_assert_eq!(decoded.records(), batch.records());
    }

    #[test]
    fn framing_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = ser::unframe_batch(&bytes);
    }

    #[test]
    fn writable_string_round_trips(s in ".{0,64}") {
        let bytes = s.to_bytes();
        prop_assert_eq!(String::from_bytes(&bytes).unwrap(), s);
    }

    #[test]
    fn writable_f64_vec_round_trips(v in proptest::collection::vec(any::<f64>(), 0..32)) {
        let bytes = v.to_bytes();
        let back = Vec::<f64>::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.len(), v.len());
        for (a, b) in back.iter().zip(&v) {
            prop_assert!(a == b || (a.is_nan() && b.is_nan()));
        }
    }

    #[test]
    fn hash_partitioner_is_total_and_stable(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..64),
        parts in 1usize..64,
    ) {
        let p = HashPartitioner::new(parts);
        for k in &keys {
            let a = p.partition(k);
            prop_assert!(a < parts);
            prop_assert_eq!(a, p.partition(k));
        }
    }

    #[test]
    fn range_partitioner_is_monotone(
        mut keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 2..64),
        parts in 1usize..16,
    ) {
        let p = RangePartitioner::from_sample(keys.clone(), parts);
        keys.sort();
        let assigned: Vec<usize> = keys.iter().map(|k| p.partition(k)).collect();
        prop_assert!(assigned.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(assigned.iter().all(|&a| a < p.num_partitions()));
    }

    #[test]
    fn sorting_is_a_permutation_and_ordered(
        pairs in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..16), any::<u8>()),
            0..64,
        )
    ) {
        let mut records: Vec<Record> = pairs
            .iter()
            .map(|(k, v)| Record::new(k.clone(), vec![*v]))
            .collect();
        let mut expected = records.clone();
        sort_records(&mut records, &BytesComparator);
        prop_assert!(is_sorted(&records, &BytesComparator));
        // Permutation check: sort both multiset representations.
        let canon = |v: &[Record]| {
            let mut c: Vec<(Vec<u8>, Vec<u8>)> =
                v.iter().map(|r| (r.key.to_vec(), r.value.to_vec())).collect();
            c.sort();
            c
        };
        expected.sort_by(|a, b| a.key.cmp(&b.key).then(a.value.cmp(&b.value)));
        prop_assert_eq!(canon(&records), canon(&expected));
    }

    #[test]
    fn merge_equals_global_sort(
        runs in proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..8), 0..16),
            0..6,
        )
    ) {
        let runs: Vec<Vec<Record>> = runs
            .into_iter()
            .map(|keys| {
                let mut v: Vec<Record> =
                    keys.into_iter().map(|k| Record::new(k, vec![])).collect();
                sort_records(&mut v, &BytesComparator);
                v
            })
            .collect();
        let mut all: Vec<Record> = runs.iter().flatten().cloned().collect();
        let merged = merge_sorted_runs(runs, &BytesComparator);
        sort_records(&mut all, &BytesComparator);
        prop_assert_eq!(merged, all);
    }
}
