//! `dmpi-datagen` — BigDataBench-like synthetic data generation.
//!
//! BigDataBench 2.1 generates benchmark inputs from *seed models* trained on
//! real corpora: `lda_wiki1w` (Wikipedia entries) feeds the
//! micro-benchmarks, and `amazon1`–`amazon5` (Amazon movie reviews) feed
//! the K-means and Naive Bayes applications. This crate reproduces that
//! pipeline with self-contained statistics:
//!
//! * [`seedmodel`] — a seed model is a vocabulary plus a Zipfian
//!   rank-frequency distribution, deterministically derived from the model
//!   name; different models have distinct (partially overlapping)
//!   vocabularies, which is what makes Naive Bayes classes separable.
//! * [`text`] — the Text Generator: lines of sampled words, documents of
//!   lines, streamed into DFS files (real bytes for executing runs).
//! * [`seqfile`] — `ToSeqFile`: converts text to key/value sequence files,
//!   optionally compressed with the workspace LZ77 codec (the *Normal
//!   Sort* input).
//! * [`vectors`] — the sparse-vector pipeline (`genData_Kmeans`): documents
//!   to term-frequency vectors over a hashed dimension space.
//! * [`stats`] — corpus statistics measured on real samples and
//!   extrapolated to paper-scale (multi-GB) virtual corpora for the
//!   simulator's cost models.

pub mod seedmodel;
pub mod seqfile;
pub mod stats;
pub mod text;
pub mod vectors;

pub use seedmodel::SeedModel;
pub use stats::CorpusStats;
pub use text::TextGenerator;
pub use vectors::SparseVector;
