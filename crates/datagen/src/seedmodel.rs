//! Seed models: vocabulary + Zipfian word distribution.
//!
//! BigDataBench trains seed models from real corpora; we derive them
//! deterministically from the model name. A model is a vocabulary of
//! synthetic words and a Zipf(s) rank-frequency law — the empirical shape
//! of natural-language word frequencies, which is what gives WordCount its
//! skewed reducer load and keeps the distinct-word dictionary small
//! relative to the corpus (the paper leans on this in §4.4: "the word
//! dictionary of the input files is small and few intermediate data is
//! generated").

use std::sync::{Arc, OnceLock};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dmpi_common::hashing::fnv1a;

/// Default vocabulary size per model.
pub const DEFAULT_VOCAB: usize = 10_000;
/// Default Zipf exponent (classic natural-language value).
pub const DEFAULT_ZIPF_S: f64 = 1.05;

/// A trained seed model: the unit BigDataBench scales to produce synthetic
/// corpora.
/// The tables live behind `Arc` so cloning a model is pointer-cheap:
/// training one costs ~10k RNG draws plus 10k `powf` calls, and hot
/// paths (resident job prepare, per-task generators) clone freely.
#[derive(Clone, Debug)]
pub struct SeedModel {
    name: String,
    vocab: Arc<Vec<String>>,
    /// Cumulative probability per rank, for inverse-CDF sampling.
    cumulative: Arc<Vec<f64>>,
}

impl SeedModel {
    /// Builds a model with an explicit vocabulary size and Zipf exponent.
    pub fn with_params(name: &str, vocab_size: usize, zipf_s: f64) -> Self {
        assert!(vocab_size > 0, "vocabulary must be non-empty");
        assert!(zipf_s > 0.0, "Zipf exponent must be positive");
        let mut rng = StdRng::seed_from_u64(fnv1a(name.as_bytes()));
        let mut vocab = Vec::with_capacity(vocab_size);
        let mut seen = std::collections::HashSet::with_capacity(vocab_size);
        while vocab.len() < vocab_size {
            let len = rng.gen_range(3..=9);
            let word: String = (0..len)
                .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                .collect();
            if seen.insert(word.clone()) {
                vocab.push(word);
            }
        }
        // Zipf cumulative distribution over ranks 1..=n.
        let mut cumulative = Vec::with_capacity(vocab_size);
        let mut total = 0.0;
        for rank in 1..=vocab_size {
            total += 1.0 / (rank as f64).powf(zipf_s);
            cumulative.push(total);
        }
        for c in cumulative.iter_mut() {
            *c /= total;
        }
        // Guard against FP drift at the top end.
        *cumulative.last_mut().expect("non-empty") = 1.0;
        SeedModel {
            name: name.to_string(),
            vocab: Arc::new(vocab),
            cumulative: Arc::new(cumulative),
        }
    }

    /// The `lda_wiki1w` model (Wikipedia entries) used by the
    /// micro-benchmarks. Trained once per process: a resident worker
    /// resolves this on every job's critical path, so the ~5ms training
    /// cost must not recur per submission.
    pub fn lda_wiki1w() -> Self {
        static MODEL: OnceLock<SeedModel> = OnceLock::new();
        MODEL
            .get_or_init(|| SeedModel::with_params("lda_wiki1w", DEFAULT_VOCAB, DEFAULT_ZIPF_S))
            .clone()
    }

    /// One of the `amazon1`–`amazon5` models (Amazon movie reviews) used by
    /// K-means and Naive Bayes. `index` is 1-based like the paper's naming.
    /// Cached per process like [`SeedModel::lda_wiki1w`].
    ///
    /// # Panics
    /// Panics if `index` is not in `1..=5`.
    pub fn amazon(index: u8) -> Self {
        assert!(
            (1..=5).contains(&index),
            "amazon models are amazon1..amazon5"
        );
        static MODELS: [OnceLock<SeedModel>; 5] = [
            OnceLock::new(),
            OnceLock::new(),
            OnceLock::new(),
            OnceLock::new(),
            OnceLock::new(),
        ];
        MODELS[index as usize - 1]
            .get_or_init(|| {
                SeedModel::with_params(&format!("amazon{index}"), DEFAULT_VOCAB, DEFAULT_ZIPF_S)
            })
            .clone()
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Samples one word according to the Zipf law.
    pub fn sample_word<R: Rng>(&self, rng: &mut R) -> &str {
        let u: f64 = rng.gen();
        let idx = self.cumulative.partition_point(|&c| c < u);
        &self.vocab[idx.min(self.vocab.len() - 1)]
    }

    /// The `rank`-th most frequent word (0-based).
    pub fn word_at_rank(&self, rank: usize) -> &str {
        &self.vocab[rank]
    }

    /// Expected probability of the rank-`r` word (0-based), for tests.
    pub fn rank_probability(&self, rank: usize) -> f64 {
        let prev = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        self.cumulative[rank] - prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_are_deterministic() {
        let a = SeedModel::lda_wiki1w();
        let b = SeedModel::lda_wiki1w();
        assert_eq!(a.word_at_rank(0), b.word_at_rank(0));
        assert_eq!(a.word_at_rank(999), b.word_at_rank(999));
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.sample_word(&mut r1), b.sample_word(&mut r2));
        }
    }

    #[test]
    fn different_models_have_different_vocabularies() {
        let wiki = SeedModel::lda_wiki1w();
        let am1 = SeedModel::amazon(1);
        let am2 = SeedModel::amazon(2);
        assert_ne!(wiki.word_at_rank(0), am1.word_at_rank(0));
        assert_ne!(am1.word_at_rank(0), am2.word_at_rank(0));
    }

    #[test]
    #[should_panic(expected = "amazon1..amazon5")]
    fn amazon_index_bounds() {
        SeedModel::amazon(6);
    }

    #[test]
    fn vocabulary_is_distinct() {
        let m = SeedModel::with_params("t", 2000, 1.0);
        let set: std::collections::HashSet<_> = (0..2000).map(|i| m.word_at_rank(i)).collect();
        assert_eq!(set.len(), 2000);
    }

    #[test]
    fn sampling_follows_zipf_shape() {
        let m = SeedModel::with_params("zipftest", 1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 1000];
        let n = 200_000;
        for _ in 0..n {
            let w = m.sample_word(&mut rng);
            // Find rank by linear probe over the top few; cheaper: build map.
            let rank = (0..1000).find(|&r| m.word_at_rank(r) == w).unwrap();
            counts[rank] += 1;
        }
        // Rank 0 should be roughly twice rank 1 (s=1.0) and far above 100.
        assert!(counts[0] > counts[1]);
        assert!(counts[0] as f64 / counts[1] as f64 > 1.5);
        assert!(counts[0] > counts[100] * 10);
        // Empirical top-word frequency ≈ theoretical.
        let p0 = m.rank_probability(0);
        let observed = counts[0] as f64 / n as f64;
        assert!(
            (observed - p0).abs() / p0 < 0.1,
            "observed {observed}, want {p0}"
        );
    }

    #[test]
    fn rank_probabilities_sum_to_one() {
        let m = SeedModel::with_params("sum", 100, 1.2);
        let total: f64 = (0..100).map(|r| m.rank_probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
