//! `ToSeqFile` — the sequence-file conversion used by *Normal Sort*.
//!
//! The paper (§4.3): "ToSeqFile runs a MapReduce job and copies each line
//! of the input data to the key and value, then compresses the output with
//! GzipCodec." We reproduce exactly that record shape — `key = value =
//! line` — with the workspace LZ77 codec standing in for gzip.

use dmpi_common::codec;
use dmpi_common::kv::{Record, RecordBatch};
use dmpi_common::ser;
use dmpi_common::{Error, Result};

/// Converts raw text into sequence-file records (`key = value = line`).
pub fn text_to_records(text: &[u8]) -> RecordBatch {
    let mut batch = RecordBatch::new();
    for line in crate::text::lines(text) {
        batch.push(Record::new(line.to_vec(), line.to_vec()));
    }
    batch
}

/// Serializes records into a compressed sequence-file image (one LZ77 block
/// over the framed records — per-file compression like `GzipCodec` on a
/// whole output part).
pub fn write_compressed(batch: &RecordBatch) -> Vec<u8> {
    codec::compress(&ser::frame_batch(batch))
}

/// Serializes records into an uncompressed sequence-file image.
pub fn write_uncompressed(batch: &RecordBatch) -> Vec<u8> {
    ser::frame_batch(batch)
}

/// Reads a compressed sequence-file image back into records.
pub fn read_compressed(data: &[u8]) -> Result<RecordBatch> {
    let raw = codec::decompress(data)?;
    ser::unframe_batch(&raw)
}

/// Reads an uncompressed sequence-file image.
pub fn read_uncompressed(data: &[u8]) -> Result<RecordBatch> {
    ser::unframe_batch(data)
}

/// Converts text straight to a compressed sequence file, returning the
/// image and the logical (uncompressed, framed) size — the pair the
/// simulator's Normal Sort cost model needs.
pub fn to_seq_file(text: &[u8]) -> (Vec<u8>, u64) {
    let batch = text_to_records(text);
    let logical = batch.framed_bytes();
    (write_compressed(&batch), logical)
}

/// Validates that `data` looks like a compressed sequence file and returns
/// its logical size without full decompression.
pub fn logical_size(data: &[u8]) -> Result<u64> {
    codec::uncompressed_len(data).map_err(|e| Error::corrupt(format!("not a seq file: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seedmodel::SeedModel;
    use crate::text::TextGenerator;

    #[test]
    fn key_equals_value_per_line() {
        let batch = text_to_records(b"first line\nsecond line\n");
        assert_eq!(batch.len(), 2);
        for rec in &batch {
            assert_eq!(rec.key, rec.value);
        }
        assert_eq!(batch.records()[0].key_utf8(), "first line");
    }

    #[test]
    fn compressed_round_trip() {
        let mut g = TextGenerator::new(SeedModel::lda_wiki1w(), 5);
        let text = g.generate_bytes(20_000);
        let batch = text_to_records(&text);
        let img = write_compressed(&batch);
        let back = read_compressed(&img).unwrap();
        assert_eq!(back.records(), batch.records());
        // Key duplication + Zipfian text should compress well.
        assert!(img.len() < batch.framed_bytes() as usize / 2);
    }

    #[test]
    fn uncompressed_round_trip() {
        let batch = text_to_records(b"a b\nc d\n");
        let img = write_uncompressed(&batch);
        assert_eq!(read_uncompressed(&img).unwrap().records(), batch.records());
    }

    #[test]
    fn to_seq_file_reports_logical_size() {
        let text = b"hello world\nhello again\n";
        let (img, logical) = to_seq_file(text);
        assert_eq!(logical, text_to_records(text).framed_bytes());
        assert_eq!(logical_size(&img).unwrap(), logical);
    }

    #[test]
    fn empty_text_is_empty_file() {
        let (img, logical) = to_seq_file(b"");
        assert_eq!(logical, 0);
        assert!(read_compressed(&img).unwrap().is_empty());
    }

    #[test]
    fn corrupt_image_is_an_error() {
        let (mut img, _) = to_seq_file(b"some line\nanother\n");
        img.truncate(img.len() / 2);
        assert!(read_compressed(&img).is_err());
    }
}
