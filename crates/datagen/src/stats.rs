//! Corpus statistics: measured on real samples, extrapolated to
//! paper-scale virtual corpora.
//!
//! The simulator's cost models need to know, for a corpus they will never
//! materialize (e.g. 64 GB of wiki text), how many lines and words it
//! contains, how big its dictionary is, and how well it compresses. We
//! measure those on a real generated sample and scale — the same logic
//! BigDataBench applies when it "generates synthetic data by scaling the
//! seed models while keeping the characteristics of data".

use dmpi_common::codec;
use dmpi_common::hashing::FnvHashSet;

use crate::seedmodel::SeedModel;
use crate::text::{lines, words, TextGenerator};

/// Measured / extrapolated corpus characteristics.
#[derive(Clone, Debug)]
pub struct CorpusStats {
    /// Total corpus size in bytes.
    pub bytes: u64,
    /// Number of lines (records for Text Sort / WordCount / Grep).
    pub lines: u64,
    /// Total word occurrences.
    pub words: u64,
    /// Distinct words (the WordCount dictionary size; bounded by the seed
    /// model vocabulary).
    pub distinct_words: u64,
    /// Average line length in bytes (including the newline).
    pub avg_line_bytes: f64,
    /// LZ77 compression ratio of the text (uncompressed / compressed).
    pub compression_ratio: f64,
}

/// Sample size used for measurement.
const SAMPLE_BYTES: usize = 256 * 1024;

impl CorpusStats {
    /// Measures statistics on an actual byte buffer.
    pub fn measure(data: &[u8]) -> Self {
        let mut line_count = 0u64;
        let mut word_count = 0u64;
        let mut distinct: FnvHashSet<&[u8]> = FnvHashSet::default();
        for line in lines(data) {
            line_count += 1;
            for w in words(line) {
                word_count += 1;
                distinct.insert(w);
            }
        }
        CorpusStats {
            bytes: data.len() as u64,
            lines: line_count,
            words: word_count,
            distinct_words: distinct.len() as u64,
            avg_line_bytes: if line_count > 0 {
                data.len() as f64 / line_count as f64
            } else {
                0.0
            },
            compression_ratio: codec::ratio(data),
        }
    }

    /// Extrapolates statistics for a virtual corpus of `total_bytes` drawn
    /// from `model`, by measuring a real sample. Deterministic per model.
    pub fn estimate(model: &SeedModel, total_bytes: u64) -> Self {
        let mut gen = TextGenerator::new(model.clone(), 0xC0FFEE);
        let sample = gen.generate_bytes(SAMPLE_BYTES);
        let s = CorpusStats::measure(&sample);
        let scale = total_bytes as f64 / s.bytes as f64;
        CorpusStats {
            bytes: total_bytes,
            lines: (s.lines as f64 * scale) as u64,
            words: (s.words as f64 * scale) as u64,
            // The dictionary saturates at the model vocabulary for any
            // corpus much larger than the sample.
            distinct_words: if total_bytes >= s.bytes {
                model.vocab_size() as u64
            } else {
                (s.distinct_words as f64 * scale) as u64
            },
            avg_line_bytes: s.avg_line_bytes,
            compression_ratio: s.compression_ratio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpi_common::units::GB;

    #[test]
    fn measure_counts_exactly() {
        let s = CorpusStats::measure(b"one two\nthree two\n");
        assert_eq!(s.lines, 2);
        assert_eq!(s.words, 4);
        assert_eq!(s.distinct_words, 3);
        assert_eq!(s.bytes, 18);
        assert!((s.avg_line_bytes - 9.0).abs() < 1e-9);
    }

    #[test]
    fn empty_corpus() {
        let s = CorpusStats::measure(b"");
        assert_eq!(s.lines, 0);
        assert_eq!(s.words, 0);
        assert_eq!(s.avg_line_bytes, 0.0);
    }

    #[test]
    fn estimate_scales_linearly() {
        let model = SeedModel::lda_wiki1w();
        let a = CorpusStats::estimate(&model, GB);
        let b = CorpusStats::estimate(&model, 8 * GB);
        assert_eq!(b.bytes, 8 * a.bytes);
        let ratio = b.lines as f64 / a.lines as f64;
        assert!((ratio - 8.0).abs() < 0.01, "lines scale ~8x, got {ratio}");
        // Dictionary saturates: both hit the model vocabulary.
        assert_eq!(a.distinct_words, b.distinct_words);
        assert_eq!(a.distinct_words, model.vocab_size() as u64);
    }

    #[test]
    fn estimate_is_deterministic() {
        let model = SeedModel::lda_wiki1w();
        let a = CorpusStats::estimate(&model, GB);
        let b = CorpusStats::estimate(&model, GB);
        assert_eq!(a.lines, b.lines);
        assert_eq!(a.words, b.words);
        assert!((a.compression_ratio - b.compression_ratio).abs() < 1e-12);
    }

    #[test]
    fn wiki_text_characteristics_are_plausible() {
        let s = CorpusStats::estimate(&SeedModel::lda_wiki1w(), GB);
        // ~5-15 words of 3-9 chars per line.
        assert!(s.avg_line_bytes > 20.0 && s.avg_line_bytes < 120.0);
        assert!(s.compression_ratio > 1.5 && s.compression_ratio < 10.0);
        assert!(s.words > s.lines * 4);
    }
}
