//! The Text Generator: produces line-oriented corpora from a seed model.
//!
//! This is BigDataBench's *Text Generator* — it produced the inputs for
//! Text Sort, WordCount and Grep in the paper (seed model `lda_wiki1w`) and
//! the document sets for K-means and Naive Bayes (`amazon1`–`amazon5`).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dmpi_common::Result;
use dmpi_dcsim::NodeId;
use dmpi_dfs::MiniDfs;

use crate::seedmodel::SeedModel;

/// Line-length bounds (words per line), loosely matching sentence lengths
/// in the wiki corpus.
const MIN_WORDS_PER_LINE: usize = 5;
const MAX_WORDS_PER_LINE: usize = 15;

/// A deterministic, seedable text stream.
///
/// # Examples
/// ```
/// use dmpi_datagen::{SeedModel, TextGenerator};
///
/// let mut a = TextGenerator::new(SeedModel::lda_wiki1w(), 7);
/// let mut b = TextGenerator::new(SeedModel::lda_wiki1w(), 7);
/// assert_eq!(a.line(), b.line()); // same model + seed => same text
/// ```
pub struct TextGenerator {
    model: SeedModel,
    rng: StdRng,
}

impl TextGenerator {
    /// Creates a generator over `model` with an independent `seed` (two
    /// generators with the same model and seed produce identical text).
    pub fn new(model: SeedModel, seed: u64) -> Self {
        TextGenerator {
            model,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying seed model.
    pub fn model(&self) -> &SeedModel {
        &self.model
    }

    /// Generates one line of space-separated words (no trailing newline).
    pub fn line(&mut self) -> String {
        let words = self.rng.gen_range(MIN_WORDS_PER_LINE..=MAX_WORDS_PER_LINE);
        let mut line = String::with_capacity(words * 8);
        for i in 0..words {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(self.model.sample_word(&mut self.rng));
        }
        line
    }

    /// Generates a document of `lines` newline-terminated lines.
    pub fn document(&mut self, lines: usize) -> String {
        let mut doc = String::with_capacity(lines * 64);
        for _ in 0..lines {
            doc.push_str(&self.line());
            doc.push('\n');
        }
        doc
    }

    /// Generates at least `min_bytes` of newline-terminated text (stops at
    /// the first line boundary past the target).
    pub fn generate_bytes(&mut self, min_bytes: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(min_bytes + 128);
        while out.len() < min_bytes {
            out.extend_from_slice(self.line().as_bytes());
            out.push(b'\n');
        }
        out
    }

    /// Generates a corpus of `total_bytes` spread over `files` DFS files
    /// under `prefix`, writers rotating over the cluster nodes (this is how
    /// BigDataBench's generator runs: one generator task per node). Returns
    /// the created paths.
    pub fn write_corpus(
        &mut self,
        dfs: &Arc<MiniDfs>,
        prefix: &str,
        total_bytes: usize,
        files: usize,
    ) -> Result<Vec<String>> {
        assert!(files > 0, "need at least one file");
        let per_file = total_bytes / files;
        let nodes = dfs.num_nodes();
        let mut paths = Vec::with_capacity(files);
        for i in 0..files {
            let path = format!("{prefix}/part-{i:05}");
            let data = self.generate_bytes(per_file);
            dfs.write_file(&path, NodeId((i % nodes as usize) as u16), &data)?;
            paths.push(path);
        }
        Ok(paths)
    }
}

/// Splits raw corpus bytes into lines (without allocating per line);
/// shared helper for engines tokenizing input splits.
pub fn lines(data: &[u8]) -> impl Iterator<Item = &[u8]> {
    data.split(|&b| b == b'\n').filter(|l| !l.is_empty())
}

/// Splits a line into words.
pub fn words(line: &[u8]) -> impl Iterator<Item = &[u8]> {
    line.split(|&b| b == b' ').filter(|w| !w.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpi_dfs::DfsConfig;

    #[test]
    fn lines_have_sane_shape() {
        let mut g = TextGenerator::new(SeedModel::lda_wiki1w(), 1);
        for _ in 0..50 {
            let l = g.line();
            let n = l.split(' ').count();
            assert!((MIN_WORDS_PER_LINE..=MAX_WORDS_PER_LINE).contains(&n));
            assert!(!l.ends_with('\n'));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TextGenerator::new(SeedModel::lda_wiki1w(), 9);
        let mut b = TextGenerator::new(SeedModel::lda_wiki1w(), 9);
        assert_eq!(a.document(10), b.document(10));
        let mut c = TextGenerator::new(SeedModel::lda_wiki1w(), 10);
        assert_ne!(a.document(10), c.document(10));
    }

    #[test]
    fn generate_bytes_hits_target_and_ends_on_line() {
        let mut g = TextGenerator::new(SeedModel::lda_wiki1w(), 2);
        let data = g.generate_bytes(10_000);
        assert!(data.len() >= 10_000);
        assert!(data.len() < 10_000 + 200, "overshoot bounded by one line");
        assert_eq!(*data.last().unwrap(), b'\n');
    }

    #[test]
    fn corpus_lands_in_dfs() {
        let dfs = MiniDfs::new(4, DfsConfig::test_small().with_block_size(1024)).unwrap();
        let mut g = TextGenerator::new(SeedModel::lda_wiki1w(), 3);
        let paths = g.write_corpus(&dfs, "/text", 8_000, 4).unwrap();
        assert_eq!(paths.len(), 4);
        let all = dfs.list_prefix("/text/");
        assert_eq!(all.len(), 4);
        let data = dfs.read_file(&paths[0]).unwrap();
        assert!(data.len() >= 2000);
    }

    #[test]
    fn line_and_word_helpers() {
        let data = b"alpha beta\n\ngamma  delta \n";
        let ls: Vec<&[u8]> = lines(data).collect();
        assert_eq!(ls.len(), 2);
        let ws: Vec<&[u8]> = words(ls[1]).collect();
        assert_eq!(ws, vec![b"gamma".as_slice(), b"delta".as_slice()]);
    }

    #[test]
    fn text_is_compressible_like_natural_language() {
        let mut g = TextGenerator::new(SeedModel::lda_wiki1w(), 4);
        let data = g.generate_bytes(100_000);
        let ratio = dmpi_common::codec::ratio(&data);
        // Zipfian text compresses well but not absurdly.
        assert!(ratio > 1.5 && ratio < 10.0, "ratio {ratio}");
    }
}
