//! Sparse vectors — the `genData_Kmeans` pipeline.
//!
//! BigDataBench converts documents to sequence files and then to sparse
//! term-frequency vectors, which are the training input of K-means and
//! (after tf weighting) Naive Bayes. We hash words into a fixed dimension
//! space (Mahout's "hashed vectorizer") and count term frequencies.

use dmpi_common::hashing::{fnv1a, FnvHashMap};
use dmpi_common::ser::Writable;
use dmpi_common::{Error, Result};

/// Default hashed dimensionality.
pub const DEFAULT_DIMS: usize = 1000;

/// A sparse vector: sorted unique dimensions with positive weights.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseVector {
    /// Total dimensionality of the space.
    pub dims: u32,
    /// Sorted dimension indices.
    pub indices: Vec<u32>,
    /// Weight per index (same length as `indices`).
    pub values: Vec<f64>,
}

impl SparseVector {
    /// Builds a vector, validating shape invariants.
    pub fn new(dims: u32, indices: Vec<u32>, values: Vec<f64>) -> Result<Self> {
        if indices.len() != values.len() {
            return Err(Error::Config("indices/values length mismatch".into()));
        }
        if indices.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::Config("indices must be strictly increasing".into()));
        }
        if indices.iter().any(|&i| i >= dims) {
            return Err(Error::Config("index out of dimension bounds".into()));
        }
        Ok(SparseVector {
            dims,
            indices,
            values,
        })
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Dot product with a dense vector (e.g. a centroid).
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        self.indices
            .iter()
            .zip(&self.values)
            .map(|(&i, &v)| v * dense[i as usize])
            .sum()
    }

    /// Squared Euclidean distance to a dense centroid.
    /// `|x - c|² = |x|² - 2·x·c + |c|²`; the caller usually precomputes
    /// `|c|²`, but this convenience recomputes it.
    pub fn dist_sq_dense(&self, dense: &[f64]) -> f64 {
        let c_norm: f64 = dense.iter().map(|v| v * v).sum();
        self.dist_sq_dense_with_norm(dense, c_norm)
    }

    /// Distance using a precomputed centroid norm (hot path of K-means).
    pub fn dist_sq_dense_with_norm(&self, dense: &[f64], c_norm_sq: f64) -> f64 {
        (self.norm_sq() - 2.0 * self.dot_dense(dense) + c_norm_sq).max(0.0)
    }

    /// Adds this vector into a dense accumulator (centroid update step).
    pub fn add_into(&self, acc: &mut [f64]) {
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            acc[i as usize] += v;
        }
    }

    /// Approximate serialized size in bytes (used by simulation cost
    /// models: one varint index + one f64 per entry plus headers).
    pub fn approx_bytes(&self) -> u64 {
        (self.nnz() * 12 + 16) as u64
    }
}

impl Writable for SparseVector {
    fn write_to(&self, out: &mut Vec<u8>) {
        (self.dims as u64).write_to(out);
        (self.indices.len() as u64).write_to(out);
        for &i in &self.indices {
            (i as u64).write_to(out);
        }
        for &v in &self.values {
            v.write_to(out);
        }
    }

    fn read_from(buf: &[u8]) -> Result<(Self, usize)> {
        let (dims, mut off) = u64::read_from(buf)?;
        let (n, d) = u64::read_from(&buf[off..])?;
        off += d;
        let n = usize::try_from(n).map_err(|_| Error::corrupt("nnz overflow"))?;
        let mut indices = Vec::with_capacity(n.min(buf.len()));
        for _ in 0..n {
            let (i, d) = u64::read_from(&buf[off..])?;
            off += d;
            indices.push(u32::try_from(i).map_err(|_| Error::corrupt("index overflow"))?);
        }
        let mut values = Vec::with_capacity(n.min(buf.len()));
        for _ in 0..n {
            let (v, d) = f64::read_from(&buf[off..])?;
            off += d;
            values.push(v);
        }
        let v = SparseVector::new(
            u32::try_from(dims).map_err(|_| Error::corrupt("dims overflow"))?,
            indices,
            values,
        )?;
        Ok((v, off))
    }
}

/// Vectorizes a document into hashed term frequencies.
pub fn vectorize(doc: &[u8], dims: usize) -> SparseVector {
    let mut counts: FnvHashMap<u32, f64> = FnvHashMap::default();
    for line in crate::text::lines(doc) {
        for word in crate::text::words(line) {
            let dim = (fnv1a(word) % dims as u64) as u32;
            *counts.entry(dim).or_insert(0.0) += 1.0;
        }
    }
    let mut entries: Vec<(u32, f64)> = counts.into_iter().collect();
    entries.sort_unstable_by_key(|&(i, _)| i);
    let (indices, values): (Vec<u32>, Vec<f64>) = entries.into_iter().unzip();
    SparseVector::new(dims as u32, indices, values).expect("constructed sorted")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectorize_counts_terms() {
        let v = vectorize(b"cat dog cat\nbird\n", 64);
        assert!(v.nnz() >= 2 && v.nnz() <= 3); // hash collisions possible
        let total: f64 = v.values.iter().sum();
        assert_eq!(total, 4.0, "four word occurrences");
        assert!(v.indices.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn invariants_enforced() {
        assert!(SparseVector::new(10, vec![1, 1], vec![1.0, 1.0]).is_err());
        assert!(SparseVector::new(10, vec![2, 1], vec![1.0, 1.0]).is_err());
        assert!(SparseVector::new(10, vec![10], vec![1.0]).is_err());
        assert!(SparseVector::new(10, vec![1], vec![1.0, 2.0]).is_err());
        assert!(SparseVector::new(10, vec![0, 9], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn distance_math() {
        let v = SparseVector::new(4, vec![0, 2], vec![1.0, 2.0]).unwrap();
        let centroid = [1.0, 0.0, 0.0, 0.0];
        // |v|^2 = 5, v·c = 1, |c|^2 = 1 -> dist^2 = 5 - 2 + 1 = 4.
        assert!((v.dist_sq_dense(&centroid) - 4.0).abs() < 1e-12);
        assert!((v.dist_sq_dense_with_norm(&centroid, 1.0) - 4.0).abs() < 1e-12);
        assert!((v.norm_sq() - 5.0).abs() < 1e-12);
        assert!((v.dot_dense(&centroid) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn add_into_accumulates() {
        let v = SparseVector::new(3, vec![0, 2], vec![1.5, 2.5]).unwrap();
        let mut acc = vec![0.0; 3];
        v.add_into(&mut acc);
        v.add_into(&mut acc);
        assert_eq!(acc, vec![3.0, 0.0, 5.0]);
    }

    #[test]
    fn writable_round_trip() {
        let v = vectorize(b"the quick brown fox jumps\n", 128);
        let bytes = v.to_bytes();
        let back = SparseVector::from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn empty_document_is_empty_vector() {
        let v = vectorize(b"", 64);
        assert_eq!(v.nnz(), 0);
        assert_eq!(v.norm_sq(), 0.0);
        let bytes = v.to_bytes();
        assert_eq!(SparseVector::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn approx_bytes_scales_with_nnz() {
        let small = vectorize(b"a b\n", 1024);
        let big = vectorize(
            "many different words in this much longer document line\n"
                .repeat(20)
                .as_bytes(),
            1024,
        );
        assert!(big.approx_bytes() > small.approx_bytes());
    }
}
