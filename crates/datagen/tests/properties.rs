//! Property-based tests of the data generators: determinism, format
//! round-trips, and statistical sanity for arbitrary seeds and sizes.

use proptest::prelude::*;

use dmpi_common::ser::Writable;
use dmpi_datagen::seqfile;
use dmpi_datagen::vectors::{vectorize, SparseVector};
use dmpi_datagen::{SeedModel, TextGenerator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn text_generation_is_deterministic_per_seed(seed in any::<u64>(), bytes in 64usize..4096) {
        let mut a = TextGenerator::new(SeedModel::lda_wiki1w(), seed);
        let mut b = TextGenerator::new(SeedModel::lda_wiki1w(), seed);
        prop_assert_eq!(a.generate_bytes(bytes), b.generate_bytes(bytes));
    }

    #[test]
    fn generated_text_is_well_formed(seed in any::<u64>(), bytes in 64usize..2048) {
        let mut gen = TextGenerator::new(SeedModel::amazon(1 + (seed % 5) as u8), seed);
        let data = gen.generate_bytes(bytes);
        prop_assert!(data.len() >= bytes);
        prop_assert_eq!(*data.last().unwrap(), b'\n');
        for line in dmpi_datagen::text::lines(&data) {
            let words: Vec<_> = dmpi_datagen::text::words(line).collect();
            prop_assert!(!words.is_empty());
            for w in words {
                prop_assert!(w.iter().all(|b| b.is_ascii_lowercase()));
            }
        }
    }

    #[test]
    fn seqfile_round_trips_arbitrary_text(seed in any::<u64>(), bytes in 0usize..2048) {
        let mut gen = TextGenerator::new(SeedModel::lda_wiki1w(), seed);
        let text = if bytes == 0 { Vec::new() } else { gen.generate_bytes(bytes) };
        let (img, logical) = seqfile::to_seq_file(&text);
        prop_assert_eq!(seqfile::logical_size(&img).unwrap(), logical);
        let batch = seqfile::read_compressed(&img).unwrap();
        prop_assert_eq!(batch.len(), dmpi_datagen::text::lines(&text).count());
        for rec in &batch {
            prop_assert_eq!(&rec.key, &rec.value);
        }
    }

    #[test]
    fn vectorize_preserves_total_term_count(seed in any::<u64>(), bytes in 64usize..2048, dims in 8u32..512) {
        let mut gen = TextGenerator::new(SeedModel::lda_wiki1w(), seed);
        let doc = gen.generate_bytes(bytes);
        let total_words = dmpi_datagen::text::lines(&doc)
            .map(|l| dmpi_datagen::text::words(l).count())
            .sum::<usize>() as f64;
        let v = vectorize(&doc, dims as usize);
        let mass: f64 = v.values.iter().sum();
        prop_assert!((mass - total_words).abs() < 1e-9);
        prop_assert!(v.nnz() <= dims as usize);
    }

    #[test]
    fn sparse_vector_serialization_round_trips(
        entries in proptest::collection::btree_map(0u32..1000, 0.001f64..100.0, 0..32),
    ) {
        let (indices, values): (Vec<u32>, Vec<f64>) = entries.into_iter().unzip();
        let v = SparseVector::new(1000, indices, values).unwrap();
        let bytes = v.to_bytes();
        prop_assert_eq!(SparseVector::from_bytes(&bytes).unwrap(), v);
    }
}
