//! Partitioned key-value send buffers — the pipelining mechanism.
//!
//! An O task emits key-value pairs through a [`KvBuffer`]: pairs are
//! hash-partitioned to their destination A partition and framed into
//! per-destination byte buffers. In pipelined mode a buffer is shipped the
//! moment it crosses the flush threshold, so communication proceeds while
//! the O task keeps computing — the overlap the paper identifies as
//! DataMPI's main advantage. In staged mode (the Hadoop-like ablation)
//! everything is held until [`KvBuffer::finish`].

use bytes::Bytes;

use dmpi_common::partition::{HashPartitioner, Partitioner};
use dmpi_common::ser;
use dmpi_common::Record;

use crate::checkpoint::CheckpointStore;
use crate::comm::Frame;
use crate::fault::Corruption;
use crate::observe::{SpanKind, Tracer};
use crate::transport::FrameSender;

/// Counters reported by a finished buffer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Records emitted.
    pub records: u64,
    /// Framed bytes emitted.
    pub bytes: u64,
    /// Frames shipped before `finish` (the pipelined flushes).
    pub early_flushes: u64,
    /// Total frames shipped.
    pub frames: u64,
}

/// A partitioned, flush-on-threshold emit buffer bound to one O task.
pub struct KvBuffer {
    partitioner: HashPartitioner,
    senders: Vec<FrameSender>,
    buffers: Vec<Vec<u8>>,
    from_rank: usize,
    o_task: usize,
    flush_threshold: usize,
    pipelined: bool,
    stats: BufferStats,
    /// Checkpoint tee: every shipped frame is also recorded here so a
    /// completed task's output can be replayed after a restart.
    tee: Option<CheckpointStore>,
    /// Fault injection: flip one byte of the next flushed frame *after*
    /// its CRC is computed and *after* the tee records the clean copy —
    /// wire corruption, not stable-store corruption.
    corruption: Option<Corruption>,
    /// Observability: when set, flushes record `Send` spans and feed the
    /// per-peer byte counters; `finish` reports the occupancy high-water
    /// mark. `None` costs one branch per emit.
    tracer: Option<Tracer>,
    /// Largest single-partition buffer occupancy seen, bytes.
    hwm_bytes: usize,
}

impl KvBuffer {
    /// Creates a buffer for O task `o_task` running on `from_rank`.
    /// `senders[p]` ships to partition `p` over whichever transport the
    /// job selected; a full destination (bounded mailbox or TCP send
    /// window) blocks the emitting task — that is the backpressure.
    pub fn new(
        senders: Vec<FrameSender>,
        from_rank: usize,
        o_task: usize,
        flush_threshold: usize,
        pipelined: bool,
    ) -> Self {
        let parts = senders.len();
        KvBuffer {
            partitioner: HashPartitioner::new(parts),
            buffers: (0..parts).map(|_| Vec::new()).collect(),
            senders,
            from_rank,
            o_task,
            flush_threshold,
            pipelined,
            stats: BufferStats::default(),
            tee: None,
            corruption: None,
            tracer: None,
            hwm_bytes: 0,
        }
    }

    /// Enables the checkpoint tee.
    pub fn set_tee(&mut self, tee: CheckpointStore) {
        self.tee = Some(tee);
    }

    /// Arms wire corruption of the next flushed frame (fault injection).
    pub fn set_corruption(&mut self, corruption: Corruption) {
        self.corruption = Some(corruption);
    }

    /// Installs an observability tracer (usually task-scoped via
    /// [`Tracer::for_task`]).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Emits one key-value pair.
    pub fn emit(&mut self, record: &Record) {
        let p = self.partitioner.partition(&record.key);
        ser::frame_record(&mut self.buffers[p], record);
        self.stats.records += 1;
        self.stats.bytes += record.framed_len() as u64;
        self.hwm_bytes = self.hwm_bytes.max(self.buffers[p].len());
        if self.pipelined && self.buffers[p].len() >= self.flush_threshold {
            self.flush_partition(p);
            self.stats.early_flushes += 1;
        }
    }

    /// Emits a raw key/value pair without constructing a `Record`.
    pub fn emit_kv(&mut self, key: &[u8], value: &[u8]) {
        // Avoid the Bytes round trip on the hot path.
        let p = self.partitioner.partition(key);
        let buf = &mut self.buffers[p];
        let before = buf.len();
        dmpi_common::varint::write_u64(buf, key.len() as u64);
        dmpi_common::varint::write_u64(buf, value.len() as u64);
        buf.extend_from_slice(key);
        buf.extend_from_slice(value);
        self.stats.records += 1;
        self.stats.bytes += (buf.len() - before) as u64;
        self.hwm_bytes = self.hwm_bytes.max(buf.len());
        if self.pipelined && buf.len() >= self.flush_threshold {
            self.flush_partition(p);
            self.stats.early_flushes += 1;
        }
    }

    fn flush_partition(&mut self, p: usize) {
        if self.buffers[p].is_empty() {
            return;
        }
        let send_start = self.tracer.as_ref().map(Tracer::start);
        let payload = Bytes::from(std::mem::take(&mut self.buffers[p]));
        self.stats.frames += 1;
        if let Some(tee) = &self.tee {
            tee.record_frame(self.o_task, p, payload.clone());
        }
        // The CRC is stamped over the clean payload; an armed corruption
        // then flips a wire byte, so the receiver's verify must fail.
        let mut frame = Frame::data(self.from_rank, self.o_task, payload);
        if let Some(corruption) = self.corruption.take() {
            if let Frame::Data { payload, .. } = &mut frame {
                let mut bytes = payload.to_vec();
                corruption.apply(&mut bytes);
                *payload = Bytes::from(bytes);
            }
        }
        // A false return means the peer is gone and the job is tearing
        // down (a failure is propagating); dropping the frame is correct.
        let bytes = frame.payload_len();
        self.senders[p].send(frame);
        if let Some(t) = &self.tracer {
            t.registry().add_frame_sent(self.from_rank, p, bytes as u64);
            t.span(
                SpanKind::Send,
                send_start.unwrap_or(0),
                vec![("peer", p.to_string()), ("bytes", bytes.to_string())],
            );
        }
    }

    /// Flushes all remaining data and returns the task's counters.
    pub fn finish(mut self) -> BufferStats {
        for p in 0..self.buffers.len() {
            self.flush_partition(p);
        }
        if let Some(t) = &self.tracer {
            t.registry().add_records_out(self.stats.records);
            t.registry().observe_buffer_level(self.hwm_bytes as u64);
        }
        self.stats
    }

    /// Current counters (non-consuming view).
    pub fn stats(&self) -> BufferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Interconnect;

    fn frame_senders(net: &Interconnect) -> Vec<FrameSender> {
        net.senders()
            .into_iter()
            .map(FrameSender::from_channel)
            .collect()
    }

    fn drain(rx: &crossbeam::channel::Receiver<Frame>) -> Vec<Frame> {
        let mut frames = Vec::new();
        while let Ok(f) = rx.try_recv() {
            frames.push(f);
        }
        frames
    }

    #[test]
    fn records_land_in_consistent_partitions() {
        let mut net = Interconnect::new(4);
        let senders = frame_senders(&net);
        let rxs: Vec<_> = (0..4).map(|r| net.take_receiver(r)).collect();
        let mut buf = KvBuffer::new(senders, 0, 0, usize::MAX, true);
        let part = HashPartitioner::new(4);
        let mut expected = [0u64; 4];
        for i in 0..100 {
            let r = Record::from_strs(&format!("key{i}"), "v");
            expected[part.partition(&r.key)] += 1;
            buf.emit(&r);
        }
        let stats = buf.finish();
        assert_eq!(stats.records, 100);
        assert_eq!(stats.early_flushes, 0, "threshold never crossed");
        for (p, rx) in rxs.iter().enumerate() {
            let frames = drain(rx);
            let records: u64 = frames
                .iter()
                .map(|f| match f {
                    Frame::Data { payload, .. } => {
                        ser::unframe_batch(payload).unwrap().len() as u64
                    }
                    _ => 0,
                })
                .sum();
            assert_eq!(records, expected[p], "partition {p}");
        }
    }

    #[test]
    fn pipelined_mode_flushes_early() {
        let mut net = Interconnect::new(1);
        let senders = frame_senders(&net);
        let rx = net.take_receiver(0);
        let mut buf = KvBuffer::new(senders, 0, 0, 64, true);
        for i in 0..100 {
            buf.emit_kv(format!("k{i}").as_bytes(), b"value-bytes");
        }
        let stats = buf.finish();
        assert!(stats.early_flushes > 0, "should flush during emission");
        assert!(stats.frames > 1);
        let total: usize = drain(&rx).iter().map(Frame::payload_len).sum();
        assert_eq!(total as u64, stats.bytes);
    }

    #[test]
    fn staged_mode_ships_once_at_finish() {
        let mut net = Interconnect::new(1);
        let senders = frame_senders(&net);
        let rx = net.take_receiver(0);
        let mut buf = KvBuffer::new(senders, 0, 3, 64, false);
        for i in 0..100 {
            buf.emit_kv(format!("k{i}").as_bytes(), b"value-bytes");
        }
        assert!(drain(&rx).is_empty(), "nothing shipped before finish");
        let stats = buf.finish();
        assert_eq!(stats.early_flushes, 0);
        assert_eq!(stats.frames, 1);
        let frames = drain(&rx);
        assert_eq!(frames.len(), 1);
        match &frames[0] {
            Frame::Data { o_task, .. } => assert_eq!(*o_task, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn armed_corruption_flips_the_wire_but_not_the_checkpoint() {
        let mut net = Interconnect::new(1);
        let senders = frame_senders(&net);
        let rx = net.take_receiver(0);
        let cp = crate::checkpoint::CheckpointStore::new();
        let mut buf = KvBuffer::new(senders, 0, 4, usize::MAX, false);
        buf.set_tee(cp.clone());
        buf.set_corruption(Corruption {
            offset_seed: 3,
            mask: 0x10,
        });
        buf.emit_kv(b"key", b"value");
        buf.finish();
        let frame = rx.try_recv().unwrap();
        let err = frame.verify().unwrap_err();
        assert_eq!(
            err.fault_cause().unwrap().kind,
            dmpi_common::FaultKind::CorruptFrame
        );
        // The checkpointed copy is the clean payload.
        cp.mark_complete(4);
        let clean = &cp.recover_frames(4)[0].1;
        match frame {
            Frame::Data { payload, .. } => assert_ne!(&payload[..], &clean[..]),
            other => panic!("unexpected {other:?}"),
        }
        Frame::data(0, 4, clean.clone()).verify().unwrap();
    }

    #[test]
    fn emit_and_emit_kv_agree() {
        let mut net_a = Interconnect::new(2);
        let mut net_b = Interconnect::new(2);
        let rx_a: Vec<_> = (0..2).map(|r| net_a.take_receiver(r)).collect();
        let rx_b: Vec<_> = (0..2).map(|r| net_b.take_receiver(r)).collect();
        let mut a = KvBuffer::new(frame_senders(&net_a), 0, 0, usize::MAX, true);
        let mut b = KvBuffer::new(frame_senders(&net_b), 0, 0, usize::MAX, true);
        for i in 0..20 {
            let rec = Record::from_strs(&format!("k{i}"), &format!("v{i}"));
            a.emit(&rec);
            b.emit_kv(&rec.key, &rec.value);
        }
        let sa = a.finish();
        let sb = b.finish();
        assert_eq!(sa, sb);
        for (ra, rb) in rx_a.iter().zip(&rx_b) {
            let da: Vec<u8> = drain(ra)
                .iter()
                .flat_map(|f| match f {
                    Frame::Data { payload, .. } => payload.to_vec(),
                    _ => vec![],
                })
                .collect();
            let db: Vec<u8> = drain(rb)
                .iter()
                .flat_map(|f| match f {
                    Frame::Data { payload, .. } => payload.to_vec(),
                    _ => vec![],
                })
                .collect();
            assert_eq!(da, db);
        }
    }
}
