//! Partitioned key-value send buffers — the pipelining mechanism.
//!
//! An O task emits key-value pairs through a [`KvBuffer`]: pairs are
//! hash-partitioned to their destination A partition and framed into
//! per-destination byte buffers. In pipelined mode a buffer is shipped the
//! moment it crosses the flush threshold, so communication proceeds while
//! the O task keeps computing — the overlap the paper identifies as
//! DataMPI's main advantage. In staged mode (the Hadoop-like ablation)
//! everything is held until [`KvBuffer::finish`].

use bytes::Bytes;

use dmpi_common::group::group_hashed;
use dmpi_common::partition::{HashPartitioner, Partitioner};
use dmpi_common::ser;
use dmpi_common::Record;

use crate::checkpoint::CheckpointStore;
use crate::comm::Frame;
use crate::fault::Corruption;
use crate::observe::{SpanKind, Tracer};
use crate::task::{Collector, Combiner};
use crate::transport::FrameSender;

/// Counters reported by a finished buffer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Records emitted by user code (pre-combiner).
    pub records: u64,
    /// Framed bytes shipped (post-combiner when one is installed).
    pub bytes: u64,
    /// Frames shipped before `finish` (the pipelined flushes).
    pub early_flushes: u64,
    /// Total frames shipped.
    pub frames: u64,
    /// Records fed into the combiner (0 without one).
    pub combiner_records_in: u64,
    /// Records the combiner emitted for shipping (0 without one).
    pub combiner_records_out: u64,
}

/// A partitioned, flush-on-threshold emit buffer bound to one O task.
pub struct KvBuffer {
    partitioner: HashPartitioner,
    senders: Vec<FrameSender>,
    buffers: Vec<Vec<u8>>,
    from_rank: usize,
    o_task: usize,
    flush_threshold: usize,
    pipelined: bool,
    stats: BufferStats,
    /// Checkpoint tee: every shipped frame is also recorded here so a
    /// completed task's output can be replayed after a restart.
    tee: Option<CheckpointStore>,
    /// Fault injection: flip one byte of the next flushed frame *after*
    /// its CRC is computed and *after* the tee records the clean copy —
    /// wire corruption, not stable-store corruption.
    corruption: Option<Corruption>,
    /// Observability: when set, flushes record `Send` spans and feed the
    /// per-peer byte counters; `finish` reports the occupancy high-water
    /// mark. `None` costs one branch per emit.
    tracer: Option<Tracer>,
    /// Largest single-partition buffer occupancy seen, bytes.
    hwm_bytes: usize,
    /// O-side pre-aggregation: when set, emits are staged as decoded
    /// records per destination and key-folded through this function
    /// right before their frame is built, so repeated keys collapse
    /// locally instead of crossing the wire.
    combiner: Option<Combiner>,
    /// Per-destination staging for the combiner (empty when none).
    pending: Vec<Vec<Record>>,
    /// Framed-size accounting of `pending`, for threshold decisions.
    pending_bytes: Vec<usize>,
}

/// Frames a combiner's output records straight into a destination
/// buffer, counting them.
struct FrameCollector<'a> {
    buf: &'a mut Vec<u8>,
    records: u64,
}

impl Collector for FrameCollector<'_> {
    fn collect(&mut self, key: &[u8], value: &[u8]) {
        dmpi_common::varint::write_u64(self.buf, key.len() as u64);
        dmpi_common::varint::write_u64(self.buf, value.len() as u64);
        self.buf.extend_from_slice(key);
        self.buf.extend_from_slice(value);
        self.records += 1;
    }
}

impl KvBuffer {
    /// Creates a buffer for O task `o_task` running on `from_rank`.
    /// `senders[p]` ships to partition `p` over whichever transport the
    /// job selected; a full destination (bounded mailbox or TCP send
    /// window) blocks the emitting task — that is the backpressure.
    pub fn new(
        senders: Vec<FrameSender>,
        from_rank: usize,
        o_task: usize,
        flush_threshold: usize,
        pipelined: bool,
    ) -> Self {
        let parts = senders.len();
        KvBuffer {
            partitioner: HashPartitioner::new(parts),
            buffers: (0..parts).map(|_| Vec::new()).collect(),
            senders,
            from_rank,
            o_task,
            flush_threshold,
            pipelined,
            stats: BufferStats::default(),
            tee: None,
            corruption: None,
            tracer: None,
            hwm_bytes: 0,
            combiner: None,
            pending: Vec::new(),
            pending_bytes: Vec::new(),
        }
    }

    /// Installs an O-side combiner; see
    /// [`JobConfig::with_combiner`](crate::JobConfig::with_combiner).
    pub fn set_combiner(&mut self, combiner: Combiner) {
        let parts = self.buffers.len();
        self.pending = (0..parts).map(|_| Vec::new()).collect();
        self.pending_bytes = vec![0; parts];
        self.combiner = Some(combiner);
    }

    /// Enables the checkpoint tee.
    pub fn set_tee(&mut self, tee: CheckpointStore) {
        self.tee = Some(tee);
    }

    /// Arms wire corruption of the next flushed frame (fault injection).
    pub fn set_corruption(&mut self, corruption: Corruption) {
        self.corruption = Some(corruption);
    }

    /// Installs an observability tracer (usually task-scoped via
    /// [`Tracer::for_task`]).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Emits one key-value pair.
    pub fn emit(&mut self, record: &Record) {
        if self.combiner.is_some() {
            let p = self.partitioner.partition(&record.key);
            self.stage(p, record.clone());
            return;
        }
        let p = self.partitioner.partition(&record.key);
        ser::frame_record(&mut self.buffers[p], record);
        self.stats.records += 1;
        self.stats.bytes += record.framed_len() as u64;
        self.hwm_bytes = self.hwm_bytes.max(self.buffers[p].len());
        if self.pipelined && self.buffers[p].len() >= self.flush_threshold {
            self.flush_partition(p);
            self.stats.early_flushes += 1;
        }
    }

    /// Emits a raw key/value pair without constructing a `Record`.
    pub fn emit_kv(&mut self, key: &[u8], value: &[u8]) {
        if self.combiner.is_some() {
            let p = self.partitioner.partition(key);
            self.stage(p, Record::new(key.to_vec(), value.to_vec()));
            return;
        }
        // Avoid the Bytes round trip on the hot path.
        let p = self.partitioner.partition(key);
        let buf = &mut self.buffers[p];
        let before = buf.len();
        dmpi_common::varint::write_u64(buf, key.len() as u64);
        dmpi_common::varint::write_u64(buf, value.len() as u64);
        buf.extend_from_slice(key);
        buf.extend_from_slice(value);
        self.stats.records += 1;
        self.stats.bytes += (buf.len() - before) as u64;
        self.hwm_bytes = self.hwm_bytes.max(buf.len());
        if self.pipelined && buf.len() >= self.flush_threshold {
            self.flush_partition(p);
            self.stats.early_flushes += 1;
        }
    }

    /// Combiner path of both emit surfaces: stage the decoded record and
    /// fold + ship the destination once its staged (framed-size
    /// equivalent) bytes cross the flush threshold.
    fn stage(&mut self, p: usize, record: Record) {
        self.stats.records += 1;
        self.pending_bytes[p] += record.framed_len();
        self.pending[p].push(record);
        self.hwm_bytes = self.hwm_bytes.max(self.pending_bytes[p]);
        if self.pipelined && self.pending_bytes[p] >= self.flush_threshold {
            self.combine_partition(p);
            self.flush_partition(p);
            self.stats.early_flushes += 1;
        }
    }

    /// Folds destination `p`'s staged records through the combiner into
    /// its frame buffer: group by key (first-appearance order — the
    /// A side regroups anyway) and let the combiner collapse each group.
    fn combine_partition(&mut self, p: usize) {
        if self.pending[p].is_empty() {
            return;
        }
        let combiner = self.combiner.clone().expect("stage requires a combiner");
        let staged = std::mem::take(&mut self.pending[p]);
        self.pending_bytes[p] = 0;
        self.stats.combiner_records_in += staged.len() as u64;
        let before = self.buffers[p].len();
        let mut out = FrameCollector {
            buf: &mut self.buffers[p],
            records: 0,
        };
        for group in &group_hashed(staged) {
            combiner.apply(group, &mut out);
        }
        self.stats.combiner_records_out += out.records;
        self.stats.bytes += (self.buffers[p].len() - before) as u64;
    }

    fn flush_partition(&mut self, p: usize) {
        if self.buffers[p].is_empty() {
            return;
        }
        let send_start = self.tracer.as_ref().map(Tracer::start);
        let payload = Bytes::from(std::mem::take(&mut self.buffers[p]));
        self.stats.frames += 1;
        if let Some(tee) = &self.tee {
            tee.record_frame(self.o_task, p, payload.clone());
        }
        // The CRC is stamped over the clean payload; an armed corruption
        // then flips a wire byte, so the receiver's verify must fail.
        let mut frame = Frame::data(self.from_rank, self.o_task, payload);
        if let Some(corruption) = self.corruption.take() {
            if let Frame::Data { payload, .. } = &mut frame {
                // This copy is unavoidable: `Bytes` is immutable shared
                // storage (the checkpoint tee above may hold the clean
                // payload), so flipping a wire byte needs its own buffer.
                // It only runs on injected-corruption frames, never the
                // hot path.
                let mut bytes = payload.to_vec();
                corruption.apply(&mut bytes);
                *payload = Bytes::from(bytes);
            }
        }
        // A false return means the peer is gone and the job is tearing
        // down (a failure is propagating); dropping the frame is correct.
        let bytes = frame.payload_len();
        self.senders[p].send(frame);
        if let Some(t) = &self.tracer {
            t.registry().add_frame_sent(self.from_rank, p, bytes as u64);
            t.span(
                SpanKind::Send,
                send_start.unwrap_or(0),
                vec![("peer", p.to_string()), ("bytes", bytes.to_string())],
            );
        }
    }

    /// Flushes all remaining data (folding staged records through the
    /// combiner first, when one is installed) and returns the task's
    /// counters.
    pub fn finish(mut self) -> BufferStats {
        for p in 0..self.buffers.len() {
            if self.combiner.is_some() {
                self.combine_partition(p);
            }
            self.flush_partition(p);
        }
        if let Some(t) = &self.tracer {
            t.registry().add_records_out(self.stats.records);
            t.registry().observe_buffer_level(self.hwm_bytes as u64);
            t.registry().add_combiner(
                self.stats.combiner_records_in,
                self.stats.combiner_records_out,
            );
        }
        self.stats
    }

    /// Current counters (non-consuming view).
    pub fn stats(&self) -> BufferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Interconnect;

    fn frame_senders(net: &Interconnect) -> Vec<FrameSender> {
        net.senders()
            .into_iter()
            .map(FrameSender::from_channel)
            .collect()
    }

    fn drain(rx: &crossbeam::channel::Receiver<Frame>) -> Vec<Frame> {
        let mut frames = Vec::new();
        while let Ok(f) = rx.try_recv() {
            frames.push(f);
        }
        frames
    }

    #[test]
    fn records_land_in_consistent_partitions() {
        let mut net = Interconnect::new(4);
        let senders = frame_senders(&net);
        let rxs: Vec<_> = (0..4).map(|r| net.take_receiver(r)).collect();
        let mut buf = KvBuffer::new(senders, 0, 0, usize::MAX, true);
        let part = HashPartitioner::new(4);
        let mut expected = [0u64; 4];
        for i in 0..100 {
            let r = Record::from_strs(&format!("key{i}"), "v");
            expected[part.partition(&r.key)] += 1;
            buf.emit(&r);
        }
        let stats = buf.finish();
        assert_eq!(stats.records, 100);
        assert_eq!(stats.early_flushes, 0, "threshold never crossed");
        for (p, rx) in rxs.iter().enumerate() {
            let frames = drain(rx);
            let records: u64 = frames
                .iter()
                .map(|f| match f {
                    Frame::Data { payload, .. } => {
                        ser::unframe_batch(payload).unwrap().len() as u64
                    }
                    _ => 0,
                })
                .sum();
            assert_eq!(records, expected[p], "partition {p}");
        }
    }

    #[test]
    fn pipelined_mode_flushes_early() {
        let mut net = Interconnect::new(1);
        let senders = frame_senders(&net);
        let rx = net.take_receiver(0);
        let mut buf = KvBuffer::new(senders, 0, 0, 64, true);
        for i in 0..100 {
            buf.emit_kv(format!("k{i}").as_bytes(), b"value-bytes");
        }
        let stats = buf.finish();
        assert!(stats.early_flushes > 0, "should flush during emission");
        assert!(stats.frames > 1);
        let total: usize = drain(&rx).iter().map(Frame::payload_len).sum();
        assert_eq!(total as u64, stats.bytes);
    }

    #[test]
    fn staged_mode_ships_once_at_finish() {
        let mut net = Interconnect::new(1);
        let senders = frame_senders(&net);
        let rx = net.take_receiver(0);
        let mut buf = KvBuffer::new(senders, 0, 3, 64, false);
        for i in 0..100 {
            buf.emit_kv(format!("k{i}").as_bytes(), b"value-bytes");
        }
        assert!(drain(&rx).is_empty(), "nothing shipped before finish");
        let stats = buf.finish();
        assert_eq!(stats.early_flushes, 0);
        assert_eq!(stats.frames, 1);
        let frames = drain(&rx);
        assert_eq!(frames.len(), 1);
        match &frames[0] {
            Frame::Data { o_task, .. } => assert_eq!(*o_task, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn armed_corruption_flips_the_wire_but_not_the_checkpoint() {
        let mut net = Interconnect::new(1);
        let senders = frame_senders(&net);
        let rx = net.take_receiver(0);
        let cp = crate::checkpoint::CheckpointStore::new();
        let mut buf = KvBuffer::new(senders, 0, 4, usize::MAX, false);
        buf.set_tee(cp.clone());
        buf.set_corruption(Corruption {
            offset_seed: 3,
            mask: 0x10,
        });
        buf.emit_kv(b"key", b"value");
        buf.finish();
        let frame = rx.try_recv().unwrap();
        let err = frame.verify().unwrap_err();
        assert_eq!(
            err.fault_cause().unwrap().kind,
            dmpi_common::FaultKind::CorruptFrame
        );
        // The checkpointed copy is the clean payload.
        cp.mark_complete(4);
        let clean = &cp.recover_frames(4)[0].1;
        match frame {
            Frame::Data { payload, .. } => assert_ne!(&payload[..], &clean[..]),
            other => panic!("unexpected {other:?}"),
        }
        Frame::data(0, 4, clean.clone()).verify().unwrap();
    }

    /// The WordCount-style sum combiner used by the tests below.
    fn sum_combiner() -> Combiner {
        use dmpi_common::ser::Writable;
        Combiner::new(|g, out| {
            let total: u64 = g.values.iter().map(|v| u64::from_bytes(v).unwrap()).sum();
            out.collect(&g.key, &total.to_bytes());
        })
    }

    #[test]
    fn combiner_collapses_repeated_keys_before_the_wire() {
        use dmpi_common::ser::Writable;
        let mut net = Interconnect::new(1);
        let senders = frame_senders(&net);
        let rx = net.take_receiver(0);
        let mut buf = KvBuffer::new(senders, 0, 0, usize::MAX, true);
        buf.set_combiner(sum_combiner());
        for _ in 0..50 {
            buf.emit_kv(b"apple", &1u64.to_bytes());
            buf.emit_kv(b"pear", &1u64.to_bytes());
        }
        let stats = buf.finish();
        assert_eq!(stats.records, 100, "user emits counted pre-combine");
        assert_eq!(stats.combiner_records_in, 100);
        assert_eq!(stats.combiner_records_out, 2);
        let frames = drain(&rx);
        let records: Vec<Record> = frames
            .iter()
            .filter_map(|f| match f {
                Frame::Data { payload, .. } => Some(ser::unframe_batch(payload).unwrap()),
                _ => None,
            })
            .flat_map(|b| b.into_records())
            .collect();
        assert_eq!(records.len(), 2, "only folded records cross the wire");
        let total_payload: usize = frames.iter().map(Frame::payload_len).sum();
        assert_eq!(total_payload as u64, stats.bytes, "bytes count the wire");
        for r in records {
            assert_eq!(u64::from_bytes(&r.value).unwrap(), 50);
        }
    }

    #[test]
    fn combiner_respects_the_flush_threshold() {
        use dmpi_common::ser::Writable;
        let mut net = Interconnect::new(1);
        let senders = frame_senders(&net);
        let rx = net.take_receiver(0);
        let mut buf = KvBuffer::new(senders, 0, 0, 256, true);
        buf.set_combiner(sum_combiner());
        for i in 0..200 {
            buf.emit_kv(format!("key{:02}", i % 10).as_bytes(), &1u64.to_bytes());
        }
        let stats = buf.finish();
        assert!(
            stats.early_flushes > 0,
            "staged bytes must trip the threshold"
        );
        assert!(stats.frames > 1);
        // Each early flush folds its own window, so per-key partial sums
        // appear once per flushed frame — still far fewer than 200.
        assert!(stats.combiner_records_out < stats.combiner_records_in);
        let shipped: u64 = drain(&rx)
            .iter()
            .filter_map(|f| match f {
                Frame::Data { payload, .. } => {
                    Some(ser::unframe_batch(payload).unwrap().len() as u64)
                }
                _ => None,
            })
            .sum();
        assert_eq!(shipped, stats.combiner_records_out);
    }

    #[test]
    fn combiner_emit_and_emit_kv_agree() {
        let mut net_a = Interconnect::new(2);
        let mut net_b = Interconnect::new(2);
        let rx_a: Vec<_> = (0..2).map(|r| net_a.take_receiver(r)).collect();
        let rx_b: Vec<_> = (0..2).map(|r| net_b.take_receiver(r)).collect();
        let mut a = KvBuffer::new(frame_senders(&net_a), 0, 0, usize::MAX, true);
        let mut b = KvBuffer::new(frame_senders(&net_b), 0, 0, usize::MAX, true);
        a.set_combiner(sum_combiner());
        b.set_combiner(sum_combiner());
        use dmpi_common::ser::Writable;
        for i in 0..40 {
            let rec = Record::new(format!("k{}", i % 5).into_bytes(), 1u64.to_bytes().to_vec());
            a.emit(&rec);
            b.emit_kv(&rec.key, &rec.value);
        }
        assert_eq!(a.finish(), b.finish());
        for (ra, rb) in rx_a.iter().zip(&rx_b) {
            let payload = |rx: &crossbeam::channel::Receiver<Frame>| -> Vec<u8> {
                drain(rx)
                    .iter()
                    .flat_map(|f| match f {
                        Frame::Data { payload, .. } => payload.to_vec(),
                        _ => vec![],
                    })
                    .collect()
            };
            assert_eq!(payload(ra), payload(rb));
        }
    }

    #[test]
    fn emit_and_emit_kv_agree() {
        let mut net_a = Interconnect::new(2);
        let mut net_b = Interconnect::new(2);
        let rx_a: Vec<_> = (0..2).map(|r| net_a.take_receiver(r)).collect();
        let rx_b: Vec<_> = (0..2).map(|r| net_b.take_receiver(r)).collect();
        let mut a = KvBuffer::new(frame_senders(&net_a), 0, 0, usize::MAX, true);
        let mut b = KvBuffer::new(frame_senders(&net_b), 0, 0, usize::MAX, true);
        for i in 0..20 {
            let rec = Record::from_strs(&format!("k{i}"), &format!("v{i}"));
            a.emit(&rec);
            b.emit_kv(&rec.key, &rec.value);
        }
        let sa = a.finish();
        let sb = b.finish();
        assert_eq!(sa, sb);
        for (ra, rb) in rx_a.iter().zip(&rx_b) {
            let da: Vec<u8> = drain(ra)
                .iter()
                .flat_map(|f| match f {
                    Frame::Data { payload, .. } => payload.to_vec(),
                    _ => vec![],
                })
                .collect();
            let db: Vec<u8> = drain(rb)
                .iter()
                .flat_map(|f| match f {
                    Frame::Data { payload, .. } => payload.to_vec(),
                    _ => vec![],
                })
                .collect();
            assert_eq!(da, db);
        }
    }
}
