//! Key-value-pair based checkpoint/restart.
//!
//! DataMPI checkpoints at the granularity of a completed O task: the frames
//! the task shipped to each A partition are retained, and the task is
//! marked complete. When a job is restarted against the same checkpoint,
//! completed tasks are **recovered** — their frames are replayed into the
//! A partitions without re-running the user's O function. This is the
//! "key-value pair based checkpoint/restart" the paper attributes to
//! DataMPI (§2.3).
//!
//! Checkpoints are **width-portable**: each completed task records the
//! rank width its frames were partitioned for, and
//! [`CheckpointStore::recover_frames_for`] re-buckets the stored records
//! through a fresh [`HashPartitioner`] when a restarted job runs at a
//! different width. That is what lets the elastic supervisor shrink the
//! mesh after a rank death instead of restarting from scratch: the A-side
//! output is content-sorted, so re-bucketed records land byte-identically
//! wherever they would have been emitted directly.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use dmpi_common::partition::{HashPartitioner, Partitioner};
use dmpi_common::ser::read_framed_kv;
use parking_lot::Mutex;

/// Width recorded for tasks completed through the legacy
/// [`CheckpointStore::mark_complete`]: matches any recovery width
/// without re-bucketing.
const WIDTH_ANY: usize = 0;

/// Shared, thread-safe checkpoint state. Clone-cheap (`Arc` inside); pass
/// the same store to a restarted job to recover.
#[derive(Clone, Default)]
pub struct CheckpointStore {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Default)]
struct Inner {
    /// Frames per completed-or-in-progress O task: `(partition, payload)`.
    frames: HashMap<usize, Vec<(usize, Bytes)>>,
    /// Completed O tasks → the rank width their frames were partitioned
    /// for ([`WIDTH_ANY`] when unrecorded). Lookup must stay O(1):
    /// `is_complete` runs once per task on every restart.
    completed: HashMap<usize, usize>,
}

impl CheckpointStore {
    /// Fresh empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a frame emitted by `o_task` towards `partition`.
    pub fn record_frame(&self, o_task: usize, partition: usize, payload: Bytes) {
        self.inner
            .lock()
            .frames
            .entry(o_task)
            .or_default()
            .push((partition, payload));
    }

    /// Marks `o_task` complete: its captured frames become recoverable.
    /// Idempotent. Records no width — recovery at any width replays the
    /// frames as stored. Prefer [`mark_complete_at`](Self::mark_complete_at)
    /// when the emitting width is known.
    pub fn mark_complete(&self, o_task: usize) {
        self.inner
            .lock()
            .completed
            .entry(o_task)
            .or_insert(WIDTH_ANY);
    }

    /// Marks `o_task` complete, recording that its frames were
    /// partitioned for a mesh of `width` ranks. Idempotent (first writer
    /// keeps its width — duplicates of a committed task never re-record).
    pub fn mark_complete_at(&self, o_task: usize, width: usize) {
        self.inner.lock().completed.entry(o_task).or_insert(width);
    }

    /// Discards partial frames of an uncompleted task (failure cleanup).
    pub fn discard_incomplete(&self, o_task: usize) {
        let mut inner = self.inner.lock();
        if !inner.completed.contains_key(&o_task) {
            inner.frames.remove(&o_task);
        }
    }

    /// True if `o_task` completed in a previous attempt.
    pub fn is_complete(&self, o_task: usize) -> bool {
        self.inner.lock().completed.contains_key(&o_task)
    }

    /// Number of completed tasks.
    pub fn completed_count(&self) -> usize {
        self.inner.lock().completed.len()
    }

    /// The frames of a completed task exactly as stored, for same-width
    /// replay. Empty if not complete.
    pub fn recover_frames(&self, o_task: usize) -> Vec<(usize, Bytes)> {
        let inner = self.inner.lock();
        if inner.completed.contains_key(&o_task) {
            inner.frames.get(&o_task).cloned().unwrap_or_default()
        } else {
            Vec::new()
        }
    }

    /// The frames of a completed task, re-partitioned for a mesh of
    /// `parts` ranks. When the recorded width already matches (or was
    /// never recorded), the stored frames are returned as-is; otherwise
    /// every record is re-bucketed through `HashPartitioner::new(parts)`
    /// into one frame per destination. Empty if not complete.
    pub fn recover_frames_for(&self, o_task: usize, parts: usize) -> Vec<(usize, Bytes)> {
        let (width, frames) = {
            let inner = self.inner.lock();
            let Some(&width) = inner.completed.get(&o_task) else {
                return Vec::new();
            };
            (
                width,
                inner.frames.get(&o_task).cloned().unwrap_or_default(),
            )
        };
        if width == WIDTH_ANY || width == parts {
            return frames;
        }
        let partitioner = HashPartitioner::new(parts);
        let mut buckets: Vec<Vec<u8>> = vec![Vec::new(); parts];
        for (_, payload) in &frames {
            let mut off = 0;
            while off < payload.len() {
                let (key, _value, used) = read_framed_kv(&payload[off..])
                    .expect("checkpointed frames hold well-formed framed records");
                buckets[partitioner.partition(key)].extend_from_slice(&payload[off..off + used]);
                off += used;
            }
        }
        buckets
            .into_iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(p, b)| (p, Bytes::from(b)))
            .collect()
    }

    /// Total checkpointed bytes (the paper-relevant cost of the mechanism).
    pub fn total_bytes(&self) -> u64 {
        self.inner
            .lock()
            .frames
            .values()
            .flat_map(|v| v.iter())
            .map(|(_, b)| b.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpi_common::kv::Record;
    use dmpi_common::ser::frame_record;

    #[test]
    fn complete_tasks_are_recoverable() {
        let cp = CheckpointStore::new();
        cp.record_frame(3, 0, Bytes::from_static(b"aa"));
        cp.record_frame(3, 1, Bytes::from_static(b"bb"));
        assert!(!cp.is_complete(3));
        assert!(cp.recover_frames(3).is_empty(), "not yet complete");
        cp.mark_complete(3);
        assert!(cp.is_complete(3));
        let frames = cp.recover_frames(3);
        assert_eq!(frames.len(), 2);
        assert_eq!(cp.completed_count(), 1);
        assert_eq!(cp.total_bytes(), 4);
    }

    #[test]
    fn incomplete_tasks_are_discarded() {
        let cp = CheckpointStore::new();
        cp.record_frame(1, 0, Bytes::from_static(b"partial"));
        cp.discard_incomplete(1);
        assert_eq!(cp.total_bytes(), 0);
        // Discard after completion is a no-op.
        cp.record_frame(2, 0, Bytes::from_static(b"done"));
        cp.mark_complete(2);
        cp.discard_incomplete(2);
        assert_eq!(cp.recover_frames(2).len(), 1);
    }

    #[test]
    fn double_complete_is_idempotent() {
        let cp = CheckpointStore::new();
        cp.mark_complete(0);
        cp.mark_complete(0);
        assert_eq!(cp.completed_count(), 1);
        // A later width record does not overwrite the first completion.
        cp.mark_complete_at(0, 4);
        assert_eq!(cp.completed_count(), 1);
        assert_eq!(cp.recover_frames_for(0, 2), Vec::new());
    }

    #[test]
    fn concurrent_recording() {
        let cp = CheckpointStore::new();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cp = cp.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        cp.record_frame(t, i % 4, Bytes::from(vec![0u8; 10]));
                    }
                    cp.mark_complete(t);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cp.completed_count(), 8);
        assert_eq!(cp.total_bytes(), 8 * 100 * 10);
    }

    /// Frames a few records, partitioned for `width` ranks, into the
    /// store under task 0.
    fn checkpoint_records(cp: &CheckpointStore, recs: &[Record], width: usize) {
        let partitioner = HashPartitioner::new(width);
        let mut buckets: Vec<Vec<u8>> = vec![Vec::new(); width];
        for r in recs {
            frame_record(&mut buckets[partitioner.partition(&r.key)], r);
        }
        for (p, b) in buckets.into_iter().enumerate() {
            if !b.is_empty() {
                cp.record_frame(0, p, Bytes::from(b));
            }
        }
        cp.mark_complete_at(0, width);
    }

    #[test]
    fn recovery_at_recorded_width_returns_stored_frames() {
        let cp = CheckpointStore::new();
        let recs: Vec<Record> = (0..20)
            .map(|i| Record::from_strs(&format!("k{i}"), "v"))
            .collect();
        checkpoint_records(&cp, &recs, 3);
        let same = cp.recover_frames_for(0, 3);
        assert_eq!(same, cp.recover_frames(0));
    }

    #[test]
    fn recovery_at_a_narrower_width_rebuckets_every_record() {
        let cp = CheckpointStore::new();
        let recs: Vec<Record> = (0..50)
            .map(|i| Record::from_strs(&format!("key-{i}"), &format!("val-{i}")))
            .collect();
        checkpoint_records(&cp, &recs, 4);

        let narrow = cp.recover_frames_for(0, 2);
        let partitioner = HashPartitioner::new(2);
        let mut recovered = 0usize;
        for (p, payload) in &narrow {
            assert!(*p < 2, "partition index fits the narrow width");
            let mut off = 0;
            while off < payload.len() {
                let (key, _v, used) = read_framed_kv(&payload[off..]).unwrap();
                assert_eq!(partitioner.partition(key), *p, "record re-bucketed");
                off += used;
                recovered += 1;
            }
        }
        assert_eq!(recovered, recs.len(), "no record lost or duplicated");

        // Growing back out works too.
        let wide = cp.recover_frames_for(0, 8);
        let total: usize = wide.iter().map(|(_, b)| b.len()).sum();
        let orig: usize = cp.recover_frames(0).iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, orig, "re-bucketing preserves every byte");
    }
}
