//! Key-value-pair based checkpoint/restart.
//!
//! DataMPI checkpoints at the granularity of a completed O task: the frames
//! the task shipped to each A partition are retained, and the task is
//! marked complete. When a job is restarted against the same checkpoint,
//! completed tasks are **recovered** — their frames are replayed into the
//! A partitions without re-running the user's O function. This is the
//! "key-value pair based checkpoint/restart" the paper attributes to
//! DataMPI (§2.3).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

/// Shared, thread-safe checkpoint state. Clone-cheap (`Arc` inside); pass
/// the same store to a restarted job to recover.
#[derive(Clone, Default)]
pub struct CheckpointStore {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Default)]
struct Inner {
    /// Frames per completed-or-in-progress O task: `(partition, payload)`.
    frames: HashMap<usize, Vec<(usize, Bytes)>>,
    /// O tasks whose output is completely captured. A set: `is_complete`
    /// runs once per task on every restart, so membership must be O(1).
    completed: HashSet<usize>,
}

impl CheckpointStore {
    /// Fresh empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a frame emitted by `o_task` towards `partition`.
    pub fn record_frame(&self, o_task: usize, partition: usize, payload: Bytes) {
        self.inner
            .lock()
            .frames
            .entry(o_task)
            .or_default()
            .push((partition, payload));
    }

    /// Marks `o_task` complete: its captured frames become recoverable.
    /// Idempotent.
    pub fn mark_complete(&self, o_task: usize) {
        self.inner.lock().completed.insert(o_task);
    }

    /// Discards partial frames of an uncompleted task (failure cleanup).
    pub fn discard_incomplete(&self, o_task: usize) {
        let mut inner = self.inner.lock();
        if !inner.completed.contains(&o_task) {
            inner.frames.remove(&o_task);
        }
    }

    /// True if `o_task` completed in a previous attempt.
    pub fn is_complete(&self, o_task: usize) -> bool {
        self.inner.lock().completed.contains(&o_task)
    }

    /// Number of completed tasks.
    pub fn completed_count(&self) -> usize {
        self.inner.lock().completed.len()
    }

    /// The frames of a completed task, for replay. Empty if not complete.
    pub fn recover_frames(&self, o_task: usize) -> Vec<(usize, Bytes)> {
        let inner = self.inner.lock();
        if inner.completed.contains(&o_task) {
            inner.frames.get(&o_task).cloned().unwrap_or_default()
        } else {
            Vec::new()
        }
    }

    /// Total checkpointed bytes (the paper-relevant cost of the mechanism).
    pub fn total_bytes(&self) -> u64 {
        self.inner
            .lock()
            .frames
            .values()
            .flat_map(|v| v.iter())
            .map(|(_, b)| b.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_tasks_are_recoverable() {
        let cp = CheckpointStore::new();
        cp.record_frame(3, 0, Bytes::from_static(b"aa"));
        cp.record_frame(3, 1, Bytes::from_static(b"bb"));
        assert!(!cp.is_complete(3));
        assert!(cp.recover_frames(3).is_empty(), "not yet complete");
        cp.mark_complete(3);
        assert!(cp.is_complete(3));
        let frames = cp.recover_frames(3);
        assert_eq!(frames.len(), 2);
        assert_eq!(cp.completed_count(), 1);
        assert_eq!(cp.total_bytes(), 4);
    }

    #[test]
    fn incomplete_tasks_are_discarded() {
        let cp = CheckpointStore::new();
        cp.record_frame(1, 0, Bytes::from_static(b"partial"));
        cp.discard_incomplete(1);
        assert_eq!(cp.total_bytes(), 0);
        // Discard after completion is a no-op.
        cp.record_frame(2, 0, Bytes::from_static(b"done"));
        cp.mark_complete(2);
        cp.discard_incomplete(2);
        assert_eq!(cp.recover_frames(2).len(), 1);
    }

    #[test]
    fn double_complete_is_idempotent() {
        let cp = CheckpointStore::new();
        cp.mark_complete(0);
        cp.mark_complete(0);
        assert_eq!(cp.completed_count(), 1);
    }

    #[test]
    fn concurrent_recording() {
        let cp = CheckpointStore::new();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cp = cp.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        cp.record_frame(t, i % 4, Bytes::from(vec![0u8; 10]));
                    }
                    cp.mark_complete(t);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cp.completed_count(), 8);
        assert_eq!(cp.total_bytes(), 8 * 100 * 10);
    }
}
