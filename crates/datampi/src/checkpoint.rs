//! Key-value-pair based checkpoint/restart.
//!
//! DataMPI checkpoints at the granularity of a completed O task: the frames
//! the task shipped to each A partition are retained, and the task is
//! marked complete. When a job is restarted against the same checkpoint,
//! completed tasks are **recovered** — their frames are replayed into the
//! A partitions without re-running the user's O function. This is the
//! "key-value pair based checkpoint/restart" the paper attributes to
//! DataMPI (§2.3).
//!
//! Checkpoints are **width-portable**: each completed task records the
//! rank width its frames were partitioned for, and
//! [`CheckpointStore::recover_frames_for`] re-buckets the stored records
//! through a fresh [`HashPartitioner`] when a restarted job runs at a
//! different width. That is what lets the elastic supervisor shrink the
//! mesh after a rank death instead of restarting from scratch: the A-side
//! output is content-sorted, so re-bucketed records land byte-identically
//! wherever they would have been emitted directly.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use dmpi_common::partition::{HashPartitioner, Partitioner};
use dmpi_common::ser::read_framed_kv;
use parking_lot::Mutex;

use crate::spillfmt::SealedRun;

/// Width recorded for tasks completed through the legacy
/// [`CheckpointStore::mark_complete`]: matches any recovery width
/// without re-bucketing.
const WIDTH_ANY: usize = 0;

/// Shared, thread-safe checkpoint state. Clone-cheap (`Arc` inside); pass
/// the same store to a restarted job to recover.
#[derive(Clone, Default)]
pub struct CheckpointStore {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Default)]
struct Inner {
    /// Frames per completed-or-in-progress O task: `(partition, payload)`.
    frames: HashMap<usize, Vec<(usize, Bytes)>>,
    /// Completed O tasks → the rank width their frames were partitioned
    /// for ([`WIDTH_ANY`] when unrecorded). Lookup must stay O(1):
    /// `is_complete` runs once per task on every restart.
    completed: HashMap<usize, usize>,
    /// In-progress A-side merge state per rank: sealed-run handles plus
    /// the last recorded group-boundary frontier.
    merges: HashMap<usize, MergeState>,
}

struct MergeState {
    width: usize,
    runs: Vec<SealedRun>,
    progress: Option<MergeProgress>,
}

#[derive(Clone)]
struct MergeProgress {
    frontier: Vec<usize>,
    last_key: Option<Bytes>,
    groups_emitted: u64,
    partial_output: Bytes,
}

/// A restartable snapshot of a rank's A-side merge, taken at a group
/// boundary. Holds handles to the sealed runs (keeping disk-backed run
/// files alive across attempts), the block frontier each run's cursor
/// had reached, and the framed output emitted so far.
#[derive(Clone)]
pub struct MergeCheckpoint {
    /// Rank width the merge ran at; resume requires the same width.
    pub width: usize,
    /// The sealed spill runs the merge was reading.
    pub runs: Vec<SealedRun>,
    /// Per-run block index to resume reading from (parallel to `runs`).
    pub frontier: Vec<usize>,
    /// Last group key fully emitted; resume skips records `<=` this key.
    pub last_key: Option<Bytes>,
    /// Groups emitted before the boundary.
    pub groups_emitted: u64,
    /// Framed records emitted up to the boundary, replayable as output.
    pub partial_output: Bytes,
}

impl CheckpointStore {
    /// Fresh empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a frame emitted by `o_task` towards `partition`.
    pub fn record_frame(&self, o_task: usize, partition: usize, payload: Bytes) {
        self.inner
            .lock()
            .frames
            .entry(o_task)
            .or_default()
            .push((partition, payload));
    }

    /// Marks `o_task` complete: its captured frames become recoverable.
    /// Idempotent. Records no width — recovery at any width replays the
    /// frames as stored. Prefer [`mark_complete_at`](Self::mark_complete_at)
    /// when the emitting width is known.
    pub fn mark_complete(&self, o_task: usize) {
        self.inner
            .lock()
            .completed
            .entry(o_task)
            .or_insert(WIDTH_ANY);
    }

    /// Marks `o_task` complete, recording that its frames were
    /// partitioned for a mesh of `width` ranks. Idempotent (first writer
    /// keeps its width — duplicates of a committed task never re-record).
    pub fn mark_complete_at(&self, o_task: usize, width: usize) {
        self.inner.lock().completed.entry(o_task).or_insert(width);
    }

    /// Discards partial frames of an uncompleted task (failure cleanup).
    pub fn discard_incomplete(&self, o_task: usize) {
        let mut inner = self.inner.lock();
        if !inner.completed.contains_key(&o_task) {
            inner.frames.remove(&o_task);
        }
    }

    /// True if `o_task` completed in a previous attempt.
    pub fn is_complete(&self, o_task: usize) -> bool {
        self.inner.lock().completed.contains_key(&o_task)
    }

    /// Number of completed tasks.
    pub fn completed_count(&self) -> usize {
        self.inner.lock().completed.len()
    }

    /// The frames of a completed task exactly as stored, for same-width
    /// replay. Empty if not complete.
    pub fn recover_frames(&self, o_task: usize) -> Vec<(usize, Bytes)> {
        let inner = self.inner.lock();
        if inner.completed.contains_key(&o_task) {
            inner.frames.get(&o_task).cloned().unwrap_or_default()
        } else {
            Vec::new()
        }
    }

    /// The frames of a completed task, re-partitioned for a mesh of
    /// `parts` ranks. When the recorded width already matches (or was
    /// never recorded), the stored frames are returned as-is; otherwise
    /// every record is re-bucketed through `HashPartitioner::new(parts)`
    /// into one frame per destination. Empty if not complete.
    pub fn recover_frames_for(&self, o_task: usize, parts: usize) -> Vec<(usize, Bytes)> {
        let (width, frames) = {
            let inner = self.inner.lock();
            let Some(&width) = inner.completed.get(&o_task) else {
                return Vec::new();
            };
            (
                width,
                inner.frames.get(&o_task).cloned().unwrap_or_default(),
            )
        };
        if width == WIDTH_ANY || width == parts {
            return frames;
        }
        let partitioner = HashPartitioner::new(parts);
        let mut buckets: Vec<Vec<u8>> = vec![Vec::new(); parts];
        for (_, payload) in &frames {
            let mut off = 0;
            while off < payload.len() {
                let (key, _value, used) = read_framed_kv(&payload[off..])
                    .expect("checkpointed frames hold well-formed framed records");
                buckets[partitioner.partition(key)].extend_from_slice(&payload[off..off + used]);
                off += used;
            }
        }
        buckets
            .into_iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(p, b)| (p, Bytes::from(b)))
            .collect()
    }

    /// Registers the sealed runs rank `rank`'s merge is about to read,
    /// partitioned for a mesh of `width` ranks. Replaces any previous
    /// merge state for the rank (a fresh attempt starts a fresh merge).
    /// Cloning the run handles here keeps disk-backed run files alive
    /// even if the attempt dies and drops its `PartitionStore`.
    pub fn register_merge_runs(&self, rank: usize, width: usize, runs: Vec<SealedRun>) {
        self.inner.lock().merges.insert(
            rank,
            MergeState {
                width,
                runs,
                progress: None,
            },
        );
    }

    /// Records a group-boundary frontier for rank `rank`'s merge:
    /// `frontier[i]` is the block index run `i`'s cursor sits at,
    /// `last_key` the last fully-emitted group key, and `partial_output`
    /// the framed records emitted so far. No-op unless
    /// [`register_merge_runs`](Self::register_merge_runs) ran first and
    /// the frontier width matches the registered run count.
    pub fn record_merge_frontier(
        &self,
        rank: usize,
        frontier: Vec<usize>,
        last_key: Option<Bytes>,
        groups_emitted: u64,
        partial_output: Bytes,
    ) {
        let mut inner = self.inner.lock();
        if let Some(state) = inner.merges.get_mut(&rank) {
            if frontier.len() == state.runs.len() {
                state.progress = Some(MergeProgress {
                    frontier,
                    last_key,
                    groups_emitted,
                    partial_output,
                });
            }
        }
    }

    /// The latest merge checkpoint for rank `rank`, if one was recorded
    /// at matching `width`. A width mismatch (elastic shrink between
    /// attempts) invalidates the checkpoint: the rank's key space
    /// changed, so the merge must restart from re-bucketed frames.
    pub fn merge_checkpoint(&self, rank: usize, width: usize) -> Option<MergeCheckpoint> {
        let inner = self.inner.lock();
        let state = inner.merges.get(&rank)?;
        if state.width != width {
            return None;
        }
        let progress = state.progress.clone()?;
        Some(MergeCheckpoint {
            width: state.width,
            runs: state.runs.clone(),
            frontier: progress.frontier,
            last_key: progress.last_key,
            groups_emitted: progress.groups_emitted,
            partial_output: progress.partial_output,
        })
    }

    /// Drops rank `rank`'s merge state (merge finished; run files may be
    /// reclaimed once the owning store drops its handles too).
    pub fn clear_merge(&self, rank: usize) {
        self.inner.lock().merges.remove(&rank);
    }

    /// Total checkpointed bytes (the paper-relevant cost of the mechanism).
    pub fn total_bytes(&self) -> u64 {
        self.inner
            .lock()
            .frames
            .values()
            .flat_map(|v| v.iter())
            .map(|(_, b)| b.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpi_common::kv::Record;
    use dmpi_common::ser::frame_record;

    #[test]
    fn complete_tasks_are_recoverable() {
        let cp = CheckpointStore::new();
        cp.record_frame(3, 0, Bytes::from_static(b"aa"));
        cp.record_frame(3, 1, Bytes::from_static(b"bb"));
        assert!(!cp.is_complete(3));
        assert!(cp.recover_frames(3).is_empty(), "not yet complete");
        cp.mark_complete(3);
        assert!(cp.is_complete(3));
        let frames = cp.recover_frames(3);
        assert_eq!(frames.len(), 2);
        assert_eq!(cp.completed_count(), 1);
        assert_eq!(cp.total_bytes(), 4);
    }

    #[test]
    fn incomplete_tasks_are_discarded() {
        let cp = CheckpointStore::new();
        cp.record_frame(1, 0, Bytes::from_static(b"partial"));
        cp.discard_incomplete(1);
        assert_eq!(cp.total_bytes(), 0);
        // Discard after completion is a no-op.
        cp.record_frame(2, 0, Bytes::from_static(b"done"));
        cp.mark_complete(2);
        cp.discard_incomplete(2);
        assert_eq!(cp.recover_frames(2).len(), 1);
    }

    #[test]
    fn double_complete_is_idempotent() {
        let cp = CheckpointStore::new();
        cp.mark_complete(0);
        cp.mark_complete(0);
        assert_eq!(cp.completed_count(), 1);
        // A later width record does not overwrite the first completion.
        cp.mark_complete_at(0, 4);
        assert_eq!(cp.completed_count(), 1);
        assert_eq!(cp.recover_frames_for(0, 2), Vec::new());
    }

    #[test]
    fn concurrent_recording() {
        let cp = CheckpointStore::new();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cp = cp.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        cp.record_frame(t, i % 4, Bytes::from(vec![0u8; 10]));
                    }
                    cp.mark_complete(t);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cp.completed_count(), 8);
        assert_eq!(cp.total_bytes(), 8 * 100 * 10);
    }

    /// Frames a few records, partitioned for `width` ranks, into the
    /// store under task 0.
    fn checkpoint_records(cp: &CheckpointStore, recs: &[Record], width: usize) {
        let partitioner = HashPartitioner::new(width);
        let mut buckets: Vec<Vec<u8>> = vec![Vec::new(); width];
        for r in recs {
            frame_record(&mut buckets[partitioner.partition(&r.key)], r);
        }
        for (p, b) in buckets.into_iter().enumerate() {
            if !b.is_empty() {
                cp.record_frame(0, p, Bytes::from(b));
            }
        }
        cp.mark_complete_at(0, width);
    }

    fn sealed_run(n: usize) -> SealedRun {
        let mut w = crate::spillfmt::RunWriter::new(64, false, true);
        for i in 0..n {
            w.push(&Record::from_strs(&format!("k{i:04}"), "v"));
        }
        let (image, index) = w.finish();
        SealedRun::mem(image, index)
    }

    #[test]
    fn merge_checkpoint_round_trips_at_matching_width() {
        let cp = CheckpointStore::new();
        cp.register_merge_runs(1, 4, vec![sealed_run(10), sealed_run(10)]);
        assert!(
            cp.merge_checkpoint(1, 4).is_none(),
            "no frontier recorded yet"
        );
        cp.record_merge_frontier(
            1,
            vec![2, 0],
            Some(Bytes::from_static(b"k0005")),
            6,
            Bytes::from_static(b"framed"),
        );
        let m = cp.merge_checkpoint(1, 4).expect("checkpoint recorded");
        assert_eq!(m.width, 4);
        assert_eq!(m.runs.len(), 2);
        assert_eq!(m.frontier, vec![2, 0]);
        assert_eq!(m.last_key.as_deref(), Some(b"k0005".as_slice()));
        assert_eq!(m.groups_emitted, 6);
        assert_eq!(&m.partial_output[..], b"framed");
        cp.clear_merge(1);
        assert!(cp.merge_checkpoint(1, 4).is_none(), "cleared");
    }

    #[test]
    fn merge_checkpoint_invalidated_by_width_change_and_bad_frontier() {
        let cp = CheckpointStore::new();
        cp.register_merge_runs(0, 4, vec![sealed_run(4)]);
        // A frontier whose width disagrees with the run count is dropped.
        cp.record_merge_frontier(0, vec![1, 1], None, 0, Bytes::new());
        assert!(cp.merge_checkpoint(0, 4).is_none());
        cp.record_merge_frontier(0, vec![1], None, 2, Bytes::new());
        assert!(cp.merge_checkpoint(0, 4).is_some());
        // An elastic shrink between attempts invalidates the checkpoint.
        assert!(cp.merge_checkpoint(0, 3).is_none());
        // Re-registering (fresh attempt) wipes stale progress.
        cp.register_merge_runs(0, 4, vec![sealed_run(4)]);
        assert!(cp.merge_checkpoint(0, 4).is_none());
    }

    #[test]
    fn recovery_at_recorded_width_returns_stored_frames() {
        let cp = CheckpointStore::new();
        let recs: Vec<Record> = (0..20)
            .map(|i| Record::from_strs(&format!("k{i}"), "v"))
            .collect();
        checkpoint_records(&cp, &recs, 3);
        let same = cp.recover_frames_for(0, 3);
        assert_eq!(same, cp.recover_frames(0));
    }

    #[test]
    fn recovery_at_a_narrower_width_rebuckets_every_record() {
        let cp = CheckpointStore::new();
        let recs: Vec<Record> = (0..50)
            .map(|i| Record::from_strs(&format!("key-{i}"), &format!("val-{i}")))
            .collect();
        checkpoint_records(&cp, &recs, 4);

        let narrow = cp.recover_frames_for(0, 2);
        let partitioner = HashPartitioner::new(2);
        let mut recovered = 0usize;
        for (p, payload) in &narrow {
            assert!(*p < 2, "partition index fits the narrow width");
            let mut off = 0;
            while off < payload.len() {
                let (key, _v, used) = read_framed_kv(&payload[off..]).unwrap();
                assert_eq!(partitioner.partition(key), *p, "record re-bucketed");
                off += used;
                recovered += 1;
            }
        }
        assert_eq!(recovered, recs.len(), "no record lost or duplicated");

        // Growing back out works too.
        let wide = cp.recover_frames_for(0, 8);
        let total: usize = wide.iter().map(|(_, b)| b.len()).sum();
        let orig: usize = cp.recover_frames(0).iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, orig, "re-bucketing preserves every byte");
    }
}
