//! The bipartite interconnect: typed frames between O executors and A
//! partitions.
//!
//! Each rank owns a mailbox — a **bounded** channel standing in for MPI's
//! eager-protocol message queue, whose capacity comes from
//! [`JobConfig::mailbox_capacity`](crate::JobConfig). O-side senders ship
//! [`Frame::Data`] messages as buffers fill (the pipelined path) and
//! close the stream with one [`Frame::Eof`] per sender so receivers know
//! when their partition is complete. A sender whose destination mailbox
//! is full *blocks* — the same backpressure semantics the TCP backend
//! gets from the kernel's socket buffers, so in-proc runs exercise the
//! production flow-control path.
//!
//! **Deadlock freedom.** Bounded mailboxes introduce a classic risk: if
//! every rank first produced all its data and only then drained its
//! mailbox, two ranks could block forever on each other's full mailboxes.
//! The runtime avoids the cycle structurally: every rank drains its
//! mailbox on a dedicated ingest thread *from job start*, concurrently
//! with its O phase ([`crate::runtime`]). The ingest thread consumes
//! frames into the A-side store and never sends, so it never blocks on
//! another mailbox; a producer blocked on a full mailbox is therefore
//! always unblocked by that mailbox's ingester, and the wait-for graph
//! has no cycle. The same argument covers TCP: socket readers feed the
//! bounded mailbox, the ingester drains it, and senders stall at their
//! bounded per-peer send window until the chain frees up.
//!
//! Every data frame carries a CRC32 of its payload, computed at the
//! sender. Receivers [`Frame::verify`] before ingesting: a mismatch (bit
//! rot, or the fault-injection harness flipping wire bytes) surfaces as a
//! structured [`Error::Fault`] instead of silently wrong output.

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};

use dmpi_common::crc::crc32;
use dmpi_common::{Error, FaultCause, FaultKind, Result};

/// A message delivered to an A partition's mailbox.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// A chunk of framed key-value records for this partition.
    Data {
        /// Rank that produced the chunk.
        from_rank: usize,
        /// O task (split index) that produced it — used by checkpoint
        /// recovery bookkeeping.
        o_task: usize,
        /// Framed records (see `dmpi_common::ser`).
        payload: Bytes,
        /// CRC32 (IEEE) of `payload`, computed at the sender.
        crc: u32,
    },
    /// The sending rank has no more data for this partition.
    Eof {
        /// Rank that finished.
        from_rank: usize,
    },
}

impl Frame {
    /// Builds a data frame, stamping the payload's CRC32.
    pub fn data(from_rank: usize, o_task: usize, payload: Bytes) -> Frame {
        let crc = crc32(&payload);
        Frame::Data {
            from_rank,
            o_task,
            payload,
            crc,
        }
    }

    /// Payload size (0 for EOF).
    pub fn payload_len(&self) -> usize {
        match self {
            Frame::Data { payload, .. } => payload.len(),
            Frame::Eof { .. } => 0,
        }
    }

    /// The rank that sent the frame (data and EOF alike) — receivers use
    /// it for per-peer accounting.
    pub fn from_rank(&self) -> usize {
        match self {
            Frame::Data { from_rank, .. } | Frame::Eof { from_rank } => *from_rank,
        }
    }

    /// The producing O task of a data frame; `None` for EOF.
    pub fn o_task(&self) -> Option<usize> {
        match self {
            Frame::Data { o_task, .. } => Some(*o_task),
            Frame::Eof { .. } => None,
        }
    }

    /// Checks the payload against the sender-stamped CRC. EOF frames are
    /// trivially valid. A mismatch reports a [`FaultKind::CorruptFrame`]
    /// cause naming the producing task and rank.
    pub fn verify(&self) -> Result<()> {
        match self {
            Frame::Eof { .. } => Ok(()),
            Frame::Data {
                from_rank,
                o_task,
                payload,
                crc,
            } => {
                let actual = crc32(payload);
                if actual == *crc {
                    Ok(())
                } else {
                    Err(Error::fault(
                        FaultCause::new(
                            FaultKind::CorruptFrame,
                            format!(
                                "frame CRC mismatch: stamped {crc:#010x}, computed {actual:#010x} \
                                 over {} bytes",
                                payload.len()
                            ),
                        )
                        .task(*o_task)
                        .rank(*from_rank),
                    ))
                }
            }
        }
    }
}

/// Default mailbox capacity (frames) when none is configured. Large
/// enough that single-threaded unit tests never fill a mailbox, small
/// enough that a runaway producer is throttled.
pub const DEFAULT_MAILBOX_CAPACITY: usize = 1024;

// ---------------------------------------------------------------------
// Job tagging: multiplexing several jobs over one resident mesh.
//
// A resident mesh (`datampi::service`) runs many jobs concurrently over
// one set of sockets. Frames are routed to their job by a tag packed
// into the high bits of the `o_task` field — the one header field wide
// enough (u64 on the wire) to spare the room. The tag is `job_id + 1`,
// so untagged legacy frames (high bits zero) stay distinguishable; the
// demultiplexer strips the tag before delivery, which keeps ingest
// bookkeeping and byte-identity untouched. The frame CRC covers the
// payload only, so retagging never invalidates it.

/// Bit position of the job tag inside `o_task`: tasks keep the low 40
/// bits (a trillion splits), jobs the high 24 (16M concurrent ids).
pub const JOB_TAG_SHIFT: u32 = 40;
/// Mask selecting the task bits of a tagged `o_task`.
pub const JOB_TASK_MASK: u64 = (1u64 << JOB_TAG_SHIFT) - 1;
/// The reserved task value that encodes a *job-level* EOF as an
/// empty-payload data frame. Real [`Frame::Eof`] frames are reserved for
/// mesh teardown (the TCP reader treats a stream ending without one as a
/// rank death), so per-job completion travels in-band as data.
pub const JOB_EOF_TASK: u64 = JOB_TASK_MASK;
/// Largest job id the tag can carry.
pub const MAX_JOB_ID: u64 = (1u64 << (64 - JOB_TAG_SHIFT)) - 2;

/// Packs `job` into the high bits of `task`.
pub fn tag_task(job: u64, task: u64) -> u64 {
    debug_assert!(job <= MAX_JOB_ID, "job id {job} exceeds tag width");
    ((job + 1) << JOB_TAG_SHIFT) | (task & JOB_TASK_MASK)
}

/// Splits a tagged `o_task` into `(job, task)`. Returns `None` for an
/// untagged (legacy one-shot) value.
pub fn untag_task(o_task: u64) -> Option<(u64, u64)> {
    let high = o_task >> JOB_TAG_SHIFT;
    if high == 0 {
        None
    } else {
        Some((high - 1, o_task & JOB_TASK_MASK))
    }
}

/// Encoded size of a frame on the TCP wire (`transport::wire` framing:
/// 21 header bytes + payload for data, 5 for EOF). Used by the resident
/// mesh for per-job wire accounting, where the socket-level totals span
/// all jobs at once.
pub fn wire_size_estimate(frame: &Frame) -> u64 {
    match frame {
        Frame::Data { payload, .. } => 21 + payload.len() as u64,
        Frame::Eof { .. } => 5,
    }
}

/// The full mesh of mailboxes for a job: one receiver per A partition,
/// senders cloneable by every O executor.
pub struct Interconnect {
    senders: Vec<Sender<Frame>>,
    receivers: Vec<Option<Receiver<Frame>>>,
}

impl Interconnect {
    /// Builds mailboxes for `ranks` partitions with the default capacity.
    pub fn new(ranks: usize) -> Self {
        Self::with_capacity(ranks, DEFAULT_MAILBOX_CAPACITY)
    }

    /// Builds mailboxes for `ranks` partitions, each holding at most
    /// `capacity` frames before senders block (see the module docs for
    /// why this cannot deadlock the runtime).
    pub fn with_capacity(ranks: usize, capacity: usize) -> Self {
        let mut senders = Vec::with_capacity(ranks);
        let mut receivers = Vec::with_capacity(ranks);
        for _ in 0..ranks {
            let (tx, rx) = bounded(capacity.max(1));
            senders.push(tx);
            receivers.push(Some(rx));
        }
        Interconnect { senders, receivers }
    }

    /// Cloneable sender handles to every partition (indexed by partition).
    pub fn senders(&self) -> Vec<Sender<Frame>> {
        self.senders.clone()
    }

    /// Takes ownership of partition `rank`'s receiver (each rank takes its
    /// own exactly once).
    pub fn take_receiver(&mut self, rank: usize) -> Receiver<Frame> {
        self.receivers[rank]
            .take()
            .expect("receiver already taken for this rank")
    }

    /// Drops the master's sender handles so receivers see disconnect after
    /// all worker clones are gone (hygiene for clean shutdown).
    pub fn close(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_tags_round_trip_and_leave_legacy_tasks_alone() {
        assert_eq!(untag_task(0), None);
        assert_eq!(untag_task(JOB_TASK_MASK), None, "untagged high task");
        for job in [0u64, 1, 7, MAX_JOB_ID] {
            for task in [0u64, 1, 12345, JOB_EOF_TASK] {
                assert_eq!(untag_task(tag_task(job, task)), Some((job, task)));
            }
        }
        // Retagging never disturbs the CRC: it covers the payload only.
        let f = Frame::data(1, tag_task(3, 9) as usize, Bytes::from_static(b"xyz"));
        f.verify().unwrap();
    }

    #[test]
    fn wire_size_estimate_matches_the_wire_format() {
        assert_eq!(
            wire_size_estimate(&Frame::data(0, 0, Bytes::from_static(b"12345"))),
            26
        );
        assert_eq!(wire_size_estimate(&Frame::Eof { from_rank: 0 }), 5);
    }

    #[test]
    fn frames_route_to_the_right_partition() {
        let mut net = Interconnect::new(2);
        let senders = net.senders();
        let rx0 = net.take_receiver(0);
        let rx1 = net.take_receiver(1);
        senders[0]
            .send(Frame::data(1, 7, Bytes::from_static(b"abc")))
            .unwrap();
        senders[1].send(Frame::Eof { from_rank: 1 }).unwrap();
        match rx0.recv().unwrap() {
            Frame::Data {
                from_rank,
                o_task,
                payload,
                ..
            } => {
                assert_eq!(from_rank, 1);
                assert_eq!(o_task, 7);
                assert_eq!(&payload[..], b"abc");
            }
            other => panic!("unexpected frame {other:?}"),
        }
        match rx1.recv().unwrap() {
            Frame::Eof { from_rank } => assert_eq!(from_rank, 1),
            other => panic!("unexpected frame {other:?}"),
        }
    }

    #[test]
    fn payload_len_reports_size() {
        let f = Frame::data(0, 0, Bytes::from_static(b"1234"));
        assert_eq!(f.payload_len(), 4);
        assert_eq!(Frame::Eof { from_rank: 0 }.payload_len(), 0);
    }

    #[test]
    fn clean_frames_verify() {
        Frame::data(0, 3, Bytes::from_static(b"payload"))
            .verify()
            .unwrap();
        Frame::Eof { from_rank: 0 }.verify().unwrap();
        // Empty payloads are fine too (CRC of nothing is stable).
        Frame::data(0, 0, Bytes::new()).verify().unwrap();
    }

    #[test]
    fn corrupted_frame_fails_verification_with_structured_cause() {
        let f = match Frame::data(2, 5, Bytes::from_static(b"hello world")) {
            Frame::Data {
                from_rank,
                o_task,
                payload,
                crc,
            } => {
                let mut bytes = payload.to_vec();
                bytes[4] ^= 0x40; // one flipped bit on the wire
                Frame::Data {
                    from_rank,
                    o_task,
                    payload: Bytes::from(bytes),
                    crc,
                }
            }
            _ => unreachable!(),
        };
        let err = f.verify().unwrap_err();
        let cause = err.fault_cause().expect("fault with cause");
        assert_eq!(cause.kind, FaultKind::CorruptFrame);
        assert_eq!(cause.task, Some(5));
        assert_eq!(cause.rank, Some(2));
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn double_take_panics() {
        let mut net = Interconnect::new(1);
        let _a = net.take_receiver(0);
        let _b = net.take_receiver(0);
    }

    #[test]
    fn bounded_mailbox_blocks_full_senders_until_drained() {
        let mut net = Interconnect::with_capacity(1, 2);
        let senders = net.senders();
        let rx = net.take_receiver(0);
        senders[0].send(Frame::Eof { from_rank: 0 }).unwrap();
        senders[0].send(Frame::Eof { from_rank: 1 }).unwrap();
        // Mailbox is full: the next send must block until a recv frees a
        // slot — the backpressure semantics shared with the TCP backend.
        let h = std::thread::spawn(move || {
            senders[0].send(Frame::Eof { from_rank: 2 }).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(matches!(rx.recv().unwrap(), Frame::Eof { from_rank: 0 }));
        h.join().unwrap();
        assert!(matches!(rx.recv().unwrap(), Frame::Eof { from_rank: 1 }));
        assert!(matches!(rx.recv().unwrap(), Frame::Eof { from_rank: 2 }));
    }

    #[test]
    fn cross_thread_delivery() {
        let mut net = Interconnect::new(1);
        let senders = net.senders();
        let rx = net.take_receiver(0);
        let h = std::thread::spawn(move || {
            for i in 0..100usize {
                senders[0]
                    .send(Frame::data(0, i, Bytes::from(vec![0u8; i])))
                    .unwrap();
            }
            senders[0].send(Frame::Eof { from_rank: 0 }).unwrap();
        });
        let mut seen = 0;
        while let Frame::Data { o_task, .. } = rx.recv().unwrap() {
            assert_eq!(o_task, seen);
            seen += 1;
        }
        assert_eq!(seen, 100);
        h.join().unwrap();
    }
}
