//! Job configuration for the DataMPI runtime.

use dmpi_common::compare::SortKernel;
use dmpi_common::units::{KB, MB};
use dmpi_common::{Error, Result};

use crate::comm::DEFAULT_MAILBOX_CAPACITY;
use crate::fault::FaultPlan;
use crate::observe::Observer;
use crate::speculate::{Scheduling, SpeculationConfig};
use crate::task::Combiner;
use crate::transport::Backend;

/// Default bound on each peer's TCP send window (frames queued behind
/// one socket before producers block).
pub const DEFAULT_SEND_WINDOW: usize = 128;

/// Default coalescing watermark for the TCP event loop: raw batch bytes
/// accumulated before a wire batch seals (it also seals early whenever
/// the send window runs dry, so latency never waits on this).
pub const DEFAULT_WIRE_BATCH_BYTES: usize = 256 * KB as usize;

/// Per-batch wire compression for the TCP backend (see DESIGN.md §15:
/// the batch body is compressed after per-frame CRC stamping, so the
/// receiver's integrity gate is unchanged).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WireCompression {
    /// Ship raw batch bodies (the default — loopback and fast networks
    /// are rarely compression-bound).
    #[default]
    None,
    /// LZ4-block-compress each sealed batch, keeping the compressed body
    /// only when it is actually smaller.
    Lz4,
}

impl WireCompression {
    /// Stable lowercase name, used by CLI flags and artifact JSON.
    pub fn name(self) -> &'static str {
        match self {
            WireCompression::None => "none",
            WireCompression::Lz4 => "lz4",
        }
    }

    /// Parses a compression name as accepted by `dmpirun --compress` and
    /// the bench CLI.
    pub fn parse(s: &str) -> Option<WireCompression> {
        match s {
            "none" | "off" => Some(WireCompression::None),
            "lz4" => Some(WireCompression::Lz4),
            _ => None,
        }
    }
}

/// Default target size of one parallel-O input chunk. Large enough that
/// per-chunk overhead (a tracer span, a captured frame buffer) is noise;
/// small enough that even modest splits fan out across the worker pool.
pub const DEFAULT_O_CHUNK_BYTES: usize = 128 * KB as usize;

/// Default O-executor parallelism: every core the host offers.
pub fn default_o_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Configuration of one DataMPI job.
#[derive(Clone, Debug)]
pub struct JobConfig {
    /// Number of worker ranks (threads standing in for MPI processes).
    /// Each rank hosts both an O executor and an A partition.
    pub ranks: usize,
    /// Partitioned send-buffer flush threshold in bytes: when one
    /// destination's buffer exceeds this, it is shipped asynchronously
    /// (the pipelining knob; the paper's DataMPI overlaps this with
    /// computation).
    pub flush_threshold: usize,
    /// If `false`, emitted data is held until the O task finishes and then
    /// shipped in one step — the "staged" ablation that mimics Hadoop's
    /// materialize-then-shuffle behaviour.
    pub pipelined: bool,
    /// Per-rank in-memory budget for the A-side intermediate store; beyond
    /// it partitions spill to simulated disk.
    pub memory_budget: usize,
    /// Whether completed O tasks checkpoint their emitted pairs for
    /// restart.
    pub checkpointing: bool,
    /// Whether A-side grouping sorts keys (MapReduce mode) or only groups
    /// by hash (Common mode, cheaper — used by WordCount-style jobs where
    /// output order is irrelevant).
    pub sorted_grouping: bool,
    /// Fault injection: a deterministic, seeded schedule of O-task
    /// errors, rank deaths, straggler delays, and frame corruptions
    /// ([`FaultPlan`]). `None` (the default) injects nothing.
    pub faults: Option<FaultPlan>,
    /// Observability sink: when installed, ranks record phase spans and
    /// live counters into it ([`crate::observe`]). `None` (the default)
    /// is the no-op sink — every hook is a skipped `Option` check.
    pub observer: Option<Observer>,
    /// Which interconnect moves frames between ranks: the in-process
    /// channel fabric (default) or a real TCP mesh
    /// ([`crate::transport`]).
    pub transport: Backend,
    /// Capacity, in frames, of each rank's mailbox. Senders block while
    /// the destination mailbox is full — see `comm.rs` for the
    /// deadlock-freedom argument.
    pub mailbox_capacity: usize,
    /// TCP backend only: frames queued behind one peer's socket before
    /// producers block on that peer (per-peer backpressure ahead of the
    /// kernel's own socket buffers).
    pub send_window: usize,
    /// TCP backend only: the frame-coalescing watermark — raw bytes a
    /// wire batch accumulates before sealing (default
    /// [`DEFAULT_WIRE_BATCH_BYTES`]; clamped by the encoder to
    /// 4 KiB..=64 MiB). Batches also seal whenever the peer's send
    /// window runs dry, so this bounds batching, it never adds latency.
    pub wire_batch_bytes: usize,
    /// TCP backend only: per-batch wire compression
    /// ([`WireCompression::Lz4`] or the default `None`).
    pub wire_compression: WireCompression,
    /// O-side pre-aggregation ([`Combiner`]): when set, each O task's
    /// per-destination buffer is key-grouped and folded through this
    /// function before its frame is shipped, cutting wire bytes for
    /// associative workloads (WordCount, Grep). `None` (the default)
    /// ships every emitted pair unmodified.
    pub combiner: Option<Combiner>,
    /// Intra-rank O-executor parallelism: how many pool workers may chew
    /// on one O task's input concurrently. `1` is the sequential path;
    /// the default is [`default_o_parallelism`] (all cores). Output
    /// frames are byte-identical at any setting — see DESIGN.md §11.
    pub o_parallelism: usize,
    /// Target size of one parallel-O input chunk in bytes. Smaller values
    /// fan small inputs out wider (tests use this); the default is
    /// [`DEFAULT_O_CHUNK_BYTES`].
    pub o_chunk_bytes: usize,
    /// Which kernel sorts spill runs on the A side —
    /// [`SortKernel::Radix`] (default) or the comparison sort. Both yield
    /// identical output order; this is a perf dimension benchmarked by
    /// `figures hotpath-bench`.
    pub sort_kernel: SortKernel,
    /// Straggler defense ([`crate::speculate`]): progress heartbeats,
    /// median-based outlier detection, and speculative duplicate attempts
    /// with first-writer-wins commit. Disabled by default — the direct
    /// emission hot path is untouched unless `speculation.enabled`.
    pub speculation: SpeculationConfig,
    /// How O splits are assigned to ranks: the classic shared queue
    /// (default) or a static `task % ranks` pinning with optional work
    /// stealing. Output bytes are identical in every mode.
    pub scheduling: Scheduling,
    /// Spill directory for the A-side store: when set, sealed runs are
    /// written as indexed, block-formatted files under it (the
    /// external-memory path for data ≫ RAM); `None` (the default) keeps
    /// runs as in-memory images in the same format. Grouped output is
    /// byte-identical either way — see DESIGN.md §16.
    pub spill_dir: Option<std::path::PathBuf>,
    /// LZ4 block compression for sealed spill runs (reuses the wire
    /// codec; each block's CRC covers the uncompressed bytes, and the
    /// compressed form is kept only when smaller).
    pub spill_compression: WireCompression,
    /// Raw-byte budget of one spill-run block — the unit of read, CRC
    /// check, decompression, index skip and checkpoint resume. Default
    /// [`crate::spillfmt::DEFAULT_SPILL_BLOCK_BYTES`].
    pub spill_block_bytes: usize,
}

impl JobConfig {
    /// A small default suitable for tests and examples.
    pub fn new(ranks: usize) -> Self {
        JobConfig {
            ranks,
            flush_threshold: MB as usize,
            pipelined: true,
            memory_budget: 64 * MB as usize,
            checkpointing: false,
            sorted_grouping: true,
            faults: None,
            observer: None,
            transport: Backend::InProc,
            mailbox_capacity: DEFAULT_MAILBOX_CAPACITY,
            send_window: DEFAULT_SEND_WINDOW,
            wire_batch_bytes: DEFAULT_WIRE_BATCH_BYTES,
            wire_compression: WireCompression::default(),
            combiner: None,
            o_parallelism: default_o_parallelism(),
            o_chunk_bytes: DEFAULT_O_CHUNK_BYTES,
            sort_kernel: SortKernel::default(),
            speculation: SpeculationConfig::default(),
            scheduling: Scheduling::default(),
            spill_dir: None,
            spill_compression: WireCompression::default(),
            spill_block_bytes: crate::spillfmt::DEFAULT_SPILL_BLOCK_BYTES,
        }
    }

    /// Validates invariants.
    pub fn validate(&self) -> Result<()> {
        if self.ranks == 0 {
            return Err(Error::Config("need at least one rank".into()));
        }
        if self.flush_threshold == 0 {
            return Err(Error::Config("flush threshold must be positive".into()));
        }
        if self.memory_budget == 0 {
            return Err(Error::Config("memory budget must be positive".into()));
        }
        if self.mailbox_capacity == 0 {
            return Err(Error::Config("mailbox capacity must be positive".into()));
        }
        if self.send_window == 0 {
            return Err(Error::Config("send window must be positive".into()));
        }
        if self.wire_batch_bytes == 0 {
            return Err(Error::Config(
                "wire batch watermark must be positive".into(),
            ));
        }
        if self.o_parallelism == 0 {
            return Err(Error::Config("O parallelism must be positive".into()));
        }
        if self.o_chunk_bytes == 0 {
            return Err(Error::Config("O chunk size must be positive".into()));
        }
        if self.spill_block_bytes == 0 {
            return Err(Error::Config("spill block size must be positive".into()));
        }
        self.speculation.validate()?;
        if let Some(plan) = &self.faults {
            plan.validate()?;
        }
        Ok(())
    }

    /// Builder: resize the job to `ranks` worker ranks. The elastic
    /// supervisor uses this to shrink or grow the mesh between attempts.
    pub fn with_ranks(mut self, ranks: usize) -> Self {
        self.ranks = ranks;
        self
    }

    /// Builder: set pipelining.
    pub fn with_pipelined(mut self, on: bool) -> Self {
        self.pipelined = on;
        self
    }

    /// Builder: set checkpointing.
    pub fn with_checkpointing(mut self, on: bool) -> Self {
        self.checkpointing = on;
        self
    }

    /// Builder: set the A-store memory budget.
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Builder: set sorted (MapReduce) vs hash (Common) grouping.
    pub fn with_sorted_grouping(mut self, on: bool) -> Self {
        self.sorted_grouping = on;
        self
    }

    /// Builder: set the flush threshold.
    pub fn with_flush_threshold(mut self, bytes: usize) -> Self {
        self.flush_threshold = bytes;
        self
    }

    /// Builder: install a fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Builder: install an observability sink (tracing + metrics).
    pub fn with_observer(mut self, observer: Observer) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Builder: select the interconnect backend.
    pub fn with_transport(mut self, backend: Backend) -> Self {
        self.transport = backend;
        self
    }

    /// Builder: set the per-rank mailbox capacity (frames).
    pub fn with_mailbox_capacity(mut self, frames: usize) -> Self {
        self.mailbox_capacity = frames;
        self
    }

    /// Builder: set the TCP per-peer send window (frames).
    pub fn with_send_window(mut self, frames: usize) -> Self {
        self.send_window = frames;
        self
    }

    /// Builder: set the TCP frame-coalescing watermark (raw batch
    /// bytes before a seal).
    pub fn with_wire_batch_bytes(mut self, bytes: usize) -> Self {
        self.wire_batch_bytes = bytes;
        self
    }

    /// Builder: set per-batch wire compression for the TCP backend.
    pub fn with_wire_compression(mut self, compression: WireCompression) -> Self {
        self.wire_compression = compression;
        self
    }

    /// Builder: install an O-side combiner (pre-aggregation before the
    /// shuffle). The combiner must be an associative, commutative
    /// reduction compatible with the job's A function — see
    /// [`Combiner`]'s correctness requirement.
    pub fn with_combiner(mut self, combiner: Combiner) -> Self {
        self.combiner = Some(combiner);
        self
    }

    /// Builder: set intra-rank O-executor parallelism (`1` = the
    /// sequential path; output bytes are identical at any value).
    pub fn with_o_parallelism(mut self, workers: usize) -> Self {
        self.o_parallelism = workers;
        self
    }

    /// Builder: set the parallel-O chunk target size in bytes (mainly a
    /// test/bench knob — shrinks chunks so small inputs still fan out).
    pub fn with_o_chunk_bytes(mut self, bytes: usize) -> Self {
        self.o_chunk_bytes = bytes;
        self
    }

    /// Builder: select the spill-run sort kernel.
    pub fn with_sort_kernel(mut self, kernel: SortKernel) -> Self {
        self.sort_kernel = kernel;
        self
    }

    /// Builder: configure straggler defense (speculative duplicate
    /// attempts with first-writer-wins commit).
    pub fn with_speculation(mut self, speculation: SpeculationConfig) -> Self {
        self.speculation = speculation;
        self
    }

    /// Builder: select the O-split scheduling mode.
    pub fn with_scheduling(mut self, scheduling: Scheduling) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// Builder: spill sealed runs to files under `dir` (the
    /// external-memory path; runs are cleaned up when their last handle
    /// drops, covering failed and elastic attempts).
    pub fn with_spill_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Builder: LZ4-compress spill-run blocks.
    pub fn with_spill_compression(mut self, compression: WireCompression) -> Self {
        self.spill_compression = compression;
        self
    }

    /// Builder: set the spill-run block budget (raw bytes per block).
    pub fn with_spill_block_bytes(mut self, bytes: usize) -> Self {
        self.spill_block_bytes = bytes;
        self
    }

    /// The spill-run sealing parameters this config implies (untagged —
    /// the runtime tags runs per rank and attempt).
    pub fn spill_config(&self) -> crate::spillfmt::SpillConfig {
        crate::spillfmt::SpillConfig {
            dir: self.spill_dir.clone(),
            compress: self.spill_compression == WireCompression::Lz4,
            block_bytes: self.spill_block_bytes,
            ..crate::spillfmt::SpillConfig::default()
        }
    }

    /// Builder: inject a single O-task error (shorthand for the most
    /// common single-fault plan).
    pub fn with_o_task_fault(self, task: usize, on_attempt: u32) -> Self {
        let plan = self
            .faults
            .clone()
            .unwrap_or_default()
            .fail_o_task(task, on_attempt);
        self.with_faults(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        JobConfig::new(4).validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(JobConfig::new(0).validate().is_err());
        assert!(JobConfig::new(1)
            .with_flush_threshold(0)
            .validate()
            .is_err());
        assert!(JobConfig::new(1).with_memory_budget(0).validate().is_err());
        assert!(JobConfig::new(1)
            .with_mailbox_capacity(0)
            .validate()
            .is_err());
        assert!(JobConfig::new(1).with_send_window(0).validate().is_err());
        assert!(JobConfig::new(1)
            .with_wire_batch_bytes(0)
            .validate()
            .is_err());
        assert!(JobConfig::new(1).with_o_parallelism(0).validate().is_err());
        assert!(JobConfig::new(1).with_o_chunk_bytes(0).validate().is_err());
        // An invalid fault plan makes the whole config invalid.
        let plan = FaultPlan::new(0).straggler(0, 0, FaultPlan::MAX_STRAGGLER_MS + 1);
        assert!(JobConfig::new(1).with_faults(plan).validate().is_err());
        // So does an invalid (enabled) speculation config.
        let spec = SpeculationConfig::enabled().with_slow_factor(0.1);
        assert!(JobConfig::new(1).with_speculation(spec).validate().is_err());
    }

    #[test]
    fn ranks_speculation_and_scheduling_builders() {
        let c = JobConfig::new(2)
            .with_ranks(5)
            .with_speculation(SpeculationConfig::enabled())
            .with_scheduling(Scheduling::Static {
                work_stealing: true,
            });
        assert_eq!(c.ranks, 5);
        assert!(c.speculation.enabled);
        assert_eq!(
            c.scheduling,
            Scheduling::Static {
                work_stealing: true
            }
        );
        c.validate().unwrap();
    }

    #[test]
    fn builders_compose() {
        let c = JobConfig::new(2)
            .with_pipelined(false)
            .with_checkpointing(true)
            .with_memory_budget(123)
            .with_sorted_grouping(false)
            .with_flush_threshold(456)
            .with_o_parallelism(3)
            .with_o_chunk_bytes(789)
            .with_sort_kernel(SortKernel::Comparison)
            .with_o_task_fault(1, 0);
        assert_eq!(c.o_parallelism, 3);
        assert_eq!(c.o_chunk_bytes, 789);
        assert_eq!(c.sort_kernel, SortKernel::Comparison);
        assert!(!c.pipelined);
        assert!(c.checkpointing);
        assert_eq!(c.memory_budget, 123);
        assert!(!c.sorted_grouping);
        assert_eq!(c.flush_threshold, 456);
        let plan = c.faults.as_ref().expect("plan installed");
        assert!(plan.o_task_error(1, 0));
        assert!(!plan.o_task_error(1, 1));
    }

    #[test]
    fn wire_knobs_build_and_parse() {
        let c = JobConfig::new(2)
            .with_wire_batch_bytes(64 * 1024)
            .with_wire_compression(WireCompression::Lz4);
        assert_eq!(c.wire_batch_bytes, 64 * 1024);
        assert_eq!(c.wire_compression, WireCompression::Lz4);
        c.validate().unwrap();
        assert_eq!(WireCompression::parse("lz4"), Some(WireCompression::Lz4));
        assert_eq!(WireCompression::parse("none"), Some(WireCompression::None));
        assert_eq!(WireCompression::parse("off"), Some(WireCompression::None));
        assert_eq!(WireCompression::parse("zstd"), None);
        assert_eq!(WireCompression::Lz4.name(), "lz4");
        assert_eq!(WireCompression::None.name(), "none");
    }

    #[test]
    fn spill_knobs_build_and_validate() {
        let c = JobConfig::new(2)
            .with_spill_dir("/tmp/dmpi-spill")
            .with_spill_compression(WireCompression::Lz4)
            .with_spill_block_bytes(4096);
        c.validate().unwrap();
        let spill = c.spill_config();
        assert_eq!(
            spill.dir.as_deref(),
            Some(std::path::Path::new("/tmp/dmpi-spill"))
        );
        assert!(spill.compress);
        assert_eq!(spill.block_bytes, 4096);
        // Default: in-memory, uncompressed, default block budget.
        let spill = JobConfig::new(1).spill_config();
        assert!(spill.dir.is_none());
        assert!(!spill.compress);
        assert_eq!(
            spill.block_bytes,
            crate::spillfmt::DEFAULT_SPILL_BLOCK_BYTES
        );
        assert!(JobConfig::new(1)
            .with_spill_block_bytes(0)
            .validate()
            .is_err());
    }

    #[test]
    fn o_task_fault_shorthand_extends_an_existing_plan() {
        let c = JobConfig::new(1)
            .with_faults(FaultPlan::new(9).rank_panic(0, 0))
            .with_o_task_fault(2, 1);
        let plan = c.faults.unwrap();
        assert_eq!(plan.seed(), 9, "shorthand keeps the existing seed");
        assert!(plan.rank_panics(0, 0));
        assert!(plan.o_task_error(2, 1));
    }
}
