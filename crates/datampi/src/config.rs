//! Job configuration for the DataMPI runtime.

use dmpi_common::units::MB;
use dmpi_common::{Error, Result};

/// Configuration of one DataMPI job.
#[derive(Clone, Debug)]
pub struct JobConfig {
    /// Number of worker ranks (threads standing in for MPI processes).
    /// Each rank hosts both an O executor and an A partition.
    pub ranks: usize,
    /// Partitioned send-buffer flush threshold in bytes: when one
    /// destination's buffer exceeds this, it is shipped asynchronously
    /// (the pipelining knob; the paper's DataMPI overlaps this with
    /// computation).
    pub flush_threshold: usize,
    /// If `false`, emitted data is held until the O task finishes and then
    /// shipped in one step — the "staged" ablation that mimics Hadoop's
    /// materialize-then-shuffle behaviour.
    pub pipelined: bool,
    /// Per-rank in-memory budget for the A-side intermediate store; beyond
    /// it partitions spill to simulated disk.
    pub memory_budget: usize,
    /// Whether completed O tasks checkpoint their emitted pairs for
    /// restart.
    pub checkpointing: bool,
    /// Whether A-side grouping sorts keys (MapReduce mode) or only groups
    /// by hash (Common mode, cheaper — used by WordCount-style jobs where
    /// output order is irrelevant).
    pub sorted_grouping: bool,
    /// Fault injection: the O task index that should fail, and on which
    /// run attempt (0-based); used by the fault-tolerance tests.
    pub fail_o_task: Option<FaultSpec>,
}

/// Injected-fault description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Which O task (by split index) fails.
    pub task_index: usize,
    /// The attempt on which it fails (tasks recovered from checkpoint are
    /// not re-attempted).
    pub on_attempt: u32,
}

impl JobConfig {
    /// A small default suitable for tests and examples.
    pub fn new(ranks: usize) -> Self {
        JobConfig {
            ranks,
            flush_threshold: MB as usize,
            pipelined: true,
            memory_budget: 64 * MB as usize,
            checkpointing: false,
            sorted_grouping: true,
            fail_o_task: None,
        }
    }

    /// Validates invariants.
    pub fn validate(&self) -> Result<()> {
        if self.ranks == 0 {
            return Err(Error::Config("need at least one rank".into()));
        }
        if self.flush_threshold == 0 {
            return Err(Error::Config("flush threshold must be positive".into()));
        }
        if self.memory_budget == 0 {
            return Err(Error::Config("memory budget must be positive".into()));
        }
        Ok(())
    }

    /// Builder: set pipelining.
    pub fn with_pipelined(mut self, on: bool) -> Self {
        self.pipelined = on;
        self
    }

    /// Builder: set checkpointing.
    pub fn with_checkpointing(mut self, on: bool) -> Self {
        self.checkpointing = on;
        self
    }

    /// Builder: set the A-store memory budget.
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Builder: set sorted (MapReduce) vs hash (Common) grouping.
    pub fn with_sorted_grouping(mut self, on: bool) -> Self {
        self.sorted_grouping = on;
        self
    }

    /// Builder: set the flush threshold.
    pub fn with_flush_threshold(mut self, bytes: usize) -> Self {
        self.flush_threshold = bytes;
        self
    }

    /// Builder: inject a fault.
    pub fn with_fault(mut self, fault: FaultSpec) -> Self {
        self.fail_o_task = Some(fault);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        JobConfig::new(4).validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(JobConfig::new(0).validate().is_err());
        assert!(JobConfig::new(1).with_flush_threshold(0).validate().is_err());
        assert!(JobConfig::new(1).with_memory_budget(0).validate().is_err());
    }

    #[test]
    fn builders_compose() {
        let c = JobConfig::new(2)
            .with_pipelined(false)
            .with_checkpointing(true)
            .with_memory_budget(123)
            .with_sorted_grouping(false)
            .with_flush_threshold(456)
            .with_fault(FaultSpec {
                task_index: 1,
                on_attempt: 0,
            });
        assert!(!c.pipelined);
        assert!(c.checkpointing);
        assert_eq!(c.memory_budget, 123);
        assert!(!c.sorted_grouping);
        assert_eq!(c.flush_threshold, 456);
        assert_eq!(
            c.fail_o_task,
            Some(FaultSpec {
                task_index: 1,
                on_attempt: 0
            })
        );
    }
}
