//! Multi-process execution: the worker and coordinator halves of
//! `dmpirun`.
//!
//! The launcher model is deliberately minimal — `mpirun` on localhost:
//!
//! 1. the **coordinator** (the `dmpirun` parent process) binds a
//!    rendezvous listener and spawns one worker process per rank with
//!    `DMPI_RANK` / `DMPI_RANKS` / `DMPI_COORD` in the environment;
//! 2. each **worker** binds its own data listener on an ephemeral port,
//!    dials the coordinator, and registers `rank <r> <port>`;
//! 3. once every rank has registered, the coordinator broadcasts the
//!    complete rank table (`peers <addr0> <addr1> …`), and every worker
//!    builds the full TCP mesh with
//!    [`establish_endpoint`] —
//!    exactly the fabric the threaded runtime uses for
//!    [`Backend::Tcp`](crate::transport::Backend), so both surfaces run
//!    the same wire code;
//! 4. workers run the job ([`run_worker`]): O tasks are assigned
//!    statically (`task % ranks == rank` — every process derives the
//!    same schedule with no further coordination), pairs move over the
//!    mesh, and the rank's A partition is grouped and reduced;
//! 5. each worker reports a result line back over its rendezvous
//!    connection; the coordinator aggregates [`JobStats`] across ranks.
//!
//! A worker that dies mid-job closes its sockets before sending its
//! [`Frame::Eof`]; peers surface that as a structured
//! [`FaultKind::RankDeath`](dmpi_common::FaultKind) fault (see
//! `transport::tcp`), their jobs fail cleanly, and the coordinator sees
//! both the missing result line and the nonzero exit status.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use bytes::Bytes;

use dmpi_common::kv::RecordBatch;
use dmpi_common::{Error, FaultCause, FaultKind, Result};

use crate::buffer::KvBuffer;
use crate::comm::Frame;
use crate::config::JobConfig;
use crate::runtime::{
    execute_chunks_parallel, ingest_partition, store_decode_fault, ChunkableSplit, IngestConfig,
    JobStats,
};
use crate::task::{BatchCollector, Collector, GroupedValues};
use crate::transport::{establish_endpoint, TcpOptions, WireStats};

/// Environment variable carrying a worker's rank.
pub const ENV_RANK: &str = "DMPI_RANK";
/// Environment variable carrying the total rank count.
pub const ENV_RANKS: &str = "DMPI_RANKS";
/// Environment variable carrying the coordinator's rendezvous address.
pub const ENV_COORD: &str = "DMPI_COORD";

/// How long rendezvous reads may block before the launcher gives up on a
/// worker (or a worker on the launcher).
pub const RENDEZVOUS_TIMEOUT: Duration = Duration::from_secs(60);

fn rendezvous_fault(detail: String) -> Error {
    Error::fault(FaultCause::new(FaultKind::Transport, detail))
}

/// One rank's result of a multi-process job.
#[derive(Debug)]
pub struct WorkerReport {
    /// The rank's A-partition output.
    pub partition: RecordBatch,
    /// The rank's share of the job counters.
    pub stats: JobStats,
    /// Encoded bytes this rank's sockets actually carried.
    pub wire: WireStats,
}

/// Worker side of the rendezvous: dials the coordinator, registers this
/// rank's data `port`, and blocks until the full rank table arrives.
/// Returns the (still-open) coordinator stream — the worker later writes
/// its result line on it — and the peer data addresses indexed by rank.
pub fn register_with_coordinator(
    coord: SocketAddr,
    rank: usize,
    port: u16,
) -> Result<(TcpStream, Vec<SocketAddr>)> {
    let stream = TcpStream::connect(coord)
        .map_err(|e| rendezvous_fault(format!("rank {rank}: dial coordinator {coord}: {e}")))?;
    stream
        .set_read_timeout(Some(RENDEZVOUS_TIMEOUT))
        .map_err(|e| rendezvous_fault(format!("rank {rank}: set rendezvous timeout: {e}")))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| rendezvous_fault(format!("rank {rank}: clone rendezvous stream: {e}")))?;
    writeln!(writer, "rank {rank} {port}")
        .map_err(|e| rendezvous_fault(format!("rank {rank}: register with coordinator: {e}")))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| rendezvous_fault(format!("rank {rank}: read rank table: {e}")))?;
    let peers = parse_peer_line(&line)
        .ok_or_else(|| rendezvous_fault(format!("rank {rank}: bad rank table line {line:?}")))?;
    Ok((reader.into_inner(), peers))
}

/// Coordinator side of the rendezvous: accepts one connection per rank,
/// reads each worker's `rank <r> <port>` registration, then broadcasts
/// the complete rank table to all of them. Returns the still-open worker
/// streams indexed by rank (the workers' result lines arrive on these).
pub fn coordinate_rank_table(listener: &TcpListener, ranks: usize) -> Result<Vec<TcpStream>> {
    let mut streams: Vec<Option<TcpStream>> = (0..ranks).map(|_| None).collect();
    let mut ports = vec![0u16; ranks];
    for _ in 0..ranks {
        let (stream, _) = listener
            .accept()
            .map_err(|e| rendezvous_fault(format!("coordinator accept failed: {e}")))?;
        stream
            .set_read_timeout(Some(RENDEZVOUS_TIMEOUT))
            .map_err(|e| rendezvous_fault(format!("coordinator set timeout: {e}")))?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| rendezvous_fault(format!("coordinator read registration: {e}")))?;
        let (rank, port) = parse_registration(&line)
            .ok_or_else(|| rendezvous_fault(format!("bad registration line {line:?}")))?;
        if rank >= ranks || streams[rank].is_some() {
            return Err(rendezvous_fault(format!(
                "registration for unexpected rank {rank} (of {ranks})"
            )));
        }
        ports[rank] = port;
        streams[rank] = Some(reader.into_inner());
    }
    let table = ports
        .iter()
        .map(|p| format!("127.0.0.1:{p}"))
        .collect::<Vec<_>>()
        .join(" ");
    let mut out = Vec::with_capacity(ranks);
    for (rank, stream) in streams.into_iter().enumerate() {
        let mut stream = stream.expect("every slot filled above");
        writeln!(stream, "peers {table}")
            .map_err(|e| rendezvous_fault(format!("broadcast table to rank {rank}: {e}")))?;
        out.push(stream);
    }
    Ok(out)
}

fn parse_registration(line: &str) -> Option<(usize, u16)> {
    let mut it = line.split_whitespace();
    if it.next()? != "rank" {
        return None;
    }
    let rank = it.next()?.parse().ok()?;
    let port = it.next()?.parse().ok()?;
    Some((rank, port))
}

fn parse_peer_line(line: &str) -> Option<Vec<SocketAddr>> {
    let mut it = line.split_whitespace();
    if it.next()? != "peers" {
        return None;
    }
    let peers: Option<Vec<SocketAddr>> = it.map(|a| a.parse().ok()).collect();
    let peers = peers?;
    if peers.is_empty() {
        return None;
    }
    Some(peers)
}

struct EmitAdapter<'a> {
    buffer: &'a mut KvBuffer,
}

impl Collector for EmitAdapter<'_> {
    fn collect(&mut self, key: &[u8], value: &[u8]) {
        self.buffer.emit_kv(key, value);
    }
}

/// Runs one rank of a multi-process job over an already-distributed rank
/// table: builds this rank's mesh endpoint, executes its statically
/// assigned O tasks (`task % ranks == rank`) while a dedicated ingest
/// thread drains the A partition concurrently, then groups and reduces.
///
/// `inputs` is the *full* task table — every worker derives it
/// deterministically (same seed), so no split data crosses the
/// rendezvous. Fault injection plans in `config` are ignored here: a
/// worker process *is* the fault domain, and `dmpirun` kills whole
/// processes instead.
pub fn run_worker<O, A>(
    config: &JobConfig,
    rank: usize,
    listener: TcpListener,
    peers: &[SocketAddr],
    inputs: &[Bytes],
    o_fn: O,
    a_fn: A,
) -> Result<WorkerReport>
where
    O: Fn(usize, &[u8], &mut dyn Collector) + Send + Sync,
    A: Fn(&GroupedValues, &mut dyn Collector) + Send + Sync,
{
    config.validate()?;
    let ranks = peers.len();
    if rank >= ranks {
        return Err(Error::Config(format!("rank {rank} out of 0..{ranks}")));
    }
    let opts = TcpOptions::from_config(config);
    let mut endpoint = establish_endpoint(rank, listener, peers, &opts)?;
    let senders = endpoint.senders();
    let receiver = endpoint.take_receiver();
    let mut stats = JobStats::default();

    let mut o_panicked = false;
    let ingest = std::thread::scope(|scope| {
        let budget = config.memory_budget;
        let sorted = config.sorted_grouping;
        let kernel = config.sort_kernel;
        let ingest = scope.spawn(move || {
            ingest_partition(
                receiver,
                IngestConfig {
                    expected_eofs: ranks,
                    memory_budget: budget,
                    sorted,
                    kernel,
                    observer: None,
                    recv_start: None,
                    rank,
                    attempt: 0,
                },
            )
        });

        for task in (rank..inputs.len()).step_by(ranks.max(1)) {
            let mut buffer = KvBuffer::new(
                senders.clone(),
                rank,
                task,
                config.flush_threshold,
                config.pipelined,
            );
            if let Some(c) = &config.combiner {
                buffer.set_combiner(c.clone());
            }
            // Same intra-rank parallel O executor as the threaded
            // runtime: large line-decomposable splits fan out, with
            // chunk-order replay keeping frames byte-identical.
            let chunks = if config.o_parallelism > 1 {
                inputs[task].parallel_chunks(config.o_chunk_bytes)
            } else {
                None
            };
            let run_ok = match chunks {
                Some(chunks) => {
                    let shim = |task: usize, split: &Bytes, out: &mut dyn Collector| {
                        o_fn(task, split, out)
                    };
                    let (ok, _phase) = execute_chunks_parallel(
                        task,
                        chunks,
                        &shim,
                        &mut buffer,
                        config.o_parallelism,
                        None,
                        rank,
                        0,
                    );
                    ok
                }
                None => {
                    let mut adapter = EmitAdapter {
                        buffer: &mut buffer,
                    };
                    o_fn(task, &inputs[task], &mut adapter);
                    true
                }
            };
            if !run_ok {
                // A worker chunk panicked. Mirror what a panic on the
                // sequential path does to a worker process: stop running
                // O tasks, still send EOFs so peers tear down cleanly,
                // and report the failure after the ingest thread joins.
                o_panicked = true;
                break;
            }
            let b = buffer.finish();
            stats.o_tasks_run += 1;
            stats.records_emitted += b.records;
            stats.bytes_emitted += b.bytes;
            stats.frames += b.frames;
            stats.early_flushes += b.early_flushes;
            stats.combiner_records_in += b.combiner_records_in;
            stats.combiner_records_out += b.combiner_records_out;
        }
        for s in senders.iter() {
            s.send(Frame::Eof { from_rank: rank });
        }
        ingest.join().expect("ingest thread panicked")
    });

    stats.corrupt_frames += ingest.corrupt_frames;
    let store = ingest.store;
    let st = store.stats();
    stats.spills += st.spills;
    stats.spilled_bytes += st.spilled_bytes;
    stats.peak_resident_records = stats.peak_resident_records.max(st.peak_resident_records);

    // Teardown before any error propagates, so writer/reader threads
    // never outlive the report.
    let finish = |endpoint: crate::transport::Endpoint| {
        drop(senders);
        endpoint.close()
    };

    if o_panicked {
        finish(endpoint);
        return Err(Error::fault(
            FaultCause::new(FaultKind::TaskPanic, "O task user code panicked").rank(rank),
        ));
    }

    if let Some(e) = ingest.first_error {
        finish(endpoint);
        return Err(e);
    }

    // Same streaming A phase as the threaded runtime: pull key groups
    // one at a time off the store's k-way merge.
    let mut collector = BatchCollector::default();
    let streamed = store.into_group_stream().and_then(|mut stream| {
        while let Some(g) = stream.next_group()? {
            stats.groups += 1;
            a_fn(&g, &mut collector);
        }
        Ok(())
    });
    if let Err(e) = streamed {
        finish(endpoint);
        return Err(store_decode_fault(e, rank, 0));
    }
    let wire = finish(endpoint);
    stats.attempts = 1;
    Ok(WorkerReport {
        partition: collector.batch,
        stats,
        wire,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_job;
    use dmpi_common::ser::Writable;
    use std::thread;

    fn wc_o(_task: usize, split: &[u8], out: &mut dyn Collector) {
        for word in split.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
            out.collect(word, &1u64.to_bytes());
        }
    }

    fn wc_a(group: &GroupedValues, out: &mut dyn Collector) {
        let total: u64 = group
            .values
            .iter()
            .map(|v| u64::from_bytes(v).unwrap())
            .sum();
        out.collect(&group.key, &total.to_bytes());
    }

    /// The full launcher protocol, with worker *threads* standing in for
    /// worker processes: rendezvous, mesh establishment, static O
    /// scheduling, and result equality against the in-proc runtime.
    #[test]
    fn protocol_round_trip_matches_in_proc_output() {
        let ranks = 3;
        let inputs: Vec<Bytes> = (0..7)
            .map(|i| Bytes::from(format!("w{} w{} shared", i, (i * 3) % 5)))
            .collect();
        let config = JobConfig::new(ranks);

        let coord = TcpListener::bind("127.0.0.1:0").unwrap();
        let coord_addr = coord.local_addr().unwrap();

        let workers: Vec<_> = (0..ranks)
            .map(|rank| {
                let inputs = inputs.clone();
                let config = config.clone();
                thread::spawn(move || {
                    let data = TcpListener::bind("127.0.0.1:0").unwrap();
                    let port = data.local_addr().unwrap().port();
                    let (_stream, peers) =
                        register_with_coordinator(coord_addr, rank, port).unwrap();
                    run_worker(&config, rank, data, &peers, &inputs, wc_o, wc_a).unwrap()
                })
            })
            .collect();

        let streams = coordinate_rank_table(&coord, ranks).unwrap();
        assert_eq!(streams.len(), ranks);
        let mut reports: Vec<WorkerReport> =
            workers.into_iter().map(|w| w.join().unwrap()).collect();

        let baseline = run_job(&config, inputs, wc_o, wc_a, None).unwrap();
        let total_tasks: u64 = reports.iter().map(|r| r.stats.o_tasks_run).sum();
        assert_eq!(total_tasks, 7);
        for (rank, report) in reports.iter_mut().enumerate() {
            assert_eq!(
                report.partition.records(),
                baseline.partitions[rank].records(),
                "partition {rank} must match the in-proc runtime"
            );
            assert!(report.wire.bytes_sent > 0);
        }
        let records: u64 = reports.iter().map(|r| r.stats.records_emitted).sum();
        assert_eq!(records, baseline.stats.records_emitted);
    }

    /// Line-decomposable WordCount (required by the parallel O
    /// executor's chunking contract — words never span lines).
    fn lines_o(_task: usize, split: &[u8], out: &mut dyn Collector) {
        for line in split.split(|&b| b == b'\n') {
            for word in line.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                out.collect(word, &1u64.to_bytes());
            }
        }
    }

    #[test]
    fn parallel_workers_match_in_proc_sequential_output() {
        let ranks = 2;
        let inputs: Vec<Bytes> = (0..4)
            .map(|i| {
                let mut s = String::new();
                for j in 0..30 {
                    s.push_str(&format!("w{} shared\n", (i * 7 + j) % 9));
                }
                Bytes::from(s)
            })
            .collect();
        let config = JobConfig::new(ranks)
            .with_o_parallelism(4)
            .with_o_chunk_bytes(32);

        let coord = TcpListener::bind("127.0.0.1:0").unwrap();
        let coord_addr = coord.local_addr().unwrap();
        let workers: Vec<_> = (0..ranks)
            .map(|rank| {
                let inputs = inputs.clone();
                let config = config.clone();
                thread::spawn(move || {
                    let data = TcpListener::bind("127.0.0.1:0").unwrap();
                    let port = data.local_addr().unwrap().port();
                    let (_stream, peers) =
                        register_with_coordinator(coord_addr, rank, port).unwrap();
                    run_worker(&config, rank, data, &peers, &inputs, lines_o, wc_a).unwrap()
                })
            })
            .collect();
        coordinate_rank_table(&coord, ranks).unwrap();
        let reports: Vec<WorkerReport> = workers.into_iter().map(|w| w.join().unwrap()).collect();

        // Byte-identity bar: multi-process parallel workers equal the
        // in-proc sequential runtime partition for partition.
        let seq = JobConfig::new(ranks).with_o_parallelism(1);
        let baseline = run_job(&seq, inputs, lines_o, wc_a, None).unwrap();
        for (rank, report) in reports.iter().enumerate() {
            assert_eq!(
                report.partition.records(),
                baseline.partitions[rank].records(),
                "partition {rank} must match sequential in-proc output"
            );
        }
        let records: u64 = reports.iter().map(|r| r.stats.records_emitted).sum();
        assert_eq!(records, baseline.stats.records_emitted);
    }

    #[test]
    fn registration_lines_parse_and_reject_garbage() {
        assert_eq!(parse_registration("rank 2 9000\n"), Some((2, 9000)));
        assert!(parse_registration("rang 2 9000").is_none());
        assert!(parse_registration("rank x 9000").is_none());
        let peers = parse_peer_line("peers 127.0.0.1:1 127.0.0.1:2\n").unwrap();
        assert_eq!(peers.len(), 2);
        assert!(parse_peer_line("peers").is_none());
        assert!(parse_peer_line("ports 127.0.0.1:1").is_none());
    }
}
