//! Multi-process execution: the worker and coordinator halves of
//! `dmpirun`.
//!
//! The launcher model is deliberately minimal — `mpirun` on localhost:
//!
//! 1. the **coordinator** (the `dmpirun` parent process) binds a
//!    rendezvous listener and spawns one worker process per rank with
//!    `DMPI_RANK` / `DMPI_RANKS` / `DMPI_COORD` in the environment;
//! 2. each **worker** binds its own data listener on an ephemeral port,
//!    dials the coordinator (with seeded-jitter retry, so a herd of
//!    workers restarting together decorrelates), and registers
//!    `rank <r> <port>`;
//! 3. once every rank has registered, the coordinator broadcasts the
//!    complete **versioned** rank table (`peers v<version> <addr0>
//!    <addr1> …` — see [`RankTable`]; the bare `peers <addr0> …` form of
//!    older launchers still parses as version 0), and every worker
//!    builds the full TCP mesh with
//!    [`establish_endpoint`] —
//!    exactly the fabric the threaded runtime uses for
//!    [`Backend::Tcp`](crate::transport::Backend), so both surfaces run
//!    the same wire code;
//! 4. workers run the job ([`run_worker`]): O tasks are assigned
//!    statically (`task % ranks == rank` — every process derives the
//!    same schedule with no further coordination), pairs move over the
//!    mesh, and the rank's A partition is grouped and reduced;
//! 5. each worker reports a result line back over its rendezvous
//!    connection; the coordinator aggregates [`JobStats`] across ranks.
//!
//! A worker that dies mid-job closes its sockets before sending its
//! [`Frame::Eof`]; peers surface that as a structured
//! [`FaultKind::RankDeath`](dmpi_common::FaultKind) fault (see
//! `transport::tcp`), their jobs fail cleanly, and the coordinator sees
//! both the missing result line and the nonzero exit status. With
//! `dmpirun --elastic` the coordinator then re-runs the rendezvous one
//! rank narrower under a bumped table version — ranks leave (and
//! replacements join) a mesh by being included in, or dropped from, the
//! next version of the table rather than by any in-band repair.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use bytes::Bytes;

use dmpi_common::kv::RecordBatch;
use dmpi_common::{Error, FaultCause, FaultKind, Result};

use crate::buffer::KvBuffer;
use crate::comm::Frame;
use crate::config::JobConfig;
use crate::observe::{ClockSync, HistKind, SpanKind, Tracer};
use crate::runtime::{
    execute_chunks_parallel, ingest_partition, store_decode_fault, ChunkableSplit, IngestConfig,
    JobStats,
};
use crate::service::protocol::read_known_line;
use crate::service::JobMux;
use crate::task::{BatchCollector, Collector, GroupedValues};
use crate::transport::{
    establish_endpoint, jitter_state, retry_backoff, FrameReceiver, FrameSender, TcpOptions,
    WireStats,
};

/// Environment variable carrying a worker's rank.
pub const ENV_RANK: &str = "DMPI_RANK";
/// Environment variable carrying the total rank count.
pub const ENV_RANKS: &str = "DMPI_RANKS";
/// Environment variable carrying the coordinator's rendezvous address.
pub const ENV_COORD: &str = "DMPI_COORD";
/// Environment variable carrying the launch attempt (0 for a fresh job;
/// bumped by `dmpirun --elastic` relaunches so one-shot injections like
/// `--fail-rank` fire only once).
pub const ENV_ATTEMPT: &str = "DMPI_ATTEMPT";

/// How long rendezvous reads may block before the launcher gives up on a
/// worker (or a worker on the launcher).
pub const RENDEZVOUS_TIMEOUT: Duration = Duration::from_secs(60);

fn rendezvous_fault(detail: String) -> Error {
    Error::fault(FaultCause::new(FaultKind::Transport, detail))
}

/// One rank's result of a multi-process job.
#[derive(Debug)]
pub struct WorkerReport {
    /// The rank's A-partition output.
    pub partition: RecordBatch,
    /// The rank's share of the job counters.
    pub stats: JobStats,
    /// Encoded bytes this rank's sockets actually carried.
    pub wire: WireStats,
}

/// A versioned rank table: the mesh's peer data addresses (indexed by
/// rank) plus the membership **version** that produced them. Version 0
/// is a job's original table; the coordinator bumps the version every
/// time membership changes — a rank leaving (death absorbed by the
/// elastic supervisor) or a replacement joining. Ranks never patch a
/// mesh in place: they join or leave by appearing in, or vanishing
/// from, the *next* broadcast version, so every worker always holds a
/// consistent table and can tell a stale one from a current one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankTable {
    /// Membership version (0 = the original table).
    pub version: u64,
    /// Peer data addresses, indexed by rank.
    pub peers: Vec<SocketAddr>,
}

impl RankTable {
    /// Builds version `version` of a table over `peers`.
    pub fn new(version: u64, peers: Vec<SocketAddr>) -> Self {
        RankTable { version, peers }
    }

    /// Mesh width under this table.
    pub fn ranks(&self) -> usize {
        self.peers.len()
    }

    /// The broadcast wire form: `peers v<version> <addr0> <addr1> …`.
    pub fn wire_line(&self) -> String {
        let addrs = self
            .peers
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        format!("peers v{} {addrs}", self.version)
    }

    /// Parses a broadcast line. Accepts the versioned form and, for
    /// compatibility with pre-versioning launchers, the bare
    /// `peers <addr0> …` form (which parses as version 0).
    pub fn parse(line: &str) -> Option<RankTable> {
        let mut it = line.split_whitespace().peekable();
        if it.next()? != "peers" {
            return None;
        }
        let version = match it.peek() {
            Some(tok) if tok.starts_with('v') => {
                let v = tok[1..].parse().ok()?;
                it.next();
                v
            }
            _ => 0,
        };
        let peers: Option<Vec<SocketAddr>> = it.map(|a| a.parse().ok()).collect();
        let peers = peers?;
        if peers.is_empty() {
            return None;
        }
        Some(RankTable { version, peers })
    }
}

/// Worker side of the rendezvous: dials the coordinator, registers this
/// rank's data `port`, and blocks until the full rank table arrives.
/// Returns the (still-open) coordinator stream — the worker later writes
/// its result line on it — and the versioned [`RankTable`].
///
/// The dial retries with the transport's seeded-jitter exponential
/// backoff ([`retry_backoff`]): when a whole width of workers restarts
/// at once (elastic relaunch, supervisor retry), their redials spread
/// out instead of hammering the coordinator's accept queue in lockstep.
pub fn register_with_coordinator(
    coord: SocketAddr,
    rank: usize,
    port: u16,
) -> Result<(TcpStream, RankTable)> {
    let epoch = std::time::Instant::now();
    let (stream, table, _sync) = register_with_coordinator_synced(coord, rank, port, &|| {
        epoch.elapsed().as_micros() as u64
    })?;
    Ok((stream, table))
}

/// [`register_with_coordinator`] plus the clock handshake: the worker
/// stamps `t0 = now_us()` into its registration (`rank <r> <port> <t0>`),
/// the coordinator answers `clock <T>` with its own reading before the
/// table broadcast, and the worker derives its [`ClockSync`] from the
/// exchange. `now_us` is the worker's local µs clock (the same one its
/// observer stamps spans with, so the returned offset maps those spans
/// onto the coordinator's timeline). A coordinator that never sends a
/// `clock` line (pre-telemetry launcher) yields the identity sync.
pub fn register_with_coordinator_synced(
    coord: SocketAddr,
    rank: usize,
    port: u16,
    now_us: &dyn Fn() -> u64,
) -> Result<(TcpStream, RankTable, ClockSync)> {
    let opts = TcpOptions::default();
    // Peer index 0 = "the coordinator" in the jitter stream; data-mesh
    // dials use real peer ranks, but they also use a different seed mix
    // (rank vs rank<<32) so the streams never collide.
    let mut jitter = jitter_state(opts.jitter_seed, rank, 0);
    let mut stream = None;
    let mut last_err = String::new();
    for attempt in 0..opts.connect_attempts.max(1) {
        match TcpStream::connect(coord) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(e) => last_err = e.to_string(),
        }
        std::thread::sleep(retry_backoff(
            attempt,
            opts.connect_base_delay,
            opts.connect_max_delay,
            &mut jitter,
        ));
    }
    let stream = stream.ok_or_else(|| {
        rendezvous_fault(format!(
            "rank {rank}: dial coordinator {coord} failed after {} attempts: {last_err}",
            opts.connect_attempts.max(1)
        ))
    })?;
    stream
        .set_read_timeout(Some(RENDEZVOUS_TIMEOUT))
        .map_err(|e| rendezvous_fault(format!("rank {rank}: set rendezvous timeout: {e}")))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| rendezvous_fault(format!("rank {rank}: clone rendezvous stream: {e}")))?;
    let t0 = now_us();
    writeln!(writer, "rank {rank} {port} {t0}")
        .map_err(|e| rendezvous_fault(format!("rank {rank}: register with coordinator: {e}")))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    // Forward compatibility: a newer coordinator may interleave verbs
    // this build does not know (the service protocol adds `job`,
    // `jobdone`, …); the reader skips them instead of erroring, exactly
    // as newer workers tolerate older coordinators' missing `clock`.
    let known = |verb: &str| verb == "clock" || verb == "peers";
    read_known_line(&mut reader, &mut line, known)
        .map_err(|e| rendezvous_fault(format!("rank {rank}: read clock reply: {e}")))?;
    // The coordinator answers the registration with `clock <T>` before
    // the table broadcast; a pre-telemetry coordinator goes straight to
    // the `peers …` line, which leaves the sync at identity.
    let mut sync = ClockSync::default();
    if let Some(coord_now) = line
        .strip_prefix("clock ")
        .and_then(|t| t.trim().parse::<u64>().ok())
    {
        sync = ClockSync::from_exchange(t0, coord_now, now_us());
        line.clear();
        read_known_line(&mut reader, &mut line, known)
            .map_err(|e| rendezvous_fault(format!("rank {rank}: read rank table: {e}")))?;
    }
    let table = RankTable::parse(&line)
        .ok_or_else(|| rendezvous_fault(format!("rank {rank}: bad rank table line {line:?}")))?;
    Ok((reader.into_inner(), table, sync))
}

/// Coordinator side of the rendezvous at table version 0 (a fresh job).
/// See [`coordinate_rank_table_versioned`].
pub fn coordinate_rank_table(listener: &TcpListener, ranks: usize) -> Result<Vec<TcpStream>> {
    coordinate_rank_table_versioned(listener, ranks, 0)
}

/// Coordinator side of the rendezvous: accepts one connection per rank,
/// reads each worker's `rank <r> <port>` registration, then broadcasts
/// the complete rank table — stamped with `version` — to all of them.
/// Returns the still-open worker streams indexed by rank (the workers'
/// result lines arrive on these). Elastic relaunches call this again
/// with the surviving width and a bumped version.
pub fn coordinate_rank_table_versioned(
    listener: &TcpListener,
    ranks: usize,
    version: u64,
) -> Result<Vec<TcpStream>> {
    let epoch = std::time::Instant::now();
    coordinate_rank_table_synced(listener, ranks, version, &|| {
        epoch.elapsed().as_micros() as u64
    })
}

/// [`coordinate_rank_table_versioned`] with an explicit coordinator
/// clock: each worker whose registration carries a `t0` timestamp gets
/// an immediate `clock <now_us()>` reply (the clock handshake's second
/// leg) before the table broadcast. `dmpirun` passes its observer's
/// clock here so worker spans land on the same timeline its own events
/// use.
pub fn coordinate_rank_table_synced(
    listener: &TcpListener,
    ranks: usize,
    version: u64,
    now_us: &dyn Fn() -> u64,
) -> Result<Vec<TcpStream>> {
    let mut streams: Vec<Option<TcpStream>> = (0..ranks).map(|_| None).collect();
    let mut ports = vec![0u16; ranks];
    for _ in 0..ranks {
        let (stream, _) = listener
            .accept()
            .map_err(|e| rendezvous_fault(format!("coordinator accept failed: {e}")))?;
        stream
            .set_read_timeout(Some(RENDEZVOUS_TIMEOUT))
            .map_err(|e| rendezvous_fault(format!("coordinator set timeout: {e}")))?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        // Skip unknown leading verbs: a newer worker may preface its
        // registration with verbs from a future protocol revision.
        read_known_line(&mut reader, &mut line, |verb| verb == "rank")
            .map_err(|e| rendezvous_fault(format!("coordinator read registration: {e}")))?;
        let (rank, port, t0) = parse_registration(&line)
            .ok_or_else(|| rendezvous_fault(format!("bad registration line {line:?}")))?;
        if rank >= ranks || streams[rank].is_some() {
            return Err(rendezvous_fault(format!(
                "registration for unexpected rank {rank} (of {ranks})"
            )));
        }
        if t0.is_some() {
            // Reply per-connection, before waiting on other ranks, so
            // the worker's measured RTT stays as tight as possible.
            writeln!(reader.get_mut(), "clock {}", now_us())
                .map_err(|e| rendezvous_fault(format!("clock reply to rank {rank}: {e}")))?;
        }
        ports[rank] = port;
        streams[rank] = Some(reader.into_inner());
    }
    let table = RankTable::new(
        version,
        ports
            .iter()
            .map(|p| format!("127.0.0.1:{p}").parse().expect("loopback addr"))
            .collect(),
    );
    let line = table.wire_line();
    let mut out = Vec::with_capacity(ranks);
    for (rank, stream) in streams.into_iter().enumerate() {
        let mut stream = stream.expect("every slot filled above");
        writeln!(stream, "{line}")
            .map_err(|e| rendezvous_fault(format!("broadcast table to rank {rank}: {e}")))?;
        out.push(stream);
    }
    Ok(out)
}

fn parse_registration(line: &str) -> Option<(usize, u16, Option<u64>)> {
    let mut it = line.split_whitespace();
    if it.next()? != "rank" {
        return None;
    }
    let rank = it.next()?.parse().ok()?;
    let port = it.next()?.parse().ok()?;
    // Pre-telemetry workers register without the clock timestamp; they
    // get no `clock` reply.
    let t0 = match it.next() {
        Some(tok) => Some(tok.parse().ok()?),
        None => None,
    };
    Some((rank, port, t0))
}

struct EmitAdapter<'a> {
    buffer: &'a mut KvBuffer,
}

impl Collector for EmitAdapter<'_> {
    fn collect(&mut self, key: &[u8], value: &[u8]) {
        self.buffer.emit_kv(key, value);
    }
}

/// Runs one rank of a multi-process job over an already-distributed rank
/// table: builds this rank's mesh endpoint, executes its statically
/// assigned O tasks (`task % ranks == rank`) while a dedicated ingest
/// thread drains the A partition concurrently, then groups and reduces.
///
/// `inputs` is the *full* task table — every worker derives it
/// deterministically (same seed), so no split data crosses the
/// rendezvous. Fault injection plans in `config` are ignored here — a
/// worker process *is* the fault domain, and `dmpirun` kills whole
/// processes instead — with one narrow exception:
/// [`SlowRank`](crate::fault::FaultEvent::SlowRank) pacing is honoured
/// (a pause before each of this rank's O tasks), because slowness is
/// not death and `dmpirun --slow-rank` needs a real straggler process
/// for launcher-level experiments.
pub fn run_worker<O, A>(
    config: &JobConfig,
    rank: usize,
    listener: TcpListener,
    peers: &[SocketAddr],
    inputs: &[Bytes],
    o_fn: O,
    a_fn: A,
) -> Result<WorkerReport>
where
    O: Fn(usize, &[u8], &mut dyn Collector) + Send + Sync,
    A: Fn(&GroupedValues, &mut dyn Collector) + Send + Sync,
{
    config.validate()?;
    let ranks = peers.len();
    if rank >= ranks {
        return Err(Error::Config(format!("rank {rank} out of 0..{ranks}")));
    }
    let observer = config.observer.as_ref();
    if let Some(obs) = observer {
        obs.begin_job(ranks);
    }
    let mut opts = TcpOptions::from_config(config);
    opts.send_hist = observer.map(|o| o.registry().histograms().handle(HistKind::SendLatency));
    let mut endpoint = establish_endpoint(rank, listener, peers, &opts)?;
    if let Some(obs) = observer {
        endpoint.attach_window_wait(obs.registry().histograms().handle(HistKind::WindowWait));
    }
    // One-shot execution is the degenerate resident-service session:
    // the mesh is wrapped in a [`JobMux`] and the whole job runs as job
    // 0 of that mesh, so `dmpirun` and `dmpid` exercise the same frame
    // path (tag on send, route + strip on receive) and the service
    // inherits the one-shot byte-identity guarantees for free.
    let mux = JobMux::new(endpoint);
    let result = mux.open_job(0).and_then(|channels| {
        run_job_on_mesh(
            config,
            rank,
            ranks,
            channels.senders,
            channels.receiver,
            inputs,
            o_fn,
            a_fn,
        )
    });
    mux.finish_job(0);
    // Teardown before any error propagates, so writer/reader threads
    // never outlive the report.
    let wire = mux.close();
    let (partition, stats) = result?;
    if let Some(obs) = observer {
        obs.registry().add_wire_stats(&wire);
    }
    Ok(WorkerReport {
        partition,
        stats,
        wire,
    })
}

/// Runs one job over an already-established mesh attachment: executes
/// this rank's statically assigned O tasks (`task % ranks == rank`)
/// while a dedicated ingest thread drains the A partition concurrently,
/// then groups and reduces. This is the job core shared by one-shot
/// [`run_worker`] (which runs it as job 0 of a fresh mesh) and the
/// resident service worker (which runs many of them, concurrently, over
/// one [`JobMux`]). The caller owns mesh teardown; on error this
/// function simply drops its channels and returns.
#[allow(clippy::too_many_arguments)]
pub fn run_job_on_mesh<O, A>(
    config: &JobConfig,
    rank: usize,
    ranks: usize,
    senders: Vec<FrameSender>,
    receiver: FrameReceiver,
    inputs: &[Bytes],
    o_fn: O,
    a_fn: A,
) -> Result<(RecordBatch, JobStats)>
where
    O: Fn(usize, &[u8], &mut dyn Collector) + Send + Sync,
    A: Fn(&GroupedValues, &mut dyn Collector) + Send + Sync,
{
    config.validate()?;
    let observer = config.observer.as_ref();
    if let Some(obs) = observer {
        obs.begin_job(ranks);
    }
    let mut stats = JobStats::default();

    // This worker's tracer: O-task spans record here; the ingest thread
    // builds its own from the shared observer.
    let tracer = observer.map(|o| o.rank_tracer(rank as u32, 0));
    let recv_start = tracer.as_ref().map(Tracer::start);

    let mut o_panicked = false;
    let ingest = std::thread::scope(|scope| {
        let budget = config.memory_budget;
        let sorted = config.sorted_grouping;
        let kernel = config.sort_kernel;
        let spill = config.spill_config().with_tag(format!("r{rank}"));
        let ingest = scope.spawn(move || {
            ingest_partition(
                receiver,
                IngestConfig {
                    expected_eofs: ranks,
                    memory_budget: budget,
                    sorted,
                    kernel,
                    observer,
                    recv_start,
                    rank,
                    attempt: 0,
                    spill,
                    discard: false,
                },
            )
        });

        let pace = config
            .faults
            .as_ref()
            .and_then(|p| p.slow_rank_delay(rank, 0));
        for task in (rank..inputs.len()).step_by(ranks.max(1)) {
            if let Some(d) = pace {
                std::thread::sleep(d);
                stats.straggler_delays += 1;
            }
            let task_start = tracer.as_ref().map(Tracer::start);
            let mut buffer = KvBuffer::new(
                senders.clone(),
                rank,
                task,
                config.flush_threshold,
                config.pipelined,
            );
            if let Some(t) = &tracer {
                buffer.set_tracer(t.for_task(task as u64));
            }
            if let Some(c) = &config.combiner {
                buffer.set_combiner(c.clone());
            }
            // Same intra-rank parallel O executor as the threaded
            // runtime: large line-decomposable splits fan out, with
            // chunk-order replay keeping frames byte-identical.
            let chunks = if config.o_parallelism > 1 {
                inputs[task].parallel_chunks(config.o_chunk_bytes)
            } else {
                None
            };
            let run_ok = match chunks {
                Some(chunks) => {
                    let shim = |task: usize, split: &Bytes, out: &mut dyn Collector| {
                        o_fn(task, split, out)
                    };
                    let (ok, phase) = execute_chunks_parallel(
                        task,
                        chunks,
                        &shim,
                        &mut buffer,
                        config.o_parallelism,
                        observer,
                        rank,
                        0,
                    );
                    stats.phase_us.merge(&phase);
                    ok
                }
                None => {
                    let mut adapter = EmitAdapter {
                        buffer: &mut buffer,
                    };
                    o_fn(task, &inputs[task], &mut adapter);
                    true
                }
            };
            if !run_ok {
                // A worker chunk panicked. Mirror what a panic on the
                // sequential path does to a worker process: stop running
                // O tasks, still send EOFs so peers tear down cleanly,
                // and report the failure after the ingest thread joins.
                o_panicked = true;
                break;
            }
            let b = buffer.finish();
            if let Some(t) = &tracer {
                t.for_task(task as u64).span(
                    SpanKind::OTask,
                    task_start.unwrap_or(0),
                    vec![("records", b.records.to_string())],
                );
            }
            stats.o_tasks_run += 1;
            stats.records_emitted += b.records;
            stats.bytes_emitted += b.bytes;
            stats.frames += b.frames;
            stats.early_flushes += b.early_flushes;
            stats.combiner_records_in += b.combiner_records_in;
            stats.combiner_records_out += b.combiner_records_out;
        }
        for s in senders.iter() {
            s.send(Frame::Eof { from_rank: rank });
        }
        ingest.join().expect("ingest thread panicked")
    });

    stats.corrupt_frames += ingest.corrupt_frames;
    let store = ingest.store;
    let st = store.stats();
    stats.spills += st.spills;
    stats.spilled_bytes += st.spilled_bytes;
    stats.spilled_wire_bytes += st.spilled_wire_bytes;
    stats.peak_resident_records = stats.peak_resident_records.max(st.peak_resident_records);

    // The senders die with this function; mesh teardown (real EOFs,
    // socket close) belongs to the mux owner.
    drop(senders);

    if o_panicked {
        return Err(Error::fault(
            FaultCause::new(FaultKind::TaskPanic, "O task user code panicked").rank(rank),
        ));
    }

    if let Some(e) = ingest.first_error {
        return Err(e);
    }

    // Same streaming A phase as the threaded runtime: pull key groups
    // one at a time off the store's k-way merge.
    let mut collector = BatchCollector::default();
    let read_counters = store.read_counters();
    let streamed = store.into_group_stream().and_then(|mut stream| {
        while let Some(g) = stream.next_group()? {
            stats.groups += 1;
            a_fn(&g, &mut collector);
        }
        Ok(())
    });
    if let Err(e) = streamed {
        return Err(store_decode_fault(e, rank, 0));
    }
    let reads = read_counters.snapshot();
    stats.spill_blocks_read += reads.blocks_read;
    stats.spill_blocks_skipped += reads.blocks_skipped;
    stats.spill_seeks += reads.seeks;
    if let Some(t) = &tracer {
        t.registry().add_spill_reads(&reads);
    }
    if let (Some(obs), Some(t)) = (observer, &tracer) {
        stats.phase_us.merge(&obs.absorb(t));
    }
    stats.phase_us.merge(&ingest.phase);
    stats.attempts = 1;
    Ok((collector.batch, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_job;
    use dmpi_common::ser::Writable;
    use std::thread;

    fn wc_o(_task: usize, split: &[u8], out: &mut dyn Collector) {
        for word in split.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
            out.collect(word, &1u64.to_bytes());
        }
    }

    fn wc_a(group: &GroupedValues, out: &mut dyn Collector) {
        let total: u64 = group
            .values
            .iter()
            .map(|v| u64::from_bytes(v).unwrap())
            .sum();
        out.collect(&group.key, &total.to_bytes());
    }

    /// The full launcher protocol, with worker *threads* standing in for
    /// worker processes: rendezvous, mesh establishment, static O
    /// scheduling, and result equality against the in-proc runtime.
    #[test]
    fn protocol_round_trip_matches_in_proc_output() {
        let ranks = 3;
        let inputs: Vec<Bytes> = (0..7)
            .map(|i| Bytes::from(format!("w{} w{} shared", i, (i * 3) % 5)))
            .collect();
        let config = JobConfig::new(ranks);

        let coord = TcpListener::bind("127.0.0.1:0").unwrap();
        let coord_addr = coord.local_addr().unwrap();

        let workers: Vec<_> = (0..ranks)
            .map(|rank| {
                let inputs = inputs.clone();
                let config = config.clone();
                thread::spawn(move || {
                    let data = TcpListener::bind("127.0.0.1:0").unwrap();
                    let port = data.local_addr().unwrap().port();
                    let (_stream, table) =
                        register_with_coordinator(coord_addr, rank, port).unwrap();
                    assert_eq!(table.version, 0, "fresh job broadcasts version 0");
                    run_worker(&config, rank, data, &table.peers, &inputs, wc_o, wc_a).unwrap()
                })
            })
            .collect();

        let streams = coordinate_rank_table(&coord, ranks).unwrap();
        assert_eq!(streams.len(), ranks);
        let mut reports: Vec<WorkerReport> =
            workers.into_iter().map(|w| w.join().unwrap()).collect();

        let baseline = run_job(&config, inputs, wc_o, wc_a, None).unwrap();
        let total_tasks: u64 = reports.iter().map(|r| r.stats.o_tasks_run).sum();
        assert_eq!(total_tasks, 7);
        for (rank, report) in reports.iter_mut().enumerate() {
            assert_eq!(
                report.partition.records(),
                baseline.partitions[rank].records(),
                "partition {rank} must match the in-proc runtime"
            );
            assert!(report.wire.bytes_sent > 0);
        }
        let records: u64 = reports.iter().map(|r| r.stats.records_emitted).sum();
        assert_eq!(records, baseline.stats.records_emitted);
    }

    /// Line-decomposable WordCount (required by the parallel O
    /// executor's chunking contract — words never span lines).
    fn lines_o(_task: usize, split: &[u8], out: &mut dyn Collector) {
        for line in split.split(|&b| b == b'\n') {
            for word in line.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                out.collect(word, &1u64.to_bytes());
            }
        }
    }

    #[test]
    fn parallel_workers_match_in_proc_sequential_output() {
        let ranks = 2;
        let inputs: Vec<Bytes> = (0..4)
            .map(|i| {
                let mut s = String::new();
                for j in 0..30 {
                    s.push_str(&format!("w{} shared\n", (i * 7 + j) % 9));
                }
                Bytes::from(s)
            })
            .collect();
        let config = JobConfig::new(ranks)
            .with_o_parallelism(4)
            .with_o_chunk_bytes(32);

        let coord = TcpListener::bind("127.0.0.1:0").unwrap();
        let coord_addr = coord.local_addr().unwrap();
        let workers: Vec<_> = (0..ranks)
            .map(|rank| {
                let inputs = inputs.clone();
                let config = config.clone();
                thread::spawn(move || {
                    let data = TcpListener::bind("127.0.0.1:0").unwrap();
                    let port = data.local_addr().unwrap().port();
                    let (_stream, table) =
                        register_with_coordinator(coord_addr, rank, port).unwrap();
                    run_worker(&config, rank, data, &table.peers, &inputs, lines_o, wc_a).unwrap()
                })
            })
            .collect();
        coordinate_rank_table(&coord, ranks).unwrap();
        let reports: Vec<WorkerReport> = workers.into_iter().map(|w| w.join().unwrap()).collect();

        // Byte-identity bar: multi-process parallel workers equal the
        // in-proc sequential runtime partition for partition.
        let seq = JobConfig::new(ranks).with_o_parallelism(1);
        let baseline = run_job(&seq, inputs, lines_o, wc_a, None).unwrap();
        for (rank, report) in reports.iter().enumerate() {
            assert_eq!(
                report.partition.records(),
                baseline.partitions[rank].records(),
                "partition {rank} must match sequential in-proc output"
            );
        }
        let records: u64 = reports.iter().map(|r| r.stats.records_emitted).sum();
        assert_eq!(records, baseline.stats.records_emitted);
    }

    #[test]
    fn registration_lines_parse_and_reject_garbage() {
        assert_eq!(parse_registration("rank 2 9000\n"), Some((2, 9000, None)));
        assert_eq!(
            parse_registration("rank 2 9000 12345\n"),
            Some((2, 9000, Some(12345))),
            "clock-handshake registrations carry t0"
        );
        assert!(parse_registration("rang 2 9000").is_none());
        assert!(parse_registration("rank x 9000").is_none());
        assert!(parse_registration("rank 2 9000 notatime").is_none());
        let t = RankTable::parse("peers v3 127.0.0.1:1 127.0.0.1:2\n").unwrap();
        assert_eq!((t.version, t.ranks()), (3, 2));
        // Pre-versioning launchers broadcast the bare form: version 0.
        let legacy = RankTable::parse("peers 127.0.0.1:1 127.0.0.1:2\n").unwrap();
        assert_eq!((legacy.version, legacy.ranks()), (0, 2));
        assert!(RankTable::parse("peers").is_none());
        assert!(RankTable::parse("peers v2").is_none());
        assert!(RankTable::parse("peers vx 127.0.0.1:1").is_none());
        assert!(RankTable::parse("ports 127.0.0.1:1").is_none());
    }

    #[test]
    fn rank_table_wire_line_round_trips() {
        let table = RankTable::new(
            7,
            vec![
                "127.0.0.1:9000".parse().unwrap(),
                "127.0.0.1:9001".parse().unwrap(),
            ],
        );
        assert_eq!(table.wire_line(), "peers v7 127.0.0.1:9000 127.0.0.1:9001");
        assert_eq!(RankTable::parse(&table.wire_line()).unwrap(), table);
    }

    #[test]
    fn versioned_broadcast_reaches_every_worker() {
        // A relaunch-style rendezvous at version 2: workers must see the
        // bumped version in their parsed table.
        let ranks = 2;
        let coord = TcpListener::bind("127.0.0.1:0").unwrap();
        let coord_addr = coord.local_addr().unwrap();
        let workers: Vec<_> = (0..ranks)
            .map(|rank| {
                thread::spawn(move || {
                    let (_s, table) = register_with_coordinator(coord_addr, rank, 1234).unwrap();
                    table
                })
            })
            .collect();
        coordinate_rank_table_versioned(&coord, ranks, 2).unwrap();
        for w in workers {
            let table = w.join().unwrap();
            assert_eq!(table.version, 2);
            assert_eq!(table.ranks(), ranks);
        }
    }

    #[test]
    fn clock_handshake_yields_the_coordinator_offset() {
        let ranks = 2;
        let coord = TcpListener::bind("127.0.0.1:0").unwrap();
        let coord_addr = coord.local_addr().unwrap();
        let workers: Vec<_> = (0..ranks)
            .map(|rank| {
                thread::spawn(move || {
                    // A frozen worker clock: t0 == t1 == 1000, so the
                    // exchange is exact (rtt 0) and deterministic.
                    let (_s, table, sync) =
                        register_with_coordinator_synced(coord_addr, rank, 4321, &|| 1000).unwrap();
                    (table, sync)
                })
            })
            .collect();
        // The coordinator's clock reads 51_000 at every reply.
        coordinate_rank_table_synced(&coord, ranks, 0, &|| 51_000).unwrap();
        for w in workers {
            let (table, sync) = w.join().unwrap();
            assert_eq!(table.version, 0);
            assert_eq!(sync.offset_us, 50_000);
            assert_eq!(sync.rtt_us, 0);
            assert_eq!(sync.apply(1000), 51_000);
        }
    }

    #[test]
    fn worker_with_observer_records_spans_and_wire_bytes() {
        use crate::observe::Observer;
        let ranks = 2;
        let inputs: Vec<Bytes> = (0..4)
            .map(|i| Bytes::from(format!("w{i} shared")))
            .collect();
        let coord = TcpListener::bind("127.0.0.1:0").unwrap();
        let coord_addr = coord.local_addr().unwrap();
        let workers: Vec<_> = (0..ranks)
            .map(|rank| {
                let inputs = inputs.clone();
                thread::spawn(move || {
                    let obs = Observer::new();
                    let config = JobConfig::new(ranks).with_observer(obs.clone());
                    let data = TcpListener::bind("127.0.0.1:0").unwrap();
                    let port = data.local_addr().unwrap().port();
                    let (_stream, table) =
                        register_with_coordinator(coord_addr, rank, port).unwrap();
                    let report =
                        run_worker(&config, rank, data, &table.peers, &inputs, wc_o, wc_a).unwrap();
                    (obs, report)
                })
            })
            .collect();
        coordinate_rank_table(&coord, ranks).unwrap();
        for (rank, w) in workers.into_iter().enumerate() {
            let (obs, report) = w.join().unwrap();
            let trace = obs.trace();
            assert_eq!(
                trace.of_kind(SpanKind::OTask).count() as u64,
                report.stats.o_tasks_run,
                "rank {rank}: one OTask span per task"
            );
            assert_eq!(trace.of_kind(SpanKind::Recv).count(), 1);
            let snap = obs.registry().snapshot();
            assert_eq!(snap.wire_bytes_sent, report.wire.bytes_sent);
            assert_eq!(snap.records_out, report.stats.records_emitted);
            assert!(
                obs.registry()
                    .histograms()
                    .handle(crate::observe::HistKind::RecvLatency)
                    .count()
                    > 0,
                "rank {rank}: ingest waits must land in the RecvLatency channel"
            );
        }
    }

    #[test]
    fn slow_rank_pacing_delays_only_the_planned_rank() {
        use crate::fault::FaultPlan;
        let ranks = 2;
        let inputs: Vec<Bytes> = (0..6)
            .map(|i| Bytes::from(format!("w{i} shared")))
            .collect();
        // Rank 1 is paced 30ms per task (3 tasks → ≥90ms); rank 0 is not.
        let config = JobConfig::new(ranks).with_faults(FaultPlan::new(1).slow_rank(1, 0, 30));
        let coord = TcpListener::bind("127.0.0.1:0").unwrap();
        let coord_addr = coord.local_addr().unwrap();
        let workers: Vec<_> = (0..ranks)
            .map(|rank| {
                let inputs = inputs.clone();
                let config = config.clone();
                thread::spawn(move || {
                    let data = TcpListener::bind("127.0.0.1:0").unwrap();
                    let port = data.local_addr().unwrap().port();
                    let (_stream, table) =
                        register_with_coordinator(coord_addr, rank, port).unwrap();
                    run_worker(&config, rank, data, &table.peers, &inputs, wc_o, wc_a).unwrap()
                })
            })
            .collect();
        coordinate_rank_table(&coord, ranks).unwrap();
        let reports: Vec<WorkerReport> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        assert_eq!(reports[0].stats.straggler_delays, 0, "rank 0 unpaced");
        assert_eq!(reports[1].stats.straggler_delays, 3, "one pause per task");
        // Pacing slows a rank; it never changes what the job computes.
        let baseline = run_job(&JobConfig::new(ranks), inputs, wc_o, wc_a, None).unwrap();
        for (rank, report) in reports.iter().enumerate() {
            assert_eq!(
                report.partition.records(),
                baseline.partitions[rank].records()
            );
        }
    }
}
