//! Deterministic fault injection for the executing runtime.
//!
//! A [`FaultPlan`] is a *seeded schedule* of faults for one job: every
//! event names its target (an O task or a rank) and the job attempt on
//! which it fires, so a plan replays identically run after run — the
//! property the self-healing supervisor tests and the byte-identical
//! output property test depend on. Four fault kinds are supported:
//!
//! * **O-task errors** — the task returns an injected [`Error::Fault`]
//!   before running user code (the original `FaultSpec` behaviour);
//! * **rank panics** — a whole worker rank dies at the start of its O
//!   phase (it still tears its streams down cleanly so peers do not
//!   deadlock, exactly like a real process whose connections are closed
//!   by the OS);
//! * **straggler delays** — an O task is artificially slowed, modelling
//!   the slow-node scenario Hadoop answers with speculative execution;
//! * **frame corruption** — one wire frame of the task gets a byte
//!   flipped *after* its CRC32 is computed, so the receiving A partition
//!   detects the mismatch and fails the attempt rather than silently
//!   producing wrong output.
//!
//! The seed drives the *details* the events leave open (which byte of
//! which frame gets flipped, and with what XOR mask) through a splitmix64
//! hash, so two plans with the same seed and events are byte-for-byte
//! identical in effect.

use std::time::Duration;

use dmpi_common::{Error, Result};

/// One scheduled fault in a [`FaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// O task `task` fails with an injected error on attempt `on_attempt`.
    OTaskError {
        /// Target O task (split index).
        task: usize,
        /// 0-based job attempt on which the error fires.
        on_attempt: u32,
    },
    /// Rank `rank` dies at the start of its O phase on attempt
    /// `on_attempt`.
    RankPanic {
        /// Target worker rank.
        rank: usize,
        /// 0-based job attempt on which the rank dies.
        on_attempt: u32,
    },
    /// O task `task` is delayed by `delay_ms` before running user code on
    /// attempt `on_attempt`.
    Straggler {
        /// Target O task (split index).
        task: usize,
        /// 0-based job attempt on which the delay applies.
        on_attempt: u32,
        /// Injected delay in milliseconds (bounded by
        /// [`FaultPlan::MAX_STRAGGLER_MS`]).
        delay_ms: u64,
    },
    /// The first wire frame flushed by O task `task` has one byte flipped
    /// on attempt `on_attempt` (checkpointed copies stay clean — the
    /// corruption models the network, not the stable store).
    CorruptFrame {
        /// Target O task (split index).
        task: usize,
        /// 0-based job attempt on which the corruption applies.
        on_attempt: u32,
    },
    /// Rank `rank` dies during its A-phase merge on attempt `on_attempt`,
    /// after emitting `after_groups` groups — the mid-merge crash the
    /// block-boundary merge checkpoint recovers from without re-reading
    /// already-consumed spill blocks.
    MergePanic {
        /// Target worker rank.
        rank: usize,
        /// 0-based job attempt on which the rank dies mid-merge.
        on_attempt: u32,
        /// Number of groups the rank emits before dying.
        after_groups: u64,
    },
    /// Every O task run by rank `rank` on attempt `on_attempt` is delayed
    /// by `delay_ms` before user code — the whole-node straggler the
    /// speculation layer defends against, as opposed to
    /// [`FaultEvent::Straggler`]'s single-task delay.
    SlowRank {
        /// Target worker rank.
        rank: usize,
        /// 0-based job attempt on which the pacing applies.
        on_attempt: u32,
        /// Per-task injected delay in milliseconds (bounded by
        /// [`FaultPlan::MAX_STRAGGLER_MS`]).
        delay_ms: u64,
    },
}

impl FaultEvent {
    /// The attempt on which this event fires.
    pub fn on_attempt(&self) -> u32 {
        match *self {
            FaultEvent::OTaskError { on_attempt, .. }
            | FaultEvent::RankPanic { on_attempt, .. }
            | FaultEvent::Straggler { on_attempt, .. }
            | FaultEvent::CorruptFrame { on_attempt, .. }
            | FaultEvent::MergePanic { on_attempt, .. }
            | FaultEvent::SlowRank { on_attempt, .. } => on_attempt,
        }
    }
}

/// A deterministic byte flip derived from a plan's seed: XOR `mask` into
/// the byte at `offset_seed % payload_len`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Corruption {
    /// Reduced modulo the payload length to pick the victim byte.
    pub offset_seed: u64,
    /// Non-zero XOR mask, so the flip always changes the byte.
    pub mask: u8,
}

impl Corruption {
    /// Flips the chosen byte in `payload`; returns the flipped index, or
    /// `None` for an empty payload.
    pub fn apply(&self, payload: &mut [u8]) -> Option<usize> {
        if payload.is_empty() {
            return None;
        }
        let idx = (self.offset_seed % payload.len() as u64) as usize;
        payload[idx] ^= self.mask;
        Some(idx)
    }
}

/// A seeded, deterministic schedule of faults for one job.
///
/// # Examples
/// ```
/// use datampi::fault::FaultPlan;
///
/// // Task 2 fails on attempts 0 and 1, and one of task 0's frames is
/// // corrupted on attempt 0 — a supervisor with 3+ attempts survives.
/// let plan = FaultPlan::new(42)
///     .fail_o_task(2, 0)
///     .fail_o_task(2, 1)
///     .corrupt_frame(0, 0);
/// assert!(plan.o_task_error(2, 1));
/// assert!(!plan.o_task_error(2, 2));
/// assert_eq!(plan.last_faulty_attempt(), Some(1));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Upper bound on an injected straggler delay; keeps plans from
    /// turning a test run into a hang.
    pub const MAX_STRAGGLER_MS: u64 = 5_000;

    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Builder: schedule an O-task error.
    pub fn fail_o_task(mut self, task: usize, on_attempt: u32) -> Self {
        self.events
            .push(FaultEvent::OTaskError { task, on_attempt });
        self
    }

    /// Builder: schedule a rank death.
    pub fn rank_panic(mut self, rank: usize, on_attempt: u32) -> Self {
        self.events.push(FaultEvent::RankPanic { rank, on_attempt });
        self
    }

    /// Builder: schedule a straggler delay.
    pub fn straggler(mut self, task: usize, on_attempt: u32, delay_ms: u64) -> Self {
        self.events.push(FaultEvent::Straggler {
            task,
            on_attempt,
            delay_ms,
        });
        self
    }

    /// Builder: schedule a frame corruption.
    pub fn corrupt_frame(mut self, task: usize, on_attempt: u32) -> Self {
        self.events
            .push(FaultEvent::CorruptFrame { task, on_attempt });
        self
    }

    /// Builder: schedule a mid-merge rank death after `after_groups`
    /// emitted groups.
    pub fn merge_panic(mut self, rank: usize, on_attempt: u32, after_groups: u64) -> Self {
        self.events.push(FaultEvent::MergePanic {
            rank,
            on_attempt,
            after_groups,
        });
        self
    }

    /// Builder: schedule a whole-rank slowdown (every task the rank runs
    /// on that attempt is paced by `delay_ms`).
    pub fn slow_rank(mut self, rank: usize, on_attempt: u32, delay_ms: u64) -> Self {
        self.events.push(FaultEvent::SlowRank {
            rank,
            on_attempt,
            delay_ms,
        });
        self
    }

    /// Builder: append an already-constructed event.
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The highest attempt any event fires on: a supervisor allowed to
    /// retry past it is guaranteed a fault-free attempt. `None` for an
    /// empty plan.
    pub fn last_faulty_attempt(&self) -> Option<u32> {
        self.events.iter().map(FaultEvent::on_attempt).max()
    }

    /// Validates the plan (delay bounds).
    pub fn validate(&self) -> Result<()> {
        for e in &self.events {
            if let FaultEvent::Straggler { delay_ms, .. } | FaultEvent::SlowRank { delay_ms, .. } =
                e
            {
                if *delay_ms > Self::MAX_STRAGGLER_MS {
                    return Err(Error::Config(format!(
                        "straggler delay {delay_ms} ms exceeds cap {} ms",
                        Self::MAX_STRAGGLER_MS
                    )));
                }
            }
        }
        Ok(())
    }

    /// Should O task `task` fail with an injected error on `attempt`?
    pub fn o_task_error(&self, task: usize, attempt: u32) -> bool {
        self.events.iter().any(|e| {
            matches!(e, FaultEvent::OTaskError { task: t, on_attempt }
                if *t == task && *on_attempt == attempt)
        })
    }

    /// Should rank `rank` die on `attempt`?
    pub fn rank_panics(&self, rank: usize, attempt: u32) -> bool {
        self.events.iter().any(|e| {
            matches!(e, FaultEvent::RankPanic { rank: r, on_attempt }
                if *r == rank && *on_attempt == attempt)
        })
    }

    /// If rank `rank` is scheduled to die mid-merge on `attempt`, the
    /// number of groups it emits first (the earliest matching event wins).
    pub fn merge_panic_after(&self, rank: usize, attempt: u32) -> Option<u64> {
        self.events.iter().find_map(|e| match e {
            FaultEvent::MergePanic {
                rank: r,
                on_attempt,
                after_groups,
            } if *r == rank && *on_attempt == attempt => Some(*after_groups),
            _ => None,
        })
    }

    /// Injected delay for O task `task` on `attempt` (sums if several
    /// straggler events target the same task/attempt).
    pub fn straggler_delay(&self, task: usize, attempt: u32) -> Option<Duration> {
        let ms: u64 = self
            .events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Straggler {
                    task: t,
                    on_attempt,
                    delay_ms,
                } if *t == task && *on_attempt == attempt => Some(*delay_ms),
                _ => None,
            })
            .sum();
        (ms > 0).then(|| Duration::from_millis(ms))
    }

    /// Per-task pacing delay for rank `rank` on `attempt` (sums if
    /// several slow-rank events target the same rank/attempt).
    pub fn slow_rank_delay(&self, rank: usize, attempt: u32) -> Option<Duration> {
        let ms: u64 = self
            .events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::SlowRank {
                    rank: r,
                    on_attempt,
                    delay_ms,
                } if *r == rank && *on_attempt == attempt => Some(*delay_ms),
                _ => None,
            })
            .sum();
        (ms > 0).then(|| Duration::from_millis(ms))
    }

    /// The deterministic corruption to apply to O task `task`'s first
    /// flushed frame on `attempt`, if scheduled.
    pub fn corruption(&self, task: usize, attempt: u32) -> Option<Corruption> {
        let scheduled = self.events.iter().any(|e| {
            matches!(e, FaultEvent::CorruptFrame { task: t, on_attempt }
                if *t == task && *on_attempt == attempt)
        });
        scheduled.then(|| {
            let h = splitmix64(
                self.seed
                    .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(task as u64 + 1))
                    .wrapping_add(attempt as u64),
            );
            Corruption {
                offset_seed: h,
                // Never zero: a zero mask would be a no-op "corruption".
                mask: ((h >> 17) as u8) | 1,
            }
        })
    }
}

/// The splitmix64 finalizer — a tiny, dependency-free deterministic hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_match_scheduled_events() {
        let plan = FaultPlan::new(7)
            .fail_o_task(3, 1)
            .rank_panic(0, 0)
            .straggler(2, 0, 40)
            .corrupt_frame(5, 2);
        assert!(plan.o_task_error(3, 1));
        assert!(!plan.o_task_error(3, 0));
        assert!(!plan.o_task_error(2, 1));
        assert!(plan.rank_panics(0, 0));
        assert!(!plan.rank_panics(1, 0));
        assert_eq!(plan.straggler_delay(2, 0), Some(Duration::from_millis(40)));
        assert_eq!(plan.straggler_delay(2, 1), None);
        assert!(plan.corruption(5, 2).is_some());
        assert!(plan.corruption(5, 1).is_none());
        assert_eq!(plan.last_faulty_attempt(), Some(2));
        assert_eq!(plan.events().len(), 4);
        assert!(!plan.is_empty());
    }

    #[test]
    fn corruption_is_deterministic_per_seed_and_nonzero() {
        let a = FaultPlan::new(1).corrupt_frame(0, 0);
        let b = FaultPlan::new(1).corrupt_frame(0, 0);
        let c = FaultPlan::new(2).corrupt_frame(0, 0);
        assert_eq!(a.corruption(0, 0), b.corruption(0, 0));
        assert_ne!(a.corruption(0, 0), c.corruption(0, 0));
        let corr = a.corruption(0, 0).unwrap();
        assert_ne!(corr.mask, 0);
        let mut payload = vec![0u8; 16];
        let idx = corr.apply(&mut payload).unwrap();
        assert!(idx < 16);
        assert_ne!(payload[idx], 0, "the flip must change the byte");
        assert_eq!(corr.apply(&mut []), None);
    }

    #[test]
    fn straggler_delays_accumulate_and_validate() {
        let plan = FaultPlan::new(0).straggler(1, 0, 10).straggler(1, 0, 15);
        assert_eq!(plan.straggler_delay(1, 0), Some(Duration::from_millis(25)));
        plan.validate().unwrap();
        let too_slow = FaultPlan::new(0).straggler(0, 0, FaultPlan::MAX_STRAGGLER_MS + 1);
        assert!(too_slow.validate().is_err());
    }

    #[test]
    fn merge_panic_targets_rank_attempt_and_reports_group_budget() {
        let plan = FaultPlan::new(0).merge_panic(1, 0, 5).merge_panic(1, 1, 9);
        assert_eq!(plan.merge_panic_after(1, 0), Some(5));
        assert_eq!(plan.merge_panic_after(1, 1), Some(9));
        assert_eq!(plan.merge_panic_after(1, 2), None);
        assert_eq!(plan.merge_panic_after(0, 0), None);
        assert_eq!(plan.last_faulty_attempt(), Some(1));
        plan.validate().unwrap();
    }

    #[test]
    fn slow_rank_paces_every_task_of_the_rank() {
        let plan = FaultPlan::new(0).slow_rank(1, 0, 20).slow_rank(1, 0, 5);
        assert_eq!(plan.slow_rank_delay(1, 0), Some(Duration::from_millis(25)));
        assert_eq!(plan.slow_rank_delay(0, 0), None);
        assert_eq!(plan.slow_rank_delay(1, 1), None);
        assert_eq!(plan.last_faulty_attempt(), Some(0));
        plan.validate().unwrap();
        let too_slow = FaultPlan::new(0).slow_rank(0, 0, FaultPlan::MAX_STRAGGLER_MS + 1);
        assert!(too_slow.validate().is_err());
    }

    #[test]
    fn empty_plan_schedules_nothing() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.last_faulty_attempt(), None);
        assert!(!plan.o_task_error(0, 0));
        plan.validate().unwrap();
    }
}
