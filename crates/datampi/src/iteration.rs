//! Iteration mode — one of DataMPI's "diversified" communication modes.
//!
//! Iterative algorithms (K-means is the paper's example) run the same job
//! shape repeatedly over the same input. In Common/MapReduce mode every
//! iteration would re-read and re-deserialize its splits; Iteration mode
//! keeps the **deserialized objects resident** in worker memory across
//! jobs, so each subsequent iteration starts from parsed data — DataMPI's
//! answer to Spark's RDD cache, without lineage (the resident data is the
//! source of truth; a restarted job reloads from the DFS).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use dmpi_common::group::{Collector, GroupedValues};
use dmpi_common::Result;

use crate::checkpoint::CheckpointStore;
use crate::config::JobConfig;
use crate::observe::{Observer, SpanKind};
use crate::runtime::{run_job_generic, ChunkableSplit, JobOutput};
use crate::supervisor::{supervise_job_generic, RetryPolicy};

/// Iteration-mode splits opt out of parallel chunking (the default impl
/// never cuts): element vectors have no byte-level cut points, so the O
/// function always sees its whole split on the sequential path.
impl<T: Send + Sync> ChunkableSplit for Arc<Vec<T>> {}

/// Deserialized splits held resident across iterations.
///
/// # Examples
/// ```
/// use datampi::iteration::IterationCache;
///
/// let inputs = vec![bytes::Bytes::from_static(b"1 2 3")];
/// let cache: IterationCache<u32> = IterationCache::load(&inputs, |split| {
///     std::str::from_utf8(split)
///         .unwrap()
///         .split(' ')
///         .map(|n| n.parse().unwrap())
///         .collect()
/// });
/// assert_eq!(cache.len(), 3);
/// assert_eq!(cache.parse_count(), 1); // never grows across iterations
/// ```
pub struct IterationCache<T> {
    splits: Vec<Arc<Vec<T>>>,
    loads: AtomicU64,
}

impl<T: Send + Sync> IterationCache<T> {
    /// Parses every input split once with `parse` and pins the results.
    pub fn load<F>(inputs: &[Bytes], parse: F) -> Self
    where
        F: Fn(&[u8]) -> Vec<T>,
    {
        let cache = IterationCache {
            splits: inputs.iter().map(|b| Arc::new(parse(b))).collect(),
            loads: AtomicU64::new(0),
        };
        cache.loads.store(inputs.len() as u64, Ordering::SeqCst);
        cache
    }

    /// Like [`IterationCache::load`], recording the one-time parse as a
    /// `cache_load` span in `observer`'s trace — the cost every subsequent
    /// iteration amortizes away, made visible.
    pub fn load_observed<F>(inputs: &[Bytes], parse: F, observer: &Observer) -> Self
    where
        F: Fn(&[u8]) -> Vec<T>,
    {
        let jt = observer.job_tracer(0);
        let start = jt.start();
        let cache = Self::load(inputs, parse);
        jt.span(
            SpanKind::CacheLoad,
            start,
            vec![("splits", inputs.len().to_string())],
        );
        observer.absorb(&jt);
        cache
    }

    /// Number of resident splits.
    pub fn num_splits(&self) -> usize {
        self.splits.len()
    }

    /// Total resident elements across splits.
    pub fn len(&self) -> usize {
        self.splits.iter().map(|s| s.len()).sum()
    }

    /// True if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many splits have been parsed since construction — stays equal
    /// to `num_splits()` no matter how many iterations run, which is the
    /// mode's entire point.
    pub fn parse_count(&self) -> u64 {
        self.loads.load(Ordering::SeqCst)
    }

    /// Borrow one resident split.
    pub fn split(&self, i: usize) -> &Arc<Vec<T>> {
        &self.splits[i]
    }

    /// Iterates over the resident elements across all splits.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.splits.iter().flat_map(|s| s.iter())
    }

    /// Cheap handles to the resident splits (Arc clones).
    fn handles(&self) -> Vec<Arc<Vec<T>>> {
        self.splits.clone()
    }
}

/// Runs one iteration over a resident cache: the O function receives the
/// parsed objects of its split directly.
pub fn run_iteration<T, O, A>(
    config: &JobConfig,
    cache: &IterationCache<T>,
    o_fn: O,
    a_fn: A,
) -> Result<JobOutput>
where
    T: Send + Sync,
    O: Fn(usize, &[T], &mut dyn Collector) + Send + Sync,
    A: Fn(&GroupedValues, &mut dyn Collector) + Send + Sync,
{
    run_iteration_attempt(config, cache, o_fn, a_fn, None, 0)
}

/// Runs one iteration identifying the attempt number, optionally against a
/// [`CheckpointStore`] shared across attempts — the restartable form of
/// [`run_iteration`].
pub fn run_iteration_attempt<T, O, A>(
    config: &JobConfig,
    cache: &IterationCache<T>,
    o_fn: O,
    a_fn: A,
    checkpoint: Option<&CheckpointStore>,
    attempt: u32,
) -> Result<JobOutput>
where
    T: Send + Sync,
    O: Fn(usize, &[T], &mut dyn Collector) + Send + Sync,
    A: Fn(&GroupedValues, &mut dyn Collector) + Send + Sync,
{
    run_job_generic(
        config,
        cache.handles(),
        move |task, split: &Arc<Vec<T>>, out: &mut dyn Collector| o_fn(task, split, out),
        a_fn,
        checkpoint,
        attempt,
    )
}

/// Runs one iteration under the bounded-retry supervisor: faulted attempts
/// restart from checkpoint (when the config enables checkpointing) while
/// the resident cache — the mode's entire point — is never re-parsed.
pub fn supervise_iteration<T, O, A>(
    config: &JobConfig,
    policy: &RetryPolicy,
    cache: &IterationCache<T>,
    o_fn: O,
    a_fn: A,
) -> Result<JobOutput>
where
    T: Send + Sync,
    O: Fn(usize, &[T], &mut dyn Collector) + Send + Sync,
    A: Fn(&GroupedValues, &mut dyn Collector) + Send + Sync,
{
    let handles = cache.handles();
    supervise_job_generic(
        config,
        policy,
        &handles,
        move |task, split: &Arc<Vec<T>>, out: &mut dyn Collector| o_fn(task, split, out),
        a_fn,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpi_common::ser::Writable;

    fn parse_words(split: &[u8]) -> Vec<Vec<u8>> {
        split
            .split(|&b| b == b' ')
            .filter(|w| !w.is_empty())
            .map(<[u8]>::to_vec)
            .collect()
    }

    fn count_o(_t: usize, words: &[Vec<u8>], out: &mut dyn Collector) {
        for w in words {
            out.collect(w, &1u64.to_bytes());
        }
    }

    fn sum_a(g: &GroupedValues, out: &mut dyn Collector) {
        let total: u64 = g.values.iter().map(|v| u64::from_bytes(v).unwrap()).sum();
        out.collect(&g.key, &total.to_bytes());
    }

    #[test]
    fn cache_parses_each_split_exactly_once() {
        let inputs = vec![Bytes::from_static(b"a b a"), Bytes::from_static(b"b c")];
        let cache = IterationCache::load(&inputs, parse_words);
        assert_eq!(cache.num_splits(), 2);
        assert_eq!(cache.len(), 5);
        assert!(!cache.is_empty());
        assert_eq!(cache.parse_count(), 2);

        // Five iterations: parse count must not move.
        let config = JobConfig::new(2);
        for _ in 0..5 {
            let out = run_iteration(&config, &cache, count_o, sum_a).unwrap();
            assert_eq!(out.stats.records_emitted, 5);
        }
        assert_eq!(cache.parse_count(), 2, "no re-deserialization");
    }

    #[test]
    fn iteration_results_match_byte_mode() {
        let inputs = vec![Bytes::from_static(b"x y x z"), Bytes::from_static(b"z z y")];
        let cache = IterationCache::load(&inputs, parse_words);
        let config = JobConfig::new(3);
        let iter_out = run_iteration(&config, &cache, count_o, sum_a).unwrap();
        let byte_out = crate::run_job(
            &config,
            inputs,
            |_t, split: &[u8], out: &mut dyn Collector| {
                for w in split.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                    out.collect(w, &1u64.to_bytes());
                }
            },
            sum_a,
            None,
        )
        .unwrap();
        let canon = |o: JobOutput| {
            o.into_single_batch()
                .into_records()
                .into_iter()
                .map(|r| (r.key.to_vec(), r.value.to_vec()))
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert_eq!(canon(iter_out), canon(byte_out));
    }

    #[test]
    fn empty_cache_runs_cleanly() {
        let cache: IterationCache<Vec<u8>> = IterationCache::load(&[], parse_words);
        assert!(cache.is_empty());
        let out = run_iteration(&JobConfig::new(2), &cache, count_o, sum_a).unwrap();
        assert_eq!(out.stats.o_tasks_run, 0);
    }

    #[test]
    fn supervised_iteration_survives_transient_fault_without_reparsing() {
        use crate::fault::FaultPlan;

        let inputs = vec![
            Bytes::from_static(b"a b a"),
            Bytes::from_static(b"b c"),
            Bytes::from_static(b"c c a"),
        ];
        let cache = IterationCache::load(&inputs, parse_words);
        let config = JobConfig::new(1)
            .with_checkpointing(true)
            .with_faults(FaultPlan::new(5).fail_o_task(2, 0));
        let policy = RetryPolicy::new(3).with_backoff(std::time::Duration::ZERO);
        let out = supervise_iteration(&config, &policy, &cache, count_o, sum_a).unwrap();
        assert_eq!(out.stats.attempts, 2);
        assert!(out.stats.o_tasks_recovered > 0, "tasks 0-1 replayed");
        assert_eq!(cache.parse_count(), 3, "retries never re-deserialize");

        let clean = run_iteration(&JobConfig::new(1), &cache, count_o, sum_a).unwrap();
        let canon = |o: JobOutput| {
            o.into_single_batch()
                .into_records()
                .into_iter()
                .map(|r| (r.key.to_vec(), r.value.to_vec()))
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert_eq!(canon(out), canon(clean));
    }

    #[test]
    fn iteration_checkpoint_restart_recovers_completed_tasks() {
        use crate::fault::FaultPlan;

        let inputs = vec![
            Bytes::from_static(b"p q"),
            Bytes::from_static(b"q r"),
            Bytes::from_static(b"r s"),
        ];
        let cache = IterationCache::load(&inputs, parse_words);
        let cp = crate::checkpoint::CheckpointStore::new();
        let failing = JobConfig::new(1)
            .with_checkpointing(true)
            .with_faults(FaultPlan::new(9).fail_o_task(2, 0));
        let err =
            run_iteration_attempt(&failing, &cache, count_o, sum_a, Some(&cp), 0).unwrap_err();
        assert!(err.fault_cause().expect("cause").is_injected());
        assert_eq!(cp.completed_count(), 2, "splits 0-1 checkpointed");
        let out = run_iteration_attempt(&failing, &cache, count_o, sum_a, Some(&cp), 1).unwrap();
        assert_eq!(out.stats.o_tasks_recovered, 2);
        assert_eq!(out.stats.o_tasks_run, 1);
    }

    #[test]
    fn iteration_state_can_vary_per_run() {
        // The per-iteration closure can capture fresh per-iteration state
        // (K-means' centroids) while the cached data stays fixed.
        let inputs = vec![Bytes::from_static(b"a b c d")];
        let cache = IterationCache::load(&inputs, parse_words);
        let config = JobConfig::new(2);
        for round in 0..3u64 {
            let out = run_iteration(
                &config,
                &cache,
                move |_t, words: &[Vec<u8>], out: &mut dyn Collector| {
                    // Emit only words whose first byte is above a moving
                    // threshold.
                    for w in words {
                        if w[0] as u64 > b'a' as u64 + round {
                            out.collect(w, b"1");
                        }
                    }
                },
                |g, out| out.collect(&g.key, &g.values[0]),
            )
            .unwrap();
            let emitted = out.stats.records_emitted;
            assert_eq!(emitted, 3 - round);
        }
    }
}
