//! `datampi` — a key-value-pair based communication library extending the
//! MPI model for Hadoop/Spark-like Big Data computing.
//!
//! This crate is the reproduction's primary artifact: the DataMPI library
//! of Lu et al. (IPDPS '14), whose performance the case-study paper
//! measures against Hadoop and Spark. DataMPI replaces MPI's
//! buffer-to-buffer communication with **key-value pair** communication
//! organized as a **bipartite graph** between two communicators:
//!
//! * **O (origin) tasks** produce key-value pairs (like map tasks);
//! * **A (accept) tasks** consume them grouped by key (like reduce tasks).
//!
//! The library implements the "4D" characteristics the paper summarizes:
//!
//! * **Dichotomic** — the O/A bipartite communication model ([`runtime`]);
//! * **Dynamic** — tasks are scheduled dynamically onto worker ranks (the
//!   runtime's shared queue hands splits to whichever rank is free);
//! * **Data-centric** — emitted pairs are partitioned and buffered at the
//!   A-side worker ([`store`]), so A tasks read their input locally;
//! * **Diversified** — [`task`] exposes Common and MapReduce-style modes,
//!   [`iteration`] implements Iteration mode (deserialized splits stay
//!   resident in worker memory across jobs, the pattern K-means uses),
//!   and [`streaming`] implements Streaming mode (windowed processing
//!   with persistent per-key state).
//!
//! Communication is **pipelined**: O-task computation overlaps with
//! key-value movement ([`buffer::KvBuffer`] flushes asynchronously while
//! the task keeps producing), which the paper credits for most of
//! DataMPI's speedup. Intermediate data stays in worker memory (spilling
//! only under pressure), avoiding Hadoop's redundant disk materialization.
//! Fault tolerance is key-value checkpoint/restart ([`checkpoint`]) driven
//! by a bounded-retry [`supervisor`]; the [`fault`] module injects
//! deterministic, seeded faults (task errors, rank deaths, stragglers,
//! wire corruption caught by per-frame CRCs) to exercise that machinery.
//!
//! Two execution surfaces share the same job abstraction:
//!
//! * a **real multi-threaded runtime** ([`runtime`]) where ranks are
//!   threads connected by a pluggable [`transport`] — the in-proc
//!   channel fabric or a real TCP mesh (also the basis of the
//!   multi-process `dmpirun` launcher) — data really moves, workloads
//!   really compute (unit of the test suite and the MB-scale benches);
//! * a **plan compiler** ([`plan`]) that translates the same job into
//!   `dmpi-dcsim` activities for the paper-scale experiments.

#![warn(missing_docs)]

pub mod buffer;
pub mod checkpoint;
pub mod comm;
pub mod config;
pub mod distrib;
pub mod fault;
pub mod iteration;
pub mod observe;
pub mod plan;
pub mod runtime;
pub mod service;
pub mod speculate;
pub mod spillfmt;
pub mod store;
pub mod streaming;
pub mod supervisor;
pub mod task;
pub mod transport;

pub use config::{JobConfig, WireCompression};
pub use fault::FaultPlan;
pub use observe::{Observer, PhaseTotals, Profiler, SpanKind, Trace};
pub use runtime::{run_job, ChunkableSplit, JobOutput, JobStats};
pub use speculate::{Scheduling, SpeculationConfig};
pub use spillfmt::{KeyRange, SealedRun, SpillConfig, SpillReadCounters};
pub use supervisor::{
    supervise_job, supervise_job_elastic, ElasticOutput, ElasticPolicy, RetryPolicy,
};
pub use task::{Collector, Combiner, GroupedValues};
pub use transport::{
    Backend, Endpoint, FrameReceiver, FrameSender, TcpOptions, Transport, WireStats,
};
