//! Injectable time source for the observability layer.
//!
//! Spans and profiler samples are timestamped through a [`Clock`] so that
//! tests can drive time deterministically: the real clock measures
//! microseconds since the observer was created (monotonic, `Instant`-based),
//! while [`ManualClock`] is an atomic counter tests advance by hand.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic microsecond clock, real or manual.
#[derive(Clone, Debug)]
pub enum Clock {
    /// Wall time since an epoch fixed at observer creation.
    Real(Instant),
    /// Test time: whatever the shared counter says.
    Manual(ManualClock),
}

impl Clock {
    /// A real clock whose epoch is "now".
    pub fn real() -> Self {
        Clock::Real(Instant::now())
    }

    /// Microseconds since the clock's epoch.
    pub fn now_micros(&self) -> u64 {
        match self {
            Clock::Real(epoch) => epoch.elapsed().as_micros() as u64,
            Clock::Manual(m) => m.now_micros(),
        }
    }
}

/// A hand-advanced clock shared between a test and the observer.
///
/// # Examples
/// ```
/// use datampi::observe::ManualClock;
/// let clock = ManualClock::new();
/// clock.advance_micros(250);
/// assert_eq!(clock.now_micros(), 250);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ManualClock {
    micros: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock starting at 0 µs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current reading in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }

    /// Advances the clock by `us` microseconds.
    pub fn advance_micros(&self, us: u64) {
        self.micros.fetch_add(us, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute reading (must not move backwards for
    /// the trace to stay well-formed, but this is not enforced).
    pub fn set_micros(&self, us: u64) {
        self.micros.store(us, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        let c = Clock::real();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_only_moves_when_told() {
        let m = ManualClock::new();
        let c = Clock::Manual(m.clone());
        assert_eq!(c.now_micros(), 0);
        m.advance_micros(10);
        m.advance_micros(5);
        assert_eq!(c.now_micros(), 15);
        m.set_micros(100);
        assert_eq!(c.now_micros(), 100);
    }
}
