//! Lock-free log-bucketed latency/size histograms.
//!
//! The telemetry plane needs distribution shape, not just totals:
//! "recv_us dominates" is diagnosable only when per-frame recv latency
//! splits into a fast mode and a stalled tail. A [`LogHistogram`] buckets
//! `u64` samples by bit length (bucket `i` covers `[2^(i-1), 2^i)`), so
//! recording is two relaxed `fetch_add`s and a `fetch_max` — cheap enough
//! to sit on the per-frame hot paths — and a snapshot merges across ranks
//! by plain bucket addition, which is what lets the coordinator fold N
//! worker histograms into one job-wide distribution without resampling.
//!
//! Quantile estimates come from the bucket boundaries: the reported value
//! is the upper bound of the bucket holding the target rank, so an
//! estimate is always within one bucket bound (a factor of two) of the
//! exact order statistic. The property tests in this module assert both
//! that bound and the algebra (merge is associative and commutative).

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: bucket 0 holds zeros, bucket `i >= 1` holds values with
/// bit length `i`, up to the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The fixed histogram channels the runtime records into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HistKind {
    /// Per-frame socket write duration on the TCP writer threads, µs.
    SendLatency,
    /// Per-frame wait in the A-side ingest loop (time blocked on the
    /// mailbox until the next frame arrives), µs. Both backends.
    RecvLatency,
    /// Data-frame payload sizes as ingested, bytes.
    FramePayload,
    /// Time producers spent blocked on a full per-peer send window
    /// before a frame was accepted, µs.
    WindowWait,
    /// Spill-run seal duration (sort + frame into the spill image), µs.
    SpillSeal,
    /// One A-phase merge step (`next_group` call: loser-tree pops for a
    /// whole key group), µs.
    MergeStep,
    /// Stored sizes of sealed spill-run blocks (post-compression),
    /// bytes.
    SpillBlock,
}

impl HistKind {
    /// Every channel, in wire/report order.
    pub const ALL: [HistKind; 7] = [
        HistKind::SendLatency,
        HistKind::RecvLatency,
        HistKind::FramePayload,
        HistKind::WindowWait,
        HistKind::SpillSeal,
        HistKind::MergeStep,
        HistKind::SpillBlock,
    ];

    /// Stable snake_case name used in telemetry frames and reports.
    pub fn name(self) -> &'static str {
        match self {
            HistKind::SendLatency => "send_latency_us",
            HistKind::RecvLatency => "recv_latency_us",
            HistKind::FramePayload => "frame_payload_bytes",
            HistKind::WindowWait => "window_wait_us",
            HistKind::SpillSeal => "spill_seal_us",
            HistKind::MergeStep => "merge_step_us",
            HistKind::SpillBlock => "spill_block_bytes",
        }
    }

    /// Parses a wire name back to the channel.
    pub fn parse(name: &str) -> Option<HistKind> {
        HistKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// Index of the bucket holding `value`: 0 for zero, else the bit length.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Largest value bucket `index` can hold (its inclusive upper bound) —
/// the representative a quantile estimate reports.
#[inline]
pub fn bucket_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A lock-free log-bucketed histogram. All updates are relaxed atomics:
/// any number of rank/transport threads record concurrently, and the
/// profiler or telemetry shipper snapshots without stopping them.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records the elapsed time of `start` (an `Instant`) in µs.
    #[inline]
    pub fn record_elapsed_us(&self, start: std::time::Instant) {
        self.record(start.elapsed().as_micros() as u64);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy, mergeable and serializable.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain-number copy of a [`LogHistogram`]: what telemetry frames
/// carry and what the coordinator merges by bucket addition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all sample values.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `other` in: buckets, counts and sums add; max takes max.
    /// This is the cross-rank aggregation step — associative and
    /// commutative, so the coordinator may fold frames in any arrival
    /// order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) as the upper bound of
    /// the bucket containing that rank. For the recorded exact value `v`
    /// at that rank, the estimate `e` satisfies `v <= e < 2 * max(v, 1)`
    /// — within one log bucket. Returns `max` at `q >= 1`, 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        // Rank of the target sample, 1-based, clamped into range.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                // The top bucket's bound can overshoot the data; the
                // recorded max is the tighter upper bound.
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// `(p50, p95, p99, max)` in one call — the report's summary row.
    pub fn summary(&self) -> (u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
            self.max,
        )
    }

    /// Compact wire form: `count;sum;max;idx:cnt,idx:cnt,…` with only
    /// non-empty buckets listed.
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("{};{};{};", self.count, self.sum, self.max);
        let mut first = true;
        for (i, b) in self.buckets.iter().enumerate() {
            if *b > 0 {
                if !first {
                    out.push(',');
                }
                let _ = write!(out, "{i}:{b}");
                first = false;
            }
        }
        out
    }

    /// Parses the [`encode`](Self::encode) form.
    pub fn parse(s: &str) -> Option<HistogramSnapshot> {
        let mut parts = s.splitn(4, ';');
        let count = parts.next()?.parse().ok()?;
        let sum = parts.next()?.parse().ok()?;
        let max = parts.next()?.parse().ok()?;
        let mut snap = HistogramSnapshot {
            count,
            sum,
            max,
            ..HistogramSnapshot::default()
        };
        let buckets = parts.next()?;
        if !buckets.is_empty() {
            for pair in buckets.split(',') {
                let (idx, cnt) = pair.split_once(':')?;
                let idx: usize = idx.parse().ok()?;
                if idx >= HISTOGRAM_BUCKETS {
                    return None;
                }
                snap.buckets[idx] = cnt.parse().ok()?;
            }
        }
        Some(snap)
    }

    /// Renders the summary + sparse buckets as a JSON object.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let (p50, p95, p99, max) = self.summary();
        let mut out = format!(
            "{{\"count\":{},\"sum\":{},\"mean\":{:.1},\"p50\":{},\"p95\":{},\"p99\":{},\
             \"max\":{},\"buckets\":{{",
            self.count,
            self.sum,
            self.mean(),
            p50,
            p95,
            p99,
            max
        );
        let mut first = true;
        for (i, b) in self.buckets.iter().enumerate() {
            if *b > 0 {
                if !first {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", bucket_bound(i), b);
                first = false;
            }
        }
        out.push_str("}}");
        out
    }
}

/// The registry's fixed set of histogram channels. Handles are `Arc`s so
/// hot paths (transport threads, the store's sealing threads) clone one
/// channel out once and record without touching the registry again.
#[derive(Clone, Debug)]
pub struct Histograms {
    inner: [std::sync::Arc<LogHistogram>; HistKind::ALL.len()],
}

impl Default for Histograms {
    fn default() -> Self {
        Histograms {
            inner: std::array::from_fn(|_| std::sync::Arc::new(LogHistogram::new())),
        }
    }
}

impl Histograms {
    /// A cloneable handle to one channel.
    pub fn handle(&self, kind: HistKind) -> std::sync::Arc<LogHistogram> {
        std::sync::Arc::clone(&self.inner[Self::slot(kind)])
    }

    /// Records one sample into `kind`.
    #[inline]
    pub fn record(&self, kind: HistKind, value: u64) {
        self.inner[Self::slot(kind)].record(value);
    }

    /// Snapshots every channel, in [`HistKind::ALL`] order.
    pub fn snapshot_all(&self) -> Vec<(HistKind, HistogramSnapshot)> {
        HistKind::ALL
            .into_iter()
            .map(|k| (k, self.inner[Self::slot(k)].snapshot()))
            .collect()
    }

    fn slot(kind: HistKind) -> usize {
        HistKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind in ALL")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift stream for the property tests (no external
    /// proptest dependency; the repo vendors everything).
    fn rng(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed.max(1);
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    fn random_snapshot(next: &mut impl FnMut() -> u64, samples: usize) -> HistogramSnapshot {
        let h = LogHistogram::new();
        for _ in 0..samples {
            // Mix magnitudes: shift by a random amount so buckets across
            // the whole range get hit.
            let v = next() >> (next() % 60);
            h.record(v);
        }
        h.snapshot()
    }

    #[test]
    fn bucket_index_and_bounds_partition_the_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            let hi = bucket_bound(i);
            assert_eq!(bucket_index(hi), i, "upper bound stays in bucket {i}");
            if i + 1 < HISTOGRAM_BUCKETS {
                assert_eq!(bucket_index(hi + 1), i + 1, "bound + 1 moves up");
            }
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut next = rng(0xD1CE);
        for case in 0..20 {
            let a = random_snapshot(&mut next, 50 + case);
            let b = random_snapshot(&mut next, 30);
            let c = random_snapshot(&mut next, 70);

            // Commutative: a+b == b+a.
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "case {case}: merge must commute");

            // Associative: (a+b)+c == a+(b+c).
            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            assert_eq!(ab_c, a_bc, "case {case}: merge must associate");

            assert_eq!(ab_c.count, a.count + b.count + c.count);
            assert_eq!(ab_c.sum, a.sum.saturating_add(b.sum).saturating_add(c.sum));
        }
    }

    #[test]
    fn quantiles_are_within_one_bucket_of_exact() {
        let mut next = rng(0xFACE);
        for case in 0..20 {
            let n = 1 + (next() % 500) as usize;
            let values: Vec<u64> = (0..n).map(|_| next() >> (next() % 60)).collect();
            let h = LogHistogram::new();
            for v in &values {
                h.record(*v);
            }
            let snap = h.snapshot();
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for &q in &[0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                let est = snap.quantile(q);
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                let exact = sorted[rank - 1];
                // One log-bucket bound: exact <= est < 2 * max(exact, 1),
                // except at q>=1 where est is the recorded max itself.
                assert!(
                    est >= exact,
                    "case {case} q={q}: estimate {est} below exact {exact}"
                );
                let bound = exact.max(1).saturating_mul(2);
                assert!(
                    est < bound || est == snap.max,
                    "case {case} q={q}: estimate {est} beyond bucket bound {bound} (exact {exact})"
                );
            }
        }
    }

    #[test]
    fn wire_encoding_round_trips() {
        let mut next = rng(7);
        for case in 0..10 {
            let snap = random_snapshot(&mut next, case * 17);
            let parsed = HistogramSnapshot::parse(&snap.encode()).expect("parse own encoding");
            assert_eq!(parsed, snap, "case {case}");
        }
        assert_eq!(
            HistogramSnapshot::parse(&HistogramSnapshot::default().encode()),
            Some(HistogramSnapshot::default())
        );
        assert!(HistogramSnapshot::parse("not a histogram").is_none());
        assert!(HistogramSnapshot::parse("1;2;3;99:1").is_none(), "bad idx");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LogHistogram::new());
        let threads = 8;
        let per = 1000;
        std::thread::scope(|s| {
            for t in 0..threads {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..per {
                        h.record((t * per + i) as u64);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, (threads * per) as u64);
        assert_eq!(snap.max, (threads * per - 1) as u64);
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    }

    #[test]
    fn kinds_round_trip_names() {
        for k in HistKind::ALL {
            assert_eq!(HistKind::parse(k.name()), Some(k));
        }
        assert!(HistKind::parse("nope").is_none());
    }

    #[test]
    fn summary_and_json_render() {
        let h = LogHistogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        let (p50, _, _, max) = snap.summary();
        assert_eq!(max, 1000);
        assert!(p50 >= 3);
        let json = snap.to_json();
        assert!(json.contains("\"count\":5"));
        assert!(json.contains("\"max\":1000"));
    }
}
