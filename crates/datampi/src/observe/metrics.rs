//! Per-rank counters and gauges with cheap atomic updates.
//!
//! The registry is shared (behind the observer's `Arc`) by every rank
//! thread and by the sampling profiler; all updates are single relaxed
//! atomic ops so the hot emit/recv paths pay a few nanoseconds at most.
//! Per-peer byte matrices are sized once by [`MetricsRegistry::begin_job`]
//! before ranks start, so the recording paths never allocate or lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::RwLock;

use super::histogram::Histograms;

/// Shared counters/gauges updated live by the runtime and snapshotted by
/// the profiler.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// KV pairs produced by O tasks.
    records_out: AtomicU64,
    /// KV pairs ingested by A partitions.
    records_in: AtomicU64,
    /// Data frames shipped.
    frames_sent: AtomicU64,
    /// A-store spills.
    spills: AtomicU64,
    /// Raw (uncompressed) bytes written by spills.
    spill_bytes: AtomicU64,
    /// Stored bytes sealed runs occupy (blocks post-compression plus
    /// footer index); with spill compression on, `spill_wire_bytes /
    /// spill_bytes` is the achieved spill compression ratio.
    spill_wire_bytes: AtomicU64,
    /// Spill-run blocks loaded and decoded by merges and lookups.
    spill_blocks_read: AtomicU64,
    /// Spill-run blocks skipped whole via the footer index.
    spill_blocks_skipped: AtomicU64,
    /// Non-sequential spill-run block loads (seeks).
    spill_seeks: AtomicU64,
    /// High-water mark of any single O-side partition buffer, bytes.
    buffer_hwm_bytes: AtomicU64,
    /// Supervisor retries scheduled.
    retries: AtomicU64,
    /// O tasks replayed from checkpoint instead of re-running.
    recovered_tasks: AtomicU64,
    /// Encoded bytes written to transport sockets (header + payload as
    /// seen on the wire, post-compression). Zero on the in-proc backend.
    wire_bytes_sent: AtomicU64,
    /// Encoded bytes decoded from transport sockets. Zero in-proc.
    wire_bytes_received: AtomicU64,
    /// Pre-batching frame bytes handed to the wire encoders; with
    /// compression on, `wire_bytes_sent / wire_raw_bytes_sent` is the
    /// achieved wire compression ratio.
    wire_raw_bytes_sent: AtomicU64,
    /// Logical frames the wire encoders packed into batches.
    wire_frames_sent: AtomicU64,
    /// Coalesced wire batches sealed; `wire_frames_sent /
    /// wire_batches_sent` is the achieved coalescing factor.
    wire_batches_sent: AtomicU64,
    /// Socket write syscalls issued by transport pollers.
    wire_send_syscalls: AtomicU64,
    /// Logical frames decoded from inbound wire batches.
    wire_frames_received: AtomicU64,
    /// Inbound wire batches decoded.
    wire_batches_received: AtomicU64,
    /// Socket read syscalls issued by transport pollers.
    wire_recv_syscalls: AtomicU64,
    /// Records fed into O-side combiners.
    combiner_records_in: AtomicU64,
    /// Records O-side combiners shipped after folding.
    combiner_records_out: AtomicU64,
    /// Per-task progress heartbeats reported into the progress board
    /// (task start/finish/abort transitions).
    heartbeats: AtomicU64,
    /// Speculative duplicate attempts launched.
    speculative_attempts: AtomicU64,
    /// Speculative duplicates that won the first-writer-wins commit.
    speculative_commits: AtomicU64,
    /// O splits stolen from another rank's static queue.
    tasks_stolen: AtomicU64,
    /// `sent[from][to]` payload bytes, sized by `begin_job`.
    sent: RwLock<Vec<Arc<Vec<AtomicU64>>>>,
    /// `recv[at][from]` payload bytes, sized by `begin_job`.
    recv: RwLock<Vec<Arc<Vec<AtomicU64>>>>,
    /// Latency/size distributions (see [`HistKind`](super::HistKind)).
    histograms: Histograms,
}

/// A point-in-time copy of the registry, taken by the profiler and by
/// end-of-job reporting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// KV pairs produced by O tasks.
    pub records_out: u64,
    /// KV pairs ingested by A partitions.
    pub records_in: u64,
    /// Data frames shipped.
    pub frames_sent: u64,
    /// Total payload bytes sent across all peers.
    pub bytes_sent: u64,
    /// Total payload bytes received across all peers.
    pub bytes_received: u64,
    /// A-store spills.
    pub spills: u64,
    /// Raw (uncompressed) bytes written by spills.
    pub spill_bytes: u64,
    /// Stored bytes sealed runs occupy (post-compression, with index).
    pub spill_wire_bytes: u64,
    /// Spill-run blocks loaded and decoded.
    pub spill_blocks_read: u64,
    /// Spill-run blocks skipped whole via the footer index.
    pub spill_blocks_skipped: u64,
    /// Non-sequential spill-run block loads (seeks).
    pub spill_seeks: u64,
    /// High-water mark of any single partition buffer, bytes.
    pub buffer_hwm_bytes: u64,
    /// Supervisor retries scheduled.
    pub retries: u64,
    /// O tasks replayed from checkpoint.
    pub recovered_tasks: u64,
    /// Encoded bytes written to transport sockets (zero in-proc).
    pub wire_bytes_sent: u64,
    /// Encoded bytes decoded from transport sockets (zero in-proc).
    pub wire_bytes_received: u64,
    /// Pre-batching frame bytes handed to the wire encoders.
    pub wire_raw_bytes_sent: u64,
    /// Logical frames packed into outbound wire batches.
    pub wire_frames_sent: u64,
    /// Coalesced wire batches sealed.
    pub wire_batches_sent: u64,
    /// Socket write syscalls issued by transport pollers.
    pub wire_send_syscalls: u64,
    /// Logical frames decoded from inbound wire batches.
    pub wire_frames_received: u64,
    /// Inbound wire batches decoded.
    pub wire_batches_received: u64,
    /// Socket read syscalls issued by transport pollers.
    pub wire_recv_syscalls: u64,
    /// Records fed into O-side combiners (zero without a combiner).
    pub combiner_records_in: u64,
    /// Records O-side combiners shipped after folding; `in - out` pairs
    /// were collapsed before reaching the wire.
    pub combiner_records_out: u64,
    /// Per-task progress heartbeats (zero unless speculation is on).
    pub heartbeats: u64,
    /// Speculative duplicate attempts launched.
    pub speculative_attempts: u64,
    /// Speculative duplicates that won their task's commit.
    pub speculative_commits: u64,
    /// O splits stolen across ranks under static scheduling.
    pub tasks_stolen: u64,
}

impl MetricsRegistry {
    /// Fresh registry with empty peer matrices.
    pub fn new() -> Self {
        Self::default()
    }

    /// (Re)sizes the per-peer byte matrices for a job of `ranks` ranks.
    /// Existing readings are preserved, so a supervised job's attempts
    /// accumulate into the same matrix.
    pub fn begin_job(&self, ranks: usize) {
        for matrix in [&self.sent, &self.recv] {
            let mut rows = matrix.write().unwrap();
            while rows.len() < ranks {
                rows.push(Arc::new((0..ranks).map(|_| AtomicU64::new(0)).collect()));
            }
            for row in rows.iter_mut() {
                if row.len() < ranks {
                    let mut grown: Vec<AtomicU64> = row
                        .iter()
                        .map(|c| AtomicU64::new(c.load(Ordering::Relaxed)))
                        .collect();
                    grown.resize_with(ranks, || AtomicU64::new(0));
                    *row = Arc::new(grown);
                }
            }
        }
    }

    /// The `sent[from]` row, for lock-free updates inside a rank thread.
    pub fn sent_row(&self, from: usize) -> Option<Arc<Vec<AtomicU64>>> {
        self.sent.read().unwrap().get(from).cloned()
    }

    /// The `recv[at]` row, for lock-free updates inside a rank thread.
    pub fn recv_row(&self, at: usize) -> Option<Arc<Vec<AtomicU64>>> {
        self.recv.read().unwrap().get(at).cloned()
    }

    /// Counts `n` KV pairs produced by O tasks.
    pub fn add_records_out(&self, n: u64) {
        self.records_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts `n` KV pairs ingested by A partitions.
    pub fn add_records_in(&self, n: u64) {
        self.records_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one shipped data frame of `payload` bytes from `from` to `to`.
    pub fn add_frame_sent(&self, from: usize, to: usize, payload: u64) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        if let Some(row) = self.sent_row(from) {
            if let Some(cell) = row.get(to) {
                cell.fetch_add(payload, Ordering::Relaxed);
            }
        }
    }

    /// Counts `payload` bytes received at rank `at` from rank `from`.
    pub fn add_bytes_received(&self, at: usize, from: usize, payload: u64) {
        if let Some(row) = self.recv_row(at) {
            if let Some(cell) = row.get(from) {
                cell.fetch_add(payload, Ordering::Relaxed);
            }
        }
    }

    /// Counts one spill of `bytes` raw (uncompressed) bytes.
    pub fn add_spill(&self, bytes: u64) {
        self.spills.fetch_add(1, Ordering::Relaxed);
        self.spill_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Counts `bytes` of stored (on-wire/on-disk) sealed-run bytes.
    pub fn add_spill_wire(&self, bytes: u64) {
        self.spill_wire_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Folds a merge's spill-read tally (block reads/skips and seeks)
    /// into the registry.
    pub fn add_spill_reads(&self, reads: &crate::spillfmt::SpillReadSnapshot) {
        self.spill_blocks_read
            .fetch_add(reads.blocks_read, Ordering::Relaxed);
        self.spill_blocks_skipped
            .fetch_add(reads.blocks_skipped, Ordering::Relaxed);
        self.spill_seeks.fetch_add(reads.seeks, Ordering::Relaxed);
    }

    /// Raises the buffer high-water mark to at least `bytes`: a true
    /// monotonic maximum under concurrent O workers. The explicit CAS
    /// loop publishes a new mark only when it exceeds the current one,
    /// so racing observers can never regress the gauge.
    pub fn observe_buffer_level(&self, bytes: u64) {
        let mut current = self.buffer_hwm_bytes.load(Ordering::Relaxed);
        while bytes > current {
            match self.buffer_hwm_bytes.compare_exchange_weak(
                current,
                bytes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// The histogram channels, for snapshotting or cloning out handles.
    pub fn histograms(&self) -> &Histograms {
        &self.histograms
    }

    /// Counts one supervisor retry.
    pub fn add_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` O tasks replayed from checkpoint.
    pub fn add_recovered_tasks(&self, n: u64) {
        self.recovered_tasks.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one endpoint's wire-level traffic (the full counter set
    /// reported by [`Endpoint::close`](crate::transport::Endpoint):
    /// encoded socket bytes, pre-batching raw bytes, frame/batch counts,
    /// and syscall totals).
    pub fn add_wire_stats(&self, wire: &crate::transport::WireStats) {
        self.wire_bytes_sent
            .fetch_add(wire.bytes_sent, Ordering::Relaxed);
        self.wire_bytes_received
            .fetch_add(wire.bytes_received, Ordering::Relaxed);
        self.wire_raw_bytes_sent
            .fetch_add(wire.raw_bytes_sent, Ordering::Relaxed);
        self.wire_frames_sent
            .fetch_add(wire.frames_sent, Ordering::Relaxed);
        self.wire_batches_sent
            .fetch_add(wire.batches_sent, Ordering::Relaxed);
        self.wire_send_syscalls
            .fetch_add(wire.send_syscalls, Ordering::Relaxed);
        self.wire_frames_received
            .fetch_add(wire.frames_received, Ordering::Relaxed);
        self.wire_batches_received
            .fetch_add(wire.batches_received, Ordering::Relaxed);
        self.wire_recv_syscalls
            .fetch_add(wire.recv_syscalls, Ordering::Relaxed);
    }

    /// Counts an O-side combiner's fold: `records_in` staged records
    /// collapsed to `records_out` shipped ones.
    pub fn add_combiner(&self, records_in: u64, records_out: u64) {
        self.combiner_records_in
            .fetch_add(records_in, Ordering::Relaxed);
        self.combiner_records_out
            .fetch_add(records_out, Ordering::Relaxed);
    }

    /// Counts `n` progress heartbeats.
    pub fn add_heartbeats(&self, n: u64) {
        self.heartbeats.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one launched speculative duplicate attempt.
    pub fn add_speculative_attempt(&self) {
        self.speculative_attempts.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one speculative duplicate winning its task's commit.
    pub fn add_speculative_commit(&self) {
        self.speculative_commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one stolen O split.
    pub fn add_task_stolen(&self) {
        self.tasks_stolen.fetch_add(1, Ordering::Relaxed);
    }

    /// Total payload bytes sent, summed over the peer matrix.
    pub fn total_bytes_sent(&self) -> u64 {
        Self::matrix_total(&self.sent)
    }

    /// Total payload bytes received, summed over the peer matrix.
    pub fn total_bytes_received(&self) -> u64 {
        Self::matrix_total(&self.recv)
    }

    /// `sent[from][to]` matrix as plain numbers.
    pub fn sent_matrix(&self) -> Vec<Vec<u64>> {
        Self::matrix_values(&self.sent)
    }

    /// `recv[at][from]` matrix as plain numbers.
    pub fn recv_matrix(&self) -> Vec<Vec<u64>> {
        Self::matrix_values(&self.recv)
    }

    fn matrix_total(matrix: &RwLock<Vec<Arc<Vec<AtomicU64>>>>) -> u64 {
        matrix
            .read()
            .unwrap()
            .iter()
            .flat_map(|row| row.iter())
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    fn matrix_values(matrix: &RwLock<Vec<Arc<Vec<AtomicU64>>>>) -> Vec<Vec<u64>> {
        matrix
            .read()
            .unwrap()
            .iter()
            .map(|row| row.iter().map(|c| c.load(Ordering::Relaxed)).collect())
            .collect()
    }

    /// A consistent-enough point-in-time copy (individual counters are
    /// loaded relaxed; the profiler only needs monotone readings).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            records_out: self.records_out.load(Ordering::Relaxed),
            records_in: self.records_in.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_sent: self.total_bytes_sent(),
            bytes_received: self.total_bytes_received(),
            spills: self.spills.load(Ordering::Relaxed),
            spill_bytes: self.spill_bytes.load(Ordering::Relaxed),
            spill_wire_bytes: self.spill_wire_bytes.load(Ordering::Relaxed),
            spill_blocks_read: self.spill_blocks_read.load(Ordering::Relaxed),
            spill_blocks_skipped: self.spill_blocks_skipped.load(Ordering::Relaxed),
            spill_seeks: self.spill_seeks.load(Ordering::Relaxed),
            buffer_hwm_bytes: self.buffer_hwm_bytes.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            recovered_tasks: self.recovered_tasks.load(Ordering::Relaxed),
            wire_bytes_sent: self.wire_bytes_sent.load(Ordering::Relaxed),
            wire_bytes_received: self.wire_bytes_received.load(Ordering::Relaxed),
            wire_raw_bytes_sent: self.wire_raw_bytes_sent.load(Ordering::Relaxed),
            wire_frames_sent: self.wire_frames_sent.load(Ordering::Relaxed),
            wire_batches_sent: self.wire_batches_sent.load(Ordering::Relaxed),
            wire_send_syscalls: self.wire_send_syscalls.load(Ordering::Relaxed),
            wire_frames_received: self.wire_frames_received.load(Ordering::Relaxed),
            wire_batches_received: self.wire_batches_received.load(Ordering::Relaxed),
            wire_recv_syscalls: self.wire_recv_syscalls.load(Ordering::Relaxed),
            combiner_records_in: self.combiner_records_in.load(Ordering::Relaxed),
            combiner_records_out: self.combiner_records_out.load(Ordering::Relaxed),
            heartbeats: self.heartbeats.load(Ordering::Relaxed),
            speculative_attempts: self.speculative_attempts.load(Ordering::Relaxed),
            speculative_commits: self.speculative_commits.load(Ordering::Relaxed),
            tasks_stolen: self.tasks_stolen.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_matrix_accumulates() {
        let reg = MetricsRegistry::new();
        reg.begin_job(3);
        reg.add_frame_sent(0, 2, 100);
        reg.add_frame_sent(0, 2, 50);
        reg.add_frame_sent(1, 0, 7);
        reg.add_bytes_received(2, 0, 150);
        assert_eq!(reg.total_bytes_sent(), 157);
        assert_eq!(reg.total_bytes_received(), 150);
        assert_eq!(reg.sent_matrix()[0][2], 150);
        assert_eq!(reg.recv_matrix()[2][0], 150);
        assert_eq!(reg.snapshot().frames_sent, 3);
    }

    #[test]
    fn begin_job_grows_without_losing_counts() {
        let reg = MetricsRegistry::new();
        reg.begin_job(2);
        reg.add_frame_sent(0, 1, 10);
        reg.begin_job(4);
        reg.add_frame_sent(0, 3, 5);
        reg.add_frame_sent(3, 0, 2);
        assert_eq!(reg.sent_matrix()[0][1], 10);
        assert_eq!(reg.total_bytes_sent(), 17);
        // Shrinking never happens: a smaller begin_job keeps the matrix.
        reg.begin_job(2);
        assert_eq!(reg.sent_matrix().len(), 4);
    }

    #[test]
    fn hwm_is_a_max_not_a_sum() {
        let reg = MetricsRegistry::new();
        reg.observe_buffer_level(10);
        reg.observe_buffer_level(4);
        reg.observe_buffer_level(12);
        assert_eq!(reg.snapshot().buffer_hwm_bytes, 12);
    }

    #[test]
    fn hwm_is_monotonic_under_concurrent_observers() {
        // Regression: racing O workers reporting interleaved levels must
        // settle on the true maximum — a lost update (last-write-wins)
        // would leave a smaller value behind.
        let reg = Arc::new(MetricsRegistry::new());
        let threads = 8u64;
        let per = 2000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    // Every thread sweeps down from its own peak, so low
                    // observations constantly chase high ones.
                    let peak = (t + 1) * per;
                    for v in (1..=peak).rev() {
                        reg.observe_buffer_level(v);
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().buffer_hwm_bytes, threads * per);
    }

    #[test]
    fn straggler_defense_counters_accumulate() {
        let reg = MetricsRegistry::new();
        reg.add_heartbeats(3);
        reg.add_heartbeats(2);
        reg.add_speculative_attempt();
        reg.add_speculative_commit();
        reg.add_task_stolen();
        reg.add_task_stolen();
        let snap = reg.snapshot();
        assert_eq!(snap.heartbeats, 5);
        assert_eq!(snap.speculative_attempts, 1);
        assert_eq!(snap.speculative_commits, 1);
        assert_eq!(snap.tasks_stolen, 2);
    }

    #[test]
    fn rows_are_shared_handles() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.begin_job(2);
        let row = reg.sent_row(0).unwrap();
        row[1].fetch_add(33, Ordering::Relaxed);
        assert_eq!(reg.total_bytes_sent(), 33);
        assert!(reg.sent_row(9).is_none());
    }
}
