//! Observability for the real runtime: structured tracing, a metrics
//! registry, and a sampling profiler.
//!
//! The paper's evidence is profiles, not just end-to-end times: dstat-style
//! CPU/disk/network/memory curves (Figure 4) and per-phase breakdowns that
//! show *where* DataMPI's pipelining buys its win. The simulator has had
//! those since day one (`dcsim::MetricsRecorder`); this module gives the
//! executing runtime the same eyes:
//!
//! * [`Observer`] — the shared sink. Clone it into a
//!   [`JobConfig`](crate::JobConfig) via `with_observer` and every rank
//!   records spans ([`TraceEvent`]) and counters ([`MetricsRegistry`]).
//!   When no observer is installed the runtime's hooks are `Option` checks
//!   on a `None` — the layer costs nothing when disabled.
//! * [`Tracer`] — a per-rank, thread-local recording handle
//!   (`Rc<RefCell<…>>`, deliberately `!Send`): pushing a span is a vector
//!   push, no locks, no allocation beyond the event itself. Buffers are
//!   merged into the job-wide [`Trace`] when each rank finishes.
//! * [`Profiler`] — a background thread sampling process CPU/RSS plus the
//!   registry into the simulator's own `ResourceProfile`, so real runs and
//!   simulated runs emit comparable Figure-4 curves.
//! * [`Clock`] / [`ManualClock`] — injectable time, so tests drive spans
//!   deterministically.
//!
//! Export a merged trace with [`Trace::to_chrome_json`] and load it in
//! `chrome://tracing` or <https://ui.perfetto.dev>: attempts appear as
//! process rows, ranks as thread rows, recovery events as instants.

mod clock;
mod histogram;
mod metrics;
mod profiler;
mod telemetry;
mod trace;

pub use clock::{Clock, ManualClock};
pub use histogram::{
    bucket_bound, bucket_index, HistKind, HistogramSnapshot, Histograms, LogHistogram,
    HISTOGRAM_BUCKETS,
};
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use profiler::{
    integrate, process_cpu_secs, process_rss_bytes, ProfileSource, Profiler, Sample, SampleSeries,
};
pub use telemetry::{
    ClockSync, RankTelemetry, TelemetryAggregator, TelemetryFrame, TelemetrySink, COUNTER_FIELDS,
};
pub use trace::{PhaseTotals, SpanKind, Trace, TraceEvent, JOB_LANE};

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct Inner {
    clock: Clock,
    registry: MetricsRegistry,
    events: Mutex<Vec<TraceEvent>>,
}

/// The shared observability sink for one job (or one supervised run).
///
/// Cheap to clone (an `Arc`); all recording goes through per-rank
/// [`Tracer`]s or the atomic [`MetricsRegistry`], so cloning and passing
/// it around costs nothing on hot paths.
#[derive(Clone, Debug)]
pub struct Observer {
    inner: Arc<Inner>,
}

impl Default for Observer {
    fn default() -> Self {
        Self::new()
    }
}

impl Observer {
    /// An observer on the real (monotonic) clock.
    pub fn new() -> Self {
        Self::with_clock(Clock::real())
    }

    /// An observer on an explicit clock — pass a
    /// [`ManualClock`](Clock::Manual) for deterministic tests.
    pub fn with_clock(clock: Clock) -> Self {
        Observer {
            inner: Arc::new(Inner {
                clock,
                registry: MetricsRegistry::new(),
                events: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Sizes the registry's per-peer matrices before ranks start.
    pub fn begin_job(&self, ranks: usize) {
        self.inner.registry.begin_job(ranks);
    }

    /// The live counters.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.inner.registry
    }

    /// Microseconds since the observer's epoch.
    pub fn now_micros(&self) -> u64 {
        self.inner.clock.now_micros()
    }

    /// A recording handle for worker rank `rank` of `attempt`. Create it
    /// *inside* the rank's thread: the tracer is `!Send` by design.
    pub fn rank_tracer(&self, rank: u32, attempt: u32) -> Tracer {
        Tracer {
            inner: Arc::clone(&self.inner),
            buf: Rc::new(RefCell::new(Vec::new())),
            rank,
            attempt,
            task: None,
        }
    }

    /// A recording handle for job-level events (attempt spans, retries).
    pub fn job_tracer(&self, attempt: u32) -> Tracer {
        self.rank_tracer(JOB_LANE, attempt)
    }

    /// Merges a tracer's buffered events into the job-wide log and returns
    /// the per-phase wall-time totals of just the drained events.
    pub fn absorb(&self, tracer: &Tracer) -> PhaseTotals {
        let mut drained = tracer.buf.borrow_mut();
        let mut totals = PhaseTotals::default();
        for ev in drained.iter() {
            totals.add_event(ev);
        }
        self.inner.events.lock().unwrap().append(&mut drained);
        totals
    }

    /// Records one event directly into the job-wide log (used by the
    /// supervisor, which runs outside any rank thread).
    pub fn record(&self, ev: TraceEvent) {
        self.inner.events.lock().unwrap().push(ev);
    }

    /// A snapshot of everything absorbed so far, sorted by start time.
    pub fn trace(&self) -> Trace {
        Trace::new(self.inner.events.lock().unwrap().clone())
    }

    /// Drains the absorbed events, leaving the log empty. The telemetry
    /// shipper uses this so each span crosses the wire exactly once.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.inner.events.lock().unwrap())
    }
}

/// A per-rank (or job-level) recording handle. Pushing an event is a
/// `RefCell` borrow and a `Vec::push` — no locking, no syscalls.
///
/// `!Send` on purpose: each rank thread builds its own, and the
/// [`Observer`] merges buffers at rank exit via [`Observer::absorb`].
#[derive(Clone, Debug)]
pub struct Tracer {
    inner: Arc<Inner>,
    buf: Rc<RefCell<Vec<TraceEvent>>>,
    rank: u32,
    attempt: u32,
    task: Option<u64>,
}

impl Tracer {
    /// A handle scoped to O task `task`, sharing this tracer's buffer.
    pub fn for_task(&self, task: u64) -> Tracer {
        Tracer {
            inner: Arc::clone(&self.inner),
            buf: Rc::clone(&self.buf),
            rank: self.rank,
            attempt: self.attempt,
            task: Some(task),
        }
    }

    /// Current clock reading, for bracketing a span.
    pub fn start(&self) -> u64 {
        self.inner.clock.now_micros()
    }

    /// Records a span that began at `start_us` (from [`Tracer::start`])
    /// and ends now.
    pub fn span(&self, kind: SpanKind, start_us: u64, args: Vec<(&'static str, String)>) {
        let now = self.inner.clock.now_micros();
        self.push(TraceEvent {
            kind,
            ts_us: start_us,
            dur_us: now.saturating_sub(start_us),
            instant: false,
            rank: self.rank,
            attempt: self.attempt,
            task: self.task,
            args,
        });
    }

    /// Records a point event at the current time.
    pub fn instant(&self, kind: SpanKind, args: Vec<(&'static str, String)>) {
        let now = self.inner.clock.now_micros();
        self.push(TraceEvent {
            kind,
            ts_us: now,
            dur_us: 0,
            instant: true,
            rank: self.rank,
            attempt: self.attempt,
            task: self.task,
            args,
        });
    }

    /// The registry shared with the observer, for counter updates next to
    /// span recording.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.inner.registry
    }

    /// Events buffered but not yet absorbed.
    pub fn pending(&self) -> usize {
        self.buf.borrow().len()
    }

    fn push(&self, ev: TraceEvent) {
        self.buf.borrow_mut().push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_through_manual_clock() {
        let clock = ManualClock::new();
        let obs = Observer::with_clock(Clock::Manual(clock.clone()));
        let t = obs.rank_tracer(0, 0);
        let start = t.start();
        clock.advance_micros(40);
        t.span(SpanKind::OTask, start, vec![]);
        clock.advance_micros(5);
        t.instant(SpanKind::Fault, vec![("cause", "test".into())]);
        assert_eq!(t.pending(), 2);
        let totals = obs.absorb(&t);
        assert_eq!(totals.o_task_us, 40);
        assert_eq!(t.pending(), 0);
        let trace = obs.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.events()[0].dur_us, 40);
        assert_eq!(trace.events()[1].ts_us, 45);
        assert!(trace.events()[1].instant);
    }

    #[test]
    fn task_scoped_tracers_share_one_buffer() {
        let obs = Observer::with_clock(Clock::Manual(ManualClock::new()));
        let t = obs.rank_tracer(3, 1);
        let tt = t.for_task(7);
        tt.span(SpanKind::Send, tt.start(), vec![]);
        t.span(SpanKind::Recv, t.start(), vec![]);
        assert_eq!(t.pending(), 2);
        obs.absorb(&t);
        let trace = obs.trace();
        assert_eq!(trace.events()[0].task, Some(7));
        assert_eq!(trace.events()[1].task, None);
        assert!(trace.events().iter().all(|e| e.rank == 3 && e.attempt == 1));
    }

    #[test]
    fn job_tracer_uses_job_lane() {
        let obs = Observer::new();
        let jt = obs.job_tracer(2);
        jt.instant(SpanKind::Retry, vec![]);
        obs.absorb(&jt);
        assert_eq!(obs.trace().events()[0].rank, JOB_LANE);
    }
}
