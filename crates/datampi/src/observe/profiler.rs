//! Sampling profiler: Figure-4-style resource curves for *real* runs.
//!
//! A background thread snapshots process CPU time, resident set size and
//! the metrics registry at a fixed interval, converts consecutive
//! snapshots into [`IntervalRates`](dmpi_dcsim::metrics::IntervalRates),
//! and feeds them into the simulator's own
//! [`MetricsRecorder`](dmpi_dcsim::metrics::MetricsRecorder) — so a real
//! job produces the exact same
//! [`ResourceProfile`](dmpi_dcsim::metrics::ResourceProfile) type the
//! simulator emits, and the two can be compared series-by-series.
//!
//! The deterministic core is [`SampleSeries`]: tests push hand-made
//! samples and check the bucketed output without threads or `/proc`.

use super::Observer;
use dmpi_dcsim::metrics::{IntervalRates, MetricsRecorder, ResourceProfile};
use dmpi_dcsim::ClusterSpec;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// One absolute reading of the process and registry, as of `wall_secs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sample {
    /// Seconds since the profiler started.
    pub wall_secs: f64,
    /// Cumulative process CPU seconds (user + system).
    pub cpu_secs: f64,
    /// Resident set size, bytes.
    pub rss_bytes: f64,
    /// Cumulative payload bytes sent (from the registry).
    pub net_bytes: f64,
    /// Cumulative spill bytes written (from the registry).
    pub spill_bytes: f64,
}

/// Deterministic sample-to-buckets pipeline.
///
/// Consecutive samples become piecewise-constant rates over the interval
/// between them (cumulative counters are differenced; RSS is carried as a
/// level), integrated into fixed-width buckets by the simulator's
/// recorder. Flows therefore *integrate exactly*: summing a finished
/// series times the bucket width recovers the total counter delta, which
/// the property tests assert against the registry.
#[derive(Debug)]
pub struct SampleSeries {
    recorder: MetricsRecorder,
    last: Option<Sample>,
}

impl SampleSeries {
    /// A series for a `ranks`-thread process, bucketed at `bucket_secs`.
    ///
    /// The process is modelled as a synthetic one-node cluster whose CPU
    /// capacity is the rank count, so `cpu_util_pct = 100` means every
    /// rank thread was on-core for the whole bucket.
    pub fn new(ranks: usize, bucket_secs: f64) -> Self {
        let spec = ClusterSpec {
            nodes: 1,
            cpu_capacity: ranks.max(1) as f64,
            disk_bw: f64::MAX,
            net_bw: f64::MAX,
            mem_bytes: u64::MAX,
        };
        SampleSeries {
            recorder: MetricsRecorder::new(&spec, bucket_secs),
            last: None,
        }
    }

    /// Absorbs the next absolute reading. Out-of-order or zero-width
    /// samples are ignored.
    pub fn push(&mut self, s: Sample) {
        if let Some(prev) = self.last {
            let dt = s.wall_secs - prev.wall_secs;
            if dt > 0.0 {
                let rates = IntervalRates {
                    cpu_cores: ((s.cpu_secs - prev.cpu_secs) / dt).max(0.0),
                    wait_io_cores: 0.0,
                    disk_read_bps: 0.0,
                    disk_write_bps: ((s.spill_bytes - prev.spill_bytes) / dt).max(0.0),
                    net_bps: ((s.net_bytes - prev.net_bytes) / dt).max(0.0),
                    // A level, not a flow: average the endpoints.
                    mem_bytes: (prev.rss_bytes + s.rss_bytes) / 2.0,
                    down_nodes: 0.0,
                };
                self.recorder
                    .add_interval(prev.wall_secs, s.wall_secs, &rates);
            }
        }
        if self.last.is_none_or(|p| s.wall_secs >= p.wall_secs) {
            self.last = Some(s);
        }
    }

    /// Finalizes the bucketed time series.
    pub fn finish(self) -> ResourceProfile {
        self.recorder.finish()
    }
}

/// Integral of a flow series (`value/s` per bucket) over the whole run:
/// `sum(series) * bucket_secs`, in the series' own value unit × seconds.
pub fn integrate(series: &[f64], bucket_secs: f64) -> f64 {
    series.iter().sum::<f64>() * bucket_secs
}

/// Cumulative process CPU seconds (user + system) from `/proc/self/stat`.
/// `None` off Linux or if the file is unreadable.
pub fn process_cpu_secs() -> Option<f64> {
    #[cfg(target_os = "linux")]
    {
        let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
        // Skip past the parenthesised comm field, which may contain spaces.
        let rest = &stat[stat.rfind(')')? + 2..];
        let mut fields = rest.split_ascii_whitespace();
        // After comm, utime is field 14 and stime field 15 of stat overall,
        // i.e. the 12th and 13th of `rest` (state is the 1st).
        let utime: f64 = fields.nth(11)?.parse().ok()?;
        let stime: f64 = fields.next()?.parse().ok()?;
        // Linux reports jiffies at USER_HZ, fixed at 100 on every modern
        // kernel ABI regardless of the scheduler tick.
        const CLK_TCK: f64 = 100.0;
        Some((utime + stime) / CLK_TCK)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Resident set size in bytes from `/proc/self/statm`. `None` off Linux.
pub fn process_rss_bytes() -> Option<f64> {
    #[cfg(target_os = "linux")]
    {
        let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
        let pages: f64 = statm.split_ascii_whitespace().nth(1)?.parse().ok()?;
        // Page size is 4 KiB on every platform this runs on; avoiding a
        // libc dependency is worth the assumption.
        Some(pages * 4096.0)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Where a profile's process-level series (CPU seconds, RSS) came from.
///
/// On hosts without a readable `/proc/self/stat` / `/proc/self/statm`
/// (non-Linux, locked-down containers) the profiler cannot observe the
/// process, and fabricating zero CPU / zero RSS would silently pollute
/// downstream artifacts like `BENCH_profile.json` with plausible-looking
/// flatlines. The marker makes the degradation explicit: consumers must
/// check it and drop (or label) the process-level series when it is
/// [`Unavailable`](ProfileSource::Unavailable). Registry-driven series
/// (network, spill) are always real — they never touch `/proc`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProfileSource {
    /// `/proc` was readable: CPU and RSS series are real measurements.
    Proc,
    /// `/proc` readings were missing: CPU and RSS series are zeros and
    /// must not be interpreted as measurements.
    Unavailable,
}

impl ProfileSource {
    /// Stable name for artifact JSON.
    pub fn name(self) -> &'static str {
        match self {
            ProfileSource::Proc => "proc",
            ProfileSource::Unavailable => "unavailable",
        }
    }
}

/// Background sampling thread over a live [`Observer`].
///
/// ```no_run
/// use datampi::observe::{Observer, Profiler};
/// use std::time::Duration;
/// let observer = Observer::new();
/// let profiler = Profiler::spawn(observer.clone(), Duration::from_millis(5), 0.025, 2);
/// // ... run the job with `observer` installed ...
/// let profile = profiler.stop();
/// println!("{} buckets of CPU%", profile.cpu_util_pct.len());
/// ```
#[derive(Debug)]
pub struct Profiler {
    stop: Arc<AtomicBool>,
    handle: thread::JoinHandle<(SampleSeries, ProfileSource)>,
}

impl Profiler {
    /// Starts sampling `observer`'s registry plus process CPU/RSS every
    /// `interval`, bucketing at `bucket_secs`, for a `ranks`-thread job.
    pub fn spawn(
        observer: Observer,
        interval: Duration,
        bucket_secs: f64,
        ranks: usize,
    ) -> Profiler {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("dmpi-profiler".into())
            .spawn(move || {
                let mut series = SampleSeries::new(ranks, bucket_secs);
                let epoch = Instant::now();
                let cpu0 = process_cpu_secs();
                // One missing reading anywhere downgrades the whole
                // profile: a partially-zero CPU curve is as misleading
                // as a fully-zero one.
                let mut source = match (cpu0, process_rss_bytes()) {
                    (Some(_), Some(_)) => ProfileSource::Proc,
                    _ => ProfileSource::Unavailable,
                };
                let cpu0 = cpu0.unwrap_or(0.0);
                loop {
                    let snap = observer.registry().snapshot();
                    let (cpu, rss) = match (process_cpu_secs(), process_rss_bytes()) {
                        (Some(cpu), Some(rss)) => (cpu - cpu0, rss),
                        _ => {
                            source = ProfileSource::Unavailable;
                            (0.0, 0.0)
                        }
                    };
                    series.push(Sample {
                        wall_secs: epoch.elapsed().as_secs_f64(),
                        cpu_secs: cpu,
                        rss_bytes: rss,
                        net_bytes: snap.bytes_sent as f64,
                        spill_bytes: snap.spill_bytes as f64,
                    });
                    if stop_flag.load(Ordering::Relaxed) {
                        return (series, source);
                    }
                    thread::sleep(interval);
                }
            })
            .expect("spawn profiler thread");
        Profiler { stop, handle }
    }

    /// Takes a final sample, stops the thread, and returns the finished
    /// bucketed time series. Prefer [`stop_with_source`](Self::stop_with_source)
    /// when the result feeds an artifact — it says whether the CPU/RSS
    /// series are real.
    pub fn stop(self) -> ResourceProfile {
        self.stop_with_source().0
    }

    /// [`stop`](Self::stop), plus where the process-level series came
    /// from. When the source is [`ProfileSource::Unavailable`] the
    /// CPU/memory series are zeros and must be labelled or dropped, not
    /// reported as measurements.
    pub fn stop_with_source(self) -> (ResourceProfile, ProfileSource) {
        self.stop.store(true, Ordering::Relaxed);
        let (series, source) = self.handle.join().expect("profiler thread panicked");
        (series.finish(), source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(wall: f64, cpu: f64, rss: f64, net: f64, spill: f64) -> Sample {
        Sample {
            wall_secs: wall,
            cpu_secs: cpu,
            rss_bytes: rss,
            net_bytes: net,
            spill_bytes: spill,
        }
    }

    #[test]
    fn flows_integrate_exactly() {
        let mut s = SampleSeries::new(2, 0.5);
        s.push(sample(0.0, 0.0, 0.0, 0.0, 0.0));
        s.push(sample(0.7, 0.4, 0.0, 1_000_000.0, 250_000.0));
        s.push(sample(1.8, 1.0, 0.0, 4_000_000.0, 250_000.0));
        let p = s.finish();
        let net_bytes = integrate(&p.net_mb_s, p.bucket_secs) * (1 << 20) as f64;
        assert!(
            (net_bytes - 4_000_000.0).abs() < 1.0,
            "net integral {net_bytes} != 4e6"
        );
        let spill = integrate(&p.disk_write_mb_s, p.bucket_secs) * (1 << 20) as f64;
        assert!((spill - 250_000.0).abs() < 1.0);
        // CPU: 1.0 cpu-sec over 1.8 wall-sec on capacity 2 → the integral
        // of util% recovers the cpu seconds.
        let cpu_secs = integrate(&p.cpu_util_pct, p.bucket_secs) / 100.0 * 2.0;
        assert!((cpu_secs - 1.0).abs() < 1e-9);
    }

    #[test]
    fn memory_tracks_levels() {
        let mut s = SampleSeries::new(1, 1.0);
        let gb = (1u64 << 30) as f64;
        s.push(sample(0.0, 0.0, 2.0 * gb, 0.0, 0.0));
        s.push(sample(1.0, 0.0, 2.0 * gb, 0.0, 0.0));
        let p = s.finish();
        assert_eq!(p.len(), 1);
        assert!((p.mem_gb[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_order_and_duplicate_samples_ignored() {
        let mut s = SampleSeries::new(1, 1.0);
        s.push(sample(1.0, 0.1, 0.0, 0.0, 0.0));
        s.push(sample(0.5, 0.0, 0.0, 0.0, 0.0)); // backwards: dropped
        s.push(sample(1.0, 0.1, 0.0, 0.0, 0.0)); // zero-width: dropped
        s.push(sample(2.0, 0.6, 0.0, 0.0, 0.0));
        let p = s.finish();
        let cpu_secs = integrate(&p.cpu_util_pct, p.bucket_secs) / 100.0;
        assert!((cpu_secs - 0.5).abs() < 1e-9);
    }

    #[test]
    fn profiler_marks_its_source_explicitly() {
        let obs = Observer::new();
        let p = Profiler::spawn(obs, Duration::from_millis(1), 0.005, 1);
        thread::sleep(Duration::from_millis(5));
        let (_, source) = p.stop_with_source();
        if cfg!(target_os = "linux") {
            assert_eq!(source, ProfileSource::Proc);
        } else {
            // Off Linux /proc never resolves: the marker, not zeros,
            // reports the degradation.
            assert_eq!(source, ProfileSource::Unavailable);
        }
        assert_eq!(ProfileSource::Unavailable.name(), "unavailable");
        assert_eq!(ProfileSource::Proc.name(), "proc");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn proc_readers_return_plausible_values() {
        let cpu = process_cpu_secs().expect("/proc/self/stat readable");
        assert!(cpu >= 0.0);
        let rss = process_rss_bytes().expect("/proc/self/statm readable");
        assert!(rss > 0.0, "a running test has resident memory");
    }
}
