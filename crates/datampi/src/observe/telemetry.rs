//! The distributed telemetry plane: how per-rank observations reach the
//! coordinator.
//!
//! A multi-process job (`dmpirun`) runs every rank in its own process,
//! so the in-proc [`Observer`]'s shared registry and span log do not
//! exist job-wide. This module closes that gap in three pieces:
//!
//! * **Clock sync** ([`ClockSync`]) — at registration each worker runs a
//!   one-round offset exchange with the coordinator (send local time,
//!   read coordinator time, midpoint-correct by half the RTT). Every
//!   span timestamp the worker ships is pre-corrected onto the
//!   coordinator's timeline, so a merged trace from N processes lines up
//!   on one time axis.
//! * **Telemetry frames** ([`TelemetryFrame`]) — periodically (and once
//!   more at job end) a worker snapshots its registry (cumulative
//!   counters — the coordinator differences consecutive frames into
//!   rates), its histogram channels, its per-peer byte rows, and drains
//!   its sealed spans, then ships one `tlm …` line over the rendezvous
//!   control stream it already holds open for the final `done` line.
//!   The encoding is line-oriented text like the rest of the rendezvous
//!   protocol: space-separated `key=value` fields, with percent-escaping
//!   inside span args.
//! * **Aggregation** ([`TelemetryAggregator`]) — the coordinator absorbs
//!   frames from all ranks: latest-wins per rank for cumulative state,
//!   bucket-addition for histograms, append for spans. From it `dmpirun`
//!   renders the live progress line, the merged Chrome trace
//!   (`--trace-out`), and the final `job-report.json` (`--report-out`,
//!   schema documented in BENCHMARKS.md).

use std::fmt::Write as _;

use super::histogram::{HistKind, HistogramSnapshot};
use super::metrics::MetricsSnapshot;
use super::trace::{json_escape, SpanKind, Trace, TraceEvent};
use super::Observer;

/// Result of the registration-time clock exchange.
///
/// The worker records `t0` (its clock) just before sending its
/// registration, the coordinator stamps `coord_now` when it answers, and
/// the worker records `t1` on receipt. Assuming the reply sits at the
/// midpoint of the round trip, the worker's clock is behind the
/// coordinator's by `offset_us = coord_now - (t0 + t1) / 2`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClockSync {
    /// Microseconds to add to a local timestamp to land on the
    /// coordinator's timeline (may be negative).
    pub offset_us: i64,
    /// The measured registration round trip, µs — the error bound on
    /// the offset.
    pub rtt_us: u64,
}

impl ClockSync {
    /// Computes the sync from one exchange (`t0`/`t1` local µs,
    /// `coord_now` coordinator µs).
    pub fn from_exchange(t0: u64, coord_now: u64, t1: u64) -> ClockSync {
        let midpoint = (t0 / 2) + (t1 / 2) + (t0 % 2 + t1 % 2) / 2;
        ClockSync {
            offset_us: coord_now as i64 - midpoint as i64,
            rtt_us: t1.saturating_sub(t0),
        }
    }

    /// Maps a local timestamp onto the coordinator's timeline.
    pub fn apply(&self, local_ts_us: u64) -> u64 {
        (local_ts_us as i64).saturating_add(self.offset_us).max(0) as u64
    }
}

/// The cumulative counter fields a telemetry frame carries, in wire
/// order. Shared by the encoder, the parser, and the report renderer so
/// the three can never disagree on a name.
pub const COUNTER_FIELDS: [&str; 29] = [
    "records_out",
    "records_in",
    "frames_sent",
    "bytes_sent",
    "bytes_received",
    "spills",
    "spill_bytes",
    "buffer_hwm_bytes",
    "retries",
    "recovered_tasks",
    "wire_bytes_sent",
    "wire_bytes_received",
    "combiner_records_in",
    "combiner_records_out",
    "heartbeats",
    "speculative_attempts",
    "speculative_commits",
    "tasks_stolen",
    // Wire-detail counters ride at the end so older frame layouts stay
    // index-compatible with this one.
    "wire_raw_bytes_sent",
    "wire_frames_sent",
    "wire_batches_sent",
    "wire_send_syscalls",
    "wire_frames_received",
    "wire_batches_received",
    "wire_recv_syscalls",
    // Spill-format counters, appended for the same reason.
    "spill_wire_bytes",
    "spill_blocks_read",
    "spill_blocks_skipped",
    "spill_seeks",
];

fn counter_get(s: &MetricsSnapshot, key: &str) -> u64 {
    match key {
        "records_out" => s.records_out,
        "records_in" => s.records_in,
        "frames_sent" => s.frames_sent,
        "bytes_sent" => s.bytes_sent,
        "bytes_received" => s.bytes_received,
        "spills" => s.spills,
        "spill_bytes" => s.spill_bytes,
        "buffer_hwm_bytes" => s.buffer_hwm_bytes,
        "retries" => s.retries,
        "recovered_tasks" => s.recovered_tasks,
        "wire_bytes_sent" => s.wire_bytes_sent,
        "wire_bytes_received" => s.wire_bytes_received,
        "combiner_records_in" => s.combiner_records_in,
        "combiner_records_out" => s.combiner_records_out,
        "heartbeats" => s.heartbeats,
        "speculative_attempts" => s.speculative_attempts,
        "speculative_commits" => s.speculative_commits,
        "tasks_stolen" => s.tasks_stolen,
        "wire_raw_bytes_sent" => s.wire_raw_bytes_sent,
        "wire_frames_sent" => s.wire_frames_sent,
        "wire_batches_sent" => s.wire_batches_sent,
        "wire_send_syscalls" => s.wire_send_syscalls,
        "wire_frames_received" => s.wire_frames_received,
        "wire_batches_received" => s.wire_batches_received,
        "wire_recv_syscalls" => s.wire_recv_syscalls,
        "spill_wire_bytes" => s.spill_wire_bytes,
        "spill_blocks_read" => s.spill_blocks_read,
        "spill_blocks_skipped" => s.spill_blocks_skipped,
        "spill_seeks" => s.spill_seeks,
        _ => 0,
    }
}

fn counter_set(s: &mut MetricsSnapshot, key: &str, v: u64) {
    match key {
        "records_out" => s.records_out = v,
        "records_in" => s.records_in = v,
        "frames_sent" => s.frames_sent = v,
        "bytes_sent" => s.bytes_sent = v,
        "bytes_received" => s.bytes_received = v,
        "spills" => s.spills = v,
        "spill_bytes" => s.spill_bytes = v,
        "buffer_hwm_bytes" => s.buffer_hwm_bytes = v,
        "retries" => s.retries = v,
        "recovered_tasks" => s.recovered_tasks = v,
        "wire_bytes_sent" => s.wire_bytes_sent = v,
        "wire_bytes_received" => s.wire_bytes_received = v,
        "combiner_records_in" => s.combiner_records_in = v,
        "combiner_records_out" => s.combiner_records_out = v,
        "heartbeats" => s.heartbeats = v,
        "speculative_attempts" => s.speculative_attempts = v,
        "speculative_commits" => s.speculative_commits = v,
        "tasks_stolen" => s.tasks_stolen = v,
        "wire_raw_bytes_sent" => s.wire_raw_bytes_sent = v,
        "wire_frames_sent" => s.wire_frames_sent = v,
        "wire_batches_sent" => s.wire_batches_sent = v,
        "wire_send_syscalls" => s.wire_send_syscalls = v,
        "wire_frames_received" => s.wire_frames_received = v,
        "wire_batches_received" => s.wire_batches_received = v,
        "wire_recv_syscalls" => s.wire_recv_syscalls = v,
        "spill_wire_bytes" => s.spill_wire_bytes = v,
        "spill_blocks_read" => s.spill_blocks_read = v,
        "spill_blocks_skipped" => s.spill_blocks_skipped = v,
        "spill_seeks" => s.spill_seeks = v,
        _ => {}
    }
}

/// Span arg keys survive the wire only when interned back to the static
/// strings [`TraceEvent`] requires; unknown keys are dropped rather than
/// leaked.
fn intern_arg_key(key: &str) -> Option<&'static str> {
    const KNOWN: [&str; 20] = [
        "bytes",
        "cause",
        "peer",
        "records",
        "frames",
        "groups",
        "chunk",
        "splits",
        "ranks",
        "shrunk",
        "next_attempt",
        "next_ranks",
        "aborted",
        "speculative",
        "send",
        "recv",
        "sort",
        "spill",
        "window",
        "crc",
    ];
    KNOWN.iter().find(|k| **k == key).copied()
}

/// Percent-escapes a string so it contains no whitespace or telemetry
/// separators (`, ; : = %`).
fn pct_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b',' | b';' | b':' | b'=' | b'%' | 0x00..=0x20 | 0x7f => {
                let _ = write!(out, "%{b:02x}");
            }
            _ => out.push(b as char),
        }
    }
    out
}

fn pct_unescape(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

fn encode_span(out: &mut String, e: &TraceEvent) {
    let _ = write!(
        out,
        "{},{},{},{},{},{},{}",
        e.kind.name(),
        e.ts_us,
        e.dur_us,
        if e.instant { 1 } else { 0 },
        e.rank,
        e.attempt,
        e.task.map_or_else(|| "-".to_string(), |t| t.to_string()),
    );
    for (k, v) in &e.args {
        let _ = write!(out, ",{}:{}", k, pct_escape(v));
    }
}

fn parse_span(s: &str) -> Option<TraceEvent> {
    let mut it = s.split(',');
    let kind = SpanKind::parse(it.next()?)?;
    let ts_us = it.next()?.parse().ok()?;
    let dur_us = it.next()?.parse().ok()?;
    let instant = it.next()? == "1";
    let rank = it.next()?.parse().ok()?;
    let attempt = it.next()?.parse().ok()?;
    let task = match it.next()? {
        "-" => None,
        t => Some(t.parse().ok()?),
    };
    let mut args = Vec::new();
    for pair in it {
        let (k, v) = pair.split_once(':')?;
        if let Some(key) = intern_arg_key(k) {
            args.push((key, pct_unescape(v)?));
        }
    }
    Some(TraceEvent {
        kind,
        ts_us,
        dur_us,
        instant,
        rank,
        attempt,
        task,
        args,
    })
}

/// One shipment from a rank to the coordinator: cumulative counters,
/// histogram buckets, per-peer byte rows, and the spans sealed since the
/// previous frame (timestamps already offset-corrected).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetryFrame {
    /// Reporting rank.
    pub rank: u32,
    /// Monotone per-rank sequence number; the aggregator drops stale
    /// reordered frames.
    pub seq: u64,
    /// True for the end-of-job frame (ships ahead of the `done` line).
    pub is_final: bool,
    /// The rank's clock offset onto the coordinator timeline, µs.
    pub offset_us: i64,
    /// The offset's error bound (registration RTT), µs.
    pub rtt_us: u64,
    /// Cumulative registry counters as of this frame.
    pub counters: MetricsSnapshot,
    /// Non-empty histogram channels, cumulative.
    pub histograms: Vec<(HistKind, HistogramSnapshot)>,
    /// `sent[rank][peer]` payload bytes (this rank's row).
    pub sent_row: Vec<u64>,
    /// `recv[rank][peer]` payload bytes (this rank's row).
    pub recv_row: Vec<u64>,
    /// Spans sealed since the last frame, offset-corrected.
    pub spans: Vec<TraceEvent>,
}

impl TelemetryFrame {
    /// Collects a frame from a live observer: snapshots counters and
    /// histograms, copies this rank's matrix rows, drains the span log,
    /// and corrects every drained timestamp with `sync`.
    pub fn collect(
        observer: &Observer,
        rank: u32,
        seq: u64,
        is_final: bool,
        sync: ClockSync,
    ) -> TelemetryFrame {
        let registry = observer.registry();
        let rank_ix = rank as usize;
        let mut spans = observer.take_events();
        for e in &mut spans {
            e.ts_us = sync.apply(e.ts_us);
        }
        TelemetryFrame {
            rank,
            seq,
            is_final,
            offset_us: sync.offset_us,
            rtt_us: sync.rtt_us,
            counters: registry.snapshot(),
            histograms: registry
                .histograms()
                .snapshot_all()
                .into_iter()
                .filter(|(_, h)| !h.is_empty())
                .collect(),
            sent_row: registry
                .sent_matrix()
                .get(rank_ix)
                .cloned()
                .unwrap_or_default(),
            recv_row: registry
                .recv_matrix()
                .get(rank_ix)
                .cloned()
                .unwrap_or_default(),
            spans,
        }
    }

    /// The one-line wire form (`tlm …`, no trailing newline).
    pub fn wire_line(&self) -> String {
        let mut out = format!(
            "tlm rank={} seq={} final={} off={} rtt={}",
            self.rank,
            self.seq,
            if self.is_final { 1 } else { 0 },
            self.offset_us,
            self.rtt_us
        );
        out.push_str(" counters=");
        for (i, key) in COUNTER_FIELDS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", key, counter_get(&self.counters, key));
        }
        for (name, row) in [("sent", &self.sent_row), ("recv", &self.recv_row)] {
            if !row.is_empty() {
                let _ = write!(out, " {name}=");
                for (i, v) in row.iter().enumerate() {
                    if i > 0 {
                        out.push(':');
                    }
                    let _ = write!(out, "{v}");
                }
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(" hist=");
            for (i, (kind, snap)) in self.histograms.iter().enumerate() {
                if i > 0 {
                    out.push('|');
                }
                let _ = write!(out, "{}~{}", kind.name(), snap.encode());
            }
        }
        if !self.spans.is_empty() {
            out.push_str(" spans=");
            for (i, e) in self.spans.iter().enumerate() {
                if i > 0 {
                    out.push(';');
                }
                encode_span(&mut out, e);
            }
        }
        out
    }

    /// Parses a [`wire_line`](Self::wire_line). Returns `None` for
    /// non-telemetry lines or malformed frames.
    pub fn parse(line: &str) -> Option<TelemetryFrame> {
        let mut it = line.split_whitespace();
        if it.next()? != "tlm" {
            return None;
        }
        let mut frame = TelemetryFrame::default();
        for field in it {
            let (key, value) = field.split_once('=')?;
            match key {
                "rank" => frame.rank = value.parse().ok()?,
                "seq" => frame.seq = value.parse().ok()?,
                "final" => frame.is_final = value == "1",
                "off" => frame.offset_us = value.parse().ok()?,
                "rtt" => frame.rtt_us = value.parse().ok()?,
                "counters" => {
                    for pair in value.split(',') {
                        let (k, v) = pair.split_once(':')?;
                        counter_set(&mut frame.counters, k, v.parse().ok()?);
                    }
                }
                "sent" | "recv" => {
                    let row: Option<Vec<u64>> = value.split(':').map(|v| v.parse().ok()).collect();
                    if key == "sent" {
                        frame.sent_row = row?;
                    } else {
                        frame.recv_row = row?;
                    }
                }
                "hist" => {
                    for entry in value.split('|') {
                        let (name, enc) = entry.split_once('~')?;
                        frame
                            .histograms
                            .push((HistKind::parse(name)?, HistogramSnapshot::parse(enc)?));
                    }
                }
                "spans" => {
                    for enc in value.split(';') {
                        frame.spans.push(parse_span(enc)?);
                    }
                }
                _ => {} // forward compatibility: ignore unknown fields
            }
        }
        Some(frame)
    }
}

/// Worker-side frame factory: owns the sequence counter and clock sync,
/// so the shipping thread just asks for the next frame.
#[derive(Debug)]
pub struct TelemetrySink {
    observer: Observer,
    rank: u32,
    sync: ClockSync,
    seq: u64,
}

impl TelemetrySink {
    /// A sink for `rank`, correcting onto the coordinator timeline with
    /// `sync`.
    pub fn new(observer: Observer, rank: u32, sync: ClockSync) -> TelemetrySink {
        TelemetrySink {
            observer,
            rank,
            sync,
            seq: 0,
        }
    }

    /// Collects the next frame (bumping the sequence number).
    pub fn next_frame(&mut self, is_final: bool) -> TelemetryFrame {
        let frame =
            TelemetryFrame::collect(&self.observer, self.rank, self.seq, is_final, self.sync);
        self.seq += 1;
        frame
    }
}

/// What the coordinator knows about one rank.
#[derive(Clone, Debug, Default)]
pub struct RankTelemetry {
    /// Latest cumulative counters (None before the first frame).
    pub counters: Option<MetricsSnapshot>,
    /// Latest cumulative histogram snapshots.
    pub histograms: Vec<(HistKind, HistogramSnapshot)>,
    /// Latest `sent[rank][*]` row.
    pub sent_row: Vec<u64>,
    /// Latest `recv[rank][*]` row.
    pub recv_row: Vec<u64>,
    /// The rank's clock offset, µs.
    pub offset_us: i64,
    /// The offset's error bound, µs.
    pub rtt_us: u64,
    /// Highest sequence number absorbed.
    pub last_seq: u64,
    /// Frames absorbed.
    pub frames: u64,
    /// True once the rank's final frame arrived.
    pub final_seen: bool,
}

/// Coordinator-side aggregation: absorbs [`TelemetryFrame`]s from every
/// rank and answers for the progress view, the merged trace, and the
/// job report.
#[derive(Debug)]
pub struct TelemetryAggregator {
    per_rank: Vec<RankTelemetry>,
    spans: Vec<TraceEvent>,
    // Progress-rate state: the previous rendering's totals.
    last_progress_us: Option<u64>,
    last_records_in: u64,
    last_wire_bytes: u64,
}

impl TelemetryAggregator {
    /// An aggregator for a `ranks`-wide job.
    pub fn new(ranks: usize) -> TelemetryAggregator {
        TelemetryAggregator {
            per_rank: vec![RankTelemetry::default(); ranks],
            spans: Vec::new(),
            last_progress_us: None,
            last_records_in: 0,
            last_wire_bytes: 0,
        }
    }

    /// Absorbs one frame. Spans always append (they are deltas);
    /// cumulative state is latest-wins, guarded by the sequence number
    /// so a reordered stale frame cannot roll a rank backwards.
    pub fn absorb(&mut self, frame: TelemetryFrame) {
        let Some(slot) = self.per_rank.get_mut(frame.rank as usize) else {
            return;
        };
        self.spans.extend(frame.spans);
        if slot.counters.is_some() && frame.seq < slot.last_seq {
            return; // stale cumulative state
        }
        slot.last_seq = frame.seq;
        slot.frames += 1;
        slot.counters = Some(frame.counters);
        slot.histograms = frame.histograms;
        slot.sent_row = frame.sent_row;
        slot.recv_row = frame.recv_row;
        slot.offset_us = frame.offset_us;
        slot.rtt_us = frame.rtt_us;
        slot.final_seen |= frame.is_final;
    }

    /// Records a coordinator-side event (attempt span, rank death) into
    /// the merged timeline.
    pub fn record(&mut self, event: TraceEvent) {
        self.spans.push(event);
    }

    /// Per-rank state, indexed by rank.
    pub fn per_rank(&self) -> &[RankTelemetry] {
        &self.per_rank
    }

    /// Ranks whose final frame arrived.
    pub fn finals_seen(&self) -> usize {
        self.per_rank.iter().filter(|r| r.final_seen).count()
    }

    /// Sums every rank's latest counters (the buffer high-water mark
    /// takes the max — it is a gauge, not a flow). The aggregate's
    /// wire-byte totals therefore equal the sum of the per-rank totals
    /// by construction, which the job report's schema promises.
    pub fn aggregate_counters(&self) -> MetricsSnapshot {
        let mut total = MetricsSnapshot::default();
        for rank in &self.per_rank {
            let Some(c) = &rank.counters else { continue };
            for key in COUNTER_FIELDS {
                let merged = if key == "buffer_hwm_bytes" {
                    counter_get(&total, key).max(counter_get(c, key))
                } else {
                    counter_get(&total, key) + counter_get(c, key)
                };
                counter_set(&mut total, key, merged);
            }
        }
        total
    }

    /// Folds every rank's histogram channels by bucket addition.
    pub fn merged_histograms(&self) -> Vec<(HistKind, HistogramSnapshot)> {
        let mut merged: Vec<(HistKind, HistogramSnapshot)> = HistKind::ALL
            .into_iter()
            .map(|k| (k, HistogramSnapshot::default()))
            .collect();
        for rank in &self.per_rank {
            for (kind, snap) in &rank.histograms {
                if let Some((_, m)) = merged.iter_mut().find(|(k, _)| k == kind) {
                    m.merge(snap);
                }
            }
        }
        merged.retain(|(_, m)| !m.is_empty());
        merged
    }

    /// The merged cross-rank trace (already offset-corrected).
    pub fn trace(&self) -> Trace {
        Trace::new(self.spans.clone())
    }

    /// The full `sent[from][to]` matrix assembled from per-rank rows.
    pub fn sent_matrix(&self) -> Vec<Vec<u64>> {
        self.per_rank.iter().map(|r| r.sent_row.clone()).collect()
    }

    /// The full `recv[at][from]` matrix assembled from per-rank rows.
    pub fn recv_matrix(&self) -> Vec<Vec<u64>> {
        self.per_rank.iter().map(|r| r.recv_row.clone()).collect()
    }

    /// Renders the live single-line progress view and advances the rate
    /// baseline: records/s and wire MB/s over the interval since the
    /// last call, the laggiest rank's shortfall against the leader, and
    /// the straggler-defense event count.
    pub fn progress_line(&mut self, now_us: u64, done: usize) -> String {
        let agg = self.aggregate_counters();
        let dt_s = self
            .last_progress_us
            .map(|prev| (now_us.saturating_sub(prev)) as f64 / 1e6)
            .unwrap_or(0.0);
        let rec_rate = if dt_s > 0.0 {
            (agg.records_in.saturating_sub(self.last_records_in)) as f64 / dt_s
        } else {
            0.0
        };
        let wire_now = agg.wire_bytes_sent + agg.wire_bytes_received;
        let wire_rate = if dt_s > 0.0 {
            (wire_now.saturating_sub(self.last_wire_bytes)) as f64 / dt_s / (1 << 20) as f64
        } else {
            0.0
        };
        self.last_progress_us = Some(now_us);
        self.last_records_in = agg.records_in;
        self.last_wire_bytes = wire_now;

        // Lag: the slowest rank's ingested records vs the leader's.
        let ingested: Vec<u64> = self
            .per_rank
            .iter()
            .map(|r| r.counters.as_ref().map_or(0, |c| c.records_in))
            .collect();
        let lead = ingested.iter().copied().max().unwrap_or(0);
        let lag = ingested
            .iter()
            .enumerate()
            .min_by_key(|(_, v)| **v)
            .filter(|_| lead > 0)
            .map(|(rank, v)| {
                format!(
                    " lag=r{}:-{}%",
                    rank,
                    (lead.saturating_sub(*v)) * 100 / lead.max(1)
                )
            })
            .unwrap_or_default();
        let spec = agg.speculative_attempts + agg.tasks_stolen;
        format!(
            "[{:7.2}s] {}/{} done | {:9.0} rec/s | {:7.2} MB/s wire{} | spec={}",
            now_us as f64 / 1e6,
            done,
            self.per_rank.len(),
            rec_rate,
            wire_rate,
            lag,
            spec
        )
    }

    /// Renders `job-report.json`. `meta` rows are caller-supplied
    /// `(key, rendered-JSON-value)` pairs prepended verbatim (workload
    /// name, seed, elapsed…); schema in BENCHMARKS.md.
    pub fn report_json(&self, meta: &[(&str, String)]) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"dmpi-job-report/v1\"");
        for (k, v) in meta {
            let _ = write!(out, ",\n  \"{k}\": {v}");
        }
        let _ = write!(out, ",\n  \"ranks\": {}", self.per_rank.len());

        out.push_str(",\n  \"per_rank\": [");
        for (rank, t) in self.per_rank.iter().enumerate() {
            if rank > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rank\": {rank}, \"clock_offset_us\": {}, \"clock_rtt_us\": {}, \
                 \"telemetry_frames\": {}, \"final_seen\": {}",
                t.offset_us, t.rtt_us, t.frames, t.final_seen
            );
            out.push_str(", \"counters\": ");
            push_counters_json(&mut out, &t.counters.clone().unwrap_or_default());
            push_row_json(&mut out, "sent_bytes_to", &t.sent_row);
            push_row_json(&mut out, "recv_bytes_from", &t.recv_row);
            out.push_str(", \"histograms\": ");
            push_histograms_json(&mut out, &t.histograms);
            out.push('}');
        }
        out.push_str("\n  ]");

        out.push_str(",\n  \"aggregate\": {\"counters\": ");
        push_counters_json(&mut out, &self.aggregate_counters());
        out.push_str(", \"histograms\": ");
        push_histograms_json(&mut out, &self.merged_histograms());
        out.push('}');

        out.push_str(",\n  \"peer_matrix\": {\"sent\": ");
        push_matrix_json(&mut out, &self.sent_matrix());
        out.push_str(", \"recv\": ");
        push_matrix_json(&mut out, &self.recv_matrix());
        out.push('}');

        // The straggler/speculation timeline: recovery-lane events plus
        // any span the runtime tagged speculative or aborted.
        out.push_str(",\n  \"timeline\": [");
        let mut first = true;
        let mut timeline: Vec<&TraceEvent> = self
            .spans
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    SpanKind::Fault | SpanKind::Retry | SpanKind::Recovered
                ) || e
                    .args
                    .iter()
                    .any(|(k, _)| *k == "speculative" || *k == "aborted" || *k == "shrunk")
            })
            .collect();
        timeline.sort_by_key(|e| e.ts_us);
        for e in timeline {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"kind\": \"{}\", \"ts_us\": {}, \"dur_us\": {}, \"rank\": {}",
                e.kind.name(),
                e.ts_us,
                e.dur_us,
                e.rank
            );
            for (k, v) in &e.args {
                let _ = write!(out, ", \"{}\": \"{}\"", k, json_escape(v));
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn push_counters_json(out: &mut String, c: &MetricsSnapshot) {
    out.push('{');
    for (i, key) in COUNTER_FIELDS.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": {}", key, counter_get(c, key));
    }
    out.push('}');
}

fn push_row_json(out: &mut String, name: &str, row: &[u64]) {
    let _ = write!(out, ", \"{name}\": [");
    for (i, v) in row.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

fn push_matrix_json(out: &mut String, matrix: &[Vec<u64>]) {
    out.push('[');
    for (i, row) in matrix.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('[');
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{v}");
        }
        out.push(']');
    }
    out.push(']');
}

fn push_histograms_json(out: &mut String, hists: &[(HistKind, HistogramSnapshot)]) {
    out.push('{');
    for (i, (kind, snap)) in hists.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": {}", kind.name(), snap.to_json());
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::{Clock, ManualClock};

    #[test]
    fn clock_sync_midpoint_and_application() {
        // Worker clock 1000µs behind the coordinator, 40µs RTT.
        let sync = ClockSync::from_exchange(500, 1520, 540);
        assert_eq!(sync.offset_us, 1000);
        assert_eq!(sync.rtt_us, 40);
        assert_eq!(sync.apply(500), 1500);
        // Negative offsets clamp at zero rather than wrapping.
        let back = ClockSync {
            offset_us: -100,
            rtt_us: 0,
        };
        assert_eq!(back.apply(40), 0);
        assert_eq!(back.apply(150), 50);
    }

    fn sample_frame(rank: u32, seq: u64) -> TelemetryFrame {
        let obs = Observer::with_clock(Clock::Manual(ManualClock::new()));
        obs.begin_job(3);
        obs.registry().add_records_out(10 + rank as u64);
        obs.registry().add_records_in(7);
        obs.registry().add_frame_sent(rank as usize, 1, 100);
        obs.registry().add_wire_stats(&crate::transport::WireStats {
            bytes_sent: 1000 + rank as u64,
            bytes_received: 900,
            ..Default::default()
        });
        obs.registry()
            .histograms()
            .record(HistKind::RecvLatency, 42);
        obs.registry()
            .histograms()
            .record(HistKind::FramePayload, 4096);
        let t = obs.rank_tracer(rank, 0);
        let start = t.start();
        t.span(
            SpanKind::OTask,
            start,
            vec![("bytes", "12 34;=%".into()), ("peer", "1".into())],
        );
        t.instant(SpanKind::Fault, vec![("cause", "test cause".into())]);
        obs.absorb(&t);
        TelemetryFrame::collect(
            &obs,
            rank,
            seq,
            seq == 1,
            ClockSync {
                offset_us: 500,
                rtt_us: 10,
            },
        )
    }

    #[test]
    fn frames_round_trip_the_wire() {
        let frame = sample_frame(2, 1);
        let line = frame.wire_line();
        assert!(!line.contains('\n'));
        let parsed = TelemetryFrame::parse(&line).expect("parse own encoding");
        assert_eq!(parsed, frame);
        assert!(parsed.is_final);
        assert_eq!(parsed.counters.records_out, 12);
        assert_eq!(parsed.sent_row, vec![0, 100, 0]);
        assert_eq!(parsed.spans.len(), 2);
        assert_eq!(parsed.spans[0].args[0].1, "12 34;=%");
        // Offset correction applied at collection: the manual clock was
        // at 0, the offset 500.
        assert_eq!(parsed.spans[0].ts_us, 500);
        assert!(TelemetryFrame::parse("done rank=0 crc=1").is_none());
        assert!(TelemetryFrame::parse("tlm rank=x").is_none());
    }

    #[test]
    fn collect_drains_the_span_log() {
        let obs = Observer::new();
        let t = obs.job_tracer(0);
        t.instant(SpanKind::Retry, vec![]);
        obs.absorb(&t);
        let f = TelemetryFrame::collect(&obs, 0, 0, false, ClockSync::default());
        assert_eq!(f.spans.len(), 1);
        let f2 = TelemetryFrame::collect(&obs, 0, 1, false, ClockSync::default());
        assert!(f2.spans.is_empty(), "spans ship exactly once");
    }

    #[test]
    fn aggregator_sums_ranks_and_keeps_wire_identity() {
        let mut agg = TelemetryAggregator::new(3);
        for rank in 0..3u32 {
            agg.absorb(sample_frame(rank, 0));
        }
        let total = agg.aggregate_counters();
        let per_rank_wire: u64 = agg
            .per_rank()
            .iter()
            .map(|r| r.counters.as_ref().map_or(0, |c| c.wire_bytes_sent))
            .sum();
        assert_eq!(total.wire_bytes_sent, per_rank_wire);
        assert_eq!(total.wire_bytes_sent, 1000 + 1001 + 1002);
        assert_eq!(total.records_out, 10 + 11 + 12);
        let merged = agg.merged_histograms();
        let recv = merged
            .iter()
            .find(|(k, _)| *k == HistKind::RecvLatency)
            .unwrap();
        assert_eq!(recv.1.count, 3, "one sample per rank, bucket-added");
        assert_eq!(agg.trace().len(), 6);
    }

    #[test]
    fn aggregator_ignores_stale_cumulative_state() {
        let mut agg = TelemetryAggregator::new(1);
        let mut newer = sample_frame(0, 5);
        newer.counters.records_out = 100;
        agg.absorb(newer);
        let mut stale = sample_frame(0, 2);
        stale.counters.records_out = 7;
        stale.spans.clear();
        agg.absorb(stale);
        assert_eq!(
            agg.per_rank()[0].counters.as_ref().unwrap().records_out,
            100,
            "stale frame must not roll the rank back"
        );
    }

    #[test]
    fn report_json_holds_the_wire_byte_identity() {
        let mut agg = TelemetryAggregator::new(2);
        agg.absorb(sample_frame(0, 0));
        agg.absorb(sample_frame(1, 0));
        let json = agg.report_json(&[("workload", "\"wordcount\"".into())]);
        assert!(json.contains("\"schema\": \"dmpi-job-report/v1\""));
        assert!(json.contains("\"workload\": \"wordcount\""));
        // Extract every per-rank wire_bytes_sent and the aggregate one.
        let values: Vec<u64> = json
            .match_indices("\"wire_bytes_sent\": ")
            .map(|(i, pat)| {
                json[i + pat.len()..]
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect::<String>()
                    .parse()
                    .unwrap()
            })
            .collect();
        assert_eq!(values.len(), 3, "two ranks + aggregate");
        assert_eq!(values[0] + values[1], values[2]);
        assert!(json.contains("\"timeline\""));
        assert!(json.contains("\"kind\": \"fault\""));
    }

    /// The cross-rank alignment property, ManualClock-driven: three
    /// workers with skewed clocks each record a nested span pair plus a
    /// barrier instant at the same *true* time; after each worker's
    /// ClockSync correction the merged trace must be well-nested per
    /// rank and the barrier instants must coincide exactly (RTT 0 here,
    /// so the midpoint estimate is exact).
    #[test]
    fn merged_trace_is_well_nested_and_offset_aligned() {
        let skews: [i64; 3] = [0, 250_000, -40_000];
        let barrier_true_us = 600_000u64;
        let mut agg = TelemetryAggregator::new(3);
        for (rank, skew) in skews.iter().enumerate() {
            let clock = ManualClock::new();
            let obs = Observer::with_clock(Clock::Manual(clock.clone()));
            let local = |true_us: u64| (true_us as i64 + skew).max(0) as u64;
            // Outer Recv span 100ms..900ms true time; inner Sort span
            // 300ms..500ms, strictly nested.
            let t = obs.rank_tracer(rank as u32, 0);
            clock.set_micros(local(100_000));
            let outer = t.start();
            clock.set_micros(local(300_000));
            let inner = t.start();
            clock.set_micros(local(500_000));
            t.span(SpanKind::Sort, inner, vec![]);
            clock.set_micros(local(barrier_true_us));
            t.instant(SpanKind::Fault, vec![("cause", "barrier".into())]);
            clock.set_micros(local(900_000));
            t.span(SpanKind::Recv, outer, vec![]);
            obs.absorb(&t);
            // A zero-RTT exchange at true time 50ms (late enough that no
            // worker clock has gone negative): t0 == t1, the coordinator
            // reads true time.
            let sync = ClockSync::from_exchange(local(50_000), 50_000, local(50_000));
            assert_eq!(sync.offset_us, -skew, "rank {rank}");
            agg.absorb(TelemetryFrame::collect(&obs, rank as u32, 0, true, sync));
        }
        let trace = agg.trace();
        // Alignment: every barrier instant lands on the same corrected
        // timestamp.
        let barriers: Vec<u64> = trace.of_kind(SpanKind::Fault).map(|e| e.ts_us).collect();
        assert_eq!(barriers.len(), 3);
        assert!(
            barriers.iter().all(|b| *b == barrier_true_us),
            "barrier instants must coincide after correction: {barriers:?}"
        );
        // Well-nestedness per rank: any two spans are disjoint or one
        // contains the other.
        for rank in 0..3u32 {
            let spans: Vec<_> = trace
                .events()
                .iter()
                .filter(|e| e.rank == rank && !e.instant)
                .collect();
            assert_eq!(spans.len(), 2);
            for a in &spans {
                for b in &spans {
                    let disjoint = a.end_us() <= b.ts_us || b.end_us() <= a.ts_us;
                    let a_in_b = a.ts_us >= b.ts_us && a.end_us() <= b.end_us();
                    let b_in_a = b.ts_us >= a.ts_us && b.end_us() <= a.end_us();
                    assert!(
                        disjoint || a_in_b || b_in_a,
                        "rank {rank}: spans must be well-nested"
                    );
                }
            }
            // And the corrected absolute positions match the true
            // timeline regardless of the rank's skew.
            assert_eq!(spans.iter().map(|e| e.ts_us).min(), Some(100_000));
        }
        // The Chrome export puts every rank in its own process row.
        let chrome = trace.to_chrome_json_by_rank();
        for rank in 0..3 {
            assert!(chrome.contains(&format!("\"name\":\"rank {rank}\"")));
        }
    }

    #[test]
    fn progress_line_reports_rates_and_lag() {
        let mut agg = TelemetryAggregator::new(2);
        let mut f0 = sample_frame(0, 0);
        f0.counters.records_in = 1000;
        let mut f1 = sample_frame(1, 0);
        f1.counters.records_in = 250;
        agg.absorb(f0.clone());
        agg.absorb(f1);
        let first = agg.progress_line(1_000_000, 0);
        assert!(first.contains("0/2 done"), "{first}");
        // One second later rank 0 ingested 500 more records.
        f0.counters.records_in = 1500;
        f0.seq = 1;
        agg.absorb(f0);
        let line = agg.progress_line(2_000_000, 1);
        assert!(line.contains("1/2 done"), "{line}");
        assert!(line.contains("500 rec/s"), "{line}");
        assert!(line.contains("lag=r1:-83%"), "{line}");
    }

    #[test]
    fn pct_escaping_round_trips() {
        for s in ["plain", "with space", "a,b;c:d=e%f", "tab\tnl\n", ""] {
            assert_eq!(pct_unescape(&pct_escape(s)).as_deref(), Some(s));
        }
        assert!(pct_unescape("%zz").is_none());
    }
}
