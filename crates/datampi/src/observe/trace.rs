//! Structured trace events: spans and instants, merged per job, exportable
//! as Chrome `trace_event` JSON (viewable in `chrome://tracing` / Perfetto)
//! and as a compact JSONL event log.
//!
//! Each worker rank records into its own thread-local buffer (no locks on
//! the recording path); buffers are merged when the rank finishes. In the
//! Chrome export the *attempt* number maps to the process lane (`pid`) and
//! the *rank* to the thread lane (`tid`), so a supervised job's retries
//! appear as separate process rows.

use std::fmt::Write as _;

/// What a span or instant event marks. The variants mirror the phases the
/// paper attributes time to (read/compute, send, receive, sort, spill,
/// A-compute) plus the recovery machinery's lifecycle events.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One whole job attempt (job-level lane).
    Attempt,
    /// One O task: split read + user compute (sends overlap it).
    OTask,
    /// One flushed frame shipped to a peer partition.
    Send,
    /// An A partition ingesting frames until all EOFs arrive.
    Recv,
    /// Decode + sort/group of the A store.
    Sort,
    /// One A-store spill to disk.
    Spill,
    /// The A-side user compute over grouped records.
    ACompute,
    /// One streaming window (job-level lane).
    Window,
    /// Iteration-mode cache parse/load (job-level lane, once per cache).
    CacheLoad,
    /// Instant: an O task replayed from checkpoint instead of re-running.
    Recovered,
    /// Instant: a fault observed by a rank or the supervisor.
    Fault,
    /// Instant: the supervisor scheduling a retry after a failed attempt.
    Retry,
}

impl SpanKind {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Attempt => "attempt",
            SpanKind::OTask => "o_task",
            SpanKind::Send => "send",
            SpanKind::Recv => "recv",
            SpanKind::Sort => "sort",
            SpanKind::Spill => "spill",
            SpanKind::ACompute => "a_compute",
            SpanKind::Window => "window",
            SpanKind::CacheLoad => "cache_load",
            SpanKind::Recovered => "recovered",
            SpanKind::Fault => "fault",
            SpanKind::Retry => "retry",
        }
    }

    /// Parses a [`name`](Self::name) back to the kind — the telemetry
    /// wire protocol ships spans by name.
    pub fn parse(name: &str) -> Option<SpanKind> {
        const ALL: [SpanKind; 12] = [
            SpanKind::Attempt,
            SpanKind::OTask,
            SpanKind::Send,
            SpanKind::Recv,
            SpanKind::Sort,
            SpanKind::Spill,
            SpanKind::ACompute,
            SpanKind::Window,
            SpanKind::CacheLoad,
            SpanKind::Recovered,
            SpanKind::Fault,
            SpanKind::Retry,
        ];
        ALL.into_iter().find(|k| k.name() == name)
    }

    /// Chrome trace category.
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Attempt | SpanKind::Window | SpanKind::CacheLoad => "job",
            SpanKind::OTask | SpanKind::Send => "o",
            SpanKind::Recv | SpanKind::Sort | SpanKind::Spill | SpanKind::ACompute => "a",
            SpanKind::Recovered | SpanKind::Fault | SpanKind::Retry => "recovery",
        }
    }
}

/// The pseudo-rank used for job-level events (attempts, windows, retries):
/// they belong to the supervisor, not to any worker rank.
pub const JOB_LANE: u32 = u32::MAX;

/// One recorded event. `dur_us == 0` with `instant == true` marks an
/// instant event (`ph: "i"` in the Chrome export); otherwise the event is
/// a complete span (`ph: "X"`).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// What the event marks.
    pub kind: SpanKind,
    /// Start timestamp, µs since the observer's epoch.
    pub ts_us: u64,
    /// Span duration in µs (0 for instants).
    pub dur_us: u64,
    /// True for point events.
    pub instant: bool,
    /// Worker rank, or [`JOB_LANE`] for job-level events.
    pub rank: u32,
    /// Job attempt the event belongs to.
    pub attempt: u32,
    /// O task index, when the event is task-scoped.
    pub task: Option<u64>,
    /// Extra key/value detail (peer rank, byte counts, fault cause…).
    pub args: Vec<(&'static str, String)>,
}

impl TraceEvent {
    /// End timestamp (µs).
    pub fn end_us(&self) -> u64 {
        self.ts_us + self.dur_us
    }
}

/// Wall-time totals per phase, in microseconds, derived from the span log.
///
/// `send` is recorded *inside* O tasks (pipelined flushes overlap the
/// producing compute — the overlap is DataMPI's headline mechanism), so
/// `o_task + recv + sort + a_compute` covers a rank's timeline while
/// `send` and `spill` measure work nested within it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// O task execution (split read + user compute), µs.
    pub o_task_us: u64,
    /// Frame shipping, µs (overlaps `o_task_us` when pipelined).
    pub send_us: u64,
    /// A-side ingest until all EOFs, µs.
    pub recv_us: u64,
    /// A-store decode + sort/group, µs.
    pub sort_us: u64,
    /// A-store spill handling, µs (nested in `recv_us`).
    pub spill_us: u64,
    /// A-side user compute, µs.
    pub a_compute_us: u64,
}

impl PhaseTotals {
    /// Adds every phase of `other` into `self`.
    pub fn merge(&mut self, other: &PhaseTotals) {
        self.o_task_us += other.o_task_us;
        self.send_us += other.send_us;
        self.recv_us += other.recv_us;
        self.sort_us += other.sort_us;
        self.spill_us += other.spill_us;
        self.a_compute_us += other.a_compute_us;
    }

    /// Accumulates one span into the matching phase bucket.
    pub fn add_event(&mut self, ev: &TraceEvent) {
        match ev.kind {
            SpanKind::OTask => self.o_task_us += ev.dur_us,
            SpanKind::Send => self.send_us += ev.dur_us,
            SpanKind::Recv => self.recv_us += ev.dur_us,
            SpanKind::Sort => self.sort_us += ev.dur_us,
            SpanKind::Spill => self.spill_us += ev.dur_us,
            SpanKind::ACompute => self.a_compute_us += ev.dur_us,
            _ => {}
        }
    }

    /// `(label, µs)` rows in display order.
    pub fn rows(&self) -> [(&'static str, u64); 6] {
        [
            ("O tasks", self.o_task_us),
            ("send", self.send_us),
            ("recv", self.recv_us),
            ("sort", self.sort_us),
            ("spill", self.spill_us),
            ("A compute", self.a_compute_us),
        ]
    }
}

/// The merged event log of a job (or a supervised run's every attempt).
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Builds a trace from merged events, sorting by start time.
    pub fn new(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(|e| (e.ts_us, std::cmp::Reverse(e.end_us())));
        Trace { events }
    }

    /// The events in start order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Distinct attempts observed, ascending.
    pub fn attempts(&self) -> Vec<u32> {
        let mut a: Vec<u32> = self.events.iter().map(|e| e.attempt).collect();
        a.sort_unstable();
        a.dedup();
        a
    }

    /// Events of one kind.
    pub fn of_kind(&self, kind: SpanKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Per-phase wall-time totals over the whole trace.
    pub fn phase_totals(&self) -> PhaseTotals {
        let mut t = PhaseTotals::default();
        for e in &self.events {
            t.add_event(e);
        }
        t
    }

    /// Renders the Chrome `trace_event` JSON object
    /// (`{"traceEvents": [...]}`) — load it in `chrome://tracing` or
    /// Perfetto. Timestamps are µs, as the format requires.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ph = if e.instant { "i" } else { "X" };
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},",
                e.kind.name(),
                e.kind.category(),
                ph,
                e.ts_us
            );
            if !e.instant {
                let _ = write!(out, "\"dur\":{},", e.dur_us);
            } else {
                out.push_str("\"s\":\"t\",");
            }
            let _ = write!(out, "\"pid\":{},\"tid\":{},\"args\":{{", e.attempt, e.rank);
            let mut first = true;
            if let Some(task) = e.task {
                let _ = write!(out, "\"task\":{task}");
                first = false;
            }
            for (k, v) in &e.args {
                if !first {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", k, json_escape(v));
                first = false;
            }
            out.push_str("}}");
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Renders the multi-process Chrome view: one **process row per
    /// rank** (`pid` = rank, `tid` = attempt), with `process_name`
    /// metadata so Perfetto labels each row. This is the export
    /// `dmpirun --trace-out` uses for a trace merged from N worker
    /// processes on the coordinator's offset-corrected timeline; the
    /// in-proc [`to_chrome_json`](Self::to_chrome_json) keeps attempts
    /// as processes instead.
    pub fn to_chrome_json_by_rank(&self) -> String {
        let mut out = String::with_capacity(256 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut ranks: Vec<u32> = self.events.iter().map(|e| e.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        let mut first = true;
        for rank in &ranks {
            if !first {
                out.push(',');
            }
            first = false;
            let label = if *rank == JOB_LANE {
                "coordinator".to_string()
            } else {
                format!("rank {rank}")
            };
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{rank},\"tid\":0,\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            );
        }
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let ph = if e.instant { "i" } else { "X" };
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},",
                e.kind.name(),
                e.kind.category(),
                ph,
                e.ts_us
            );
            if !e.instant {
                let _ = write!(out, "\"dur\":{},", e.dur_us);
            } else {
                out.push_str("\"s\":\"t\",");
            }
            let _ = write!(out, "\"pid\":{},\"tid\":{},\"args\":{{", e.rank, e.attempt);
            let mut first_arg = true;
            if let Some(task) = e.task {
                let _ = write!(out, "\"task\":{task}");
                first_arg = false;
            }
            for (k, v) in &e.args {
                if !first_arg {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", k, json_escape(v));
                first_arg = false;
            }
            out.push_str("}}");
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Renders the compact JSONL log: one event object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 80);
        for e in &self.events {
            let _ = write!(
                out,
                "{{\"kind\":\"{}\",\"ts_us\":{},\"dur_us\":{},\"rank\":{},\"attempt\":{}",
                e.kind.name(),
                e.ts_us,
                e.dur_us,
                e.rank,
                e.attempt
            );
            if let Some(task) = e.task {
                let _ = write!(out, ",\"task\":{task}");
            }
            for (k, v) in &e.args {
                let _ = write!(out, ",\"{}\":\"{}\"", k, json_escape(v));
            }
            out.push_str("}\n");
        }
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: SpanKind, ts: u64, dur: u64, rank: u32) -> TraceEvent {
        TraceEvent {
            kind,
            ts_us: ts,
            dur_us: dur,
            instant: false,
            rank,
            attempt: 0,
            task: Some(3),
            args: vec![],
        }
    }

    #[test]
    fn trace_sorts_and_totals() {
        let t = Trace::new(vec![
            span(SpanKind::Recv, 50, 20, 0),
            span(SpanKind::OTask, 0, 40, 0),
            span(SpanKind::Sort, 70, 5, 0),
        ]);
        assert_eq!(t.events()[0].kind, SpanKind::OTask);
        let p = t.phase_totals();
        assert_eq!(p.o_task_us, 40);
        assert_eq!(p.recv_us, 20);
        assert_eq!(p.sort_us, 5);
        assert_eq!(p.rows()[0], ("O tasks", 40));
        assert_eq!(t.attempts(), vec![0]);
        assert_eq!(t.of_kind(SpanKind::Recv).count(), 1);
    }

    #[test]
    fn chrome_json_shape() {
        let mut ev = span(SpanKind::Send, 10, 5, 2);
        ev.args.push(("peer", "1".into()));
        let json = Trace::new(vec![ev]).to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"send\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":10"));
        assert!(json.contains("\"dur\":5"));
        assert!(json.contains("\"pid\":0,\"tid\":2"));
        assert!(json.contains("\"task\":3"));
        assert!(json.contains("\"peer\":\"1\""));
        assert!(json.ends_with("}"));
    }

    #[test]
    fn instants_use_instant_phase() {
        let ev = TraceEvent {
            kind: SpanKind::Retry,
            ts_us: 7,
            dur_us: 0,
            instant: true,
            rank: JOB_LANE,
            attempt: 1,
            task: None,
            args: vec![("cause", "injected \"quote\"".into())],
        };
        let json = Trace::new(vec![ev.clone()]).to_chrome_json();
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("injected \\\"quote\\\""));
        let jsonl = Trace::new(vec![ev]).to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"kind\":\"retry\""));
    }

    #[test]
    fn span_kind_names_round_trip() {
        for name in [
            "attempt",
            "o_task",
            "send",
            "recv",
            "sort",
            "spill",
            "a_compute",
            "window",
            "cache_load",
            "recovered",
            "fault",
            "retry",
        ] {
            assert_eq!(SpanKind::parse(name).map(SpanKind::name), Some(name));
        }
        assert!(SpanKind::parse("bogus").is_none());
    }

    #[test]
    fn by_rank_export_puts_each_rank_in_its_own_process() {
        let t = Trace::new(vec![span(SpanKind::OTask, 0, 10, 1), {
            let mut e = span(SpanKind::Recv, 5, 10, 2);
            e.attempt = 1;
            e
        }]);
        let json = t.to_chrome_json_by_rank();
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"name\":\"rank 1\""));
        assert!(json.contains("\"name\":\"rank 2\""));
        // pid carries the rank, tid the attempt — inverted vs the
        // in-proc export.
        assert!(json.contains("\"pid\":1,\"tid\":0"));
        assert!(json.contains("\"pid\":2,\"tid\":1"));
    }

    #[test]
    fn escaping_covers_controls() {
        assert_eq!(json_escape("a\"b\\c\nd\te\r"), "a\\\"b\\\\c\\nd\\te\\r");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn phase_totals_merge_adds() {
        let mut a = PhaseTotals {
            o_task_us: 1,
            send_us: 2,
            recv_us: 3,
            sort_us: 4,
            spill_us: 5,
            a_compute_us: 6,
        };
        a.merge(&a.clone());
        assert_eq!(a.o_task_us, 2);
        assert_eq!(a.a_compute_us, 12);
    }
}
