//! Plan compiler: DataMPI jobs as `dmpi-dcsim` task graphs.
//!
//! For paper-scale inputs (8-64 GB) the runtime cannot execute for real;
//! instead the same job structure is compiled into simulator activities.
//! The compilation encodes exactly the behaviours the paper credits for
//! DataMPI's wins:
//!
//! * **Pipelined O tasks** — one coupled activity demands the input disk
//!   read, the O computation CPU, and the network movement of emitted
//!   pairs simultaneously, so the task runs at its bottleneck's speed.
//! * **No intermediate materialization** — emitted pairs land in remote
//!   A-side *memory* (modeled with `MemChange`), touching disk only when
//!   the per-node budget is exceeded.
//! * **Low startup** — ranks are pre-spawned by `mpirun`; per-task launch
//!   cost is negligible compared to Hadoop's JVM-per-task model.
//! * **Locality** — O tasks are placed on a node holding their split's
//!   replica (DataMPI schedules O tasks to read HDFS data locally, §4.4).

use dmpi_common::{Error, Result};
use dmpi_dcsim::{Activity, Demand, NodeId, Resource, Simulation, SlotKind, TaskId, TaskSpec};
use dmpi_dfs::{simio, InputSplit};

/// Slot kind for O tasks.
pub const O_SLOT: SlotKind = SlotKind(10);
/// Slot kind for A tasks.
pub const A_SLOT: SlotKind = SlotKind(11);

/// Cost/shape description of one DataMPI job for the simulator. CPU costs
/// are in core-seconds per (logical, i.e. uncompressed) byte; ratios are in
/// output bytes per logical input byte.
#[derive(Clone, Debug)]
pub struct SimJobProfile {
    /// Job name prefix for the trace.
    pub name: String,
    /// Job startup: `mpirun` launch + rank wireup + JVM init of the
    /// DataMPI processes (DataMPI is a Java library over MPI).
    pub startup_secs: f64,
    /// Job finalize: `MPI_D_Finalize` barrier + teardown.
    pub finalize_secs: f64,
    /// O-side computation cost per logical input byte.
    pub o_cpu_per_byte: f64,
    /// Intermediate bytes emitted per logical input byte.
    pub emit_ratio: f64,
    /// A-side computation cost per intermediate byte (includes grouping).
    pub a_cpu_per_byte: f64,
    /// Final output bytes per logical input byte.
    pub output_ratio: f64,
    /// Input compression ratio (logical/physical); 1.0 = uncompressed.
    pub input_compression: f64,
    /// Extra CPU per physical byte for decompression (0 if uncompressed).
    pub decompress_cpu_per_byte: f64,
    /// Concurrent O tasks per node (the paper tunes this to 4).
    pub tasks_per_node: u32,
    /// A tasks per node.
    pub a_tasks_per_node: u32,
    /// Output replication factor (3 in the paper's HDFS config).
    pub output_replication: u16,
    /// Per-node memory the runtime itself occupies (rank heaps), bytes.
    pub runtime_mem_per_node: i64,
    /// Per-node in-memory budget for intermediate data; beyond it the
    /// store spills (bytes).
    pub intermediate_mem_budget: f64,
    /// Disable pipelining (ablation): O tasks stage read+compute, then
    /// ship.
    pub pipelined: bool,
    /// Stage the A side: grouping/sort CPU completes before the output
    /// write begins. True for Sort-like jobs (sorted output cannot stream
    /// until the merge finishes); false for aggregations whose output is
    /// tiny.
    pub a_staged: bool,
    /// Iteration mode: the input is already resident in worker memory
    /// (deserialized by a previous iteration), so O tasks skip the DFS
    /// read entirely. See `datampi::iteration`.
    pub input_resident: bool,
    /// JVM overhead factor: CPU burned per core-second of productive work
    /// (GC and service threads). Does not slow tasks on an idle node; it
    /// shows up as utilization and as contention when slots overcommit.
    pub cpu_overhead: f64,
}

impl SimJobProfile {
    /// A neutral starting profile; workloads override the cost fields.
    pub fn new(name: impl Into<String>) -> Self {
        SimJobProfile {
            name: name.into(),
            startup_secs: 7.0,
            finalize_secs: 1.5,
            o_cpu_per_byte: 0.0,
            emit_ratio: 1.0,
            a_cpu_per_byte: 0.0,
            output_ratio: 1.0,
            input_compression: 1.0,
            decompress_cpu_per_byte: 0.0,
            tasks_per_node: 4,
            a_tasks_per_node: 4,
            output_replication: 3,
            runtime_mem_per_node: 3 << 30, // ~3 GB of rank heaps
            intermediate_mem_budget: 8.0 * (1u64 << 30) as f64,
            pipelined: true,
            a_staged: false,
            input_resident: false,
            cpu_overhead: 1.0,
        }
    }
}

/// Handle to the compiled job inside the simulation.
#[derive(Clone, Debug)]
pub struct CompiledJob {
    /// The startup barrier task.
    pub startup: TaskId,
    /// All O task ids.
    pub o_tasks: Vec<TaskId>,
    /// All A task ids.
    pub a_tasks: Vec<TaskId>,
    /// The finalize barrier task.
    pub finalize: TaskId,
}

/// Compiles a DataMPI job over `splits` into `sim`. The caller must have
/// created `sim` but not configured the DataMPI slot kinds (this function
/// does it).
pub fn compile(
    sim: &mut Simulation,
    profile: &SimJobProfile,
    splits: &[InputSplit],
) -> Result<CompiledJob> {
    let nodes = sim.spec().nodes;
    if nodes == 0 {
        return Err(Error::Config("empty cluster".into()));
    }
    let n = nodes as usize;
    sim.configure_slots(O_SLOT, profile.tasks_per_node);
    sim.configure_slots(A_SLOT, profile.a_tasks_per_node);

    // Startup barrier: mpirun + rank wireup, plus the runtime's resident
    // memory on every node.
    let mut startup_builder = TaskSpec::builder(format!("{}-startup", profile.name), NodeId(0))
        .phase("startup")
        .delay(profile.startup_secs);
    for node in sim.spec().node_ids() {
        startup_builder = startup_builder.activity(Activity::MemChange {
            node,
            delta: profile.runtime_mem_per_node,
        });
    }
    let startup = sim.add_task(startup_builder.build())?;

    // Aggregate logical input per node to size intermediate memory.
    let total_physical: f64 = splits.iter().map(|s| s.len() as f64).sum();
    let total_logical = total_physical * profile.input_compression;
    let emitted_total = total_logical * profile.emit_ratio;
    let emitted_per_node = emitted_total / n as f64;
    // How much of the intermediate data exceeds the in-memory budget and
    // must spill (per node, both written during O and re-read during A).
    let spill_per_node = (emitted_per_node - profile.intermediate_mem_budget).max(0.0);

    let mut o_tasks = Vec::with_capacity(splits.len());
    for (i, split) in splits.iter().enumerate() {
        // Locality: place the O task on a replica node (primary).
        let node = split.choose_replica(split.block.replicas[0]);
        let physical = split.len() as f64;
        let logical = physical * profile.input_compression;
        let emitted = logical * profile.emit_ratio;
        let remote_fraction = (n - 1) as f64 / n as f64;
        let cpu = logical * profile.o_cpu_per_byte + physical * profile.decompress_cpu_per_byte;

        // Demands of the O work: local read + compute + KV movement.
        // Iteration mode starts from resident deserialized data: no read.
        let mut io_demands = if profile.input_resident {
            Vec::new()
        } else {
            simio::block_read_demands(node, &split.block)
        };
        let mut net_demands = Vec::new();
        if emitted > 0.0 {
            let out_remote = emitted * remote_fraction;
            net_demands.push(Demand::new(Resource::NetOut(node), out_remote));
            // Receivers: every *other* node ingests an equal share.
            let per_other = out_remote / (n - 1).max(1) as f64;
            for other in sim.spec().node_ids() {
                if other != node {
                    net_demands.push(Demand::new(Resource::NetIn(other), per_other));
                }
            }
        }
        // Spill share of this task's emission (destination-side writes
        // spread over all nodes; approximate by charging this node's
        // proportional share so cluster totals match).
        let spill_bytes = if emitted_total > 0.0 {
            spill_per_node * n as f64 * (emitted / emitted_total)
        } else {
            0.0
        };

        let mut builder = TaskSpec::builder(format!("{}-o-{i}", profile.name), node)
            .phase("O")
            .dep(startup)
            .slot(O_SLOT);
        if profile.pipelined {
            let mut demands = io_demands;
            if cpu > 0.0 {
                demands.push(Demand::new(Resource::Cpu(node), cpu));
            }
            demands.extend(net_demands);
            if spill_bytes > 0.0 {
                demands.push(Demand::write(node, spill_bytes));
            }
            builder = builder.activity(Activity::work_with_overhead(demands, profile.cpu_overhead));
        } else {
            // Staged ablation: read+compute, then ship, then spill.
            if cpu > 0.0 {
                io_demands.push(Demand::new(Resource::Cpu(node), cpu));
            }
            builder = builder.activity(Activity::work_with_overhead(
                io_demands,
                profile.cpu_overhead,
            ));
            if !net_demands.is_empty() {
                builder = builder.activity(Activity::Work(net_demands));
            }
            if spill_bytes > 0.0 {
                builder = builder.activity(Activity::disk_write(node, spill_bytes));
            }
        }
        // Intermediate data now resident in A-side memory: account the
        // non-spilled share, spread across destination nodes. Charging the
        // average per node keeps the cluster total exact.
        let resident = (emitted - spill_bytes).max(0.0);
        let per_node_mem = (resident / n as f64) as i64;
        if per_node_mem > 0 {
            for other in sim.spec().node_ids() {
                builder = builder.activity(Activity::MemChange {
                    node: other,
                    delta: per_node_mem,
                });
            }
        }
        o_tasks.push(sim.add_task(builder.build())?);
    }

    // A tasks: grouping + user A computation + replicated DFS output,
    // pipelined together. They start when the O phase completes.
    let a_count = n * profile.a_tasks_per_node as usize;
    let mut a_tasks = Vec::with_capacity(a_count);
    let partition_bytes = emitted_total / a_count.max(1) as f64;
    let output_total = total_logical * profile.output_ratio;
    let out_per_a = output_total / a_count.max(1) as f64;
    for a in 0..a_count {
        let node = NodeId((a % n) as u16);
        let cpu = partition_bytes * profile.a_cpu_per_byte;
        let mut compute = Vec::new();
        if cpu > 0.0 {
            compute.push(Demand::new(Resource::Cpu(node), cpu));
        }
        // Re-read any spilled share of this partition.
        let spill_share = spill_per_node / profile.a_tasks_per_node.max(1) as f64;
        if spill_share > 0.0 {
            compute.push(Demand::read(node, spill_share));
        }
        let mut output = Vec::new();
        if out_per_a > 0.0 {
            // Output replicas: primary local, remainder on the next nodes
            // round-robin (placement detail does not matter for aggregate
            // cost; distinctness does).
            let replicas: Vec<NodeId> = (0..profile.output_replication as usize)
                .map(|r| NodeId(((node.index() + r) % n) as u16))
                .collect();
            output.extend(simio::write_demands(node, &replicas, out_per_a));
        }
        let mut builder = TaskSpec::builder(format!("{}-a-{a}", profile.name), node)
            .phase("A")
            .deps(o_tasks.iter().copied())
            .slot(A_SLOT);
        if profile.a_staged {
            // Sorted output: merge must finish before the write starts.
            builder = builder.activity(Activity::work_with_overhead(compute, profile.cpu_overhead));
            builder = builder.activity(Activity::Work(output));
        } else {
            let mut demands = compute;
            demands.extend(output);
            builder = builder.activity(Activity::work_with_overhead(demands, profile.cpu_overhead));
        }
        // Release this partition's resident intermediate memory.
        let resident_total = (emitted_total - spill_per_node * n as f64).max(0.0);
        let release = (resident_total / a_count.max(1) as f64) as i64;
        if release > 0 {
            builder = builder.activity(Activity::MemChange {
                node,
                delta: -release,
            });
        }
        a_tasks.push(sim.add_task(builder.build())?);
    }

    // Finalize barrier: MPI_D_Finalize + rank teardown, releasing the
    // runtime's resident memory.
    let mut finalize_builder = TaskSpec::builder(format!("{}-finalize", profile.name), NodeId(0))
        .phase("finalize")
        .deps(a_tasks.iter().copied())
        .delay(profile.finalize_secs);
    for node in sim.spec().node_ids() {
        finalize_builder = finalize_builder.activity(Activity::MemChange {
            node,
            delta: -profile.runtime_mem_per_node,
        });
    }
    let finalize = sim.add_task(finalize_builder.build())?;

    Ok(CompiledJob {
        startup,
        o_tasks,
        a_tasks,
        finalize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpi_common::units::{GB, MB};
    use dmpi_dcsim::ClusterSpec;
    use dmpi_dfs::{DfsConfig, MiniDfs};

    fn make_splits(bytes: u64) -> Vec<InputSplit> {
        let dfs = MiniDfs::new(8, DfsConfig::paper_tuned()).unwrap();
        dfs.create_virtual("/in", NodeId(0), bytes).unwrap();
        dfs.splits("/in").unwrap()
    }

    fn run_profile(profile: &SimJobProfile, bytes: u64) -> dmpi_dcsim::SimReport {
        let mut sim = Simulation::new(ClusterSpec::paper_testbed());
        let splits = make_splits(bytes);
        compile(&mut sim, profile, &splits).unwrap();
        sim.run().unwrap()
    }

    #[test]
    fn job_runs_and_has_phases() {
        let mut profile = SimJobProfile::new("t");
        profile.o_cpu_per_byte = 1.0 / (200.0 * MB as f64);
        profile.emit_ratio = 1.0;
        profile.a_cpu_per_byte = 1.0 / (400.0 * MB as f64);
        let report = run_profile(&profile, 2 * GB);
        assert!(report.makespan > profile.startup_secs);
        assert!(report.phase_duration("O") > 0.0);
        assert!(report.phase_duration("A") > 0.0);
        let (o_start, _) = report.phase_span("O").unwrap();
        assert!(
            o_start >= profile.startup_secs - 1e-6,
            "O waits for startup"
        );
    }

    #[test]
    fn resident_input_skips_the_dfs_read() {
        let mut profile = SimJobProfile::new("iter");
        profile.o_cpu_per_byte = 1.0 / (50.0 * MB as f64);
        profile.emit_ratio = 0.001;
        profile.output_ratio = 0.001;
        let cold = run_profile(&profile, 8 * GB);
        profile.input_resident = true;
        profile.name = "iter-resident".into();
        let resident = run_profile(&profile, 8 * GB);
        // Reading 1 GB/node at ~100 MB/s disappears from the makespan only
        // if the read had been the bottleneck; here CPU dominates, so check
        // the disk profile instead.
        let reads = |r: &dmpi_dcsim::SimReport| -> f64 { r.profile.disk_read_mb_s.iter().sum() };
        assert!(reads(&cold) > 100.0, "cold run reads the input");
        assert!(reads(&resident) < 1.0, "resident run reads nothing");
        assert!(resident.makespan <= cold.makespan + 1e-6);
    }

    #[test]
    fn pipelined_beats_staged() {
        let mut profile = SimJobProfile::new("pipe");
        profile.o_cpu_per_byte = 1.0 / (150.0 * MB as f64);
        profile.emit_ratio = 1.0;
        let piped = run_profile(&profile, 4 * GB);
        profile.pipelined = false;
        profile.name = "staged".into();
        let staged = run_profile(&profile, 4 * GB);
        assert!(
            piped.makespan < staged.makespan,
            "pipelined {} !< staged {}",
            piped.makespan,
            staged.makespan
        );
    }

    #[test]
    fn memory_budget_overflow_adds_disk_traffic() {
        let mut profile = SimJobProfile::new("mem");
        profile.emit_ratio = 1.0;
        profile.intermediate_mem_budget = 64.0 * MB as f64; // force spill
        let spilled = run_profile(&profile, 8 * GB);
        profile.intermediate_mem_budget = 64.0 * GB as f64;
        profile.name = "nomem".into();
        let resident = run_profile(&profile, 8 * GB);
        assert!(
            spilled.makespan > resident.makespan,
            "spilling must cost time: {} vs {}",
            spilled.makespan,
            resident.makespan
        );
    }

    #[test]
    fn compressed_input_reads_less_disk() {
        // Same logical volume; compressed variant reads 1/2.2 the physical
        // bytes. With zero CPU costs it should finish sooner.
        let dfs = MiniDfs::new(8, DfsConfig::paper_tuned()).unwrap();
        dfs.create_virtual("/plain", NodeId(0), 8 * GB).unwrap();
        dfs.create_virtual("/gz", NodeId(0), (8.0 * GB as f64 / 2.2) as u64)
            .unwrap();

        let mut profile = SimJobProfile::new("plain");
        profile.emit_ratio = 0.0;
        profile.output_ratio = 0.0;
        let mut sim = Simulation::new(ClusterSpec::paper_testbed());
        compile(&mut sim, &profile, &dfs.splits("/plain").unwrap()).unwrap();
        let plain = sim.run().unwrap();

        let mut gz = SimJobProfile::new("gz");
        gz.emit_ratio = 0.0;
        gz.output_ratio = 0.0;
        gz.input_compression = 2.2;
        let mut sim = Simulation::new(ClusterSpec::paper_testbed());
        compile(&mut sim, &gz, &dfs.splits("/gz").unwrap()).unwrap();
        let compressed = sim.run().unwrap();

        assert!(compressed.makespan < plain.makespan);
    }

    #[test]
    fn memory_profile_rises_then_falls() {
        let mut profile = SimJobProfile::new("memprof");
        profile.emit_ratio = 1.0;
        profile.o_cpu_per_byte = 1.0 / (100.0 * MB as f64);
        let report = run_profile(&profile, 4 * GB);
        let mem = &report.profile.mem_gb;
        assert!(!mem.is_empty());
        let peak = mem.iter().cloned().fold(0.0, f64::max);
        // During finalize the intermediate memory is released; only the
        // runtime heaps remain, and they drop at the very end.
        let (f_start, _) = report.phase_span("finalize").unwrap();
        let tail = mem[(f_start as usize).min(mem.len() - 1)];
        assert!(peak > tail, "peak {peak} vs finalize-time {tail}");
        // Runtime heaps (3 GB/node) are visible.
        assert!(peak >= 3.0);
    }

    #[test]
    fn more_tasks_per_node_changes_concurrency() {
        let mut profile = SimJobProfile::new("conc");
        profile.o_cpu_per_byte = 1.0 / (30.0 * MB as f64); // CPU-bound
        profile.emit_ratio = 0.0;
        profile.output_ratio = 0.0;
        profile.tasks_per_node = 2;
        let two = run_profile(&profile, 8 * GB);
        profile.tasks_per_node = 4;
        profile.name = "conc4".into();
        let four = run_profile(&profile, 8 * GB);
        assert!(
            four.makespan < two.makespan,
            "more slots exploit idle cores: {} vs {}",
            four.makespan,
            two.makespan
        );
    }
}
