//! The executing DataMPI runtime: ranks as threads, really moving data.
//!
//! `run_job` realizes the bipartite O/A model:
//!
//! 1. **O phase** — worker ranks dynamically pull input splits from a shared
//!    queue (the library's dynamic scheduling), run the user's O function,
//!    and emit key-value pairs through a partitioned [`KvBuffer`]. Buffers
//!    flush asynchronously while the task computes (pipelining). Splits
//!    large enough to cut on line boundaries additionally fan out across
//!    an intra-rank worker pool ([`JobConfig::with_o_parallelism`]); each
//!    worker captures its chunk's emissions and the coordinator replays
//!    them in chunk order, so emitted frames stay byte-identical to the
//!    sequential path (see DESIGN.md §11).
//! 2. **A phase** — each rank owns one A partition: a dedicated ingest
//!    thread drains its mailbox into a [`PartitionStore`] (in-memory,
//!    spilling under pressure) *concurrently with the O phase* — required
//!    for deadlock freedom now that mailboxes are bounded (see `comm.rs`)
//!    and for overlap on the TCP backend. Once every peer's EOF has
//!    arrived the rank groups the records by key (sorted in MapReduce
//!    mode, hashed in Common mode) and runs the user's A function per
//!    group.
//!
//! Frames move over whichever [`crate::transport`] backend the config
//! selects: the in-proc channel fabric or a real TCP mesh. The runtime
//! only ever sees [`FrameSender`]s and a
//! [`FrameReceiver`], so both
//! backends execute exactly the same code path.
//!
//! Failures: an O task error, rank death, or corrupt frame marks the job
//! failed; every surviving rank still sends its EOFs so the job tears down
//! cleanly rather than deadlocking, and the job returns the error with a
//! structured [`FaultCause`]. With checkpointing enabled, completed O
//! tasks are recovered on restart without re-running user code
//! ([`crate::checkpoint`]); [`crate::supervisor::supervise_job`] drives
//! those restarts automatically under a bounded-retry policy. Faults are
//! injected deterministically from the config's
//! [`FaultPlan`](crate::fault::FaultPlan).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use bytes::Bytes;

use dmpi_common::compare::SortKernel;
use dmpi_common::kv::RecordBatch;
use dmpi_common::{ser, Error, FaultCause, FaultKind, Result};

use crate::buffer::KvBuffer;
use crate::checkpoint::CheckpointStore;
use crate::comm::Frame;
use crate::config::JobConfig;
use crate::observe::{HistKind, Observer, PhaseTotals, SpanKind, Tracer};
use crate::speculate::{ProgressBoard, TaskQueues};
use crate::spillfmt::SpillConfig;
use crate::store::PartitionStore;
use crate::task::{BatchCollector, Collector, GroupedValues};
use crate::transport::{self, FrameReceiver, FrameSender};

/// Groups between two A-side merge frontier recordings. Each recording
/// snapshots the cursor frontier plus the framed output so far, so the
/// interval trades checkpoint traffic against re-merged groups on a
/// mid-merge restart.
const MERGE_CP_INTERVAL: u64 = 32;

/// Aggregate counters of a finished job.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobStats {
    /// O tasks executed by user code this run.
    pub o_tasks_run: u64,
    /// O tasks recovered from checkpoint (user code skipped).
    pub o_tasks_recovered: u64,
    /// Key-value pairs emitted.
    pub records_emitted: u64,
    /// Framed intermediate bytes emitted.
    pub bytes_emitted: u64,
    /// Frames shipped over the interconnect.
    pub frames: u64,
    /// Frames shipped before task completion (pipelined flushes).
    pub early_flushes: u64,
    /// A-store spill events.
    pub spills: u64,
    /// A-store raw (uncompressed) bytes sealed into spill runs.
    pub spilled_bytes: u64,
    /// Stored bytes the sealed runs actually occupy — block bodies after
    /// compression plus each run's footer index. With spill compression
    /// off this slightly exceeds `spilled_bytes` (framing + index); with
    /// it on, `spilled_wire_bytes / spilled_bytes` is the achieved
    /// spill compression ratio.
    pub spilled_wire_bytes: u64,
    /// Spill-run blocks read and decoded by A-side merges and lookups.
    pub spill_blocks_read: u64,
    /// Spill-run blocks skipped whole via the run footer index (range
    /// restriction or checkpoint resume).
    pub spill_blocks_skipped: u64,
    /// Non-sequential spill-run block loads (disk seeks).
    pub spill_seeks: u64,
    /// Key groups processed by A tasks.
    pub groups: u64,
    /// Job attempts consumed: 1 for an unsupervised clean run; the
    /// supervisor sets the total (failed + successful) attempt count.
    pub attempts: u32,
    /// Bytes emitted by failed attempts that were *not* banked in a
    /// checkpoint and therefore had to be re-emitted — the re-execution
    /// cost a checkpointing run avoids.
    pub wasted_bytes: u64,
    /// Data frames rejected by the receiver-side CRC32 check.
    pub corrupt_frames: u64,
    /// Injected straggler delays served by O tasks.
    pub straggler_delays: u64,
    /// Largest number of decoded records any single A partition's
    /// forming run held at once (max across ranks). Under spill
    /// pressure this stays far below `records_emitted` — the evidence
    /// that grouping streams via external merge instead of
    /// materializing the dataset.
    pub peak_resident_records: u64,
    /// Records fed into the O-side combiner (pre-aggregation input).
    /// Zero unless [`JobConfig::with_combiner`](crate::JobConfig) is set.
    pub combiner_records_in: u64,
    /// Records the combiner actually shipped (pre-aggregation output);
    /// `combiner_records_in - combiner_records_out` pairs never touched
    /// the wire.
    pub combiner_records_out: u64,
    /// Speculative duplicate attempts launched by idle ranks.
    pub speculative_attempts: u64,
    /// Speculative duplicates that won their task's first-writer-wins
    /// commit (the task's output came from the duplicate, not the slow
    /// primary).
    pub speculative_commits: u64,
    /// Attempts (primary or speculative) that lost a commit race or were
    /// aborted pre-execution; their emissions are charged to
    /// `wasted_bytes`.
    pub speculative_aborts: u64,
    /// O splits stolen from another rank's queue under static scheduling
    /// with work stealing.
    pub tasks_stolen: u64,
    /// Per-phase wall-time totals, summed across ranks, derived from the
    /// span log. All zero unless the config installs an
    /// [`Observer`].
    pub phase_us: PhaseTotals,
}

impl JobStats {
    /// Adds every counter of `other` into `self` (attempts included —
    /// per-rank and per-window stats carry 0 until a whole job succeeds).
    pub fn merge(&mut self, other: &JobStats) {
        self.o_tasks_run += other.o_tasks_run;
        self.o_tasks_recovered += other.o_tasks_recovered;
        self.records_emitted += other.records_emitted;
        self.bytes_emitted += other.bytes_emitted;
        self.frames += other.frames;
        self.early_flushes += other.early_flushes;
        self.spills += other.spills;
        self.spilled_bytes += other.spilled_bytes;
        self.spilled_wire_bytes += other.spilled_wire_bytes;
        self.spill_blocks_read += other.spill_blocks_read;
        self.spill_blocks_skipped += other.spill_blocks_skipped;
        self.spill_seeks += other.spill_seeks;
        self.groups += other.groups;
        self.attempts += other.attempts;
        self.wasted_bytes += other.wasted_bytes;
        self.corrupt_frames += other.corrupt_frames;
        self.straggler_delays += other.straggler_delays;
        self.peak_resident_records = self.peak_resident_records.max(other.peak_resident_records);
        self.combiner_records_in += other.combiner_records_in;
        self.combiner_records_out += other.combiner_records_out;
        self.speculative_attempts += other.speculative_attempts;
        self.speculative_commits += other.speculative_commits;
        self.speculative_aborts += other.speculative_aborts;
        self.tasks_stolen += other.tasks_stolen;
        self.phase_us.merge(&other.phase_us);
    }
}

/// Result of a successful job: per-partition outputs plus counters.
#[derive(Clone, Debug)]
pub struct JobOutput {
    /// A-task output per partition (index = rank).
    pub partitions: Vec<RecordBatch>,
    /// Aggregate counters.
    pub stats: JobStats,
}

impl JobOutput {
    /// Flattens all partition outputs into one batch (partition order).
    pub fn into_single_batch(self) -> RecordBatch {
        let mut out = RecordBatch::new();
        for mut p in self.partitions {
            out.append(&mut p);
        }
        out
    }
}

struct EmitAdapter<'a> {
    buffer: &'a mut KvBuffer,
}

impl Collector for EmitAdapter<'_> {
    fn collect(&mut self, key: &[u8], value: &[u8]) {
        self.buffer.emit_kv(key, value);
    }
}

/// An input split the intra-rank parallel O executor knows how to cut
/// into independently-processable chunks.
///
/// **Contract:** processing the chunks of one split in chunk order must
/// make the O function emit exactly the pairs, in exactly the order, it
/// would emit over the whole split. For the byte-split surface the cut
/// points are `'\n'` boundaries (the separator byte is dropped), so the
/// contract holds for any O function that maps newline-separated
/// segments independently — every catalogue workload does. O functions
/// that carry state *across* lines must run with
/// [`JobConfig::with_o_parallelism`]`(1)`.
///
/// The default implementation never chunks, which is always correct:
/// such splits simply take the sequential path.
pub trait ChunkableSplit: Sync {
    /// Cuts `self` into two or more chunks of roughly `target_bytes`
    /// each, or `None` when the split is too small or offers no safe cut
    /// point.
    fn parallel_chunks(&self, target_bytes: usize) -> Option<Vec<Self>>
    where
        Self: Sized,
    {
        let _ = target_bytes;
        None
    }
}

impl ChunkableSplit for Bytes {
    /// Zero-copy chunking on line boundaries: each chunk is a refcounted
    /// [`Bytes::slice`] of the split; the `'\n'` separating two chunks
    /// belongs to neither, so the concatenation of every chunk's line
    /// list is exactly the whole split's line list.
    fn parallel_chunks(&self, target_bytes: usize) -> Option<Vec<Bytes>> {
        if self.len() <= target_bytes {
            return None;
        }
        let mut chunks = Vec::new();
        let mut start = 0usize;
        while self.len() - start > target_bytes {
            let tentative = start + target_bytes;
            match self[tentative..].iter().position(|&b| b == b'\n') {
                Some(off) => {
                    let cut = tentative + off;
                    chunks.push(self.slice(start..cut));
                    start = cut + 1;
                }
                None => break,
            }
        }
        chunks.push(self.slice(start..));
        if chunks.len() < 2 {
            return None;
        }
        Some(chunks)
    }
}

/// Captures one worker's emissions as `(klen, vlen, key, value)` varint
/// frames — the same layout [`dmpi_common::ser::read_framed_kv`] decodes
/// — for in-order replay into the task's real [`KvBuffer`].
struct CaptureCollector {
    buf: Vec<u8>,
}

impl Collector for CaptureCollector {
    fn collect(&mut self, key: &[u8], value: &[u8]) {
        dmpi_common::varint::write_u64(&mut self.buf, key.len() as u64);
        dmpi_common::varint::write_u64(&mut self.buf, value.len() as u64);
        self.buf.extend_from_slice(key);
        self.buf.extend_from_slice(value);
    }
}

/// Replays a worker's captured emissions through the task's real buffer,
/// borrowing each pair straight out of the capture (no allocation).
fn replay_capture(capture: &[u8], buffer: &mut KvBuffer) {
    let mut off = 0usize;
    while off < capture.len() {
        let (key, value, n) = dmpi_common::ser::read_framed_kv(&capture[off..])
            .expect("worker capture buffers are well-formed by construction");
        buffer.emit_kv(key, value);
        off += n;
    }
}

/// Commits one attempt's captured emissions as the task's real output:
/// builds the task's [`KvBuffer`] (checkpoint tee, tracer, combiner, and
/// injected corruption attached exactly as on the direct path) and
/// replays the capture through it. Because the buffer sees the identical
/// `emit_kv` sequence the direct path would produce, the shipped frames
/// are byte-identical to direct emission — the property that lets
/// speculation run under the first-writer-wins rule without perturbing
/// output. Returns the committed record count.
#[allow(clippy::too_many_arguments)] // internal: mirrors the rank context it runs in
fn commit_capture(
    capture: &[u8],
    senders: &[FrameSender],
    rank: usize,
    task: usize,
    attempt: u32,
    config: &JobConfig,
    checkpoint: Option<&CheckpointStore>,
    tracer: Option<&Tracer>,
    stats: &mut JobStats,
) -> u64 {
    let mut buffer = KvBuffer::new(
        senders.to_vec(),
        rank,
        task,
        config.flush_threshold,
        config.pipelined,
    );
    if let Some(cp) = checkpoint {
        buffer.set_tee(cp.clone());
    }
    if let Some(t) = tracer {
        buffer.set_tracer(t.for_task(task as u64));
    }
    if let Some(c) = &config.combiner {
        buffer.set_combiner(c.clone());
    }
    if let Some(plan) = config.faults.as_ref() {
        if let Some(corruption) = plan.corruption(task, attempt) {
            buffer.set_corruption(corruption);
        }
    }
    replay_capture(capture, &mut buffer);
    let b = buffer.finish();
    stats.o_tasks_run += 1;
    stats.records_emitted += b.records;
    stats.bytes_emitted += b.bytes;
    stats.frames += b.frames;
    stats.early_flushes += b.early_flushes;
    stats.combiner_records_in += b.combiner_records_in;
    stats.combiner_records_out += b.combiner_records_out;
    if let Some(cp) = checkpoint {
        cp.mark_complete_at(task, config.ranks);
    }
    b.records
}

/// Serves an injected straggler/slow-rank delay. Without a progress
/// board this is a plain sleep. With one, the delay is served in
/// poll-sized slices so a primary stuck in an injected stall can abort
/// the moment a speculative duplicate commits its task — returning
/// `true` (task committed elsewhere; the caller must abort without
/// running user code, wasting zero bytes).
fn serve_injected_delay(total: Duration, board: Option<&ProgressBoard>, task: usize) -> bool {
    let Some(board) = board else {
        std::thread::sleep(total);
        return false;
    };
    let slice = board.poll().max(Duration::from_millis(1));
    let deadline = Instant::now() + total;
    loop {
        if board.is_committed(task) {
            return true;
        }
        let now = Instant::now();
        if now >= deadline {
            return false;
        }
        std::thread::sleep(slice.min(deadline - now));
    }
}

/// Runs one O task's chunks on a scoped worker pool, replaying each
/// chunk's captured emissions into `buffer` strictly in chunk order.
///
/// Determinism: the task's single real [`KvBuffer`] sees exactly the
/// emission sequence the sequential path would produce, so framing,
/// combiner windows, checkpoint tees, corruption injection, and stats
/// are all byte-identical at any worker count. Workers overlap with the
/// replay: the coordinator replays chunk `i` while later chunks still
/// compute.
///
/// Returns `false` (after all workers drained) if any chunk's user code
/// panicked — the caller converts that into the same task-panic fault
/// the sequential path raises. The returned [`PhaseTotals`] carry the
/// workers' traced O-task time, attributed via per-worker tracers rather
/// than wall-clock deltas so overlapped workers sum correctly.
#[allow(clippy::too_many_arguments)] // internal: mirrors the rank context it runs in
pub(crate) fn execute_chunks_parallel<I, O>(
    task: usize,
    chunks: Vec<I>,
    o_fn: &O,
    buffer: &mut KvBuffer,
    workers: usize,
    observer: Option<&Observer>,
    rank: usize,
    attempt: u32,
) -> (bool, PhaseTotals)
where
    I: Sync,
    O: Fn(usize, &I, &mut dyn Collector) + Send + Sync,
{
    use std::sync::atomic::AtomicUsize;

    let workers = workers.min(chunks.len()).max(1);
    let aborted = AtomicBool::new(false);
    let next = AtomicUsize::new(0);
    let pool_phase = Mutex::new(PhaseTotals::default());
    let (tx, rx) = std::sync::mpsc::channel::<(usize, std::result::Result<Vec<u8>, ()>)>();
    let chunks = &chunks;
    let aborted = &aborted;
    let next = &next;
    let pool_phase_ref = &pool_phase;
    let mut ok = true;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || {
                // Tracers are thread-local: each worker builds its own and
                // absorbs it on exit, so overlapped chunk spans accumulate
                // as summed work time, not double-counted wall time.
                let tracer = observer.map(|o| o.rank_tracer(rank as u32, attempt));
                loop {
                    if aborted.load(Ordering::SeqCst) {
                        break;
                    }
                    let idx = next.fetch_add(1, Ordering::SeqCst);
                    if idx >= chunks.len() {
                        break;
                    }
                    let start = tracer.as_ref().map(Tracer::start);
                    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut capture = CaptureCollector { buf: Vec::new() };
                        o_fn(task, &chunks[idx], &mut capture);
                        capture.buf
                    }));
                    if let Some(t) = &tracer {
                        t.for_task(task as u64).span(
                            SpanKind::OTask,
                            start.unwrap_or(0),
                            vec![("chunk", idx.to_string())],
                        );
                    }
                    match run {
                        Ok(capture) => {
                            let _ = tx.send((idx, Ok(capture)));
                        }
                        Err(_) => {
                            aborted.store(true, Ordering::SeqCst);
                            let _ = tx.send((idx, Err(())));
                        }
                    }
                }
                if let (Some(obs), Some(t)) = (observer, &tracer) {
                    let mut p = pool_phase_ref.lock().expect("pool phase lock");
                    p.merge(&obs.absorb(t));
                }
            });
        }
        drop(tx);
        // Coordinator: replay completed captures strictly in chunk order,
        // stashing out-of-order arrivals. Runs inside the scope so replay
        // overlaps the still-computing workers.
        let mut stash: std::collections::BTreeMap<usize, Vec<u8>> = Default::default();
        let mut next_replay = 0usize;
        for (idx, result) in rx {
            match result {
                Ok(capture) => {
                    if !ok {
                        continue;
                    }
                    stash.insert(idx, capture);
                    while let Some(capture) = stash.remove(&next_replay) {
                        replay_capture(&capture, buffer);
                        next_replay += 1;
                    }
                }
                Err(()) => ok = false,
            }
        }
        if ok {
            debug_assert_eq!(next_replay, chunks.len(), "all chunks replayed");
        }
    });
    (ok, pool_phase.into_inner().expect("pool phase lock"))
}

/// Runs a DataMPI job (first attempt). See [`run_job_attempt`].
///
/// # Examples
/// ```
/// use datampi::{run_job, JobConfig};
/// use dmpi_common::group::{Collector, GroupedValues};
/// use dmpi_common::ser::Writable;
///
/// // O: emit (word, 1); A: sum the counts per word.
/// let o = |_t: usize, split: &[u8], out: &mut dyn Collector| {
///     for w in split.split(|b| *b == b' ') {
///         out.collect(w, &1u64.to_bytes());
///     }
/// };
/// let a = |g: &GroupedValues, out: &mut dyn Collector| {
///     let n: u64 = g.values.iter().map(|v| u64::from_bytes(v).unwrap()).sum();
///     out.collect(&g.key, &n.to_bytes());
/// };
/// let out = run_job(&JobConfig::new(2), vec!["b a b".into()], o, a, None).unwrap();
/// assert_eq!(out.stats.records_emitted, 3);
/// assert_eq!(out.stats.groups, 2);
/// ```
pub fn run_job<O, A>(
    config: &JobConfig,
    inputs: Vec<Bytes>,
    o_fn: O,
    a_fn: A,
    checkpoint: Option<&CheckpointStore>,
) -> Result<JobOutput>
where
    O: Fn(usize, &[u8], &mut dyn Collector) + Send + Sync,
    A: Fn(&GroupedValues, &mut dyn Collector) + Send + Sync,
{
    run_job_attempt(config, inputs, o_fn, a_fn, checkpoint, 0)
}

/// Runs a DataMPI job, identifying the `attempt` number for fault-injection
/// and recovery accounting. `inputs[i]` is the raw content of O task `i`'s
/// split.
pub fn run_job_attempt<O, A>(
    config: &JobConfig,
    inputs: Vec<Bytes>,
    o_fn: O,
    a_fn: A,
    checkpoint: Option<&CheckpointStore>,
    attempt: u32,
) -> Result<JobOutput>
where
    O: Fn(usize, &[u8], &mut dyn Collector) + Send + Sync,
    A: Fn(&GroupedValues, &mut dyn Collector) + Send + Sync,
{
    run_job_generic(
        config,
        inputs,
        move |task, split: &Bytes, out: &mut dyn Collector| o_fn(task, split, out),
        a_fn,
        checkpoint,
        attempt,
    )
}

/// The generic runner behind both the byte-split surface ([`run_job`]) and
/// the Iteration-mode surface ([`crate::iteration::run_iteration`]): O
/// tasks consume an arbitrary resident split type `I`.
pub fn run_job_generic<I, O, A>(
    config: &JobConfig,
    inputs: Vec<I>,
    o_fn: O,
    a_fn: A,
    checkpoint: Option<&CheckpointStore>,
    attempt: u32,
) -> Result<JobOutput>
where
    I: ChunkableSplit,
    O: Fn(usize, &I, &mut dyn Collector) + Send + Sync,
    A: Fn(&GroupedValues, &mut dyn Collector) + Send + Sync,
{
    run_job_core(config, &inputs, &o_fn, &a_fn, checkpoint, attempt).map_err(|e| e.0)
}

/// The actual runner. On failure it also returns the partial stats of the
/// attempt, so the supervisor can account wasted work across retries.
pub(crate) fn run_job_core<I, O, A>(
    config: &JobConfig,
    inputs: &[I],
    o_fn: &O,
    a_fn: &A,
    checkpoint: Option<&CheckpointStore>,
    attempt: u32,
) -> std::result::Result<JobOutput, Box<(Error, JobStats)>>
where
    I: ChunkableSplit,
    O: Fn(usize, &I, &mut dyn Collector) + Send + Sync,
    A: Fn(&GroupedValues, &mut dyn Collector) + Send + Sync,
{
    if let Err(e) = config.validate() {
        return Err(Box::new((e, JobStats::default())));
    }
    if config.checkpointing && checkpoint.is_none() {
        return Err(Box::new((
            Error::Config("checkpointing enabled but no CheckpointStore supplied".into()),
            JobStats::default(),
        )));
    }
    let ranks = config.ranks;
    if let Some(obs) = config.observer.as_ref() {
        obs.begin_job(ranks);
    }
    let attempt_start = config.observer.as_ref().map(|o| o.now_micros());
    let mut endpoints = match transport::for_config(config).open() {
        Ok(endpoints) => endpoints,
        Err(e) => return Err(Box::new((e, JobStats::default()))),
    };
    if let Some(obs) = config.observer.as_ref() {
        // Full-window blocking time flows into the WindowWait channel.
        let wait_hist = obs.registry().histograms().handle(HistKind::WindowWait);
        for endpoint in &mut endpoints {
            endpoint.attach_window_wait(std::sync::Arc::clone(&wait_hist));
        }
    }

    let queues = TaskQueues::new(
        config.scheduling,
        inputs.len(),
        ranks,
        config.speculation.seed,
    );
    // The progress board exists only when speculation is on: the default
    // path keeps its direct-emission hot loop and pays nothing.
    let board: Option<ProgressBoard> = config
        .speculation
        .enabled
        .then(|| ProgressBoard::new(config.speculation, inputs.len()));
    let failed = AtomicBool::new(false);
    let failure: Mutex<Option<Error>> = Mutex::new(None);
    // First failure wins; later ones (often knock-on effects) are dropped.
    let fail_with = |err: Error| {
        let mut f = failure.lock().expect("failure lock");
        if f.is_none() {
            *f = Some(err);
        }
        failed.store(true, Ordering::SeqCst);
    };
    let queues = &queues;
    let board = &board;
    let failed = &failed;
    let fail_with = &fail_with;

    let mut rank_results: Vec<Option<(RecordBatch, JobStats)>> = Vec::new();
    rank_results.resize_with(ranks, || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranks);
        for (rank, mut endpoint) in endpoints.into_iter().enumerate() {
            let checkpoint = checkpoint.cloned();
            let handle = scope.spawn(move || -> Result<(RecordBatch, JobStats)> {
                let mut stats = JobStats::default();
                // O-time traced by pool workers (parallel executor), to be
                // merged after this rank's own tracer is absorbed.
                let mut pool_phase = PhaseTotals::default();
                let plan = config.faults.as_ref();
                let senders = endpoint.senders();
                let receiver = endpoint.take_receiver();
                // Thread-local span buffer: recording is lock-free; the
                // buffer merges into the job trace when this rank exits.
                let tracer = config
                    .observer
                    .as_ref()
                    .map(|o| o.rank_tracer(rank as u32, attempt));

                // Injected rank death: this rank does no O work at all —
                // the `failed` flag short-circuits the loop below — but
                // still sends its EOFs so peers tear down cleanly, like a
                // real process whose sockets are closed by the OS.
                if let Some(plan) = plan {
                    if plan.rank_panics(rank, attempt) {
                        if let Some(t) = &tracer {
                            t.instant(
                                SpanKind::Fault,
                                vec![("cause", "injected rank death".into())],
                            );
                        }
                        fail_with(Error::fault(
                            FaultCause::new(FaultKind::RankDeath, "injected rank death")
                                .rank(rank)
                                .attempt(attempt),
                        ));
                    }
                }

                // The A-side ingest runs on its own thread from job start,
                // concurrently with the O phase below. With bounded
                // mailboxes this concurrency is what keeps the job
                // deadlock-free (see the argument in `comm.rs`); on TCP it
                // also drains the sockets while O computes. The ingest
                // thread builds its own tracer internally (tracers are
                // thread-local by design).
                // A mid-merge checkpoint recorded by a previous attempt at
                // this width lets the A phase resume from a block boundary
                // instead of re-merging from the top; the ingest thread then
                // only drains (and CRC-checks) the replayed frames — the
                // sealed runs it would rebuild already live in the
                // checkpoint's run handles.
                let merge_resume = checkpoint
                    .as_ref()
                    .filter(|_| config.sorted_grouping)
                    .and_then(|cp| cp.merge_checkpoint(rank, ranks));
                let ingest = std::thread::scope(|ingest_scope| {
                    let observer = config.observer.as_ref();
                    let budget = config.memory_budget;
                    let sorted = config.sorted_grouping;
                    let kernel = config.sort_kernel;
                    let spill = config
                        .spill_config()
                        .with_tag(format!("r{rank}-a{attempt}"));
                    let discard = merge_resume.is_some();
                    let recv_start = observer.map(Observer::now_micros);
                    let ingest = ingest_scope.spawn(move || {
                        ingest_partition(
                            receiver,
                            IngestConfig {
                                expected_eofs: ranks,
                                memory_budget: budget,
                                sorted,
                                kernel,
                                observer,
                                recv_start,
                                rank,
                                attempt,
                                spill,
                                discard,
                            },
                        )
                    });

                    // ---- O phase: pulls from the split dispenser ----
                    loop {
                        if failed.load(Ordering::SeqCst) {
                            break;
                        }
                        let Some(dispensed) = queues.next(rank) else {
                            // Nothing left to start. Without a progress
                            // board the rank is done; with one it idles
                            // until every task commits, speculating on
                            // detected stragglers meanwhile.
                            let Some(board) = board.as_ref() else { break };
                            if board.all_done() {
                                break;
                            }
                            if let Some(victim) = board.claim_speculation() {
                                stats.speculative_attempts += 1;
                                if let Some(t) = &tracer {
                                    t.registry().add_speculative_attempt();
                                }
                                let spec_start = tracer.as_ref().map(Tracer::start);
                                // The duplicate runs user code into a capture
                                // only — no frames move unless it wins the
                                // commit. Injected task delays are *not*
                                // re-applied: the injected slowness models
                                // the original placement, which is exactly
                                // what the duplicate escapes.
                                let mut capture = CaptureCollector { buf: Vec::new() };
                                let run_ok =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        o_fn(victim, &inputs[victim], &mut capture);
                                    }))
                                    .is_ok();
                                if !run_ok {
                                    // A panic in the duplicate is the same
                                    // user-code bug the primary would hit.
                                    stats.wasted_bytes += capture.buf.len() as u64;
                                    if let Some(t) = &tracer {
                                        t.for_task(victim as u64).instant(
                                            SpanKind::Fault,
                                            vec![("cause", "O task user code panicked".into())],
                                        );
                                    }
                                    fail_with(Error::fault(
                                        FaultCause::new(
                                            FaultKind::TaskPanic,
                                            "O task user code panicked",
                                        )
                                        .task(victim)
                                        .rank(rank)
                                        .attempt(attempt),
                                    ));
                                    break;
                                }
                                if board.try_commit(victim) {
                                    let records = commit_capture(
                                        &capture.buf,
                                        &senders,
                                        rank,
                                        victim,
                                        attempt,
                                        config,
                                        checkpoint.as_ref(),
                                        tracer.as_ref(),
                                        &mut stats,
                                    );
                                    stats.speculative_commits += 1;
                                    if let Some(t) = &tracer {
                                        t.registry().add_speculative_commit();
                                        t.for_task(victim as u64).span(
                                            SpanKind::OTask,
                                            spec_start.unwrap_or(0),
                                            vec![
                                                ("records", records.to_string()),
                                                ("speculative", "true".into()),
                                            ],
                                        );
                                    }
                                } else {
                                    // The primary finished first: charge
                                    // exactly the duplicate's emissions and
                                    // ship nothing.
                                    stats.wasted_bytes += capture.buf.len() as u64;
                                    stats.speculative_aborts += 1;
                                    if let Some(t) = &tracer {
                                        t.for_task(victim as u64).span(
                                            SpanKind::OTask,
                                            spec_start.unwrap_or(0),
                                            vec![
                                                ("speculative", "true".into()),
                                                ("aborted", "true".into()),
                                            ],
                                        );
                                    }
                                }
                            } else {
                                std::thread::sleep(board.poll());
                            }
                            continue;
                        };
                        let task = dispensed.task;
                        if dispensed.stolen {
                            stats.tasks_stolen += 1;
                            if let Some(t) = &tracer {
                                t.registry().add_task_stolen();
                            }
                        }

                        // Checkpoint recovery path: replay without user code,
                        // re-bucketing frames when the recorded width differs
                        // from this mesh's (the elastic-shrink case).
                        if let Some(cp) = checkpoint.as_ref() {
                            if cp.is_complete(task) {
                                for (partition, payload) in cp.recover_frames_for(task, ranks) {
                                    if let Some(t) = &tracer {
                                        t.registry().add_frame_sent(
                                            rank,
                                            partition,
                                            payload.len() as u64,
                                        );
                                    }
                                    let _ =
                                        senders[partition].send(Frame::data(rank, task, payload));
                                }
                                if let Some(t) = &tracer {
                                    t.for_task(task as u64).instant(SpanKind::Recovered, vec![]);
                                    t.registry().add_recovered_tasks(1);
                                }
                                stats.o_tasks_recovered += 1;
                                if let Some(board) = board.as_ref() {
                                    board.try_commit(task);
                                }
                                continue;
                            }
                        }

                        // Speculation on: run the task in capture-commit mode
                        // under the first-writer-wins rule (DESIGN.md §12).
                        if let Some(board) = board.as_ref() {
                            board.start(task);
                            if let Some(t) = &tracer {
                                t.registry().add_heartbeats(1);
                            }
                            if let Some(plan) = plan {
                                if plan.o_task_error(task, attempt) {
                                    if let Some(cp) = checkpoint.as_ref() {
                                        cp.discard_incomplete(task);
                                    }
                                    board.abort(task);
                                    if let Some(t) = &tracer {
                                        t.for_task(task as u64).instant(
                                            SpanKind::Fault,
                                            vec![("cause", "scheduled O-task failure".into())],
                                        );
                                    }
                                    fail_with(Error::fault(
                                        FaultCause::new(
                                            FaultKind::InjectedError,
                                            "scheduled O-task failure",
                                        )
                                        .task(task)
                                        .rank(rank)
                                        .attempt(attempt),
                                    ));
                                    break;
                                }
                                let mut delay = Duration::ZERO;
                                if let Some(d) = plan.straggler_delay(task, attempt) {
                                    delay += d;
                                    stats.straggler_delays += 1;
                                }
                                if let Some(d) = plan.slow_rank_delay(rank, attempt) {
                                    delay += d;
                                    stats.straggler_delays += 1;
                                }
                                if !delay.is_zero()
                                    && serve_injected_delay(delay, Some(board), task)
                                {
                                    // A duplicate committed while we were
                                    // stalled: abort before user code runs —
                                    // zero bytes wasted.
                                    stats.speculative_aborts += 1;
                                    board.abort(task);
                                    if let Some(t) = &tracer {
                                        t.registry().add_heartbeats(1);
                                    }
                                    continue;
                                }
                            }
                            let task_start = tracer.as_ref().map(Tracer::start);
                            let mut capture = CaptureCollector { buf: Vec::new() };
                            let run_ok =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    o_fn(task, &inputs[task], &mut capture);
                                }))
                                .is_ok();
                            if !run_ok {
                                // The partial capture never reached the wire,
                                // but it is work this attempt threw away.
                                stats.wasted_bytes += capture.buf.len() as u64;
                                board.abort(task);
                                if let Some(cp) = checkpoint.as_ref() {
                                    cp.discard_incomplete(task);
                                }
                                if let Some(t) = &tracer {
                                    t.for_task(task as u64).instant(
                                        SpanKind::Fault,
                                        vec![("cause", "O task user code panicked".into())],
                                    );
                                }
                                fail_with(Error::fault(
                                    FaultCause::new(
                                        FaultKind::TaskPanic,
                                        "O task user code panicked",
                                    )
                                    .task(task)
                                    .rank(rank)
                                    .attempt(attempt),
                                ));
                                break;
                            }
                            if board.try_commit(task) {
                                let records = commit_capture(
                                    &capture.buf,
                                    &senders,
                                    rank,
                                    task,
                                    attempt,
                                    config,
                                    checkpoint.as_ref(),
                                    tracer.as_ref(),
                                    &mut stats,
                                );
                                if let Some(t) = &tracer {
                                    t.for_task(task as u64).span(
                                        SpanKind::OTask,
                                        task_start.unwrap_or(0),
                                        vec![("records", records.to_string())],
                                    );
                                }
                            } else {
                                // A speculative duplicate already committed:
                                // this primary's emissions are pure waste.
                                stats.wasted_bytes += capture.buf.len() as u64;
                                stats.speculative_aborts += 1;
                                if let Some(t) = &tracer {
                                    t.for_task(task as u64).span(
                                        SpanKind::OTask,
                                        task_start.unwrap_or(0),
                                        vec![("aborted", "true".into())],
                                    );
                                }
                            }
                            board.finish(task);
                            if let Some(t) = &tracer {
                                t.registry().add_heartbeats(1);
                            }
                            continue;
                        }

                        // Fresh execution path.
                        let task_start = tracer.as_ref().map(Tracer::start);
                        let mut buffer = KvBuffer::new(
                            senders.clone(),
                            rank,
                            task,
                            config.flush_threshold,
                            config.pipelined,
                        );
                        if let Some(cp) = checkpoint.as_ref() {
                            buffer.set_tee(cp.clone());
                        }
                        if let Some(t) = &tracer {
                            buffer.set_tracer(t.for_task(task as u64));
                        }
                        if let Some(c) = &config.combiner {
                            buffer.set_combiner(c.clone());
                        }

                        if let Some(plan) = plan {
                            // Scheduled O-task error?
                            if plan.o_task_error(task, attempt) {
                                if let Some(cp) = checkpoint.as_ref() {
                                    cp.discard_incomplete(task);
                                }
                                if let Some(t) = &tracer {
                                    t.for_task(task as u64).instant(
                                        SpanKind::Fault,
                                        vec![("cause", "scheduled O-task failure".into())],
                                    );
                                }
                                fail_with(Error::fault(
                                    FaultCause::new(
                                        FaultKind::InjectedError,
                                        "scheduled O-task failure",
                                    )
                                    .task(task)
                                    .rank(rank)
                                    .attempt(attempt),
                                ));
                                break;
                            }
                            // Scheduled straggler delay?
                            if let Some(delay) = plan.straggler_delay(task, attempt) {
                                std::thread::sleep(delay);
                                stats.straggler_delays += 1;
                            }
                            // Scheduled whole-rank slowdown?
                            if let Some(delay) = plan.slow_rank_delay(rank, attempt) {
                                std::thread::sleep(delay);
                                stats.straggler_delays += 1;
                            }
                            // Scheduled wire corruption?
                            if let Some(corruption) = plan.corruption(task, attempt) {
                                buffer.set_corruption(corruption);
                            }
                        }

                        // Large line-decomposable splits fan out across the
                        // intra-rank pool; everything else takes the
                        // sequential path (always correct).
                        let chunks = if config.o_parallelism > 1 {
                            inputs[task].parallel_chunks(config.o_chunk_bytes)
                        } else {
                            None
                        };
                        let ran_parallel = chunks.is_some();
                        // User code may panic; convert that into a clean job
                        // fault so peer ranks still receive our EOFs instead of
                        // deadlocking in their A phase.
                        let run_ok = match chunks {
                            Some(chunks) => {
                                let (ok, phase) = execute_chunks_parallel(
                                    task,
                                    chunks,
                                    o_fn,
                                    &mut buffer,
                                    config.o_parallelism,
                                    config.observer.as_ref(),
                                    rank,
                                    attempt,
                                );
                                pool_phase.merge(&phase);
                                ok
                            }
                            None => std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                let mut adapter = EmitAdapter {
                                    buffer: &mut buffer,
                                };
                                o_fn(task, &inputs[task], &mut adapter);
                            }))
                            .is_ok(),
                        };
                        if !run_ok {
                            // Whatever the half-finished task already flushed
                            // is pure waste — it can never be recovered.
                            stats.wasted_bytes += buffer.stats().bytes;
                            if let Some(cp) = checkpoint.as_ref() {
                                cp.discard_incomplete(task);
                            }
                            if let Some(t) = &tracer {
                                t.for_task(task as u64).instant(
                                    SpanKind::Fault,
                                    vec![("cause", "O task user code panicked".into())],
                                );
                            }
                            fail_with(Error::fault(
                                FaultCause::new(FaultKind::TaskPanic, "O task user code panicked")
                                    .task(task)
                                    .rank(rank)
                                    .attempt(attempt),
                            ));
                            break;
                        }
                        let b = buffer.finish();
                        // In parallel mode the workers' per-chunk OTask spans
                        // already carry this task's O time (summed work, not
                        // wall clock); recording the enclosing wall-clock span
                        // too would double-count the phase.
                        if let Some(t) = tracer.as_ref().filter(|_| !ran_parallel) {
                            t.for_task(task as u64).span(
                                SpanKind::OTask,
                                task_start.unwrap_or(0),
                                vec![("records", b.records.to_string())],
                            );
                        }
                        stats.o_tasks_run += 1;
                        stats.records_emitted += b.records;
                        stats.bytes_emitted += b.bytes;
                        stats.frames += b.frames;
                        stats.early_flushes += b.early_flushes;
                        stats.combiner_records_in += b.combiner_records_in;
                        stats.combiner_records_out += b.combiner_records_out;
                        if let Some(cp) = checkpoint.as_ref() {
                            cp.mark_complete_at(task, ranks);
                        }
                    }

                    // Close the stream to every partition exactly once.
                    for s in senders.iter() {
                        s.send(Frame::Eof { from_rank: rank });
                    }

                    ingest.join().expect("ingest thread panicked")
                });

                // ---- A phase: group and reduce the ingested partition ----
                stats.corrupt_frames += ingest.corrupt_frames;
                if let Some(e) = ingest.first_error {
                    fail_with(e);
                }
                let mut store = ingest.store;
                // Merge checkpointing needs every record in a seekable
                // sealed run — a live in-memory cursor cannot name a block
                // frontier — so the forming run is sealed through the same
                // block format as the spills before the merge opens.
                let merge_cp = checkpoint
                    .as_ref()
                    .filter(|_| config.sorted_grouping && !failed.load(Ordering::SeqCst));
                if let Some(cp) = merge_cp {
                    if merge_resume.is_none() {
                        store.seal_all();
                        cp.register_merge_runs(rank, ranks, store.sealed_run_handles());
                    }
                }
                let st = store.stats();
                stats.spills += st.spills;
                stats.spilled_bytes += st.spilled_bytes;
                stats.spilled_wire_bytes += st.spilled_wire_bytes;
                stats.peak_resident_records =
                    stats.peak_resident_records.max(st.peak_resident_records);
                let read_counters = store.read_counters();

                let mut collector = BatchCollector::default();
                let mut group_result: Result<()> = Ok(());
                if !failed.load(Ordering::SeqCst) {
                    // Ingest already decoded (and, for spilled runs,
                    // sorted) everything overlapped with the O phase; the
                    // Sort span now covers only the final in-memory run's
                    // sort plus merge setup.
                    let sort_start = tracer.as_ref().map(Tracer::start);
                    let runs = st.spills + 1;
                    let merge_panic_at = plan.and_then(|p| p.merge_panic_after(rank, attempt));
                    let mut groups = 0u64;
                    // Resume path: replay the output emitted before the
                    // recorded boundary, then reopen every run at its
                    // frontier block, skipping records at or before the
                    // last emitted group key.
                    let stream_result = match &merge_resume {
                        Some(m) => ser::unframe_batch(&m.partial_output).and_then(|mut done| {
                            groups = m.groups_emitted;
                            collector.batch.append(&mut done);
                            crate::store::resume_group_stream(
                                &m.runs,
                                &m.frontier,
                                m.last_key.clone(),
                                &read_counters,
                                config.observer.as_ref(),
                            )
                        }),
                        None => store.into_group_stream(),
                    };
                    match stream_result {
                        Ok(mut stream) => {
                            if let Some(t) = &tracer {
                                t.registry().add_records_in(st.records);
                                t.span(
                                    SpanKind::Sort,
                                    sort_start.unwrap_or(0),
                                    vec![("runs", runs.to_string())],
                                );
                            }
                            // Pull one key group at a time from the k-way
                            // merge: grouped data is never all resident.
                            let a_start = tracer.as_ref().map(Tracer::start);
                            let streamed = loop {
                                match stream.next_group() {
                                    Ok(Some(g)) => {
                                        groups += 1;
                                        a_fn(&g, &mut collector);
                                        if let Some(cp) = merge_cp {
                                            if groups.is_multiple_of(MERGE_CP_INTERVAL) {
                                                if let Some(frontier) = stream.frontier() {
                                                    cp.record_merge_frontier(
                                                        rank,
                                                        frontier,
                                                        Some(g.key.clone()),
                                                        groups,
                                                        Bytes::from(ser::frame_batch(
                                                            &collector.batch,
                                                        )),
                                                    );
                                                }
                                            }
                                        }
                                        if let Some(after) = merge_panic_at {
                                            if groups >= after {
                                                if let Some(t) = &tracer {
                                                    t.instant(
                                                        SpanKind::Fault,
                                                        vec![(
                                                            "cause",
                                                            "injected merge death".into(),
                                                        )],
                                                    );
                                                }
                                                fail_with(Error::fault(
                                                    FaultCause::new(
                                                        FaultKind::RankDeath,
                                                        "injected merge death",
                                                    )
                                                    .rank(rank)
                                                    .attempt(attempt),
                                                ));
                                                break Ok(());
                                            }
                                        }
                                    }
                                    Ok(None) => break Ok(()),
                                    Err(e) => break Err(e),
                                }
                            };
                            stats.groups += groups;
                            if let Some(t) = &tracer {
                                t.span(
                                    SpanKind::ACompute,
                                    a_start.unwrap_or(0),
                                    vec![("groups", groups.to_string())],
                                );
                            }
                            match streamed {
                                Ok(()) => {
                                    // The merge ran to completion: its
                                    // checkpoint state (and the run files it
                                    // pins) can be reclaimed.
                                    if !failed.load(Ordering::SeqCst) {
                                        if let Some(cp) = merge_cp {
                                            cp.clear_merge(rank);
                                        }
                                    }
                                }
                                Err(e) => group_result = Err(store_decode_fault(e, rank, attempt)),
                            }
                        }
                        Err(e) => group_result = Err(store_decode_fault(e, rank, attempt)),
                    }
                }
                let reads = read_counters.snapshot();
                stats.spill_blocks_read += reads.blocks_read;
                stats.spill_blocks_skipped += reads.blocks_skipped;
                stats.spill_seeks += reads.seeks;
                if let Some(t) = &tracer {
                    t.registry().add_spill_reads(&reads);
                }
                // Merge this rank's span buffer into the job trace before
                // any error propagates, so failed ranks keep their events;
                // the drained spans' phase totals ride back on the stats.
                if let (Some(obs), Some(t)) = (config.observer.as_ref(), &tracer) {
                    stats.phase_us = obs.absorb(t);
                }
                stats.phase_us.merge(&ingest.phase);
                stats.phase_us.merge(&pool_phase);
                // Tear the endpoint down: drop every sender clone first so
                // TCP writer threads see disconnect, then join them so all
                // queued frames reach the sockets; record the wire-level
                // traffic the sockets actually carried.
                drop(senders);
                let wire = endpoint.close();
                if let Some(t) = &tracer {
                    t.registry().add_wire_stats(&wire);
                }
                group_result?;
                Ok((collector.batch, stats))
            });
            handles.push(handle);
        }
        for (rank, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(Ok(result)) => rank_results[rank] = Some(result),
                Ok(Err(e)) => fail_with(e),
                Err(_) => fail_with(Error::fault(
                    FaultCause::new(FaultKind::RankDeath, "worker rank panicked")
                        .rank(rank)
                        .attempt(attempt),
                )),
            }
        }
    });

    // Aggregate whatever the ranks managed to do — on failure these are
    // the attempt's partial counters, which the supervisor turns into
    // wasted-work accounting.
    let mut stats = JobStats::default();
    for result in rank_results.iter().flatten() {
        stats.merge(&result.1);
    }

    // The attempt span is recorded for failed attempts too, so a
    // supervised run's trace shows every attempt as its own process row.
    if let Some(obs) = config.observer.as_ref() {
        let jt = obs.job_tracer(attempt);
        jt.span(
            SpanKind::Attempt,
            attempt_start.unwrap_or(0),
            vec![("ranks", ranks.to_string())],
        );
        obs.absorb(&jt);
    }

    if failed.load(Ordering::SeqCst) {
        let err = failure
            .lock()
            .expect("failure lock")
            .take()
            .unwrap_or_else(|| Error::fault_msg("job failed"));
        return Err(Box::new((err, stats)));
    }

    let mut partitions = Vec::with_capacity(ranks);
    for result in rank_results {
        let (batch, _) = result.expect("non-failed rank must produce output");
        partitions.push(batch);
    }
    stats.attempts = 1;
    Ok(JobOutput { partitions, stats })
}

/// Wraps an undecodable A-store record as the structured corruption
/// fault the CRC gate would have raised, with rank/attempt provenance.
pub(crate) fn store_decode_fault(e: Error, rank: usize, attempt: u32) -> Error {
    Error::fault(
        FaultCause::new(
            FaultKind::CorruptFrame,
            format!("A-side store decode failed: {e}"),
        )
        .rank(rank)
        .attempt(attempt),
    )
}

/// What one partition's ingest thread produced. Freely `Send`: the store
/// carries an [`Observer`] (not a thread-local tracer), so no `Rc` ever
/// crosses the thread boundary.
pub(crate) struct IngestOutcome {
    /// The filled A-side store (possibly spilled).
    pub store: PartitionStore,
    /// Data frames rejected by the CRC gate.
    pub corrupt_frames: u64,
    /// First integrity or transport fault seen (later ones are usually
    /// knock-on effects and are dropped, matching the runtime's
    /// first-failure-wins policy).
    pub first_error: Option<Error>,
    /// Phase totals absorbed from the ingest thread's own tracer.
    pub phase: PhaseTotals,
}

/// Parameters of one rank's ingest thread, bundled so the threaded
/// runtime and `dmpirun` workers share one [`ingest_partition`] call
/// shape.
pub(crate) struct IngestConfig<'a> {
    /// EOF frames to wait for (one per sending rank).
    pub expected_eofs: usize,
    /// Per-partition decoded-bytes budget before a spill.
    pub memory_budget: usize,
    /// Sorted (MapReduce-mode) vs hashed (Common-mode) grouping.
    pub sorted: bool,
    /// Kernel that sorts spill runs when they seal.
    pub kernel: SortKernel,
    /// Tracing observer, when the job carries one.
    pub observer: Option<&'a Observer>,
    /// Recv-span start, stamped by the rank thread *before* spawning
    /// the ingest thread (see the span-nesting note in the body).
    pub recv_start: Option<u64>,
    /// The rank this ingest thread serves.
    pub rank: usize,
    /// The attempt number, for the tracer lane.
    pub attempt: u32,
    /// Sealed-run layout (spill dir, compression, block size) for the
    /// store's spills, pre-tagged with this rank/attempt.
    pub spill: SpillConfig,
    /// Drain and CRC-verify frames without storing them: set on
    /// merge-resume attempts, where the A phase reads the previous
    /// attempt's sealed runs instead of a rebuilt store.
    pub discard: bool,
}

/// Drains one rank's mailbox until `expected_eofs` EOF frames arrived
/// (one per sending rank), the mailbox disconnected, or a transport
/// fault ended the stream. Runs on a dedicated thread, concurrently with
/// the rank's O phase — see the deadlock-freedom argument in `comm.rs`.
///
/// Every data frame passes the [`Frame::verify`] CRC gate before it is
/// ingested; a corrupt frame is counted, reported as the thread's first
/// error (with the producing rank and O task in the cause), and skipped,
/// so a supervised retry sees the fault instead of silently wrong
/// output. Used by both the threaded runtime and `dmpirun` workers.
pub(crate) fn ingest_partition(receiver: FrameReceiver, cfg: IngestConfig<'_>) -> IngestOutcome {
    let IngestConfig {
        expected_eofs,
        memory_budget,
        sorted,
        kernel,
        observer,
        recv_start,
        rank,
        attempt,
        spill,
        discard,
    } = cfg;
    // The tracer must be built on this thread (tracers are thread-local
    // by design); its spans merge into the shared trace on exit.
    let tracer = observer.map(|o| o.rank_tracer(rank as u32, attempt));
    let mut store = PartitionStore::new(memory_budget, sorted);
    store.set_sort_kernel(kernel);
    store.set_spill_config(spill);
    if let Some(o) = observer {
        // The store gets the Send+Sync observer, not this thread's
        // tracer: its sealing sites (background threads included) build
        // their own tracers from it.
        store.set_observer(o.clone(), rank as u32, attempt);
    }
    // The caller stamps the Recv start *before* spawning this thread:
    // the rank's Recv span must enclose its O-task spans (per-lane spans
    // are either disjoint or nested), and thread scheduling could
    // otherwise delay this thread's first instruction until after the O
    // phase has begun.
    let recv_start = recv_start.or_else(|| tracer.as_ref().map(Tracer::start));
    // Wire-path histograms: how long each mailbox wait took, and how big
    // each arriving payload was. One Instant per frame, only when an
    // observer is installed.
    let recv_hist = observer.map(|o| o.registry().histograms().handle(HistKind::RecvLatency));
    let payload_hist = observer.map(|o| o.registry().histograms().handle(HistKind::FramePayload));
    let mut corrupt_frames = 0u64;
    let mut first_error: Option<Error> = None;
    let mut eofs = 0usize;
    while eofs < expected_eofs {
        let wait_start = recv_hist.as_ref().map(|_| std::time::Instant::now());
        let received = receiver.recv();
        if let (Some(hist), Some(start)) = (&recv_hist, wait_start) {
            hist.record_elapsed_us(start);
        }
        match received {
            Ok(Some(frame @ Frame::Data { .. })) => {
                if let Some(hist) = &payload_hist {
                    hist.record(frame.payload_len() as u64);
                }
                // Integrity gate: a corrupt frame fails the attempt
                // (triggering a supervised retry) instead of flowing
                // into the A store.
                if let Err(e) = frame.verify() {
                    corrupt_frames += 1;
                    if let Some(t) = &tracer {
                        t.instant(SpanKind::Fault, vec![("cause", "corrupt frame".into())]);
                    }
                    first_error.get_or_insert(e);
                    continue;
                }
                if let Some(t) = &tracer {
                    t.registry().add_bytes_received(
                        rank,
                        frame.from_rank(),
                        frame.payload_len() as u64,
                    );
                }
                if discard {
                    // Merge-resume attempt: the replayed frames passed the
                    // CRC gate above; the A phase reads the checkpointed
                    // runs, so storing them again would be pure waste.
                    continue;
                }
                if let Frame::Data { payload, .. } = frame {
                    // Streaming decode happens right here, overlapped
                    // with the senders' O phase. A record that fails to
                    // decode is corruption that slipped past the CRC
                    // gate; report it with the provenance that gate
                    // would have attached.
                    if let Err(e) = store.ingest(payload) {
                        if let Some(t) = &tracer {
                            t.instant(
                                SpanKind::Fault,
                                vec![("cause", "store decode failed".into())],
                            );
                        }
                        first_error.get_or_insert(store_decode_fault(e, rank, attempt));
                    }
                }
            }
            Ok(Some(Frame::Eof { .. })) => eofs += 1,
            Ok(None) => {
                // All senders dropped: only possible after every rank
                // sent its EOFs or the job is tearing down; treat as end.
                break;
            }
            Err(e) => {
                // Transport-level fault (undecodable frame, peer died
                // before its EOF): the stream is not trustworthy beyond
                // this point, so stop ingesting and report.
                if let Some(t) = &tracer {
                    t.instant(SpanKind::Fault, vec![("cause", "transport fault".into())]);
                }
                first_error.get_or_insert(e);
                break;
            }
        }
    }
    // Barrier: join any still-running background seals so the outcome
    // carries fully-materialized spill images, and fold the sealing
    // sites' traced phase time into this thread's totals.
    let sealing_phase = store.finish_ingest();
    let st = store.stats();
    if let Some(t) = &tracer {
        t.span(
            SpanKind::Recv,
            recv_start.unwrap_or(0),
            vec![("frames", st.frames.to_string())],
        );
    }
    let mut phase = match (observer, &tracer) {
        (Some(obs), Some(t)) => obs.absorb(t),
        _ => PhaseTotals::default(),
    };
    phase.merge(&sealing_phase);
    IngestOutcome {
        store,
        corrupt_frames,
        first_error,
        phase,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use dmpi_common::ser::Writable;

    /// WordCount: O splits lines into words, A sums counts.
    fn wordcount_o(_task: usize, split: &[u8], out: &mut dyn Collector) {
        for line in split.split(|&b| b == b'\n') {
            for word in line.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                out.collect(word, &1u64.to_bytes());
            }
        }
    }

    fn wordcount_a(group: &GroupedValues, out: &mut dyn Collector) {
        let total: u64 = group
            .values
            .iter()
            .map(|v| u64::from_bytes(v).unwrap())
            .sum();
        out.collect(&group.key, &total.to_bytes());
    }

    fn counts_of(output: JobOutput) -> std::collections::BTreeMap<String, u64> {
        output
            .into_single_batch()
            .into_records()
            .into_iter()
            .map(|r| (r.key_utf8(), u64::from_bytes(&r.value).unwrap()))
            .collect()
    }

    #[test]
    fn wordcount_end_to_end() {
        let config = JobConfig::new(4);
        let inputs = vec![
            Bytes::from_static(b"apple pear apple\nfig"),
            Bytes::from_static(b"pear apple"),
            Bytes::from_static(b""),
        ];
        let out = run_job(&config, inputs, wordcount_o, wordcount_a, None).unwrap();
        assert_eq!(out.stats.o_tasks_run, 3);
        assert_eq!(out.stats.records_emitted, 6);
        let counts = counts_of(out);
        assert_eq!(counts["apple"], 3);
        assert_eq!(counts["pear"], 2);
        assert_eq!(counts["fig"], 1);
    }

    #[test]
    fn combiner_cuts_shuffle_bytes_at_identical_output() {
        let combiner = crate::task::Combiner::new(wordcount_a);
        let inputs = || {
            (0..8)
                .map(|i| Bytes::from(format!("w{} w{} shared shared w{}", i % 3, i % 5, i % 3)))
                .collect::<Vec<_>>()
        };
        let plain = JobConfig::new(3);
        let combined = JobConfig::new(3).with_combiner(combiner);
        let a = run_job(&plain, inputs(), wordcount_o, wordcount_a, None).unwrap();
        let b = run_job(&combined, inputs(), wordcount_o, wordcount_a, None).unwrap();
        // Byte-identical output per partition...
        for (pa, pb) in a.partitions.iter().zip(&b.partitions) {
            assert_eq!(pa.records(), pb.records());
        }
        // ...with fewer shuffled bytes and a real fold.
        assert!(b.stats.bytes_emitted < a.stats.bytes_emitted);
        assert_eq!(b.stats.records_emitted, a.stats.records_emitted);
        assert_eq!(b.stats.combiner_records_in, b.stats.records_emitted);
        assert!(b.stats.combiner_records_out < b.stats.combiner_records_in);
        assert_eq!(a.stats.combiner_records_in, 0, "no combiner, no counters");
    }

    #[test]
    fn spilled_job_streams_instead_of_materializing() {
        // A tiny A-side budget forces many spill runs; the streamed merge
        // must bound the forming run far below the total record count.
        let config = JobConfig::new(2).with_memory_budget(128);
        let inputs: Vec<Bytes> = (0..40)
            .map(|i| Bytes::from(format!("a{i} b{i} c{i} d{i} e{i} f{i} g{i} h{i}")))
            .collect();
        let out = run_job(&config, inputs, wordcount_o, wordcount_a, None).unwrap();
        assert!(out.stats.spills > 0);
        assert_eq!(out.stats.records_emitted, 320);
        assert!(
            out.stats.peak_resident_records * 4 < out.stats.records_emitted,
            "peak {} vs total {}",
            out.stats.peak_resident_records,
            out.stats.records_emitted
        );
    }

    #[test]
    fn output_is_deterministic_across_runs_in_sorted_mode() {
        let config = JobConfig::new(3);
        let make_inputs = || {
            (0..10)
                .map(|i| Bytes::from(format!("w{} w{} shared", i, (i * 7) % 10)))
                .collect::<Vec<_>>()
        };
        let a = run_job(&config, make_inputs(), wordcount_o, wordcount_a, None).unwrap();
        let b = run_job(&config, make_inputs(), wordcount_o, wordcount_a, None).unwrap();
        for (pa, pb) in a.partitions.iter().zip(&b.partitions) {
            assert_eq!(pa.records(), pb.records());
        }
    }

    #[test]
    fn identity_job_sorts_globally_within_partition() {
        // Sort mode: identity O and A; partition-local outputs must be
        // key-sorted (the per-partition half of a TeraSort-style job).
        let config = JobConfig::new(2);
        let inputs = vec![Bytes::from_static(b"delta\nalpha\ncharlie\nbravo")];
        let o = |_t: usize, split: &[u8], out: &mut dyn Collector| {
            for line in split.split(|&b| b == b'\n') {
                out.collect(line, line);
            }
        };
        let a = |g: &GroupedValues, out: &mut dyn Collector| {
            for v in &g.values {
                out.collect(&g.key, v);
            }
        };
        let result = run_job(&config, inputs, o, a, None).unwrap();
        for p in &result.partitions {
            let keys: Vec<_> = p.iter().map(|r| r.key.clone()).collect();
            let mut sorted = keys.clone();
            sorted.sort();
            assert_eq!(keys, sorted, "partition must be key-sorted");
        }
    }

    #[test]
    fn hash_grouping_mode_counts_correctly() {
        let config = JobConfig::new(2).with_sorted_grouping(false);
        let inputs = vec![Bytes::from_static(b"x y x y x")];
        let out = run_job(&config, inputs, wordcount_o, wordcount_a, None).unwrap();
        let counts = counts_of(out);
        assert_eq!(counts["x"], 3);
        assert_eq!(counts["y"], 2);
    }

    #[test]
    fn pipelining_ablation_preserves_results() {
        let inputs: Vec<Bytes> = (0..6)
            .map(|i| Bytes::from(format!("word{} word{} word{}", i, i % 3, i % 2)))
            .collect();
        let piped = run_job(
            &JobConfig::new(3).with_flush_threshold(16),
            inputs.clone(),
            wordcount_o,
            wordcount_a,
            None,
        )
        .unwrap();
        let staged = run_job(
            &JobConfig::new(3).with_pipelined(false),
            inputs,
            wordcount_o,
            wordcount_a,
            None,
        )
        .unwrap();
        assert!(piped.stats.early_flushes > 0);
        assert_eq!(staged.stats.early_flushes, 0);
        assert_eq!(counts_of(piped), counts_of(staged));
    }

    #[test]
    fn tiny_memory_budget_spills_but_stays_correct() {
        let config = JobConfig::new(2).with_memory_budget(64);
        let inputs: Vec<Bytes> = (0..20)
            .map(|i| Bytes::from(format!("k{} k{} k{}", i % 5, i % 7, i)))
            .collect();
        let out = run_job(&config, inputs, wordcount_o, wordcount_a, None).unwrap();
        assert!(out.stats.spills > 0, "64-byte budget must spill");
        let counts = counts_of(out);
        assert_eq!(counts["k0"], 8); // i%5==0 -> 4, i%7==0 -> 3, i==0 -> 1
    }

    #[test]
    fn injected_fault_fails_the_job_cleanly() {
        let config = JobConfig::new(2).with_o_task_fault(1, 0);
        let inputs = vec![
            Bytes::from_static(b"a b"),
            Bytes::from_static(b"c d"),
            Bytes::from_static(b"e f"),
        ];
        let err = run_job(&config, inputs, wordcount_o, wordcount_a, None).unwrap_err();
        let cause = err.fault_cause().expect("structured cause");
        assert_eq!(cause.kind, dmpi_common::FaultKind::InjectedError);
        assert_eq!(cause.task, Some(1));
        assert_eq!(cause.attempt, Some(0));
    }

    #[test]
    fn injected_rank_death_fails_cleanly_without_hanging() {
        let config = JobConfig::new(3).with_faults(FaultPlan::new(0).rank_panic(1, 0));
        let inputs: Vec<Bytes> = (0..6).map(|i| Bytes::from(format!("w{i}"))).collect();
        let err = run_job(&config, inputs.clone(), wordcount_o, wordcount_a, None).unwrap_err();
        let cause = err.fault_cause().expect("structured cause");
        assert_eq!(cause.kind, dmpi_common::FaultKind::RankDeath);
        assert_eq!(cause.rank, Some(1));
        // The death was scheduled for attempt 0 only: attempt 1 is clean.
        let out = run_job_attempt(&config, inputs, wordcount_o, wordcount_a, None, 1).unwrap();
        assert_eq!(out.stats.o_tasks_run, 6);
    }

    #[test]
    fn corrupted_frame_is_detected_not_silently_wrong() {
        let config = JobConfig::new(2).with_faults(FaultPlan::new(17).corrupt_frame(0, 0));
        let inputs = vec![
            Bytes::from_static(b"alpha beta gamma"),
            Bytes::from_static(b"delta"),
        ];
        let err = run_job(&config, inputs.clone(), wordcount_o, wordcount_a, None).unwrap_err();
        let cause = err.fault_cause().expect("structured cause");
        assert_eq!(cause.kind, dmpi_common::FaultKind::CorruptFrame);
        assert_eq!(cause.task, Some(0));
        // Corruption was wire-only and scheduled for attempt 0: retrying
        // as attempt 1 produces the right answer.
        let out = run_job_attempt(&config, inputs, wordcount_o, wordcount_a, None, 1).unwrap();
        assert_eq!(counts_of(out)["alpha"], 1);
    }

    #[test]
    fn straggler_delay_slows_but_does_not_fail() {
        let config = JobConfig::new(2).with_faults(FaultPlan::new(0).straggler(0, 0, 30));
        let inputs = vec![Bytes::from_static(b"x y"), Bytes::from_static(b"z")];
        let t0 = std::time::Instant::now();
        let out = run_job(&config, inputs, wordcount_o, wordcount_a, None).unwrap();
        assert!(t0.elapsed() >= std::time::Duration::from_millis(30));
        assert_eq!(out.stats.straggler_delays, 1);
        assert_eq!(out.stats.records_emitted, 3);
    }

    #[test]
    fn checkpoint_restart_recovers_completed_tasks() {
        let cp = CheckpointStore::new();
        let inputs: Vec<Bytes> = (0..8)
            .map(|i| Bytes::from(format!("w{i} shared")))
            .collect();

        // Attempt 0: task 7 fails after others complete (single rank makes
        // completion order deterministic: tasks 0..6 run first).
        let failing = JobConfig::new(1)
            .with_checkpointing(true)
            .with_o_task_fault(7, 0);
        let err = run_job_attempt(
            &failing,
            inputs.clone(),
            wordcount_o,
            wordcount_a,
            Some(&cp),
            0,
        )
        .unwrap_err();
        assert!(err.fault_cause().expect("structured cause").is_injected());
        assert_eq!(cp.completed_count(), 7, "tasks 0-6 checkpointed");

        // Attempt 1: recovery replays 7 tasks, runs only the failed one.
        let retry = JobConfig::new(1).with_checkpointing(true);
        let out = run_job_attempt(
            &retry,
            inputs.clone(),
            wordcount_o,
            wordcount_a,
            Some(&cp),
            1,
        )
        .unwrap();
        assert_eq!(out.stats.o_tasks_recovered, 7);
        assert_eq!(out.stats.o_tasks_run, 1);

        // Output equals a clean run.
        let clean = run_job(&JobConfig::new(1), inputs, wordcount_o, wordcount_a, None).unwrap();
        assert_eq!(counts_of(out), counts_of(clean));
    }

    #[test]
    fn checkpointing_without_store_is_a_config_error() {
        let config = JobConfig::new(1).with_checkpointing(true);
        let err = run_job(&config, vec![], wordcount_o, wordcount_a, None).unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }

    #[test]
    fn panicking_o_task_reports_fault_not_hang() {
        let config = JobConfig::new(2);
        let inputs = vec![Bytes::from_static(b"boom"), Bytes::from_static(b"ok")];
        let o = |task: usize, _split: &[u8], _out: &mut dyn Collector| {
            if task == 0 {
                panic!("user code exploded");
            }
        };
        let a = |_g: &GroupedValues, _out: &mut dyn Collector| {};
        let err = run_job(&config, inputs, o, a, None).unwrap_err();
        assert_eq!(
            err.fault_cause().expect("structured cause").kind,
            dmpi_common::FaultKind::TaskPanic
        );
    }

    fn lined_inputs(tasks: usize, lines: usize) -> Vec<Bytes> {
        (0..tasks)
            .map(|i| {
                let mut s = String::new();
                for j in 0..lines {
                    s.push_str(&format!("w{} shared line{}\n", (i * 13 + j) % 11, j % 7));
                }
                Bytes::from(s)
            })
            .collect()
    }

    #[test]
    fn byte_splits_chunk_on_line_boundaries() {
        let b = Bytes::from_static(b"aa\nbb\ncc\ndd");
        let chunks = b.parallel_chunks(3).expect("large enough to chunk");
        assert!(chunks.len() >= 2);
        // Concatenating every chunk's line list reproduces the whole
        // split's line list — the contract the parallel executor needs.
        let whole: Vec<Vec<u8>> = b.split(|&x| x == b'\n').map(<[u8]>::to_vec).collect();
        let mut pieces: Vec<Vec<u8>> = Vec::new();
        for c in &chunks {
            pieces.extend(c.split(|&x| x == b'\n').map(<[u8]>::to_vec));
        }
        assert_eq!(whole, pieces);
        // Chunks are zero-copy views of the parent split.
        let base = b.as_ref().as_ptr() as usize;
        for c in &chunks {
            if !c.is_empty() {
                let p = c.as_ref().as_ptr() as usize;
                assert!(p >= base && p < base + b.len(), "chunk not shared");
            }
        }
        assert!(b.parallel_chunks(100).is_none(), "small splits stay whole");
        assert!(
            Bytes::from_static(b"nonewlineatall")
                .parallel_chunks(4)
                .is_none(),
            "no safe cut point means no chunking"
        );
    }

    #[test]
    fn parallel_o_is_byte_identical_to_sequential() {
        for parallelism in [2usize, 8] {
            let seq = JobConfig::new(2).with_o_parallelism(1);
            let par = JobConfig::new(2)
                .with_o_parallelism(parallelism)
                .with_o_chunk_bytes(64);
            let a = run_job(&seq, lined_inputs(4, 40), wordcount_o, wordcount_a, None).unwrap();
            let b = run_job(&par, lined_inputs(4, 40), wordcount_o, wordcount_a, None).unwrap();
            for (pa, pb) in a.partitions.iter().zip(&b.partitions) {
                assert_eq!(pa.records(), pb.records(), "parallelism={parallelism}");
            }
            assert_eq!(a.stats.records_emitted, b.stats.records_emitted);
            assert_eq!(a.stats.bytes_emitted, b.stats.bytes_emitted);
            assert_eq!(a.stats.frames, b.stats.frames);
            assert_eq!(a.stats.o_tasks_run, b.stats.o_tasks_run);
        }
    }

    #[test]
    fn parallel_o_with_combiner_stays_identical() {
        let mk = |parallelism: usize| {
            JobConfig::new(2)
                .with_o_parallelism(parallelism)
                .with_o_chunk_bytes(48)
                .with_flush_threshold(64)
                .with_combiner(crate::task::Combiner::new(wordcount_a))
        };
        let a = run_job(&mk(1), lined_inputs(3, 30), wordcount_o, wordcount_a, None).unwrap();
        let b = run_job(&mk(4), lined_inputs(3, 30), wordcount_o, wordcount_a, None).unwrap();
        for (pa, pb) in a.partitions.iter().zip(&b.partitions) {
            assert_eq!(pa.records(), pb.records());
        }
        assert_eq!(a.stats.bytes_emitted, b.stats.bytes_emitted);
        assert_eq!(a.stats.combiner_records_in, b.stats.combiner_records_in);
        assert_eq!(a.stats.combiner_records_out, b.stats.combiner_records_out);
    }

    #[test]
    fn panicking_parallel_chunk_reports_fault_not_hang() {
        let config = JobConfig::new(2)
            .with_o_parallelism(4)
            .with_o_chunk_bytes(4);
        let inputs = vec![Bytes::from_static(b"aa\nbb\nboom\ncc\ndd\nee")];
        let o = |_t: usize, split: &[u8], out: &mut dyn Collector| {
            for line in split.split(|&b| b == b'\n') {
                if line == b"boom" {
                    panic!("chunk exploded");
                }
                out.collect(line, b"1");
            }
        };
        let a = |_g: &GroupedValues, _out: &mut dyn Collector| {};
        let err = run_job(&config, inputs, o, a, None).unwrap_err();
        assert_eq!(
            err.fault_cause().expect("structured cause").kind,
            dmpi_common::FaultKind::TaskPanic
        );
    }

    #[test]
    fn phase_totals_stay_consistent_under_parallel_workers() {
        // The regression ISSUE 5 guards: stats.phase_us must equal the
        // span log's totals even when pool workers and background seals
        // record phase time off the rank threads.
        let obs = Observer::new();
        let config = JobConfig::new(2)
            .with_o_parallelism(4)
            .with_o_chunk_bytes(32)
            .with_memory_budget(256)
            .with_observer(obs.clone());
        let out = run_job(&config, lined_inputs(4, 50), wordcount_o, wordcount_a, None).unwrap();
        assert!(out.stats.spills > 0, "budget forces spills");
        assert_eq!(out.stats.phase_us, obs.trace().phase_totals());
    }

    #[test]
    fn capture_commit_mode_is_byte_identical_to_direct_emission() {
        // Speculation on means *every* task runs capture-then-commit; the
        // output must match the direct path bit for bit, including with a
        // checkpoint tee and a combiner attached.
        use crate::speculate::SpeculationConfig;
        let inputs = || lined_inputs(5, 25);
        let plain = JobConfig::new(2).with_flush_threshold(64);
        let direct = run_job(&plain, inputs(), wordcount_o, wordcount_a, None).unwrap();

        let cp = CheckpointStore::new();
        let spec = plain
            .clone()
            .with_speculation(SpeculationConfig::enabled())
            .with_checkpointing(true)
            .with_combiner(crate::task::Combiner::new(wordcount_a));
        let speced = run_job(&spec, inputs(), wordcount_o, wordcount_a, Some(&cp)).unwrap();
        for (pa, pb) in direct.partitions.iter().zip(&speced.partitions) {
            assert_eq!(pa.records(), pb.records());
        }
        assert_eq!(direct.stats.records_emitted, speced.stats.records_emitted);
        assert_eq!(speced.stats.o_tasks_run, 5);
        assert_eq!(cp.completed_count(), 5, "tee rides the committed replay");

        // A restart against that checkpoint recovers every task.
        let retry = plain.clone().with_checkpointing(true);
        let rec =
            run_job_attempt(&retry, inputs(), wordcount_o, wordcount_a, Some(&cp), 1).unwrap();
        assert_eq!(rec.stats.o_tasks_recovered, 5);
        for (pa, pb) in direct.partitions.iter().zip(&rec.partitions) {
            assert_eq!(pa.records(), pb.records());
        }
    }

    #[test]
    fn speculation_rescues_a_seeded_slow_rank() {
        use crate::speculate::{Scheduling, SpeculationConfig};
        // Rank 0 is paced 400 ms per task; rank 1 is healthy. With static
        // scheduling rank 0 owns tasks 0 and 2, so without defense the job
        // takes ~800 ms. Speculation lets rank 1 duplicate the stalled
        // tasks; the stalled primary aborts mid-sleep, wasting nothing.
        let spec = SpeculationConfig::enabled()
            .with_min_completed(1)
            .with_min_lag(Duration::from_millis(10))
            .with_poll(Duration::from_millis(1));
        let config = JobConfig::new(2)
            .with_scheduling(Scheduling::Static {
                work_stealing: false,
            })
            .with_speculation(spec)
            .with_faults(FaultPlan::new(3).slow_rank(0, 0, 400));
        let inputs: Vec<Bytes> = (0..4)
            .map(|i| Bytes::from(format!("w{i} shared")))
            .collect();
        let t0 = Instant::now();
        let out = run_job(&config, inputs.clone(), wordcount_o, wordcount_a, None).unwrap();
        let elapsed = t0.elapsed();
        assert!(
            out.stats.speculative_commits >= 1,
            "a duplicate must have rescued a stalled task"
        );
        assert_eq!(
            out.stats.o_tasks_run, 4,
            "every task committed exactly once"
        );
        assert!(
            elapsed < Duration::from_millis(700),
            "rescue must beat the ~800 ms no-defense schedule, took {elapsed:?}"
        );
        // Output identical to an undisturbed run.
        let clean = run_job(&JobConfig::new(2), inputs, wordcount_o, wordcount_a, None).unwrap();
        assert_eq!(counts_of(out), counts_of(clean));
    }

    #[test]
    fn stalled_primary_aborts_with_zero_waste() {
        use crate::speculate::{Scheduling, SpeculationConfig};
        // One long injected stall on rank 0's only task; the duplicate
        // commits long before the 1.5 s sleep ends, so the primary aborts
        // pre-execution and the attempt wastes exactly zero bytes.
        let spec = SpeculationConfig::enabled()
            .with_min_completed(1)
            .with_min_lag(Duration::from_millis(10))
            .with_poll(Duration::from_millis(1));
        let config = JobConfig::new(2)
            .with_scheduling(Scheduling::Static {
                work_stealing: false,
            })
            .with_speculation(spec)
            .with_faults(FaultPlan::new(0).slow_rank(0, 0, 1_500));
        let inputs: Vec<Bytes> = (0..4).map(|i| Bytes::from(format!("w{i}"))).collect();
        let t0 = Instant::now();
        let out = run_job(&config, inputs, wordcount_o, wordcount_a, None).unwrap();
        assert_eq!(out.stats.wasted_bytes, 0, "pre-exec aborts charge nothing");
        assert_eq!(
            out.stats.speculative_commits, 2,
            "both stalled tasks rescued"
        );
        assert!(out.stats.speculative_aborts >= 2, "both primaries aborted");
        assert!(
            t0.elapsed() < Duration::from_millis(1_400),
            "the job must not serve the full injected stalls"
        );
    }

    #[test]
    fn work_stealing_moves_queued_splits_and_keeps_output_identical() {
        use crate::speculate::Scheduling;
        // Rank 0 is paced 40 ms per task and owns a third of 12 tasks;
        // healthy ranks drain their own queues, then steal rank 0's
        // not-yet-started splits from the back.
        let mk = |scheduling| {
            JobConfig::new(3)
                .with_scheduling(scheduling)
                .with_faults(FaultPlan::new(0).slow_rank(0, 0, 40))
        };
        let inputs = || lined_inputs(12, 6);
        let base = run_job(
            &mk(Scheduling::Dynamic),
            inputs(),
            wordcount_o,
            wordcount_a,
            None,
        )
        .unwrap();
        let pinned = run_job(
            &mk(Scheduling::Static {
                work_stealing: false,
            }),
            inputs(),
            wordcount_o,
            wordcount_a,
            None,
        )
        .unwrap();
        let stealing = run_job(
            &mk(Scheduling::Static {
                work_stealing: true,
            }),
            inputs(),
            wordcount_o,
            wordcount_a,
            None,
        )
        .unwrap();
        assert_eq!(pinned.stats.tasks_stolen, 0);
        assert!(
            stealing.stats.tasks_stolen >= 1,
            "healthy ranks must relieve the slow one"
        );
        for (pa, pb) in base.partitions.iter().zip(&pinned.partitions) {
            assert_eq!(pa.records(), pb.records(), "static matches dynamic");
        }
        for (pa, pb) in base.partitions.iter().zip(&stealing.partitions) {
            assert_eq!(pa.records(), pb.records(), "stealing matches dynamic");
        }
    }

    #[test]
    fn more_tasks_than_ranks_all_execute() {
        let config = JobConfig::new(2);
        let inputs: Vec<Bytes> = (0..50).map(|i| Bytes::from(format!("t{i}"))).collect();
        let out = run_job(&config, inputs, wordcount_o, wordcount_a, None).unwrap();
        assert_eq!(out.stats.o_tasks_run, 50);
        assert_eq!(out.stats.groups, 50, "fifty distinct words");
    }

    #[test]
    fn empty_job_produces_empty_output() {
        let config = JobConfig::new(3);
        let out = run_job(&config, vec![], wordcount_o, wordcount_a, None).unwrap();
        assert_eq!(out.stats.o_tasks_run, 0);
        assert!(out.partitions.iter().all(|p| p.is_empty()));
    }
}
