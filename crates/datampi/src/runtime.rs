//! The executing DataMPI runtime: ranks as threads, really moving data.
//!
//! `run_job` realizes the bipartite O/A model:
//!
//! 1. **O phase** — worker ranks dynamically pull input splits from a shared
//!    queue (the library's dynamic scheduling), run the user's O function,
//!    and emit key-value pairs through a partitioned [`KvBuffer`]. Buffers
//!    flush asynchronously while the task computes (pipelining).
//! 2. **A phase** — each rank owns one A partition: it drains its mailbox
//!    into a [`PartitionStore`] (in-memory, spilling under pressure), groups
//!    the records by key (sorted in MapReduce mode, hashed in Common mode),
//!    and runs the user's A function per group.
//!
//! Failures: an O task error marks the job failed; every rank still sends
//! its EOFs so the job tears down cleanly rather than deadlocking, and the
//! job returns the error. With checkpointing enabled, completed O tasks are
//! recovered on restart without re-running user code
//! ([`crate::checkpoint`]).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use bytes::Bytes;

use dmpi_common::kv::RecordBatch;
use dmpi_common::{Error, Result};

use crate::buffer::KvBuffer;
use crate::checkpoint::CheckpointStore;
use crate::comm::{Frame, Interconnect};
use crate::config::JobConfig;
use crate::store::PartitionStore;
use crate::task::{group_hashed, group_sorted, BatchCollector, Collector, GroupedValues};

/// Aggregate counters of a finished job.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobStats {
    /// O tasks executed by user code this run.
    pub o_tasks_run: u64,
    /// O tasks recovered from checkpoint (user code skipped).
    pub o_tasks_recovered: u64,
    /// Key-value pairs emitted.
    pub records_emitted: u64,
    /// Framed intermediate bytes emitted.
    pub bytes_emitted: u64,
    /// Frames shipped over the interconnect.
    pub frames: u64,
    /// Frames shipped before task completion (pipelined flushes).
    pub early_flushes: u64,
    /// A-store spill events.
    pub spills: u64,
    /// A-store bytes spilled to disk.
    pub spilled_bytes: u64,
    /// Key groups processed by A tasks.
    pub groups: u64,
}

/// Result of a successful job: per-partition outputs plus counters.
#[derive(Clone, Debug)]
pub struct JobOutput {
    /// A-task output per partition (index = rank).
    pub partitions: Vec<RecordBatch>,
    /// Aggregate counters.
    pub stats: JobStats,
}

impl JobOutput {
    /// Flattens all partition outputs into one batch (partition order).
    pub fn into_single_batch(self) -> RecordBatch {
        let mut out = RecordBatch::new();
        for mut p in self.partitions {
            out.append(&mut p);
        }
        out
    }
}

struct EmitAdapter<'a> {
    buffer: &'a mut KvBuffer,
}

impl Collector for EmitAdapter<'_> {
    fn collect(&mut self, key: &[u8], value: &[u8]) {
        self.buffer.emit_kv(key, value);
    }
}

/// Runs a DataMPI job (first attempt). See [`run_job_attempt`].
///
/// # Examples
/// ```
/// use datampi::{run_job, JobConfig};
/// use dmpi_common::group::{Collector, GroupedValues};
/// use dmpi_common::ser::Writable;
///
/// // O: emit (word, 1); A: sum the counts per word.
/// let o = |_t: usize, split: &[u8], out: &mut dyn Collector| {
///     for w in split.split(|b| *b == b' ') {
///         out.collect(w, &1u64.to_bytes());
///     }
/// };
/// let a = |g: &GroupedValues, out: &mut dyn Collector| {
///     let n: u64 = g.values.iter().map(|v| u64::from_bytes(v).unwrap()).sum();
///     out.collect(&g.key, &n.to_bytes());
/// };
/// let out = run_job(&JobConfig::new(2), vec!["b a b".into()], o, a, None).unwrap();
/// assert_eq!(out.stats.records_emitted, 3);
/// assert_eq!(out.stats.groups, 2);
/// ```
pub fn run_job<O, A>(
    config: &JobConfig,
    inputs: Vec<Bytes>,
    o_fn: O,
    a_fn: A,
    checkpoint: Option<&CheckpointStore>,
) -> Result<JobOutput>
where
    O: Fn(usize, &[u8], &mut dyn Collector) + Send + Sync,
    A: Fn(&GroupedValues, &mut dyn Collector) + Send + Sync,
{
    run_job_attempt(config, inputs, o_fn, a_fn, checkpoint, 0)
}

/// Runs a DataMPI job, identifying the `attempt` number for fault-injection
/// and recovery accounting. `inputs[i]` is the raw content of O task `i`'s
/// split.
pub fn run_job_attempt<O, A>(
    config: &JobConfig,
    inputs: Vec<Bytes>,
    o_fn: O,
    a_fn: A,
    checkpoint: Option<&CheckpointStore>,
    attempt: u32,
) -> Result<JobOutput>
where
    O: Fn(usize, &[u8], &mut dyn Collector) + Send + Sync,
    A: Fn(&GroupedValues, &mut dyn Collector) + Send + Sync,
{
    run_job_generic(
        config,
        inputs,
        move |task, split: &Bytes, out: &mut dyn Collector| o_fn(task, split, out),
        a_fn,
        checkpoint,
        attempt,
    )
}

/// The generic runner behind both the byte-split surface ([`run_job`]) and
/// the Iteration-mode surface ([`crate::iteration::run_iteration`]): O
/// tasks consume an arbitrary resident split type `I`.
pub fn run_job_generic<I, O, A>(
    config: &JobConfig,
    inputs: Vec<I>,
    o_fn: O,
    a_fn: A,
    checkpoint: Option<&CheckpointStore>,
    attempt: u32,
) -> Result<JobOutput>
where
    I: Sync,
    O: Fn(usize, &I, &mut dyn Collector) + Send + Sync,
    A: Fn(&GroupedValues, &mut dyn Collector) + Send + Sync,
{
    config.validate()?;
    if config.checkpointing && checkpoint.is_none() {
        return Err(Error::Config(
            "checkpointing enabled but no CheckpointStore supplied".into(),
        ));
    }
    let ranks = config.ranks;
    let mut net = Interconnect::new(ranks);
    let senders = net.senders();
    let receivers: Vec<_> = (0..ranks).map(|r| net.take_receiver(r)).collect();
    net.close();

    let queue: Mutex<VecDeque<usize>> = Mutex::new((0..inputs.len()).collect());
    let failed = AtomicBool::new(false);
    let failure: Mutex<Option<Error>> = Mutex::new(None);
    let o_fn = &o_fn;
    let a_fn = &a_fn;
    let inputs = &inputs;
    let queue = &queue;
    let failed = &failed;
    let failure = &failure;
    let senders = &senders;

    let mut rank_results: Vec<Option<(RecordBatch, JobStats)>> = Vec::new();
    rank_results.resize_with(ranks, || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranks);
        for (rank, receiver) in receivers.into_iter().enumerate() {
            let checkpoint = checkpoint.cloned();
            let handle = scope.spawn(move || -> Result<(RecordBatch, JobStats)> {
                let mut stats = JobStats::default();

                // ---- O phase: dynamic pulls from the shared queue ----
                loop {
                    if failed.load(Ordering::SeqCst) {
                        break;
                    }
                    let task = queue.lock().expect("queue poisoned").pop_front();
                    let Some(task) = task else { break };

                    // Checkpoint recovery path: replay without user code.
                    if let Some(cp) = checkpoint.as_ref() {
                        if cp.is_complete(task) {
                            for (partition, payload) in cp.recover_frames(task) {
                                let _ = senders[partition].send(Frame::Data {
                                    from_rank: rank,
                                    o_task: task,
                                    payload,
                                });
                            }
                            stats.o_tasks_recovered += 1;
                            continue;
                        }
                    }

                    // Fresh execution path.
                    let mut buffer = KvBuffer::new(
                        senders.clone(),
                        rank,
                        task,
                        config.flush_threshold,
                        config.pipelined,
                    );
                    if let Some(cp) = checkpoint.as_ref() {
                        buffer.set_tee(cp.clone());
                    }

                    // Injected fault?
                    if let Some(fault) = config.fail_o_task {
                        if fault.task_index == task && fault.on_attempt == attempt {
                            if let Some(cp) = checkpoint.as_ref() {
                                cp.discard_incomplete(task);
                            }
                            let err = Error::Fault(format!(
                                "injected failure in O task {task} (attempt {attempt})"
                            ));
                            *failure.lock().expect("failure lock") = Some(err.clone());
                            failed.store(true, Ordering::SeqCst);
                            break;
                        }
                    }

                    // User code may panic; convert that into a clean job
                    // fault so peer ranks still receive our EOFs instead of
                    // deadlocking in their A phase.
                    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut adapter = EmitAdapter {
                            buffer: &mut buffer,
                        };
                        o_fn(task, &inputs[task], &mut adapter);
                    }));
                    if run.is_err() {
                        if let Some(cp) = checkpoint.as_ref() {
                            cp.discard_incomplete(task);
                        }
                        let err = Error::Fault(format!("O task {task} panicked"));
                        *failure.lock().expect("failure lock") = Some(err);
                        failed.store(true, Ordering::SeqCst);
                        break;
                    }
                    let b = buffer.finish();
                    stats.o_tasks_run += 1;
                    stats.records_emitted += b.records;
                    stats.bytes_emitted += b.bytes;
                    stats.frames += b.frames;
                    stats.early_flushes += b.early_flushes;
                    if let Some(cp) = checkpoint.as_ref() {
                        cp.mark_complete(task);
                    }
                }

                // Close the stream to every partition exactly once.
                for s in senders.iter() {
                    let _ = s.send(Frame::Eof { from_rank: rank });
                }

                // ---- A phase: ingest own partition, group, reduce ----
                let mut store = PartitionStore::new(config.memory_budget);
                let mut eofs = 0usize;
                while eofs < ranks {
                    match receiver.recv() {
                        Ok(Frame::Data { payload, .. }) => store.ingest(payload),
                        Ok(Frame::Eof { .. }) => eofs += 1,
                        Err(_) => {
                            // All senders dropped: only possible after every
                            // rank sent its EOFs or panicked; treat as end.
                            break;
                        }
                    }
                }
                let st = store.stats();
                stats.spills += st.spills;
                stats.spilled_bytes += st.spilled_bytes;

                let mut collector = BatchCollector::default();
                if !failed.load(Ordering::SeqCst) {
                    let records = store.into_records(config.sorted_grouping)?;
                    let groups = if config.sorted_grouping {
                        group_sorted(records)
                    } else {
                        group_hashed(records)
                    };
                    stats.groups += groups.len() as u64;
                    for g in &groups {
                        a_fn(g, &mut collector);
                    }
                }
                Ok((collector.batch, stats))
            });
            handles.push(handle);
        }
        for (rank, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(Ok(result)) => rank_results[rank] = Some(result),
                Ok(Err(e)) => {
                    let mut f = failure.lock().expect("failure lock");
                    if f.is_none() {
                        *f = Some(e);
                    }
                    failed.store(true, Ordering::SeqCst);
                }
                Err(_) => {
                    let mut f = failure.lock().expect("failure lock");
                    if f.is_none() {
                        *f = Some(Error::Fault("worker rank panicked".into()));
                    }
                    failed.store(true, Ordering::SeqCst);
                }
            }
        }
    });

    if failed.load(Ordering::SeqCst) {
        let err = failure
            .lock()
            .expect("failure lock")
            .take()
            .unwrap_or_else(|| Error::Fault("job failed".into()));
        return Err(err);
    }

    let mut partitions = Vec::with_capacity(ranks);
    let mut stats = JobStats::default();
    for result in rank_results {
        let (batch, s) = result.expect("non-failed rank must produce output");
        stats.o_tasks_run += s.o_tasks_run;
        stats.o_tasks_recovered += s.o_tasks_recovered;
        stats.records_emitted += s.records_emitted;
        stats.bytes_emitted += s.bytes_emitted;
        stats.frames += s.frames;
        stats.early_flushes += s.early_flushes;
        stats.spills += s.spills;
        stats.spilled_bytes += s.spilled_bytes;
        stats.groups += s.groups;
        partitions.push(batch);
    }
    Ok(JobOutput { partitions, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FaultSpec;
    use dmpi_common::ser::Writable;

    /// WordCount: O splits lines into words, A sums counts.
    fn wordcount_o(_task: usize, split: &[u8], out: &mut dyn Collector) {
        for line in split.split(|&b| b == b'\n') {
            for word in line.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                out.collect(word, &1u64.to_bytes());
            }
        }
    }

    fn wordcount_a(group: &GroupedValues, out: &mut dyn Collector) {
        let total: u64 = group
            .values
            .iter()
            .map(|v| u64::from_bytes(v).unwrap())
            .sum();
        out.collect(&group.key, &total.to_bytes());
    }

    fn counts_of(output: JobOutput) -> std::collections::BTreeMap<String, u64> {
        output
            .into_single_batch()
            .into_records()
            .into_iter()
            .map(|r| {
                (
                    r.key_utf8(),
                    u64::from_bytes(&r.value).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn wordcount_end_to_end() {
        let config = JobConfig::new(4);
        let inputs = vec![
            Bytes::from_static(b"apple pear apple\nfig"),
            Bytes::from_static(b"pear apple"),
            Bytes::from_static(b""),
        ];
        let out = run_job(&config, inputs, wordcount_o, wordcount_a, None).unwrap();
        assert_eq!(out.stats.o_tasks_run, 3);
        assert_eq!(out.stats.records_emitted, 6);
        let counts = counts_of(out);
        assert_eq!(counts["apple"], 3);
        assert_eq!(counts["pear"], 2);
        assert_eq!(counts["fig"], 1);
    }

    #[test]
    fn output_is_deterministic_across_runs_in_sorted_mode() {
        let config = JobConfig::new(3);
        let make_inputs = || {
            (0..10)
                .map(|i| Bytes::from(format!("w{} w{} shared", i, (i * 7) % 10)))
                .collect::<Vec<_>>()
        };
        let a = run_job(&config, make_inputs(), wordcount_o, wordcount_a, None).unwrap();
        let b = run_job(&config, make_inputs(), wordcount_o, wordcount_a, None).unwrap();
        for (pa, pb) in a.partitions.iter().zip(&b.partitions) {
            assert_eq!(pa.records(), pb.records());
        }
    }

    #[test]
    fn identity_job_sorts_globally_within_partition() {
        // Sort mode: identity O and A; partition-local outputs must be
        // key-sorted (the per-partition half of a TeraSort-style job).
        let config = JobConfig::new(2);
        let inputs = vec![Bytes::from_static(b"delta\nalpha\ncharlie\nbravo")];
        let o = |_t: usize, split: &[u8], out: &mut dyn Collector| {
            for line in split.split(|&b| b == b'\n') {
                out.collect(line, line);
            }
        };
        let a = |g: &GroupedValues, out: &mut dyn Collector| {
            for v in &g.values {
                out.collect(&g.key, v);
            }
        };
        let result = run_job(&config, inputs, o, a, None).unwrap();
        for p in &result.partitions {
            let keys: Vec<_> = p.iter().map(|r| r.key.clone()).collect();
            let mut sorted = keys.clone();
            sorted.sort();
            assert_eq!(keys, sorted, "partition must be key-sorted");
        }
    }

    #[test]
    fn hash_grouping_mode_counts_correctly() {
        let config = JobConfig::new(2).with_sorted_grouping(false);
        let inputs = vec![Bytes::from_static(b"x y x y x")];
        let out = run_job(&config, inputs, wordcount_o, wordcount_a, None).unwrap();
        let counts = counts_of(out);
        assert_eq!(counts["x"], 3);
        assert_eq!(counts["y"], 2);
    }

    #[test]
    fn pipelining_ablation_preserves_results() {
        let inputs: Vec<Bytes> = (0..6)
            .map(|i| Bytes::from(format!("word{} word{} word{}", i, i % 3, i % 2)))
            .collect();
        let piped = run_job(
            &JobConfig::new(3).with_flush_threshold(16),
            inputs.clone(),
            wordcount_o,
            wordcount_a,
            None,
        )
        .unwrap();
        let staged = run_job(
            &JobConfig::new(3).with_pipelined(false),
            inputs,
            wordcount_o,
            wordcount_a,
            None,
        )
        .unwrap();
        assert!(piped.stats.early_flushes > 0);
        assert_eq!(staged.stats.early_flushes, 0);
        assert_eq!(counts_of(piped), counts_of(staged));
    }

    #[test]
    fn tiny_memory_budget_spills_but_stays_correct() {
        let config = JobConfig::new(2).with_memory_budget(64);
        let inputs: Vec<Bytes> = (0..20)
            .map(|i| Bytes::from(format!("k{} k{} k{}", i % 5, i % 7, i)))
            .collect();
        let out = run_job(&config, inputs, wordcount_o, wordcount_a, None).unwrap();
        assert!(out.stats.spills > 0, "64-byte budget must spill");
        let counts = counts_of(out);
        assert_eq!(counts["k0"], 8); // i%5==0 -> 4, i%7==0 -> 3, i==0 -> 1
    }

    #[test]
    fn injected_fault_fails_the_job_cleanly() {
        let config = JobConfig::new(2).with_fault(FaultSpec {
            task_index: 1,
            on_attempt: 0,
        });
        let inputs = vec![
            Bytes::from_static(b"a b"),
            Bytes::from_static(b"c d"),
            Bytes::from_static(b"e f"),
        ];
        let err = run_job(&config, inputs, wordcount_o, wordcount_a, None).unwrap_err();
        assert!(matches!(err, Error::Fault(_)), "got {err:?}");
    }

    #[test]
    fn checkpoint_restart_recovers_completed_tasks() {
        let cp = CheckpointStore::new();
        let inputs: Vec<Bytes> = (0..8)
            .map(|i| Bytes::from(format!("w{i} shared")))
            .collect();

        // Attempt 0: task 7 fails after others complete (single rank makes
        // completion order deterministic: tasks 0..6 run first).
        let failing = JobConfig::new(1)
            .with_checkpointing(true)
            .with_fault(FaultSpec {
                task_index: 7,
                on_attempt: 0,
            });
        let err =
            run_job_attempt(&failing, inputs.clone(), wordcount_o, wordcount_a, Some(&cp), 0)
                .unwrap_err();
        assert!(err.to_string().contains("injected"));
        assert_eq!(cp.completed_count(), 7, "tasks 0-6 checkpointed");

        // Attempt 1: recovery replays 7 tasks, runs only the failed one.
        let retry = JobConfig::new(1).with_checkpointing(true);
        let out =
            run_job_attempt(&retry, inputs.clone(), wordcount_o, wordcount_a, Some(&cp), 1)
                .unwrap();
        assert_eq!(out.stats.o_tasks_recovered, 7);
        assert_eq!(out.stats.o_tasks_run, 1);

        // Output equals a clean run.
        let clean = run_job(&JobConfig::new(1), inputs, wordcount_o, wordcount_a, None).unwrap();
        assert_eq!(counts_of(out), counts_of(clean));
    }

    #[test]
    fn checkpointing_without_store_is_a_config_error() {
        let config = JobConfig::new(1).with_checkpointing(true);
        let err = run_job(&config, vec![], wordcount_o, wordcount_a, None).unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }

    #[test]
    fn panicking_o_task_reports_fault_not_hang() {
        let config = JobConfig::new(2);
        let inputs = vec![Bytes::from_static(b"boom"), Bytes::from_static(b"ok")];
        let o = |task: usize, _split: &[u8], _out: &mut dyn Collector| {
            if task == 0 {
                panic!("user code exploded");
            }
        };
        let a = |_g: &GroupedValues, _out: &mut dyn Collector| {};
        let err = run_job(&config, inputs, o, a, None).unwrap_err();
        assert!(matches!(err, Error::Fault(_)));
    }

    #[test]
    fn more_tasks_than_ranks_all_execute() {
        let config = JobConfig::new(2);
        let inputs: Vec<Bytes> = (0..50).map(|i| Bytes::from(format!("t{i}"))).collect();
        let out = run_job(&config, inputs, wordcount_o, wordcount_a, None).unwrap();
        assert_eq!(out.stats.o_tasks_run, 50);
        assert_eq!(out.stats.groups, 50, "fifty distinct words");
    }

    #[test]
    fn empty_job_produces_empty_output() {
        let config = JobConfig::new(3);
        let out = run_job(&config, vec![], wordcount_o, wordcount_a, None).unwrap();
        assert_eq!(out.stats.o_tasks_run, 0);
        assert!(out.partitions.iter().all(|p| p.is_empty()));
    }
}
