//! Fair-share admission: max-min progressive filling over job slots.
//!
//! The coordinator owns a fixed pool of concurrent job slots (the
//! resident mesh can interleave only so many jobs before memory budgets
//! and send windows stop paying off). Tenants submit at will; admission
//! decides *which queued job dispatches next* so that slot allocation
//! converges to the max-min fair share — the same progressive-filling
//! discipline as `dcsim::fairshare::max_min_rates`, specialised here to
//! a single resource (slots) with per-tenant caps (quotas). The
//! simulator's float-rate algorithm survives in [`water_fill`], which
//! computes each tenant's fair share; the controller then dispatches the
//! queued tenant with the largest *deficit* (fair share minus slots
//! currently held), which is exactly progressive filling executed one
//! discrete slot at a time.
//!
//! The controller is work-conserving: when some tenants are idle, the
//! others may exceed their equal split (never their quota), and the
//! water level rises to hand the spare capacity out.

use std::collections::{BTreeMap, VecDeque};

use super::protocol::JobSpec;

/// Static admission knobs, fixed at coordinator start.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Concurrent job slots the mesh offers (global running cap).
    pub mesh_slots: usize,
    /// Queued-job cap across all tenants; submissions past it are
    /// rejected rather than buffered without bound.
    pub queue_limit: usize,
    /// Per-tenant running cap (`rate_cap` in simulator terms).
    pub default_quota: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            mesh_slots: 2,
            queue_limit: 64,
            default_quota: 2,
        }
    }
}

/// Why a submission was turned away.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The coordinator is draining: running jobs finish, new ones bounce.
    Draining,
    /// The bounded queue is full.
    QueueFull,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::Draining => write!(f, "draining"),
            RejectReason::QueueFull => write!(f, "queue full"),
        }
    }
}

#[derive(Default)]
struct TenantState {
    queued: VecDeque<JobSpec>,
    running: usize,
}

/// The live admission controller: bounded queue, per-tenant quotas,
/// max-min dispatch order, graceful drain.
pub struct FairShareAdmission {
    config: AdmissionConfig,
    /// BTreeMap so iteration (and therefore tie-breaking) is
    /// deterministic: equal deficits resolve to the lexicographically
    /// first tenant, on every run.
    tenants: BTreeMap<String, TenantState>,
    queued_total: usize,
    running_total: usize,
    draining: bool,
}

impl FairShareAdmission {
    /// A controller with no tenants yet.
    pub fn new(config: AdmissionConfig) -> Self {
        FairShareAdmission {
            config,
            tenants: BTreeMap::new(),
            queued_total: 0,
            running_total: 0,
            draining: false,
        }
    }

    /// Offers a job for admission. `Ok` means queued (dispatch happens
    /// later, via [`next_to_dispatch`](Self::next_to_dispatch)).
    pub fn submit(&mut self, spec: JobSpec) -> Result<(), RejectReason> {
        if self.draining {
            return Err(RejectReason::Draining);
        }
        if self.queued_total >= self.config.queue_limit {
            return Err(RejectReason::QueueFull);
        }
        self.tenants
            .entry(spec.tenant.clone())
            .or_default()
            .queued
            .push_back(spec);
        self.queued_total += 1;
        Ok(())
    }

    /// Picks the next job to start, or `None` if every queued tenant is
    /// at quota or the mesh is at capacity. The pick maximises the
    /// tenant's max-min deficit: fair share (from [`water_fill`] over
    /// the tenants that currently want slots) minus slots already held.
    pub fn next_to_dispatch(&mut self) -> Option<JobSpec> {
        if self.running_total >= self.config.mesh_slots {
            return None;
        }
        // Demand for each active tenant = what it could use right now,
        // clamped by its quota (the simulator's rate_cap).
        let active: Vec<(&String, f64)> = self
            .tenants
            .iter()
            .filter(|(_, t)| t.queued.len() + t.running > 0)
            .map(|(name, t)| {
                let want = (t.queued.len() + t.running).min(self.config.default_quota);
                (name, want as f64)
            })
            .collect();
        if active.is_empty() {
            return None;
        }
        let caps: Vec<f64> = active.iter().map(|(_, w)| *w).collect();
        let shares = water_fill(&caps, self.config.mesh_slots as f64);
        let mut best: Option<(&String, f64)> = None;
        for ((name, _), share) in active.iter().zip(shares.iter()) {
            let t = &self.tenants[*name];
            if t.queued.is_empty() || t.running >= self.config.default_quota {
                continue;
            }
            let deficit = share - t.running as f64;
            // Strict `>` keeps the BTreeMap's lexicographic order as the
            // deterministic tie-break.
            if best.map(|(_, d)| deficit > d).unwrap_or(true) {
                best = Some((name, deficit));
            }
        }
        let name = best?.0.clone();
        let t = self.tenants.get_mut(&name).expect("picked tenant exists");
        let spec = t.queued.pop_front().expect("picked tenant has queue");
        t.running += 1;
        self.queued_total -= 1;
        self.running_total += 1;
        Some(spec)
    }

    /// Returns a finished (or failed) job's slot to the pool.
    pub fn release(&mut self, tenant: &str) {
        if let Some(t) = self.tenants.get_mut(tenant) {
            t.running = t.running.saturating_sub(1);
            self.running_total = self.running_total.saturating_sub(1);
        }
    }

    /// Enters drain: running jobs finish, new submissions are rejected.
    pub fn start_drain(&mut self) {
        self.draining = true;
    }

    /// True once draining and nothing is queued or running.
    pub fn drained(&self) -> bool {
        self.draining && self.queued_total == 0 && self.running_total == 0
    }

    /// Jobs currently executing on the mesh.
    pub fn running_total(&self) -> usize {
        self.running_total
    }

    /// Jobs waiting for a slot.
    pub fn queued_total(&self) -> usize {
        self.queued_total
    }

    /// One `tenant=… queued=… running=…` status fragment per tenant that
    /// has ever submitted, for the `status` verb.
    pub fn status_fragments(&self) -> Vec<String> {
        self.tenants
            .iter()
            .map(|(name, t)| {
                format!(
                    "tenant={} queued={} running={}",
                    super::protocol::esc(name),
                    t.queued.len(),
                    t.running
                )
            })
            .collect()
    }
}

/// Single-resource max-min progressive filling: raises one common water
/// level until `capacity` is spent or every flow hits its `cap`. This is
/// `dcsim::fairshare::max_min_rates` with the resource vector collapsed
/// to the slot pool — kept as a float so fractional fair shares break
/// discrete-dispatch ties the same way the simulator would.
pub fn water_fill(caps: &[f64], capacity: f64) -> Vec<f64> {
    const EPS: f64 = 1e-12;
    let n = caps.len();
    let mut rates = vec![0.0f64; n];
    if n == 0 || capacity <= EPS {
        return rates;
    }
    let mut frozen = vec![false; n];
    let mut headroom = capacity;
    loop {
        let live = frozen.iter().filter(|f| !**f).count();
        if live == 0 || headroom <= EPS {
            return rates;
        }
        // The next event is either the shared level reaching the
        // smallest remaining cap, or the capacity running out split
        // evenly across live flows.
        let even = headroom / live as f64;
        let mut delta = even;
        for i in 0..n {
            if !frozen[i] {
                delta = delta.min(caps[i] - rates[i]);
            }
        }
        let delta = delta.max(0.0);
        for i in 0..n {
            if !frozen[i] {
                rates[i] += delta;
                headroom -= delta;
                if caps[i] - rates[i] <= EPS {
                    frozen[i] = true;
                }
            }
        }
        if delta <= EPS {
            // Every live flow is at its cap boundary; nothing more moves.
            return rates;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(tenant: &str, seed: u64) -> JobSpec {
        JobSpec {
            id: 0,
            tenant: tenant.to_string(),
            workload: "wordcount".to_string(),
            tasks: 2,
            bytes_per_task: 1024,
            seed,
            o_parallelism: 1,
            out: None,
            spill_dir: None,
            spill_compress: false,
        }
    }

    #[test]
    fn water_fill_matches_max_min_semantics() {
        // Uncontended: everyone gets their demand.
        assert_eq!(water_fill(&[1.0, 2.0], 10.0), vec![1.0, 2.0]);
        // Contended equal demands: even split.
        assert_eq!(water_fill(&[5.0, 5.0], 4.0), vec![2.0, 2.0]);
        // A small flow frees headroom for the big one.
        let r = water_fill(&[1.0, 9.0], 4.0);
        assert!((r[0] - 1.0).abs() < 1e-9 && (r[1] - 3.0).abs() < 1e-9);
        // Degenerate inputs.
        assert!(water_fill(&[], 4.0).is_empty());
        assert_eq!(water_fill(&[3.0], 0.0), vec![0.0]);
    }

    #[test]
    fn equal_tenants_alternate_under_contention() {
        let mut adm = FairShareAdmission::new(AdmissionConfig {
            mesh_slots: 2,
            queue_limit: 16,
            default_quota: 2,
        });
        for i in 0..3 {
            adm.submit(spec("alice", i)).unwrap();
            adm.submit(spec("bob", i)).unwrap();
        }
        let first = adm.next_to_dispatch().unwrap();
        let second = adm.next_to_dispatch().unwrap();
        assert_eq!(first.tenant, "alice", "lexicographic tie-break");
        assert_eq!(second.tenant, "bob", "deficit now favours bob");
        assert!(adm.next_to_dispatch().is_none(), "mesh at capacity");
        adm.release("alice");
        // alice: 0 running, bob: 1 → alice has the larger deficit.
        assert_eq!(adm.next_to_dispatch().unwrap().tenant, "alice");
    }

    #[test]
    fn idle_tenants_do_not_strand_slots() {
        let mut adm = FairShareAdmission::new(AdmissionConfig {
            mesh_slots: 3,
            queue_limit: 16,
            default_quota: 3,
        });
        adm.submit(spec("solo", 1)).unwrap();
        adm.submit(spec("solo", 2)).unwrap();
        adm.submit(spec("solo", 3)).unwrap();
        // Work conservation: with nobody else demanding, solo takes all
        // three slots.
        assert_eq!(adm.next_to_dispatch().unwrap().tenant, "solo");
        assert_eq!(adm.next_to_dispatch().unwrap().tenant, "solo");
        assert_eq!(adm.next_to_dispatch().unwrap().tenant, "solo");
        assert_eq!(adm.running_total(), 3);
    }

    #[test]
    fn quota_caps_a_greedy_tenant() {
        let mut adm = FairShareAdmission::new(AdmissionConfig {
            mesh_slots: 4,
            queue_limit: 16,
            default_quota: 2,
        });
        for i in 0..4 {
            adm.submit(spec("greedy", i)).unwrap();
        }
        assert!(adm.next_to_dispatch().is_some());
        assert!(adm.next_to_dispatch().is_some());
        assert!(
            adm.next_to_dispatch().is_none(),
            "quota binds before the mesh does"
        );
        assert_eq!(adm.queued_total(), 2);
    }

    #[test]
    fn queue_limit_and_drain_reject() {
        let mut adm = FairShareAdmission::new(AdmissionConfig {
            mesh_slots: 1,
            queue_limit: 2,
            default_quota: 1,
        });
        adm.submit(spec("a", 1)).unwrap();
        adm.submit(spec("a", 2)).unwrap();
        assert_eq!(adm.submit(spec("a", 3)), Err(RejectReason::QueueFull));
        adm.start_drain();
        assert_eq!(adm.submit(spec("b", 1)), Err(RejectReason::Draining));
        assert!(!adm.drained(), "queued work still pending");
        let j = adm.next_to_dispatch().unwrap();
        adm.release(&j.tenant);
        let j = adm.next_to_dispatch().unwrap();
        adm.release(&j.tenant);
        assert!(adm.drained());
    }
}
