//! The service coordinator: forms one resident mesh, then schedules
//! many tenants' jobs onto it under fair-share admission.
//!
//! One listener carries everything: resident workers `join`, clients
//! `submit`/`status`/`drain` — the accept thread classifies each
//! connection by its first known verb and forwards it to the scheduler
//! as an event. The scheduler (a single thread, so admission and job
//! state need no locking) assigns ranks in join order, broadcasts the
//! `peers v0 …` table once the mesh is full, and from then on pushes
//! `job <id> …` dispatch lines to every rank as
//! [`FairShareAdmission`] frees slots.
//! Per-job `jobtlm` frames aggregate into a per-job
//! `dmpi-job-report/v1` document, exactly the artifact the one-shot
//! launcher writes.

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use dmpi_common::{Error, FaultCause, FaultKind, Result};

use crate::distrib::RankTable;
use crate::observe::{TelemetryAggregator, TelemetryFrame};

use super::admission::{AdmissionConfig, FairShareAdmission};
use super::protocol::{esc, parse_jobfail, read_known_line, JobSpec, WorkerDone};

/// Static coordinator configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Mesh width: resident workers expected before jobs dispatch.
    pub ranks: usize,
    /// Fair-share admission knobs.
    pub admission: AdmissionConfig,
    /// When set, each completed job's `dmpi-job-report/v1` JSON lands
    /// at `<dir>/job-<id>.json`.
    pub report_dir: Option<PathBuf>,
}

/// What a full service session amounted to, returned by [`serve`] after
/// drain completes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceSummary {
    /// Jobs that completed on every rank.
    pub completed: u64,
    /// Jobs that failed on at least one rank.
    pub failed: u64,
    /// Submissions bounced by admission (queue full / draining).
    pub rejected: u64,
}

fn service_fault(detail: String) -> Error {
    Error::fault(FaultCause::new(FaultKind::Transport, detail))
}

enum Event {
    Join {
        stream: TcpStream,
        port: u16,
    },
    Submit {
        stream: TcpStream,
        spec: JobSpec,
    },
    Status {
        stream: TcpStream,
    },
    Drain {
        stream: TcpStream,
    },
    WorkerDone(WorkerDone),
    WorkerFail {
        job: u64,
        rank: usize,
        err: String,
    },
    WorkerTlm {
        job: u64,
        frame: Box<TelemetryFrame>,
    },
    WorkerBye,
    WorkerGone {
        rank: usize,
    },
}

/// One admitted job's runtime state on the scheduler.
struct JobState {
    spec: JobSpec,
    client: TcpStream,
    done: Vec<Option<WorkerDone>>,
    agg: TelemetryAggregator,
    started: Instant,
}

/// Classifies one fresh connection by its first known verb and forwards
/// it to the scheduler. Runs on a short-lived thread per connection so a
/// slow client cannot stall the accept loop.
fn classify_connection(stream: TcpStream, events: &Sender<Event>, epoch: Instant) {
    let Ok(clone) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(clone);
    let mut line = String::new();
    let known = |v: &str| matches!(v, "join" | "submit" | "status" | "drain");
    if read_known_line(&mut reader, &mut line, known).unwrap_or(0) == 0 {
        return;
    }
    let mut it = line.split_whitespace();
    match it.next() {
        Some("join") => {
            let Some(port) = it.next().and_then(|p| p.parse().ok()) else {
                return;
            };
            // Answer the clock leg immediately (before the scheduler
            // gets involved) so the worker's measured RTT stays tight.
            if it.next().is_some() {
                let mut w = match stream.try_clone() {
                    Ok(w) => w,
                    Err(_) => return,
                };
                let _ = writeln!(w, "clock {}", epoch.elapsed().as_micros() as u64);
            }
            let _ = events.send(Event::Join { stream, port });
        }
        Some("submit") => {
            if let Some(spec) = JobSpec::parse_submit(&line) {
                let _ = events.send(Event::Submit { stream, spec });
            } else {
                let mut stream = stream;
                let _ = writeln!(stream, "rejected reason={}", esc("malformed submit"));
            }
        }
        Some("status") => {
            let _ = events.send(Event::Status { stream });
        }
        Some("drain") => {
            let _ = events.send(Event::Drain { stream });
        }
        _ => {}
    }
}

/// Drains one resident worker's control stream into scheduler events.
fn worker_reader(stream: TcpStream, rank: usize, events: Sender<Event>) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let known = |v: &str| matches!(v, "jobdone" | "jobfail" | "jobtlm" | "bye");
    loop {
        match read_known_line(&mut reader, &mut line, known) {
            Ok(0) | Err(_) => {
                let _ = events.send(Event::WorkerGone { rank });
                return;
            }
            Ok(_) => {}
        }
        if let Some(done) = WorkerDone::parse(&line) {
            let _ = events.send(Event::WorkerDone(done));
        } else if let Some((job, rank, err)) = parse_jobfail(&line) {
            let _ = events.send(Event::WorkerFail { job, rank, err });
        } else if let Some(rest) = line.strip_prefix("jobtlm ") {
            let mut it = rest.splitn(2, ' ');
            let job = it.next().and_then(|t| t.parse::<u64>().ok());
            let frame = it.next().and_then(TelemetryFrame::parse);
            if let (Some(job), Some(frame)) = (job, frame) {
                let _ = events.send(Event::WorkerTlm {
                    job,
                    frame: Box::new(frame),
                });
            }
        } else if line.starts_with("bye") {
            let _ = events.send(Event::WorkerBye);
            return;
        }
    }
}

struct Scheduler {
    config: ServiceConfig,
    /// Pre-mesh joiners, in join order: (control stream, data port).
    joiners: Vec<(TcpStream, u16)>,
    /// Post-mesh control writers, indexed by rank.
    workers: Vec<TcpStream>,
    jobs: HashMap<u64, JobState>,
    admission: FairShareAdmission,
    next_id: u64,
    summary: ServiceSummary,
    draining: bool,
    drain_sent: bool,
    drain_waiters: Vec<TcpStream>,
    byes: usize,
    events: Sender<Event>,
}

impl Scheduler {
    fn mesh_ready(&self) -> bool {
        self.workers.len() == self.config.ranks
    }

    fn on_join(&mut self, stream: TcpStream, port: u16) {
        if self.mesh_ready() || self.draining {
            // A late joiner has no seat: closing the stream tells it so.
            return;
        }
        self.joiners.push((stream, port));
        if self.joiners.len() < self.config.ranks {
            return;
        }
        let ranks = self.config.ranks;
        let table = RankTable::new(
            0,
            self.joiners
                .iter()
                .map(|(_, p)| format!("127.0.0.1:{p}").parse().expect("loopback addr"))
                .collect(),
        );
        let table_line = table.wire_line();
        for (rank, (mut stream, _)) in self.joiners.drain(..).enumerate() {
            let _ = writeln!(stream, "rank {rank} {ranks}");
            let _ = writeln!(stream, "{table_line}");
            if let Ok(read_half) = stream.try_clone() {
                let events = self.events.clone();
                std::thread::spawn(move || worker_reader(read_half, rank, events));
            }
            self.workers.push(stream);
        }
        self.try_dispatch();
    }

    fn on_submit(&mut self, mut stream: TcpStream, mut spec: JobSpec) {
        spec.id = self.next_id;
        match self.admission.submit(spec.clone()) {
            Err(reason) => {
                self.summary.rejected += 1;
                let _ = writeln!(stream, "rejected reason={}", esc(&reason.to_string()));
            }
            Ok(()) => {
                self.next_id += 1;
                let _ = writeln!(stream, "accepted job={}", spec.id);
                self.jobs.insert(
                    spec.id,
                    JobState {
                        spec,
                        client: stream,
                        done: (0..self.config.ranks).map(|_| None).collect(),
                        agg: TelemetryAggregator::new(self.config.ranks),
                        started: Instant::now(),
                    },
                );
                self.try_dispatch();
            }
        }
    }

    /// Pushes every job admission will currently allow onto the mesh.
    fn try_dispatch(&mut self) {
        if !self.mesh_ready() {
            return;
        }
        while let Some(spec) = self.admission.next_to_dispatch() {
            let line = spec.wire_line();
            for w in &mut self.workers {
                let _ = writeln!(w, "{line}");
            }
            if let Some(job) = self.jobs.get_mut(&spec.id) {
                job.started = Instant::now();
            }
        }
    }

    fn on_worker_done(&mut self, done: WorkerDone) {
        let Some(job) = self.jobs.get_mut(&done.job) else {
            return; // already failed and retired
        };
        if done.rank < job.done.len() {
            let rank = done.rank;
            job.done[rank] = Some(done);
        }
        if !job.done.iter().all(Option::is_some) {
            return;
        }
        let id = job.spec.id;
        let mut job = self.jobs.remove(&id).expect("checked above");
        let reports: Vec<&WorkerDone> = job.done.iter().map(|d| d.as_ref().unwrap()).collect();
        let out_records: u64 = reports.iter().map(|d| d.out_records).sum();
        let out_bytes: u64 = reports.iter().map(|d| d.out_bytes).sum();
        let crcs = reports
            .iter()
            .map(|d| d.crc.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let elapsed_us = job.started.elapsed().as_micros() as u64;
        let _ = writeln!(
            job.client,
            "jobdone job={id} out_records={out_records} out_bytes={out_bytes} \
             crcs={crcs} elapsed_us={elapsed_us}"
        );
        self.write_report(&job, elapsed_us);
        self.summary.completed += 1;
        self.admission.release(&job.spec.tenant);
        self.try_dispatch();
        self.maybe_start_worker_drain();
    }

    fn write_report(&self, job: &JobState, elapsed_us: u64) {
        let Some(dir) = &self.config.report_dir else {
            return;
        };
        let meta = [
            ("job", job.spec.id.to_string()),
            ("tenant", format!("{:?}", job.spec.tenant)),
            ("workload", format!("{:?}", job.spec.workload)),
            ("tasks", job.spec.tasks.to_string()),
            ("seed", job.spec.seed.to_string()),
            ("elapsed_us", elapsed_us.to_string()),
        ];
        let json = job.agg.report_json(&meta);
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(dir.join(format!("job-{}.json", job.spec.id)), json);
    }

    fn on_worker_fail(&mut self, id: u64, rank: usize, err: String) {
        let Some(mut job) = self.jobs.remove(&id) else {
            return; // duplicate failure reports collapse into the first
        };
        let _ = writeln!(
            job.client,
            "jobfail job={id} err={}",
            esc(&format!("rank {rank}: {err}"))
        );
        self.summary.failed += 1;
        self.admission.release(&job.spec.tenant);
        self.try_dispatch();
        self.maybe_start_worker_drain();
    }

    fn on_worker_gone(&mut self, rank: usize) {
        if self.drain_sent {
            // Workers hang up right after `bye`; that is the plan.
            return;
        }
        // A resident rank died: the mesh is degraded beyond repair for
        // every job on it. Fail in-flight jobs, stop admitting, drain.
        let err = format!("resident rank {rank} left the mesh");
        let ids: Vec<u64> = self.jobs.keys().copied().collect();
        for id in ids {
            self.on_worker_fail(id, rank, err.clone());
        }
        self.admission.start_drain();
        self.draining = true;
        self.maybe_start_worker_drain();
    }

    fn on_status(&mut self, mut stream: TcpStream) {
        let fragments = self.admission.status_fragments().join(",");
        let _ = writeln!(
            stream,
            "status ranks={}/{} queued={} running={} completed={} failed={} rejected={} {}",
            self.workers.len(),
            self.config.ranks,
            self.admission.queued_total(),
            self.admission.running_total(),
            self.summary.completed,
            self.summary.failed,
            self.summary.rejected,
            fragments
        );
    }

    fn on_drain(&mut self, stream: TcpStream) {
        self.draining = true;
        self.admission.start_drain();
        self.drain_waiters.push(stream);
        self.maybe_start_worker_drain();
    }

    /// Once draining and idle, tells every worker to deregister.
    fn maybe_start_worker_drain(&mut self) {
        if !self.draining || self.drain_sent || !self.admission.drained() {
            return;
        }
        self.drain_sent = true;
        for w in &mut self.workers {
            let _ = writeln!(w, "drain");
        }
    }

    /// True once the session is over: drained and every worker said bye
    /// (or there never was a mesh to say bye from).
    fn finished(&self) -> bool {
        self.drain_sent && self.byes >= self.workers.len()
    }

    fn finish(&mut self) {
        for mut w in self.drain_waiters.drain(..) {
            let _ = writeln!(w, "drained completed={}", self.summary.completed);
        }
    }
}

/// Runs a service session to completion: accepts worker joins and
/// client submissions on `listener`, schedules jobs under fair-share
/// admission, and returns the session summary once a `drain` request
/// (or a mesh death) has been honoured.
pub fn serve(listener: TcpListener, config: ServiceConfig) -> Result<ServiceSummary> {
    let epoch = Instant::now();
    let (events_tx, events_rx): (Sender<Event>, Receiver<Event>) = unbounded();
    listener
        .set_nonblocking(true)
        .map_err(|e| service_fault(format!("coordinator set_nonblocking: {e}")))?;
    let accept_events = events_tx.clone();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let accept_stop = std::sync::Arc::clone(&stop);
    let acceptor = std::thread::spawn(move || {
        while !accept_stop.load(std::sync::atomic::Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    let events = accept_events.clone();
                    std::thread::spawn(move || classify_connection(stream, &events, epoch));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Kept short: every poll tick is pure submit latency
                    // for whichever client dialled right after the last
                    // accept pass.
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => return,
            }
        }
    });

    let admission = FairShareAdmission::new(config.admission.clone());
    let mut sched = Scheduler {
        config,
        joiners: Vec::new(),
        workers: Vec::new(),
        jobs: HashMap::new(),
        admission,
        next_id: 0,
        summary: ServiceSummary::default(),
        draining: false,
        drain_sent: false,
        drain_waiters: Vec::new(),
        byes: 0,
        events: events_tx,
    };

    while !sched.finished() {
        let event = match events_rx.recv_timeout(Duration::from_millis(100)) {
            Ok(ev) => ev,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                // Idle tick: a drain with no mesh resolves here.
                if sched.draining && sched.workers.is_empty() && sched.admission.drained() {
                    sched.drain_sent = true;
                }
                continue;
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
        };
        match event {
            Event::Join { stream, port } => sched.on_join(stream, port),
            Event::Submit { stream, spec } => sched.on_submit(stream, spec),
            Event::Status { stream } => sched.on_status(stream),
            Event::Drain { stream } => sched.on_drain(stream),
            Event::WorkerDone(done) => sched.on_worker_done(done),
            Event::WorkerFail { job, rank, err } => sched.on_worker_fail(job, rank, err),
            Event::WorkerTlm { job, frame } => {
                if let Some(j) = sched.jobs.get_mut(&job) {
                    j.agg.absorb(*frame);
                }
            }
            Event::WorkerBye => sched.byes += 1,
            Event::WorkerGone { rank } => sched.on_worker_gone(rank),
        }
    }
    sched.finish();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let _ = acceptor.join();
    Ok(sched.summary)
}
