//! The job multiplexer: many concurrent jobs over one resident mesh.
//!
//! A resident worker establishes its TCP mesh **once** and then runs
//! every job the coordinator dispatches over the same sockets — the
//! paper's core premise (communication-ready resident processes) applied
//! to multi-tenancy. [`JobMux`] owns the rank's [`Endpoint`]: producers
//! get job-tagged [`FrameSender`] clones (the tag rides in the high bits
//! of `o_task` — see [`crate::comm::tag_task`]), and a demultiplexer
//! thread routes inbound frames to per-job channels by that tag,
//! stripping it before delivery so the job-side runtime (ingest,
//! checkpoint bookkeeping, byte-identity) sees exactly the frames a
//! dedicated mesh would have carried.
//!
//! **EOF discipline.** The TCP reader classifies a stream that ends
//! without a real [`Frame::Eof`] as a rank death, so real EOFs are
//! reserved for mesh teardown ([`JobMux::close`], sent at drain or
//! one-shot shutdown). A *job's* completion travels in-band as a tagged
//! empty-payload data frame, which the demux converts back to
//! `Frame::Eof` for that job's ingest thread.
//!
//! **Unexpected frames.** Jobs start at different instants on different
//! ranks, so frames can arrive for a job this rank has not opened yet —
//! the classic MPI unexpected-message queue. The demux parks them in a
//! bounded backlog and replays them (in arrival order) when the job
//! opens. Delivery into open jobs is never blocking (per-job channels
//! are unbounded), so one slow job cannot stall the demux and starve the
//! others; end-to-end memory is still tempered by the producers' bounded
//! send windows and the A-store's spill-under-budget machinery.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;

use dmpi_common::{Error, FaultCause, FaultKind, Result};

use crate::comm::{untag_task, wire_size_estimate, Frame, JOB_EOF_TASK};
use crate::transport::{Endpoint, FrameReceiver, FrameSender, JobWire, WireStats};

/// Upper bound on frames parked for not-yet-opened jobs. Far above
/// anything the dispatch race window (a `job` line in flight to this
/// rank while peers already produce) can accumulate; hitting it means a
/// peer is sending frames for a job that will never open, and the job
/// gets a structured fault instead of unbounded memory.
const UNEXPECTED_FRAME_LIMIT: usize = 1 << 16;

struct JobSlot {
    tx: Sender<Result<Frame>>,
    wire: Arc<JobWire>,
}

#[derive(Default)]
struct MuxState {
    open: HashMap<u64, JobSlot>,
    /// Arrival-ordered backlog per unopened job.
    unexpected: HashMap<u64, VecDeque<Result<Frame>>>,
    unexpected_count: usize,
    /// Jobs already finished on this rank: stray late frames are dropped.
    finished: HashSet<u64>,
    /// A mesh-wide transport fault (e.g. a peer died): every job opened
    /// after it surfaced sees it immediately.
    mesh_fault: Option<Error>,
    /// Peers that sent their mesh-teardown EOF.
    peers_gone: usize,
    closed: bool,
}

/// One job's attachment to the shared mesh, handed out by
/// [`JobMux::open_job`]: tagged senders, the job's demultiplexed
/// receiver, and its wire accounting.
pub struct JobChannels {
    /// Job-tagged senders, indexed by destination rank.
    pub senders: Vec<FrameSender>,
    /// This job's share of the rank's inbound frames, tag stripped.
    pub receiver: FrameReceiver,
    /// Estimated encoded bytes this job moved (socket totals span all
    /// jobs, so per-job numbers are frame-size estimates).
    pub wire: Arc<JobWire>,
}

/// The per-rank multiplexer over one established mesh endpoint.
pub struct JobMux {
    rank: usize,
    ranks: usize,
    /// Untagged senders: mesh-level traffic (teardown EOFs) only.
    base_senders: Mutex<Vec<FrameSender>>,
    endpoint: Mutex<Option<Endpoint>>,
    state: Arc<Mutex<MuxState>>,
}

impl JobMux {
    /// Wraps an established endpoint and starts the demultiplexer
    /// thread. The endpoint's receiver is taken here; all inbound frames
    /// flow through the mux from now on.
    pub fn new(mut endpoint: Endpoint) -> Arc<JobMux> {
        let receiver = endpoint.take_receiver();
        let mux = Arc::new(JobMux {
            rank: endpoint.rank(),
            ranks: endpoint.ranks(),
            base_senders: Mutex::new(endpoint.senders()),
            endpoint: Mutex::new(Some(endpoint)),
            state: Arc::new(Mutex::new(MuxState::default())),
        });
        let state = Arc::clone(&mux.state);
        std::thread::spawn(move || demux_loop(receiver, &state));
        mux
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Mesh width.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Opens `job` on this rank: registers its demux route and replays
    /// any frames that arrived before the job line did.
    pub fn open_job(&self, job: u64) -> Result<JobChannels> {
        let wire = Arc::new(JobWire::default());
        let (tx, rx) = unbounded();
        {
            let mut state = self.state.lock();
            if state.closed {
                return Err(Error::InvalidState(format!(
                    "job {job}: mesh already closed"
                )));
            }
            if state.open.contains_key(&job) || state.finished.contains(&job) {
                return Err(Error::InvalidState(format!("job {job} already opened")));
            }
            if let Some(e) = &state.mesh_fault {
                let _ = tx.send(Err(e.clone()));
            }
            if let Some(backlog) = state.unexpected.remove(&job) {
                state.unexpected_count -= backlog.len();
                for item in backlog {
                    let item = item.inspect(|f| wire.add_received(wire_size_estimate(f)));
                    let _ = tx.send(item.map(strip_tag));
                }
            }
            state.open.insert(
                job,
                JobSlot {
                    tx,
                    wire: Arc::clone(&wire),
                },
            );
        }
        let senders = self
            .base_senders
            .lock()
            .iter()
            .map(|s| s.for_job(job, Arc::clone(&wire)))
            .collect();
        Ok(JobChannels {
            senders,
            receiver: FrameReceiver::Checked(rx),
            wire,
        })
    }

    /// Retires `job`'s demux route. Call after the job's ingest has
    /// consumed its EOFs; stray frames arriving later are dropped.
    pub fn finish_job(&self, job: u64) {
        let mut state = self.state.lock();
        state.open.remove(&job);
        state.finished.insert(job);
    }

    /// Tears the mesh down: sends one real [`Frame::Eof`] to every peer
    /// (the signal that lets their readers classify this as a clean
    /// departure, not a rank death), then closes the endpoint, joining
    /// its writer threads. Returns the socket-exact wire totals across
    /// every job the mesh carried. Idempotent; later calls return zeros.
    pub fn close(&self) -> WireStats {
        {
            let mut state = self.state.lock();
            if state.closed {
                return WireStats::default();
            }
            state.closed = true;
            state.open.clear();
        }
        let mut base = self.base_senders.lock();
        for s in base.iter() {
            s.send(Frame::Eof {
                from_rank: self.rank,
            });
        }
        base.clear();
        drop(base);
        match self.endpoint.lock().take() {
            Some(endpoint) => endpoint.close(),
            None => WireStats::default(),
        }
    }
}

/// Strips the job tag off a routed frame, converting tagged job-EOF
/// markers back into [`Frame::Eof`].
fn strip_tag(frame: Frame) -> Frame {
    match frame {
        Frame::Data {
            from_rank,
            o_task,
            payload,
            crc,
        } => match untag_task(o_task as u64) {
            Some((_, task)) if task == JOB_EOF_TASK && payload.is_empty() => {
                Frame::Eof { from_rank }
            }
            Some((_, task)) => Frame::Data {
                from_rank,
                o_task: task as usize,
                payload,
                crc,
            },
            None => Frame::Data {
                from_rank,
                o_task,
                payload,
                crc,
            },
        },
        eof => eof,
    }
}

fn demux_loop(receiver: FrameReceiver, state: &Mutex<MuxState>) {
    loop {
        match receiver.recv() {
            Ok(Some(Frame::Eof { .. })) => {
                // A peer tore its mesh attachment down (drain / one-shot
                // shutdown). Job-level EOFs arrive as tagged data, so
                // this is mesh-scoped bookkeeping only.
                state.lock().peers_gone += 1;
            }
            Ok(Some(frame)) => {
                let Some((job, _)) = frame.o_task().and_then(|t| untag_task(t as u64)) else {
                    // An untagged data frame on a multiplexed mesh: a
                    // protocol violation worth failing loudly over.
                    broadcast_fault(
                        state,
                        Error::fault(FaultCause::new(
                            FaultKind::Transport,
                            format!(
                                "untagged data frame from rank {} on a multiplexed mesh",
                                frame.from_rank()
                            ),
                        )),
                    );
                    continue;
                };
                let nbytes = wire_size_estimate(&frame);
                let mut st = state.lock();
                if let Some(slot) = st.open.get(&job) {
                    slot.wire.add_received(nbytes);
                    // Unbounded per-job channel: never blocks, so one
                    // slow job cannot head-of-line-block the others.
                    let _ = slot.tx.send(Ok(strip_tag(frame)));
                } else if !st.finished.contains(&job) && !st.closed {
                    if st.unexpected_count >= UNEXPECTED_FRAME_LIMIT {
                        let overflow = Error::fault(FaultCause::new(
                            FaultKind::Transport,
                            format!("unexpected-frame backlog overflow parking job {job}"),
                        ));
                        st.unexpected
                            .entry(job)
                            .or_default()
                            .push_back(Err(overflow));
                    } else {
                        st.unexpected_count += 1;
                        st.unexpected.entry(job).or_default().push_back(Ok(frame));
                    }
                }
            }
            Ok(None) => {
                // Every reader is gone: clean mesh teardown. Dropping
                // the slots disconnects the per-job channels, which job
                // ingests see as end-of-stream.
                let mut st = state.lock();
                st.open.clear();
                return;
            }
            Err(e) => broadcast_fault(state, e),
        }
    }
}

/// Routes a transport fault to every open job and pins it for jobs
/// opened later — a dead peer kills every job sharing the mesh.
fn broadcast_fault(state: &Mutex<MuxState>, e: Error) {
    let mut st = state.lock();
    for slot in st.open.values() {
        let _ = slot.tx.send(Err(e.clone()));
    }
    if st.mesh_fault.is_none() {
        st.mesh_fault = Some(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{establish_endpoint, TcpOptions};
    use bytes::Bytes;
    use std::net::TcpListener;

    fn two_rank_meshes() -> (Arc<JobMux>, Arc<JobMux>) {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let peers = vec![l0.local_addr().unwrap(), l1.local_addr().unwrap()];
        let p2 = peers.clone();
        let h = std::thread::spawn(move || {
            establish_endpoint(1, l1, &p2, &TcpOptions::default()).unwrap()
        });
        let e0 = establish_endpoint(0, l0, &peers, &TcpOptions::default()).unwrap();
        let e1 = h.join().unwrap();
        (JobMux::new(e0), JobMux::new(e1))
    }

    #[test]
    fn frames_demultiplex_by_job_and_tags_are_stripped() {
        let (m0, m1) = two_rank_meshes();
        let job_a = m1.open_job(7).unwrap();
        let job_b = m1.open_job(8).unwrap();
        let a0 = m0.open_job(7).unwrap();
        let b0 = m0.open_job(8).unwrap();
        a0.senders[1].send(Frame::data(0, 3, Bytes::from_static(b"for-a")));
        b0.senders[1].send(Frame::data(0, 9, Bytes::from_static(b"for-b")));
        a0.senders[1].send(Frame::Eof { from_rank: 0 });
        b0.senders[1].send(Frame::Eof { from_rank: 0 });

        let got_a = job_a.receiver.recv().unwrap().unwrap();
        match got_a {
            Frame::Data {
                o_task, payload, ..
            } => {
                assert_eq!(o_task, 3, "tag stripped before delivery");
                assert_eq!(&payload[..], b"for-a");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            job_a.receiver.recv().unwrap().unwrap(),
            Frame::Eof { from_rank: 0 }
        ));
        let got_b = job_b.receiver.recv().unwrap().unwrap();
        assert_eq!(got_b.o_task(), Some(9));
        assert!(matches!(
            job_b.receiver.recv().unwrap().unwrap(),
            Frame::Eof { from_rank: 0 }
        ));
        assert!(job_a.wire.snapshot().bytes_received > 0);

        // Writer threads only exit once every sender clone is gone, so
        // drop the jobs' channels before closing (as the runtime does).
        drop(job_a);
        drop(job_b);
        drop(a0);
        drop(b0);
        m0.close();
        m1.close();
    }

    #[test]
    fn unexpected_frames_replay_when_the_job_opens() {
        let (m0, m1) = two_rank_meshes();
        let sender_side = m0.open_job(5).unwrap();
        sender_side.senders[1].send(Frame::data(0, 1, Bytes::from_static(b"early")));
        sender_side.senders[1].send(Frame::Eof { from_rank: 0 });
        // Give the frames time to land in rank 1's backlog before the
        // job opens there.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let late = m1.open_job(5).unwrap();
        let first = late.receiver.recv().unwrap().unwrap();
        assert_eq!(first.o_task(), Some(1));
        assert!(matches!(
            late.receiver.recv().unwrap().unwrap(),
            Frame::Eof { .. }
        ));
        drop(sender_side);
        drop(late);
        m0.close();
        m1.close();
    }

    #[test]
    fn close_is_a_clean_departure_not_a_rank_death() {
        let (m0, m1) = two_rank_meshes();
        let JobChannels {
            senders, receiver, ..
        } = m1.open_job(0).unwrap();
        let stats = m0.close();
        // Rank 0 sent one mesh EOF per peer and nothing else.
        assert!(stats.bytes_sent >= 5);
        // Rank 1's open job sees clean end-of-stream (disconnect), not a
        // RankDeath fault, once its own mux closes too. Its senders must
        // be gone before close, or the writer join would wait on us.
        drop(senders);
        m1.close();
        loop {
            match receiver.recv() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => panic!("clean close must not fault: {e}"),
            }
        }
    }

    #[test]
    fn double_open_and_open_after_close_are_errors() {
        let (m0, m1) = two_rank_meshes();
        m0.open_job(1).unwrap();
        assert!(m0.open_job(1).is_err());
        m0.finish_job(1);
        assert!(m0.open_job(1).is_err(), "finished jobs never reopen");
        m0.close();
        assert!(m0.open_job(2).is_err());
        m1.close();
    }
}
