//! The resident job service: `dmpid` workers, the multi-tenant
//! coordinator, and fair-share admission.
//!
//! The paper attributes DataMPI's latency edge on short BigDataBench
//! workloads to *resident, communication-ready processes* — no
//! per-job process launch, no per-job connection setup. This module is
//! that idea as a subsystem:
//!
//! * [`protocol`] — the `job`/`jobdone`/`submit`/… verbs layered on the
//!   existing line-oriented rendezvous protocol, with forward
//!   compatibility (unknown verbs skip, not error) as a protocol rule;
//! * [`mesh`] — the [`JobMux`]: many concurrent jobs multiplexed over
//!   one established TCP mesh via a job-id tag in the frame header;
//! * [`admission`] — `dcsim::fairshare` max-min progressive filling
//!   ported into a live admission controller with per-tenant quotas, a
//!   bounded queue, and graceful drain;
//! * [`worker`] — the resident worker loop behind the `dmpid` binary;
//! * [`coordinator`] — the scheduler behind `dmpid --coordinator`.
//!
//! The one-shot path is not a separate implementation: `dmpirun`'s
//! `run_worker` runs as a degenerate single-job session (job 0) of the
//! same [`JobMux`] codepath, which is what lets the service inherit the
//! launcher's byte-identity guarantees.

pub mod admission;
pub mod coordinator;
pub mod mesh;
pub mod protocol;
pub mod worker;

pub use admission::{AdmissionConfig, FairShareAdmission, RejectReason};
pub use coordinator::{serve, ServiceConfig, ServiceSummary};
pub use mesh::{JobChannels, JobMux};
pub use protocol::{JobSpec, WorkerDone};
pub use worker::{run_resident_worker, JobResolver, PreparedJob};
