//! Service wire protocol: the job verbs layered on the line-oriented
//! rendezvous protocol.
//!
//! Everything on a service control stream is one line of text: a verb
//! token, then space-separated positional or `key=value` fields, with
//! percent-escaping for free-form values (tenant names, paths, error
//! messages). The verb families:
//!
//! * **worker ↔ coordinator** — `join <port> <t0>` (a resident worker
//!   announcing its data port), answered by `clock <T>`, `rank <r>
//!   <ranks>` and the usual `peers v<N> …` table broadcast; then any
//!   number of `job <id> …` dispatches answered per rank by
//!   `jobdone <id> rank=… …` / `jobfail <id> rank=… err=…`, with
//!   `jobtlm <id> tlm …` telemetry interleaved; finally `drain` /
//!   `bye rank=<r>` for graceful deregistration.
//! * **client ↔ coordinator** — `submit tenant=… workload=… …`,
//!   answered by `accepted job=<id>` or `rejected reason=…` and later
//!   a terminal `jobdone job=<id> …` / `jobfail job=<id> err=…`; plus
//!   one-line `status` and `drain` queries.
//!
//! **Forward compatibility** is a protocol rule, not an accident: every
//! reader skips lines whose leading verb it does not recognize
//! ([`read_known_line`]), exactly as `TelemetryFrame::parse` ignores
//! unknown fields. An old worker pointed at a new coordinator (or the
//! reverse) sees future verbs as noise rather than errors, which is what
//! lets `job …` verbs ride on the same streams the one-shot launcher
//! already uses.

use std::fmt::Write as _;
use std::io::{self, BufRead};

/// Percent-escapes a free-form value so it contains no whitespace or
/// field separators (`= % ,`). Mirrors the telemetry plane's escaping.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'=' | b'%' | b',' | 0x00..=0x20 | 0x7f => {
                let _ = write!(out, "%{b:02x}");
            }
            _ => out.push(b as char),
        }
    }
    out
}

/// Reverses [`esc`]. Returns `None` on malformed escapes.
pub fn unesc(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// Reads the next line whose leading verb `accept` recognizes, skipping
/// unknown-verb lines (and blank lines) for forward compatibility —
/// older peers must tolerate verbs introduced after they shipped.
/// Returns `Ok(0)` at end of stream, otherwise the byte length of the
/// accepted line (stored in `line`, trailing newline included).
pub fn read_known_line<R: BufRead>(
    reader: &mut R,
    line: &mut String,
    accept: impl Fn(&str) -> bool,
) -> io::Result<usize> {
    loop {
        line.clear();
        let n = reader.read_line(line)?;
        if n == 0 {
            return Ok(0);
        }
        match line.split_whitespace().next() {
            Some(verb) if accept(verb) => return Ok(n),
            _ => continue, // unknown or blank: a future peer's verb
        }
    }
}

/// One job as the coordinator dispatches it to every resident rank.
///
/// The submission form (`submit …`) carries the same fields without the
/// id — the coordinator assigns ids in admission order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Coordinator-assigned job id (tags this job's frames on the mesh).
    pub id: u64,
    /// Submitting tenant (the fair-share admission principal).
    pub tenant: String,
    /// Catalogue workload name (resolved by the worker's
    /// [`JobResolver`](crate::service::JobResolver)).
    pub workload: String,
    /// O tasks in the job.
    pub tasks: usize,
    /// Minimum split size, bytes.
    pub bytes_per_task: usize,
    /// Input-generation seed.
    pub seed: u64,
    /// Worker threads per O task.
    pub o_parallelism: usize,
    /// When set, each rank writes its partition to `<out>/part-NNNNN`.
    pub out: Option<String>,
    /// When set, workers seal this job's spill runs to block-indexed
    /// files under `<spill_dir>/job-<id>/`, cleaned up when the job
    /// finishes (success or failure).
    pub spill_dir: Option<String>,
    /// LZ4-compress spill-run blocks.
    pub spill_compress: bool,
}

impl JobSpec {
    fn fields(&self) -> String {
        let mut s = format!(
            "tenant={} workload={} tasks={} bytes={} seed={} par={}",
            esc(&self.tenant),
            esc(&self.workload),
            self.tasks,
            self.bytes_per_task,
            self.seed,
            self.o_parallelism,
        );
        if let Some(out) = &self.out {
            let _ = write!(s, " out={}", esc(out));
        }
        if let Some(dir) = &self.spill_dir {
            let _ = write!(s, " spilldir={}", esc(dir));
        }
        if self.spill_compress {
            s.push_str(" spillcomp=1");
        }
        s
    }

    /// The dispatch form: `job <id> tenant=… workload=… …`.
    pub fn wire_line(&self) -> String {
        format!("job {} {}", self.id, self.fields())
    }

    /// The submission form: `submit tenant=… workload=… …` (no id).
    pub fn submit_line(&self) -> String {
        format!("submit {}", self.fields())
    }

    fn parse_fields(mut spec: JobSpec, it: std::str::SplitWhitespace) -> Option<JobSpec> {
        for field in it {
            let (key, value) = field.split_once('=')?;
            match key {
                "tenant" => spec.tenant = unesc(value)?,
                "workload" => spec.workload = unesc(value)?,
                "tasks" => spec.tasks = value.parse().ok()?,
                "bytes" => spec.bytes_per_task = value.parse().ok()?,
                "seed" => spec.seed = value.parse().ok()?,
                "par" => spec.o_parallelism = value.parse().ok()?,
                "out" => spec.out = Some(unesc(value)?),
                "spilldir" => spec.spill_dir = Some(unesc(value)?),
                "spillcomp" => spec.spill_compress = value == "1",
                _ => {} // forward compatibility: ignore unknown fields
            }
        }
        if spec.tenant.is_empty() || spec.workload.is_empty() || spec.tasks == 0 {
            return None;
        }
        Some(spec)
    }

    fn empty() -> JobSpec {
        JobSpec {
            id: 0,
            tenant: String::new(),
            workload: String::new(),
            tasks: 0,
            bytes_per_task: 4096,
            seed: 42,
            o_parallelism: 1,
            out: None,
            spill_dir: None,
            spill_compress: false,
        }
    }

    /// Parses a `job <id> …` dispatch line.
    pub fn parse_job(line: &str) -> Option<JobSpec> {
        let mut it = line.split_whitespace();
        if it.next()? != "job" {
            return None;
        }
        let mut spec = JobSpec::empty();
        spec.id = it.next()?.parse().ok()?;
        Self::parse_fields(spec, it)
    }

    /// Parses a `submit …` line (id left at 0 for the coordinator to
    /// assign).
    pub fn parse_submit(line: &str) -> Option<JobSpec> {
        let mut it = line.split_whitespace();
        if it.next()? != "submit" {
            return None;
        }
        Self::parse_fields(JobSpec::empty(), it)
    }
}

/// One rank's completion report for one job.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerDone {
    /// The finished job.
    pub job: u64,
    /// Reporting rank.
    pub rank: usize,
    /// CRC32 of the rank's framed partition bytes (the byte-identity
    /// fingerprint `dmpirun --verify-inproc` also uses).
    pub crc: u32,
    /// Wall time this rank spent on the job, µs.
    pub elapsed_us: u64,
    /// Records in the rank's A partition.
    pub out_records: u64,
    /// Framed partition bytes.
    pub out_bytes: u64,
    /// Records the rank's O tasks emitted.
    pub records_emitted: u64,
    /// Key groups reduced.
    pub groups: u64,
    /// Estimated encoded bytes this job sent on the shared mesh.
    pub wire_sent: u64,
    /// Estimated encoded bytes this job received on the shared mesh.
    pub wire_recv: u64,
}

impl WorkerDone {
    /// The wire form: `jobdone <id> rank=… crc=… …`.
    pub fn wire_line(&self) -> String {
        format!(
            "jobdone {} rank={} crc={} elapsed_us={} out_records={} out_bytes={} \
             records_emitted={} groups={} wire_sent={} wire_recv={}",
            self.job,
            self.rank,
            self.crc,
            self.elapsed_us,
            self.out_records,
            self.out_bytes,
            self.records_emitted,
            self.groups,
            self.wire_sent,
            self.wire_recv,
        )
    }

    /// Parses a [`wire_line`](Self::wire_line).
    pub fn parse(line: &str) -> Option<WorkerDone> {
        let mut it = line.split_whitespace();
        if it.next()? != "jobdone" {
            return None;
        }
        let mut done = WorkerDone {
            job: it.next()?.parse().ok()?,
            ..WorkerDone::default()
        };
        for field in it {
            let (key, value) = field.split_once('=')?;
            match key {
                "rank" => done.rank = value.parse().ok()?,
                "crc" => done.crc = value.parse().ok()?,
                "elapsed_us" => done.elapsed_us = value.parse().ok()?,
                "out_records" => done.out_records = value.parse().ok()?,
                "out_bytes" => done.out_bytes = value.parse().ok()?,
                "records_emitted" => done.records_emitted = value.parse().ok()?,
                "groups" => done.groups = value.parse().ok()?,
                "wire_sent" => done.wire_sent = value.parse().ok()?,
                "wire_recv" => done.wire_recv = value.parse().ok()?,
                _ => {}
            }
        }
        Some(done)
    }
}

/// Parses a worker's `jobfail <id> rank=<r> err=<esc>` line.
pub fn parse_jobfail(line: &str) -> Option<(u64, usize, String)> {
    let mut it = line.split_whitespace();
    if it.next()? != "jobfail" {
        return None;
    }
    let job = it.next()?.parse().ok()?;
    let mut rank = None;
    let mut err = None;
    for field in it {
        let (key, value) = field.split_once('=')?;
        match key {
            "rank" => rank = Some(value.parse().ok()?),
            "err" => err = Some(unesc(value)?),
            _ => {}
        }
    }
    Some((job, rank?, err?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn escaping_round_trips() {
        for s in ["plain", "with space", "a=b%c,d", "tab\there", ""] {
            assert_eq!(unesc(&esc(s)).as_deref(), Some(s));
        }
        assert!(unesc("%zz").is_none());
    }

    #[test]
    fn job_spec_round_trips_both_forms() {
        let spec = JobSpec {
            id: 9,
            tenant: "team a".into(),
            workload: "wordcount".into(),
            tasks: 4,
            bytes_per_task: 2048,
            seed: 7,
            o_parallelism: 2,
            out: Some("/tmp/out dir".into()),
            spill_dir: Some("/tmp/spill root".into()),
            spill_compress: true,
        };
        assert_eq!(JobSpec::parse_job(&spec.wire_line()).unwrap(), spec);
        let submitted = JobSpec::parse_submit(&spec.submit_line()).unwrap();
        assert_eq!(submitted.id, 0, "submit carries no id");
        assert_eq!(submitted.tenant, spec.tenant);
        assert_eq!(submitted.out, spec.out);
        assert_eq!(submitted.spill_dir, spec.spill_dir);
        assert!(submitted.spill_compress);
        assert!(JobSpec::parse_job("job x tenant=a workload=w tasks=1").is_none());
        assert!(
            JobSpec::parse_job("job 1 tenant=a workload=w tasks=0").is_none(),
            "zero tasks rejected"
        );
        // Unknown fields are skipped, not fatal (forward compatibility).
        assert!(JobSpec::parse_job("job 1 tenant=a workload=w tasks=1 priority=9").is_some());
    }

    #[test]
    fn worker_done_and_jobfail_round_trip() {
        let done = WorkerDone {
            job: 3,
            rank: 1,
            crc: 0xDEAD,
            elapsed_us: 12345,
            out_records: 10,
            out_bytes: 200,
            records_emitted: 40,
            groups: 9,
            wire_sent: 840,
            wire_recv: 630,
        };
        assert_eq!(WorkerDone::parse(&done.wire_line()).unwrap(), done);
        let line = format!("jobfail 7 rank=2 err={}", esc("mesh tore: rank 1 died"));
        assert_eq!(
            parse_jobfail(&line),
            Some((7, 2, "mesh tore: rank 1 died".to_string()))
        );
        assert!(parse_jobfail("jobfail 7 rank=2").is_none());
    }

    #[test]
    fn read_known_line_skips_unknown_verbs() {
        let text = "future-verb a b c\n\nwobble 1\njob 1 tenant=a workload=w tasks=2\n";
        let mut reader = Cursor::new(text);
        let mut line = String::new();
        let n = read_known_line(&mut reader, &mut line, |v| v == "job").unwrap();
        assert!(n > 0);
        assert!(line.starts_with("job 1"));
        // Stream end after the accepted line.
        assert_eq!(
            read_known_line(&mut reader, &mut line, |v| v == "job").unwrap(),
            0
        );
    }
}
