//! The resident worker: joins a coordinator once, then executes many
//! jobs over the same mesh until told to drain.
//!
//! This is the paper's "communication-ready resident process" made
//! literal: rendezvous, TCP mesh establishment, and thread-pool warmup
//! are paid once at `dmpid` start; every subsequent job costs only a
//! `job …` control line. Jobs run concurrently — each on its own thread
//! with its own [`Observer`] and its own [`JobMux`] route — so two
//! tenants' jobs interleave on the shared sockets without sharing any
//! runtime state.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use bytes::Bytes;

use dmpi_common::crc::crc32;
use dmpi_common::ser::RecordWriter;
use dmpi_common::{Error, FaultCause, FaultKind, Result};

use crate::config::JobConfig;
use crate::distrib::{run_job_on_mesh, RankTable};
use crate::observe::{ClockSync, Observer, TelemetrySink};
use crate::task::{Collector, GroupedValues};
use crate::transport::{establish_endpoint, TcpOptions};

use super::mesh::JobMux;
use super::protocol::{esc, read_known_line, JobSpec, WorkerDone};

/// A boxed O (map-side) function, as resolved from a job spec.
pub type BoxedOFn = Box<dyn Fn(usize, &[u8], &mut dyn Collector) + Send + Sync>;
/// A boxed A (reduce-side) function, as resolved from a job spec.
pub type BoxedAFn = Box<dyn Fn(&GroupedValues, &mut dyn Collector) + Send + Sync>;

/// A job the resolver has made runnable: deterministic inputs plus the
/// O and A functions. `sorted` mirrors the one-shot launcher's forced
/// sorted grouping — the catalogue resolver keeps it `true` so service
/// outputs stay byte-identical to `dmpirun` outputs of the same seeds.
pub struct PreparedJob {
    /// The full task table (every rank derives the same one).
    pub inputs: Vec<Bytes>,
    /// The O (map-side) function.
    pub o_fn: BoxedOFn,
    /// The A (reduce-side) function.
    pub a_fn: BoxedAFn,
    /// Whether grouping must be sorted (deterministic output order).
    pub sorted: bool,
}

/// Turns a [`JobSpec`] into a runnable job. The trait keeps
/// `datampi::service` free of any workload-catalogue dependency — the
/// `dmpid` binary injects the catalogue from `dmpi_workloads`, tests
/// inject tiny closures.
pub trait JobResolver: Send + Sync {
    /// Resolves `spec` or explains why it cannot run (unknown workload,
    /// bad parameters). Called on the job's own thread.
    fn prepare(&self, spec: &JobSpec) -> Result<PreparedJob>;
}

fn service_fault(detail: String) -> Error {
    Error::fault(FaultCause::new(FaultKind::Transport, detail))
}

/// Everything a resident worker learned from its `join` handshake.
///
/// `control` stays a [`BufReader`] on purpose: the coordinator writes
/// dispatch lines right behind the `peers` table on the same socket, so
/// any bytes the handshake reads happened to buffer MUST remain
/// readable — unwrapping to the raw stream here would silently drop
/// already-buffered `job …` lines.
struct Session {
    rank: usize,
    table: RankTable,
    sync: ClockSync,
    control: BufReader<TcpStream>,
}

fn join_coordinator(coord: SocketAddr, port: u16, epoch: &Instant) -> Result<Session> {
    let now_us = || epoch.elapsed().as_micros() as u64;
    let stream = TcpStream::connect(coord)
        .map_err(|e| service_fault(format!("dial coordinator {coord}: {e}")))?;
    // Control lines are tiny and latency-bound (`jobdone` is on every
    // job's critical path): never let Nagle batch them.
    let _ = stream.set_nodelay(true);
    let mut writer = stream
        .try_clone()
        .map_err(|e| service_fault(format!("clone control stream: {e}")))?;
    let t0 = now_us();
    writeln!(writer, "join {port} {t0}").map_err(|e| service_fault(format!("send join: {e}")))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut sync = ClockSync::default();
    let mut rank: Option<usize> = None;
    let mut table: Option<RankTable> = None;
    // The handshake answers arrive in order (clock, rank, peers) but
    // tolerate reordering and — forward compatibility — unknown verbs.
    while table.is_none() {
        let n = read_known_line(&mut reader, &mut line, |v| {
            matches!(v, "clock" | "rank" | "peers")
        })
        .map_err(|e| service_fault(format!("read join reply: {e}")))?;
        if n == 0 {
            return Err(service_fault(
                "coordinator closed the stream mid-handshake".into(),
            ));
        }
        if let Some(t) = line.strip_prefix("clock ") {
            if let Ok(coord_now) = t.trim().parse::<u64>() {
                sync = ClockSync::from_exchange(t0, coord_now, now_us());
            }
        } else if let Some(rest) = line.strip_prefix("rank ") {
            rank = rest.split_whitespace().next().and_then(|r| r.parse().ok());
        } else {
            table = RankTable::parse(&line);
        }
    }
    let table = table.expect("loop exits with a table");
    let rank = rank.ok_or_else(|| service_fault("coordinator never assigned a rank".into()))?;
    if rank >= table.ranks() {
        return Err(service_fault(format!(
            "assigned rank {rank} outside table of {}",
            table.ranks()
        )));
    }
    Ok(Session {
        rank,
        table,
        sync,
        control: reader,
    })
}

/// Runs one dispatched job on its own thread: resolve, attach to the
/// mux, execute, write the partition, report. Every outcome produces
/// exactly one terminal line (`jobdone` or `jobfail`) on the control
/// stream, preceded by the job's final `jobtlm` telemetry frame on
/// success.
#[allow(clippy::too_many_arguments)]
fn run_one_job(
    spec: JobSpec,
    resolver: &dyn JobResolver,
    mux: &JobMux,
    control: &Mutex<TcpStream>,
    rank: usize,
    ranks: usize,
    sync: ClockSync,
) {
    let started = Instant::now();
    let outcome = (|| -> Result<(WorkerDone, String)> {
        let channels = mux.open_job(spec.id)?;
        let prepared = match resolver.prepare(&spec) {
            Ok(p) => p,
            Err(e) => {
                // Resolution failures are deterministic and symmetric
                // across ranks, but send this job's EOFs anyway so a
                // peer that somehow did start never hangs waiting on us.
                for s in &channels.senders {
                    s.send(crate::comm::Frame::Eof { from_rank: rank });
                }
                return Err(e);
            }
        };
        let observer = Observer::new();
        let mut config = JobConfig::new(ranks)
            .with_o_parallelism(spec.o_parallelism.max(1))
            .with_sorted_grouping(prepared.sorted)
            .with_observer(observer.clone());
        // Disk-backed spills live in a per-job subdirectory so one
        // resident worker can run many jobs over a shared spill root;
        // the whole subtree is removed on every exit path below.
        let spill_dir = spec
            .spill_dir
            .as_ref()
            .map(|dir| std::path::Path::new(dir).join(format!("job-{}", spec.id)));
        if let Some(dir) = &spill_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| service_fault(format!("create {}: {e}", dir.display())))?;
            config = config.with_spill_dir(dir.clone());
        }
        if spec.spill_compress {
            config = config.with_spill_compression(crate::WireCompression::Lz4);
        }
        let wire_handle = Arc::clone(&channels.wire);
        let result = run_job_on_mesh(
            &config,
            rank,
            ranks,
            channels.senders,
            channels.receiver,
            &prepared.inputs,
            prepared.o_fn,
            prepared.a_fn,
        );
        mux.finish_job(spec.id);
        // The store's run-file guards already deleted every sealed run
        // they owned; this sweeps the (now empty, or crash-littered)
        // job subdirectory itself, on failure as well as success.
        if let Some(dir) = &spill_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
        let (partition, stats) = result?;
        let wire = wire_handle.snapshot();
        observer.registry().add_wire_stats(&wire);

        let mut writer = RecordWriter::new();
        for rec in partition.iter() {
            writer.write(rec);
        }
        let framed = writer.into_bytes();
        let crc = crc32(&framed);
        if let Some(dir) = &spec.out {
            let dir = std::path::Path::new(dir);
            std::fs::create_dir_all(dir)
                .map_err(|e| service_fault(format!("create {}: {e}", dir.display())))?;
            let path = dir.join(format!("part-{rank:05}"));
            std::fs::write(&path, &framed)
                .map_err(|e| service_fault(format!("write {}: {e}", path.display())))?;
        }
        let frame = TelemetrySink::new(observer, rank as u32, sync).next_frame(true);
        let done = WorkerDone {
            job: spec.id,
            rank,
            crc,
            elapsed_us: started.elapsed().as_micros() as u64,
            out_records: partition.len() as u64,
            out_bytes: framed.len() as u64,
            records_emitted: stats.records_emitted,
            groups: stats.groups,
            wire_sent: wire.bytes_sent,
            wire_recv: wire.bytes_received,
        };
        Ok((done, frame.wire_line()))
    })();
    let mut stream = control.lock().expect("control stream lock");
    match outcome {
        Ok((done, tlm_line)) => {
            let _ = writeln!(&mut *stream, "jobtlm {} {tlm_line}", spec.id);
            let _ = writeln!(&mut *stream, "{}", done.wire_line());
        }
        Err(e) => {
            mux.finish_job(spec.id);
            let _ = writeln!(
                &mut *stream,
                "jobfail {} rank={rank} err={}",
                spec.id,
                esc(&e.to_string())
            );
        }
    }
}

/// The `dmpid` worker main: binds a data listener, joins `coord`,
/// builds the mesh once, then executes every dispatched job until the
/// coordinator sends `drain` (or closes the stream). Drain is graceful:
/// running jobs finish and report before the worker sends `bye` and
/// tears its mesh attachment down.
pub fn run_resident_worker(coord: SocketAddr, resolver: Arc<dyn JobResolver>) -> Result<()> {
    let epoch = Instant::now();
    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| service_fault(format!("bind data listener: {e}")))?;
    let port = listener
        .local_addr()
        .map_err(|e| service_fault(format!("data listener addr: {e}")))?
        .port();
    let session = join_coordinator(coord, port, &epoch)?;
    let rank = session.rank;
    let ranks = session.table.ranks();
    let endpoint =
        establish_endpoint(rank, listener, &session.table.peers, &TcpOptions::default())?;
    let mux = JobMux::new(endpoint);

    let control_writer =
        Arc::new(Mutex::new(session.control.get_ref().try_clone().map_err(
            |e| service_fault(format!("clone control stream: {e}")),
        )?));
    let mut reader = session.control;
    let mut line = String::new();
    let mut jobs: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut saw_drain = false;
    loop {
        let n = read_known_line(&mut reader, &mut line, |v| matches!(v, "job" | "drain"))
            .map_err(|e| service_fault(format!("rank {rank}: read dispatch: {e}")))?;
        if n == 0 {
            // Coordinator vanished: finish what is running, skip `bye`.
            break;
        }
        if line.starts_with("drain") {
            saw_drain = true;
            break;
        }
        let Some(spec) = JobSpec::parse_job(&line) else {
            // A malformed dispatch is the coordinator's bug; report it
            // if the id is recoverable, otherwise skip the line.
            let id = line
                .split_whitespace()
                .nth(1)
                .and_then(|t| t.parse::<u64>().ok());
            if let Some(id) = id {
                let mut s = control_writer.lock().expect("control stream lock");
                let _ = writeln!(
                    &mut *s,
                    "jobfail {id} rank={rank} err={}",
                    esc("malformed job line")
                );
            }
            continue;
        };
        let mux = Arc::clone(&mux);
        let resolver = Arc::clone(&resolver);
        let control = Arc::clone(&control_writer);
        let sync = session.sync;
        jobs.push(std::thread::spawn(move || {
            run_one_job(spec, resolver.as_ref(), &mux, &control, rank, ranks, sync);
        }));
    }
    for handle in jobs {
        let _ = handle.join();
    }
    if saw_drain {
        let mut s = control_writer.lock().expect("control stream lock");
        let _ = writeln!(&mut *s, "bye rank={rank}");
    }
    mux.close();
    Ok(())
}
