//! Straggler defense: progress tracking, speculative duplicate attempts,
//! and O-task work stealing.
//!
//! The paper's measurements assume a healthy cluster; this module is the
//! runtime's answer to the slow-node reality. Three cooperating pieces:
//!
//! * a [`ProgressBoard`] every rank reports per-task heartbeats into
//!   (start / finish / abort). It doubles as the **first-writer-wins
//!   commit ledger**: exactly one attempt of each O task may commit its
//!   output, so duplicates can never double-emit;
//! * a deterministic **outlier detector** ([`ProgressBoard::claim_speculation`]):
//!   once enough tasks have completed to establish a median duration, an
//!   inflight task lagging past `max(slow_factor × median, min_lag)` is
//!   eligible for one speculative duplicate. Ties are broken by a seeded
//!   splitmix64 hash, so the same run claims the same victims;
//! * [`TaskQueues`] — the split dispenser. `Dynamic` is the classic
//!   shared deque; `Static` pins task *t* to rank `t % ranks` (the exact
//!   assignment `dmpirun` workers use), and with `work_stealing` enabled
//!   an idle rank steals not-yet-started splits from the *back* of other
//!   ranks' queues in a seeded order. Because every split is derived from
//!   `(seed, task)` alone, stealing moves no data and the A-side
//!   content-sorted output stays byte-identical to the static schedule.
//!
//! Commit rules (documented in DESIGN.md §12): an attempt runs the user's
//! O function into a capture buffer *without* touching the interconnect,
//! then calls [`ProgressBoard::try_commit`]. The single winner replays
//! its capture through a real [`crate::buffer::KvBuffer`] (producing
//! frames byte-identical to direct emission); every loser charges its
//! capture length to `wasted_bytes` and ships nothing.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dmpi_common::{Error, Result};
use parking_lot::Mutex;

/// Knobs of the speculative-execution layer. Disabled by default — the
/// board, capture indirection, and polling only exist when `enabled`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpeculationConfig {
    /// Master switch. When off, the runtime keeps its direct-emission
    /// hot path and none of the other fields matter.
    pub enabled: bool,
    /// An inflight task is an outlier once its elapsed time exceeds
    /// `slow_factor × median(completed durations)`.
    pub slow_factor: f64,
    /// Floor on the outlier threshold: tasks are never speculated before
    /// lagging at least this long, however fast the median is.
    pub min_lag: Duration,
    /// Completed-task observations required before the median is trusted.
    pub min_completed: usize,
    /// How long an idle rank sleeps between speculation scans, and the
    /// slice length for abortable injected delays.
    pub poll: Duration,
    /// Seed for deterministic victim tie-breaking.
    pub seed: u64,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig {
            enabled: false,
            slow_factor: 4.0,
            min_lag: Duration::from_millis(25),
            min_completed: 2,
            poll: Duration::from_millis(2),
            seed: 0xD05E,
        }
    }
}

impl SpeculationConfig {
    /// An enabled config with default detector tuning.
    pub fn enabled() -> Self {
        SpeculationConfig {
            enabled: true,
            ..Default::default()
        }
    }

    /// Builder: set the outlier factor.
    pub fn with_slow_factor(mut self, factor: f64) -> Self {
        self.slow_factor = factor;
        self
    }

    /// Builder: set the lag floor.
    pub fn with_min_lag(mut self, lag: Duration) -> Self {
        self.min_lag = lag;
        self
    }

    /// Builder: set the observation quorum.
    pub fn with_min_completed(mut self, n: usize) -> Self {
        self.min_completed = n;
        self
    }

    /// Builder: set the idle poll interval.
    pub fn with_poll(mut self, poll: Duration) -> Self {
        self.poll = poll;
        self
    }

    /// Builder: set the tie-break seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates invariants.
    pub fn validate(&self) -> Result<()> {
        if !self.enabled {
            return Ok(());
        }
        if self.slow_factor < 1.0 {
            return Err(Error::Config(
                "speculation slow_factor must be >= 1.0".into(),
            ));
        }
        if self.poll.is_zero() {
            return Err(Error::Config("speculation poll must be positive".into()));
        }
        if self.min_completed == 0 {
            return Err(Error::Config(
                "speculation min_completed must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// How O-task splits are assigned to ranks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scheduling {
    /// One shared queue; any free rank takes the next split. The runtime's
    /// historical behaviour and still the default.
    #[default]
    Dynamic,
    /// Task `t` is pinned to rank `t % ranks` — the assignment `dmpirun`
    /// workers compute locally. Models a static cluster schedule.
    Static {
        /// When `true`, an idle rank steals queued, not-yet-started
        /// splits from the back of other ranks' queues (seeded victim
        /// order). Output is byte-identical either way.
        work_stealing: bool,
    },
}

impl Scheduling {
    /// Stable name for CLI flags and artifact JSON.
    pub fn name(self) -> &'static str {
        match self {
            Scheduling::Dynamic => "dynamic",
            Scheduling::Static {
                work_stealing: false,
            } => "static",
            Scheduling::Static {
                work_stealing: true,
            } => "static+steal",
        }
    }
}

/// The split dispenser: shared deque (dynamic) or per-rank deques with
/// optional stealing (static).
pub struct TaskQueues {
    mode: Scheduling,
    shared: Mutex<VecDeque<usize>>,
    per_rank: Vec<Mutex<VecDeque<usize>>>,
    seed: u64,
}

/// One dispensed split: the task index and whether it was stolen from
/// another rank's queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dispensed {
    /// The O task (split index).
    pub task: usize,
    /// True when the split came off another rank's queue.
    pub stolen: bool,
}

impl TaskQueues {
    /// Builds the dispenser for `tasks` splits across `ranks` ranks.
    pub fn new(mode: Scheduling, tasks: usize, ranks: usize, seed: u64) -> Self {
        let mut shared = VecDeque::new();
        let mut per_rank: Vec<VecDeque<usize>> = vec![VecDeque::new(); ranks];
        match mode {
            Scheduling::Dynamic => shared.extend(0..tasks),
            Scheduling::Static { .. } => {
                for t in 0..tasks {
                    per_rank[t % ranks].push_back(t);
                }
            }
        }
        TaskQueues {
            mode,
            shared: Mutex::new(shared),
            per_rank: per_rank.into_iter().map(Mutex::new).collect(),
            seed,
        }
    }

    /// The scheduling mode this dispenser was built with.
    pub fn mode(&self) -> Scheduling {
        self.mode
    }

    /// Dispenses the next split for `rank`, or `None` when nothing is
    /// available to it (its own queue is drained and stealing is off or
    /// found every victim empty).
    pub fn next(&self, rank: usize) -> Option<Dispensed> {
        match self.mode {
            Scheduling::Dynamic => self.shared.lock().pop_front().map(|task| Dispensed {
                task,
                stolen: false,
            }),
            Scheduling::Static { work_stealing } => {
                if let Some(task) = self.per_rank[rank].lock().pop_front() {
                    return Some(Dispensed {
                        task,
                        stolen: false,
                    });
                }
                if !work_stealing {
                    return None;
                }
                for victim in self.steal_order(rank) {
                    if let Some(task) = self.per_rank[victim].lock().pop_back() {
                        return Some(Dispensed { task, stolen: true });
                    }
                }
                None
            }
        }
    }

    /// The seeded order in which `rank` visits victims: every other rank,
    /// sorted by `splitmix64(seed ⊕ rank·victim mix)` — deterministic per
    /// seed, decorrelated per thief so idle ranks fan out instead of
    /// dog-piling one victim.
    fn steal_order(&self, rank: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.per_rank.len()).filter(|&v| v != rank).collect();
        order.sort_by_key(|&v| {
            splitmix64(
                self.seed
                    .wrapping_add((rank as u64) << 32)
                    .wrapping_add(v as u64),
            )
        });
        order
    }
}

#[derive(Debug)]
struct Inflight {
    started: Instant,
    speculated: bool,
}

#[derive(Default)]
struct BoardInner {
    inflight: HashMap<usize, Inflight>,
    durations_us: Vec<u64>,
    committed: HashSet<usize>,
}

/// Shared progress board: heartbeat sink, outlier detector, and the
/// first-writer-wins commit ledger. Clone-cheap (`Arc` inside).
#[derive(Clone)]
pub struct ProgressBoard {
    inner: Arc<Mutex<BoardInner>>,
    cfg: SpeculationConfig,
    total: usize,
}

impl ProgressBoard {
    /// A board for a job of `total` O tasks.
    pub fn new(cfg: SpeculationConfig, total: usize) -> Self {
        ProgressBoard {
            inner: Arc::new(Mutex::new(BoardInner::default())),
            cfg,
            total,
        }
    }

    /// The configured idle-poll interval.
    pub fn poll(&self) -> Duration {
        self.cfg.poll
    }

    /// Heartbeat: the primary attempt of `task` has started.
    pub fn start(&self, task: usize) {
        self.inner.lock().inflight.insert(
            task,
            Inflight {
                started: Instant::now(),
                speculated: false,
            },
        );
    }

    /// First-writer-wins: returns `true` exactly once per task — for the
    /// attempt allowed to ship its output. Every later caller is a loser
    /// and must discard its capture.
    pub fn try_commit(&self, task: usize) -> bool {
        self.inner.lock().committed.insert(task)
    }

    /// True once some attempt of `task` has committed.
    pub fn is_committed(&self, task: usize) -> bool {
        self.inner.lock().committed.contains(&task)
    }

    /// Number of committed tasks.
    pub fn committed_count(&self) -> usize {
        self.inner.lock().committed.len()
    }

    /// True when every task of the job has committed — the ranks' exit
    /// condition while speculation is on.
    pub fn all_done(&self) -> bool {
        self.committed_count() >= self.total
    }

    /// Heartbeat: the primary attempt of `task` finished (win or lose);
    /// its duration feeds the median.
    pub fn finish(&self, task: usize) {
        let mut inner = self.inner.lock();
        if let Some(f) = inner.inflight.remove(&task) {
            let us = f.started.elapsed().as_micros() as u64;
            inner.durations_us.push(us);
        }
    }

    /// Heartbeat: the primary attempt of `task` aborted before running
    /// user code (a duplicate already committed). Not a duration sample —
    /// the task's true cost was paid elsewhere.
    pub fn abort(&self, task: usize) {
        self.inner.lock().inflight.remove(&task);
    }

    /// Number of tasks currently inflight (started, not finished).
    pub fn inflight_count(&self) -> usize {
        self.inner.lock().inflight.len()
    }

    /// The deterministic outlier detector. Returns a task to speculate
    /// on, at most once per task: the median of completed durations must
    /// rest on at least `min_completed` observations, the candidate must
    /// have been running longer than `max(slow_factor × median, min_lag)`,
    /// and ties break by seeded splitmix64 so identical runs claim
    /// identical victims.
    pub fn claim_speculation(&self) -> Option<usize> {
        let mut inner = self.inner.lock();
        if inner.durations_us.len() < self.cfg.min_completed {
            return None;
        }
        let mut sorted = inner.durations_us.clone();
        sorted.sort_unstable();
        let median_us = sorted[sorted.len() / 2];
        let threshold = Duration::from_micros((median_us as f64 * self.cfg.slow_factor) as u64)
            .max(self.cfg.min_lag);
        let seed = self.cfg.seed;
        let victim = inner
            .inflight
            .iter()
            .filter(|(_, f)| !f.speculated && f.started.elapsed() > threshold)
            .map(|(&t, _)| t)
            .min_by_key(|&t| splitmix64(seed ^ t as u64))?;
        inner
            .inflight
            .get_mut(&victim)
            .expect("victim chosen from inflight")
            .speculated = true;
        Some(victim)
    }
}

/// The splitmix64 finalizer (same constants as `fault.rs`).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validates() {
        SpeculationConfig::default().validate().unwrap();
        SpeculationConfig::enabled().validate().unwrap();
        assert!(SpeculationConfig::enabled()
            .with_slow_factor(0.5)
            .validate()
            .is_err());
        assert!(SpeculationConfig::enabled()
            .with_poll(Duration::ZERO)
            .validate()
            .is_err());
        assert!(SpeculationConfig::enabled()
            .with_min_completed(0)
            .validate()
            .is_err());
        // Disabled configs skip the knob checks entirely.
        SpeculationConfig::default()
            .with_slow_factor(0.0)
            .validate()
            .unwrap();
    }

    #[test]
    fn commit_is_first_writer_wins() {
        let board = ProgressBoard::new(SpeculationConfig::enabled(), 3);
        assert!(board.try_commit(1));
        assert!(!board.try_commit(1), "second writer must lose");
        assert!(board.is_committed(1));
        assert!(!board.is_committed(0));
        assert_eq!(board.committed_count(), 1);
        assert!(!board.all_done());
        assert!(board.try_commit(0));
        assert!(board.try_commit(2));
        assert!(board.all_done());
    }

    #[test]
    fn detector_requires_quorum_and_lag() {
        let cfg = SpeculationConfig::enabled()
            .with_min_completed(2)
            .with_min_lag(Duration::from_millis(5))
            .with_slow_factor(2.0);
        let board = ProgressBoard::new(cfg, 8);
        board.start(7);
        // No completed observations yet: never speculate.
        assert_eq!(board.claim_speculation(), None);
        // Two instant completions establish a ~zero median…
        for t in [0, 1] {
            board.start(t);
            board.finish(t);
        }
        // …but task 7 has not lagged past the min_lag floor yet.
        assert_eq!(board.claim_speculation(), None);
        std::thread::sleep(Duration::from_millis(8));
        assert_eq!(board.claim_speculation(), Some(7));
        // Each task is speculated at most once.
        assert_eq!(board.claim_speculation(), None);
        board.finish(7);
        assert_eq!(board.inflight_count(), 0);
    }

    #[test]
    fn detector_victim_choice_is_seeded_and_deterministic() {
        let pick = |seed: u64| {
            let cfg = SpeculationConfig::enabled()
                .with_min_completed(1)
                .with_min_lag(Duration::from_millis(1))
                .with_seed(seed);
            let board = ProgressBoard::new(cfg, 8);
            board.start(3);
            board.start(5);
            board.start(6);
            board.start(0);
            board.finish(0);
            std::thread::sleep(Duration::from_millis(3));
            board.claim_speculation().unwrap()
        };
        assert_eq!(pick(1), pick(1), "same seed, same victim");
        // The three lagging candidates are equally old; a seeded hash
        // picks among {3, 5, 6}.
        assert!([3usize, 5, 6].contains(&pick(42)));
    }

    #[test]
    fn abort_drops_inflight_without_a_duration_sample() {
        let cfg = SpeculationConfig::enabled().with_min_completed(1);
        let board = ProgressBoard::new(cfg, 2);
        board.start(0);
        board.abort(0);
        assert_eq!(board.inflight_count(), 0);
        // The abort contributed no observation, so the quorum of 1 is
        // still unmet.
        board.start(1);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(board.claim_speculation(), None);
    }

    #[test]
    fn dynamic_queue_dispenses_in_order_to_any_rank() {
        let q = TaskQueues::new(Scheduling::Dynamic, 4, 2, 0);
        let d = q.next(1).unwrap();
        assert_eq!((d.task, d.stolen), (0, false));
        assert_eq!(q.next(0).unwrap().task, 1);
        assert_eq!(q.next(1).unwrap().task, 2);
        assert_eq!(q.next(0).unwrap().task, 3);
        assert_eq!(q.next(0), None);
    }

    #[test]
    fn static_queue_pins_tasks_modulo_ranks() {
        let q = TaskQueues::new(
            Scheduling::Static {
                work_stealing: false,
            },
            6,
            2,
            0,
        );
        // Rank 0 owns 0, 2, 4; rank 1 owns 1, 3, 5; no crossover.
        for expect in [0usize, 2, 4] {
            let d = q.next(0).unwrap();
            assert_eq!((d.task, d.stolen), (expect, false));
        }
        assert_eq!(q.next(0), None, "no stealing: rank 0 is done");
        for expect in [1usize, 3, 5] {
            assert_eq!(q.next(1).unwrap().task, expect);
        }
        assert_eq!(q.next(1), None);
    }

    #[test]
    fn stealing_takes_from_the_back_of_a_victim() {
        let q = TaskQueues::new(
            Scheduling::Static {
                work_stealing: true,
            },
            6,
            2,
            7,
        );
        // Rank 0 drains its own queue…
        for _ in 0..3 {
            assert!(!q.next(0).unwrap().stolen);
        }
        // …then steals rank 1's *last* task, leaving the victim its
        // front-of-queue work.
        let d = q.next(0).unwrap();
        assert_eq!((d.task, d.stolen), (5, true));
        assert_eq!(q.next(1).unwrap().task, 1);
        assert_eq!(q.next(1).unwrap().task, 3);
        assert_eq!(q.next(1), None);
        assert_eq!(q.next(0), None);
    }

    #[test]
    fn scheduling_names_are_stable() {
        assert_eq!(Scheduling::Dynamic.name(), "dynamic");
        assert_eq!(
            Scheduling::Static {
                work_stealing: false
            }
            .name(),
            "static"
        );
        assert_eq!(
            Scheduling::Static {
                work_stealing: true
            }
            .name(),
            "static+steal"
        );
    }
}
