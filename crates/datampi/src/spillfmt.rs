//! Indexed, block-compressed spill-run format.
//!
//! A sealed spill run stops being an opaque framed byte stream and
//! becomes a real external-memory file format:
//!
//! ```text
//! +----------------+----------------+-- ... --+-----------------+---------+
//! | block 0 stored | block 1 stored |         | footer (index)  | trailer |
//! +----------------+----------------+-- ... --+-----------------+---------+
//!
//! block (stored):   framed records, LZ4-block-compressed when that is
//!                   smaller than the raw framing (kept-only-if-smaller,
//!                   so stored_len < raw_len  <=>  compressed)
//! footer:           varint flags (bit0 = key-sorted), varint block count,
//!                   then per block:
//!                   first_key last_key offset raw_len stored_len records crc
//!                   (keys length-prefixed; integers LEB128; crc over the
//!                   UNCOMPRESSED block bytes)
//! trailer (16 B):   footer_offset u64 LE | footer crc32 u32 LE | "SPL1"
//! ```
//!
//! The footer index is what turns the k-way merge from a full scan into a
//! seekable one: a reader knows every block's key range before touching
//! its bytes, so blocks outside the consumer's key range are *skipped* —
//! never read, never decompressed — and a checkpointed merge can resume
//! from a block boundary instead of re-reading the run. Integrity is a
//! CRC-32 (slicing-by-8, [`dmpi_common::crc`]) over the uncompressed
//! bytes of each block, checked after decompression and **before** any
//! record decode, plus a CRC over the footer itself.
//!
//! Runs live either in memory ([`RunStorage::Mem`], the default for
//! small jobs) or in a file under a configurable spill directory
//! ([`RunStorage::File`]); the format is byte-identical in both, so the
//! merge is oblivious to where a run lives. Disk-backed runs are
//! reference-counted and self-deleting: the file is removed when the
//! last [`SealedRun`] clone drops, which covers failed and elastic
//! attempts without coordinator bookkeeping.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use dmpi_common::crc::crc32;
use dmpi_common::{ser, varint, Error, Record, Result};

/// Default block budget: big enough that per-block overhead (index entry,
/// CRC, LZ4 token stream) is noise, small enough that a point lookup
/// decompresses a few tens of KiB, not a whole run.
pub const DEFAULT_SPILL_BLOCK_BYTES: usize = 64 * 1024;

/// Fixed trailer length: `footer_offset u64 | footer_crc u32 | magic u32`.
pub const TRAILER_LEN: usize = 16;

/// Trailer magic, `"SPL1"` little-endian.
pub const RUN_MAGIC: u32 = u32::from_le_bytes(*b"SPL1");

/// Footer flag bit: the run's records are key-sorted (merge/seek-able).
const FLAG_SORTED: u64 = 1;

/// How sealed runs are produced: destination, compression, block budget.
#[derive(Clone, Debug)]
pub struct SpillConfig {
    /// Spill directory; `None` keeps runs as in-memory images (the
    /// default, right for jobs whose spill volume fits comfortably in
    /// RAM).
    pub dir: Option<PathBuf>,
    /// LZ4-compress blocks (kept only when smaller than the raw bytes).
    pub compress: bool,
    /// Per-block raw-byte budget; a block closes once it reaches this.
    pub block_bytes: usize,
    /// Filename tag for disk runs: `{dir}/{tag}-{seq}.spill`. The
    /// runtime tags runs per rank and attempt so concurrent ranks and
    /// elastic retries never collide.
    pub tag: String,
}

impl Default for SpillConfig {
    fn default() -> Self {
        SpillConfig {
            dir: None,
            compress: false,
            block_bytes: DEFAULT_SPILL_BLOCK_BYTES,
            tag: "run".to_string(),
        }
    }
}

impl SpillConfig {
    /// Builder: spill runs to files under `dir`.
    pub fn with_dir(mut self, dir: PathBuf) -> Self {
        self.dir = Some(dir);
        self
    }

    /// Builder: LZ4 block compression on/off.
    pub fn with_compression(mut self, on: bool) -> Self {
        self.compress = on;
        self
    }

    /// Builder: per-block raw-byte budget.
    pub fn with_block_bytes(mut self, block_bytes: usize) -> Self {
        self.block_bytes = block_bytes.max(1);
        self
    }

    /// Builder: filename tag for disk runs.
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = tag.into();
        self
    }
}

/// One block's index entry, as recorded in the run footer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockMeta {
    /// Smallest key framed in the block.
    pub first_key: Bytes,
    /// Largest key framed in the block.
    pub last_key: Bytes,
    /// Byte offset of the block's stored bytes within the run.
    pub offset: u64,
    /// Uncompressed (framed-record) length.
    pub raw_len: u32,
    /// Stored length; `stored_len < raw_len` iff the block is
    /// LZ4-compressed (kept-only-if-smaller).
    pub stored_len: u32,
    /// Records framed in the block.
    pub records: u32,
    /// CRC-32 over the *uncompressed* block bytes.
    pub crc: u32,
}

impl BlockMeta {
    /// Whether the stored bytes are LZ4-compressed.
    pub fn is_compressed(&self) -> bool {
        self.stored_len < self.raw_len
    }
}

/// The decoded footer of one run: per-block index plus run totals.
#[derive(Clone, Debug, Default)]
pub struct RunIndex {
    /// Per-block entries, in file order (key-ascending when `sorted`).
    pub blocks: Vec<BlockMeta>,
    /// The run's records are key-sorted (block key ranges are disjoint
    /// and ascending, enabling binary search and early exit).
    pub sorted: bool,
    /// Total uncompressed block bytes.
    pub raw_bytes: u64,
    /// Total stored block bytes (post-compression).
    pub stored_bytes: u64,
    /// Total records.
    pub records: u64,
    /// Full image length: blocks + footer + trailer.
    pub file_len: u64,
}

fn write_key(out: &mut Vec<u8>, key: &[u8]) {
    varint::write_u64(out, key.len() as u64);
    out.extend_from_slice(key);
}

fn read_key(buf: &[u8]) -> Result<(Bytes, usize)> {
    let (len, header) = varint::read_u64(buf)?;
    let len = usize::try_from(len).map_err(|_| Error::corrupt("key length overflow"))?;
    let end = header
        .checked_add(len)
        .ok_or_else(|| Error::corrupt("key length overflow"))?;
    if buf.len() < end {
        return Err(Error::corrupt("truncated footer key"));
    }
    Ok((Bytes::copy_from_slice(&buf[header..end]), end))
}

impl RunIndex {
    /// Serializes the footer (no trailer).
    pub fn encode_footer(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let flags = if self.sorted { FLAG_SORTED } else { 0 };
        varint::write_u64(&mut out, flags);
        varint::write_u64(&mut out, self.blocks.len() as u64);
        for b in &self.blocks {
            write_key(&mut out, &b.first_key);
            write_key(&mut out, &b.last_key);
            varint::write_u64(&mut out, b.offset);
            varint::write_u64(&mut out, b.raw_len as u64);
            varint::write_u64(&mut out, b.stored_len as u64);
            varint::write_u64(&mut out, b.records as u64);
            varint::write_u64(&mut out, b.crc as u64);
        }
        out
    }

    /// Decodes a footer previously produced by
    /// [`encode_footer`](Self::encode_footer). `file_len` is filled by
    /// the caller (it lives in the trailer, not the footer).
    pub fn decode_footer(buf: &[u8]) -> Result<RunIndex> {
        let read_u32 = |v: u64, what: &str| -> Result<u32> {
            u32::try_from(v).map_err(|_| Error::corrupt(format!("footer {what} overflow")))
        };
        let (flags, mut at) = varint::read_u64(buf)?;
        let (count, n) = varint::read_u64(&buf[at..])?;
        at += n;
        let count = usize::try_from(count).map_err(|_| Error::corrupt("block count overflow"))?;
        let mut index = RunIndex {
            blocks: Vec::with_capacity(count.min(buf.len())),
            sorted: flags & FLAG_SORTED != 0,
            ..RunIndex::default()
        };
        for _ in 0..count {
            let (first_key, n) = read_key(&buf[at..])?;
            at += n;
            let (last_key, n) = read_key(&buf[at..])?;
            at += n;
            let mut ints = [0u64; 5];
            for slot in &mut ints {
                let (v, n) = varint::read_u64(&buf[at..])?;
                at += n;
                *slot = v;
            }
            let meta = BlockMeta {
                first_key,
                last_key,
                offset: ints[0],
                raw_len: read_u32(ints[1], "raw_len")?,
                stored_len: read_u32(ints[2], "stored_len")?,
                records: read_u32(ints[3], "records")?,
                crc: read_u32(ints[4], "crc")?,
            };
            index.raw_bytes += meta.raw_len as u64;
            index.stored_bytes += meta.stored_len as u64;
            index.records += meta.records as u64;
            index.blocks.push(meta);
        }
        if at != buf.len() {
            return Err(Error::corrupt("trailing garbage after footer"));
        }
        Ok(index)
    }
}

/// Builds one run image block by block.
///
/// Records are framed (`varint klen | varint vlen | key | value`) into a
/// forming block; when the block reaches its raw-byte budget it is
/// CRC-summed, optionally LZ4-compressed (one reusable
/// [`lz4_flex::Compressor`] hash table for the whole run), and appended
/// to the image. Records never straddle blocks. The per-block key range
/// is tracked as a running min/max, so the index stays honest even for
/// arrival-order (hashed-mode) runs.
pub struct RunWriter {
    block_bytes: usize,
    compress: bool,
    image: Vec<u8>,
    raw: Vec<u8>,
    packed: Vec<u8>,
    compressor: lz4_flex::Compressor,
    first_key: Bytes,
    last_key: Bytes,
    block_records: u32,
    index: RunIndex,
}

impl RunWriter {
    /// A writer with the given per-block raw budget. `sorted` records the
    /// run-level ordering promise in the footer flags.
    pub fn new(block_bytes: usize, compress: bool, sorted: bool) -> Self {
        RunWriter {
            block_bytes: block_bytes.max(1),
            compress,
            image: Vec::new(),
            raw: Vec::new(),
            packed: Vec::new(),
            compressor: lz4_flex::Compressor::new(),
            first_key: Bytes::new(),
            last_key: Bytes::new(),
            block_records: 0,
            index: RunIndex {
                sorted,
                ..RunIndex::default()
            },
        }
    }

    /// Frames one record into the forming block, closing the block when
    /// it reaches the budget.
    pub fn push(&mut self, rec: &Record) {
        if self.block_records == 0 {
            self.first_key = rec.key.clone();
            self.last_key = rec.key.clone();
        } else {
            if rec.key < self.first_key {
                self.first_key = rec.key.clone();
            }
            if rec.key > self.last_key {
                self.last_key = rec.key.clone();
            }
        }
        ser::frame_record(&mut self.raw, rec);
        self.block_records += 1;
        if self.raw.len() >= self.block_bytes {
            self.flush_block();
        }
    }

    fn flush_block(&mut self) {
        if self.block_records == 0 {
            return;
        }
        let raw_len = self.raw.len() as u32;
        let crc = crc32(&self.raw);
        let stored: &[u8] = if self.compress {
            self.packed.clear();
            self.compressor.compress_into(&self.raw, &mut self.packed);
            if self.packed.len() < self.raw.len() {
                &self.packed
            } else {
                &self.raw
            }
        } else {
            &self.raw
        };
        let meta = BlockMeta {
            first_key: std::mem::take(&mut self.first_key),
            last_key: std::mem::take(&mut self.last_key),
            offset: self.image.len() as u64,
            raw_len,
            stored_len: stored.len() as u32,
            records: self.block_records,
            crc,
        };
        self.image.extend_from_slice(stored);
        self.index.raw_bytes += meta.raw_len as u64;
        self.index.stored_bytes += meta.stored_len as u64;
        self.index.records += meta.records as u64;
        self.index.blocks.push(meta);
        self.raw.clear();
        self.block_records = 0;
    }

    /// Closes the final block, appends footer and trailer, and returns
    /// the finished image plus its index.
    pub fn finish(mut self) -> (Vec<u8>, RunIndex) {
        self.flush_block();
        let footer_offset = self.image.len() as u64;
        let footer = self.index.encode_footer();
        let footer_crc = crc32(&footer);
        self.image.extend_from_slice(&footer);
        self.image.extend_from_slice(&footer_offset.to_le_bytes());
        self.image.extend_from_slice(&footer_crc.to_le_bytes());
        self.image.extend_from_slice(&RUN_MAGIC.to_le_bytes());
        self.index.file_len = self.image.len() as u64;
        (self.image, self.index)
    }
}

/// Parses trailer + footer out of a complete run image.
pub fn parse_image(image: &[u8]) -> Result<RunIndex> {
    if image.len() < TRAILER_LEN {
        return Err(Error::corrupt("run shorter than its trailer"));
    }
    let trailer = &image[image.len() - TRAILER_LEN..];
    let footer_end = image.len() - TRAILER_LEN;
    let mut index = parse_trailer_footer(trailer, |offset| {
        if offset > footer_end {
            return Err(Error::corrupt("footer span out of bounds"));
        }
        Ok(image[offset..footer_end].to_vec())
    })?;
    index.file_len = image.len() as u64;
    Ok(index)
}

/// Shared trailer validation: checks the magic, fetches the footer span
/// via `read_span(footer_offset)` (offset → end-of-footer), checks the
/// footer CRC, decodes.
fn parse_trailer_footer(
    trailer: &[u8],
    read_span: impl FnOnce(usize) -> Result<Vec<u8>>,
) -> Result<RunIndex> {
    let footer_offset = u64::from_le_bytes(trailer[0..8].try_into().expect("8-byte slice"));
    let footer_crc = u32::from_le_bytes(trailer[8..12].try_into().expect("4-byte slice"));
    let magic = u32::from_le_bytes(trailer[12..16].try_into().expect("4-byte slice"));
    if magic != RUN_MAGIC {
        return Err(Error::corrupt("bad run magic"));
    }
    let offset = usize::try_from(footer_offset).map_err(|_| Error::corrupt("footer offset"))?;
    let footer = read_span(offset)?;
    if crc32(&footer) != footer_crc {
        return Err(Error::corrupt("footer crc mismatch"));
    }
    RunIndex::decode_footer(&footer)
}

/// Where a sealed run's bytes live.
#[derive(Clone, Debug)]
pub enum RunStorage {
    /// In-memory image (blocks + footer + trailer), the small-job path.
    Mem(Bytes),
    /// Disk file owned by this run, deleted when the last handle drops.
    File(Arc<RunFileGuard>),
    /// Disk file opened read-only via [`SealedRun::load`]; never deleted
    /// by the run (whoever created the file keeps deletion rights).
    LoadedFile(PathBuf),
}

/// RAII owner of a run file: removes the file when the last
/// [`SealedRun`] clone referencing it drops. Checkpoints hold clones, so
/// a run a restart may need outlives the store that sealed it; failed
/// and elastic attempts clean themselves up the moment nothing can use
/// their runs any more.
#[derive(Debug)]
pub struct RunFileGuard {
    path: PathBuf,
}

impl RunFileGuard {
    /// The run file's path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for RunFileGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// An inclusive key interval for range-restricted reads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyRange {
    /// Smallest key in range (inclusive).
    pub lo: Bytes,
    /// Largest key in range (inclusive).
    pub hi: Bytes,
}

impl KeyRange {
    /// A range over `[lo, hi]`, both inclusive.
    pub fn new(lo: impl Into<Bytes>, hi: impl Into<Bytes>) -> Self {
        KeyRange {
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// Whether `key` falls inside the range.
    pub fn contains(&self, key: &[u8]) -> bool {
        *key >= *self.lo && *key <= *self.hi
    }
}

/// Shared read-side counters: how many blocks a merge actually touched
/// versus skipped via the index, stored bytes read off disk/memory, raw
/// bytes decompressed, and non-sequential block loads (seeks). Cloneable
/// handle over atomics so every reader of a partition feeds one tally.
#[derive(Clone, Debug, Default)]
pub struct SpillReadCounters {
    inner: Arc<CounterCells>,
}

#[derive(Debug, Default)]
struct CounterCells {
    blocks_read: AtomicU64,
    blocks_skipped: AtomicU64,
    stored_bytes_read: AtomicU64,
    raw_bytes_decoded: AtomicU64,
    seeks: AtomicU64,
}

/// A point-in-time copy of [`SpillReadCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillReadSnapshot {
    /// Blocks loaded and decoded.
    pub blocks_read: u64,
    /// Blocks skipped whole via the footer index (range or resume).
    pub blocks_skipped: u64,
    /// Stored (possibly compressed) bytes read.
    pub stored_bytes_read: u64,
    /// Uncompressed bytes produced by block decode.
    pub raw_bytes_decoded: u64,
    /// Non-sequential block loads.
    pub seeks: u64,
}

impl SpillReadCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the current tallies.
    pub fn snapshot(&self) -> SpillReadSnapshot {
        let c = &self.inner;
        SpillReadSnapshot {
            blocks_read: c.blocks_read.load(Ordering::Relaxed),
            blocks_skipped: c.blocks_skipped.load(Ordering::Relaxed),
            stored_bytes_read: c.stored_bytes_read.load(Ordering::Relaxed),
            raw_bytes_decoded: c.raw_bytes_decoded.load(Ordering::Relaxed),
            seeks: c.seeks.load(Ordering::Relaxed),
        }
    }

    fn block_read(&self, stored: u64, raw: u64) {
        self.inner.blocks_read.fetch_add(1, Ordering::Relaxed);
        self.inner
            .stored_bytes_read
            .fetch_add(stored, Ordering::Relaxed);
        self.inner
            .raw_bytes_decoded
            .fetch_add(raw, Ordering::Relaxed);
    }

    fn blocks_skipped(&self, n: u64) {
        self.inner.blocks_skipped.fetch_add(n, Ordering::Relaxed);
    }

    fn seek(&self) {
        self.inner.seeks.fetch_add(1, Ordering::Relaxed);
    }
}

/// A sealed spill run: its storage plus the decoded footer index. Clones
/// share both (the index via `Arc`, disk files via [`RunFileGuard`]), so
/// handing a run to a checkpoint costs a refcount, not a copy.
#[derive(Clone, Debug)]
pub struct SealedRun {
    storage: RunStorage,
    index: Arc<RunIndex>,
}

impl SealedRun {
    /// Wraps a finished in-memory image.
    pub fn mem(image: Vec<u8>, index: RunIndex) -> Self {
        SealedRun {
            storage: RunStorage::Mem(Bytes::from(image)),
            index: Arc::new(index),
        }
    }

    /// Writes a finished image to `path` (creating parent directories)
    /// and returns a disk-backed run that deletes the file when its last
    /// handle drops.
    pub fn to_file(image: &[u8], index: RunIndex, path: PathBuf) -> Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| Error::Config(format!("spill dir {}: {e}", parent.display())))?;
        }
        let mut f = std::fs::File::create(&path)
            .map_err(|e| Error::Config(format!("spill file {}: {e}", path.display())))?;
        f.write_all(image)
            .map_err(|e| Error::Config(format!("spill write {}: {e}", path.display())))?;
        Ok(SealedRun {
            storage: RunStorage::File(Arc::new(RunFileGuard { path })),
            index: Arc::new(index),
        })
    }

    /// Opens an existing run file, reading only its trailer and footer
    /// (not the blocks). The returned run does **not** own the file
    /// for deletion purposes — `load` is a reader's entry point.
    pub fn load(path: PathBuf) -> Result<Self> {
        let mut f = std::fs::File::open(&path)
            .map_err(|e| Error::Config(format!("spill file {}: {e}", path.display())))?;
        let len = f
            .seek(SeekFrom::End(0))
            .map_err(|e| Error::corrupt(format!("seek: {e}")))?;
        if (len as usize) < TRAILER_LEN {
            return Err(Error::corrupt("run file shorter than its trailer"));
        }
        let mut trailer = [0u8; TRAILER_LEN];
        f.seek(SeekFrom::End(-(TRAILER_LEN as i64)))
            .map_err(|e| Error::corrupt(format!("seek: {e}")))?;
        f.read_exact(&mut trailer)
            .map_err(|e| Error::corrupt(format!("read trailer: {e}")))?;
        let file_len = len;
        let mut index = parse_trailer_footer(&trailer, |offset| {
            let footer_len = (file_len as usize)
                .checked_sub(TRAILER_LEN)
                .and_then(|e| e.checked_sub(offset))
                .ok_or_else(|| Error::corrupt("footer span out of bounds"))?;
            let mut footer = vec![0u8; footer_len];
            f.seek(SeekFrom::Start(offset as u64))
                .map_err(|e| Error::corrupt(format!("seek: {e}")))?;
            f.read_exact(&mut footer)
                .map_err(|e| Error::corrupt(format!("read footer: {e}")))?;
            Ok(footer)
        })?;
        index.file_len = file_len;
        Ok(SealedRun {
            storage: RunStorage::LoadedFile(path),
            index: Arc::new(index),
        })
    }

    /// The run's footer index.
    pub fn index(&self) -> &RunIndex {
        &self.index
    }

    /// Whether the run's bytes live on disk.
    pub fn is_disk(&self) -> bool {
        !matches!(self.storage, RunStorage::Mem(_))
    }

    /// Opens a sequential reader over the whole run, optionally
    /// restricted to `range` (whole blocks outside the range are skipped
    /// via the index, without being read).
    pub fn open(&self, counters: &SpillReadCounters, range: Option<KeyRange>) -> Result<RunReader> {
        self.open_at(0, None, counters, range)
    }

    /// Opens a reader positioned at `start_block`, additionally skipping
    /// any record whose key is `<= skip_through` — the mid-run resume
    /// entry point: a checkpointed merge restarts at the block boundary
    /// it recorded and filters the records its last completed group
    /// already consumed.
    pub fn open_at(
        &self,
        start_block: usize,
        skip_through: Option<Bytes>,
        counters: &SpillReadCounters,
        range: Option<KeyRange>,
    ) -> Result<RunReader> {
        let backing = match &self.storage {
            RunStorage::Mem(image) => Backing::Mem(image.clone()),
            RunStorage::File(guard) => Backing::File(
                std::fs::File::open(&guard.path)
                    .map_err(|e| Error::corrupt(format!("open spill run: {e}")))?,
            ),
            RunStorage::LoadedFile(path) => Backing::File(
                std::fs::File::open(path)
                    .map_err(|e| Error::corrupt(format!("open spill run: {e}")))?,
            ),
        };
        let mut next_block = start_block.min(self.index.blocks.len());
        counters.blocks_skipped(next_block as u64);
        // Range + sorted run: binary-search the first candidate block so
        // the scan never visits index entries below the range either.
        if let (Some(r), true) = (&range, self.index.sorted) {
            let lo = self
                .index
                .blocks
                .partition_point(|b| b.last_key < r.lo)
                .max(next_block);
            counters.blocks_skipped((lo - next_block) as u64);
            next_block = lo;
        }
        Ok(RunReader {
            backing,
            index: Arc::clone(&self.index),
            counters: counters.clone(),
            range,
            skip_through,
            next_block,
            cur_block: usize::MAX,
            expected_pos: u64::MAX,
            block: Bytes::new(),
            offset: 0,
            scratch: Vec::new(),
            done: false,
        })
    }

    /// Indexed point lookup: the values stored under `key`, in run
    /// order. Requires a key-sorted run.
    pub fn lookup(&self, key: &[u8], counters: &SpillReadCounters) -> Result<Vec<Bytes>> {
        let range = KeyRange::new(Bytes::copy_from_slice(key), Bytes::copy_from_slice(key));
        Ok(self
            .scan_range(&range, counters)?
            .into_iter()
            .map(|r| r.value)
            .collect())
    }

    /// Indexed range scan: every record with `lo <= key <= hi`, in run
    /// order. Requires a key-sorted run.
    pub fn scan_range(
        &self,
        range: &KeyRange,
        counters: &SpillReadCounters,
    ) -> Result<Vec<Record>> {
        if !self.index.sorted {
            return Err(Error::InvalidState(
                "indexed lookup requires a key-sorted run".into(),
            ));
        }
        let mut reader = self.open(counters, Some(range.clone()))?;
        let mut out = Vec::new();
        while let Some(rec) = reader.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }
}

/// A streaming, index-driven reader over one sealed run.
///
/// Blocks load lazily: the footer index decides whether a block is
/// skipped (key range disjoint from the reader's restriction), and only
/// loaded blocks are read, CRC-checked and (if compressed) decompressed
/// — into a fresh refcounted buffer whose records are zero-copy slices,
/// with a pooled scratch buffer staging the stored bytes of disk reads.
pub struct RunReader {
    backing: Backing,
    index: Arc<RunIndex>,
    counters: SpillReadCounters,
    range: Option<KeyRange>,
    /// Resume filter: skip records with key `<= skip_through`.
    skip_through: Option<Bytes>,
    next_block: usize,
    /// Block the most recently returned record came from (`usize::MAX`
    /// before the first read).
    cur_block: usize,
    /// File position a sequential next read would start at; a block load
    /// elsewhere counts as a seek.
    expected_pos: u64,
    block: Bytes,
    offset: usize,
    scratch: Vec<u8>,
    done: bool,
}

enum Backing {
    Mem(Bytes),
    File(std::fs::File),
}

impl RunReader {
    /// Decodes the next in-range record, loading (and index-skipping)
    /// blocks as needed. `None` once the run (or range) is exhausted.
    pub fn next_record(&mut self) -> Result<Option<Record>> {
        loop {
            while self.offset < self.block.len() {
                let (rec, n) = ser::read_framed_record_shared(&self.block, self.offset)?;
                self.offset += n;
                if let Some(bound) = &self.skip_through {
                    if rec.key <= *bound {
                        continue;
                    }
                    self.skip_through = None;
                }
                if let Some(r) = &self.range {
                    if rec.key < r.lo {
                        continue;
                    }
                    if rec.key > r.hi {
                        if self.index.sorted {
                            self.done = true;
                            self.block = Bytes::new();
                            return Ok(None);
                        }
                        continue;
                    }
                }
                return Ok(Some(rec));
            }
            if !self.load_next_block()? {
                return Ok(None);
            }
        }
    }

    /// Advances to the next block the index says is worth reading.
    /// Returns `false` when the run (or range) is exhausted.
    fn load_next_block(&mut self) -> Result<bool> {
        loop {
            if self.done || self.next_block >= self.index.blocks.len() {
                self.done = true;
                return Ok(false);
            }
            let meta = self.index.blocks[self.next_block].clone();
            if let Some(r) = &self.range {
                if meta.last_key < r.lo {
                    self.counters.blocks_skipped(1);
                    self.next_block += 1;
                    continue;
                }
                if self.index.sorted && meta.first_key > r.hi {
                    self.done = true;
                    return Ok(false);
                }
                if !self.index.sorted && meta.first_key > r.hi {
                    self.counters.blocks_skipped(1);
                    self.next_block += 1;
                    continue;
                }
            }
            if let Some(bound) = &self.skip_through {
                if meta.last_key <= *bound {
                    self.counters.blocks_skipped(1);
                    self.next_block += 1;
                    continue;
                }
            }
            self.load_block(&meta)?;
            self.cur_block = self.next_block;
            self.next_block += 1;
            return Ok(true);
        }
    }

    fn load_block(&mut self, meta: &BlockMeta) -> Result<()> {
        if meta.offset != self.expected_pos && self.expected_pos != u64::MAX {
            self.counters.seek();
        } else if self.expected_pos == u64::MAX && meta.offset != 0 {
            // First read that doesn't start at the run head is a seek
            // too (resume / range fast-forward).
            self.counters.seek();
        }
        let stored_len = meta.stored_len as usize;
        let raw_len = meta.raw_len as usize;
        let offset = usize::try_from(meta.offset).map_err(|_| Error::corrupt("block offset"))?;
        let raw: Bytes = match &mut self.backing {
            Backing::Mem(image) => {
                let end = offset
                    .checked_add(stored_len)
                    .filter(|&e| e <= image.len())
                    .ok_or_else(|| Error::corrupt("block span out of bounds"))?;
                let stored = image.slice(offset..end);
                if meta.is_compressed() {
                    let mut raw = Vec::with_capacity(raw_len);
                    lz4_flex::decompress_into(&stored, raw_len, &mut raw)
                        .map_err(|e| Error::corrupt(format!("spill block decompress: {e}")))?;
                    Bytes::from(raw)
                } else {
                    stored
                }
            }
            Backing::File(f) => {
                self.scratch.clear();
                self.scratch.resize(stored_len, 0);
                f.seek(SeekFrom::Start(meta.offset))
                    .map_err(|e| Error::corrupt(format!("spill seek: {e}")))?;
                f.read_exact(&mut self.scratch)
                    .map_err(|e| Error::corrupt(format!("spill read: {e}")))?;
                if meta.is_compressed() {
                    let mut raw = Vec::with_capacity(raw_len);
                    lz4_flex::decompress_into(&self.scratch, raw_len, &mut raw)
                        .map_err(|e| Error::corrupt(format!("spill block decompress: {e}")))?;
                    Bytes::from(raw)
                } else {
                    Bytes::copy_from_slice(&self.scratch)
                }
            }
        };
        // Integrity gate: the CRC covers the uncompressed bytes and is
        // checked before any record decode touches them.
        if raw.len() != raw_len || crc32(&raw) != meta.crc {
            return Err(Error::corrupt(format!(
                "spill block crc mismatch at offset {}",
                meta.offset
            )));
        }
        self.counters.block_read(stored_len as u64, raw_len as u64);
        self.expected_pos = meta.offset + stored_len as u64;
        self.block = raw;
        self.offset = 0;
        Ok(())
    }

    /// The resume frontier: the block the reader's most recent record
    /// came from, or one past the last block when exhausted. A merge
    /// checkpointing at a group boundary records this per run; restart
    /// re-reads only blocks at or after it.
    pub fn frontier_block(&self) -> usize {
        if self.done {
            self.index.blocks.len()
        } else if self.cur_block == usize::MAX {
            self.next_block
        } else {
            self.cur_block
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(k: &str, v: &str) -> Record {
        Record::from_strs(k, v)
    }

    fn build_run(records: &[Record], block_bytes: usize, compress: bool) -> (Vec<u8>, RunIndex) {
        let mut w = RunWriter::new(block_bytes, compress, true);
        for r in records {
            w.push(r);
        }
        w.finish()
    }

    fn sorted_records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                rec(
                    &format!("key{i:05}"),
                    &format!("value-{i}-{}", "x".repeat(i % 40)),
                )
            })
            .collect()
    }

    fn read_all(run: &SealedRun, counters: &SpillReadCounters) -> Vec<Record> {
        let mut reader = run.open(counters, None).unwrap();
        let mut out = Vec::new();
        while let Some(r) = reader.next_record().unwrap() {
            out.push(r);
        }
        out
    }

    #[test]
    fn mem_round_trip_across_block_sizes() {
        let records = sorted_records(300);
        for block_bytes in [1usize, 17, 64, 1024, 1 << 20] {
            for compress in [false, true] {
                let (image, index) = build_run(&records, block_bytes, compress);
                assert_eq!(index.records, 300);
                assert_eq!(index.file_len as usize, image.len());
                let run = SealedRun::mem(image, index);
                let counters = SpillReadCounters::new();
                assert_eq!(read_all(&run, &counters), records);
                let snap = counters.snapshot();
                assert_eq!(snap.blocks_read, run.index().blocks.len() as u64);
                assert_eq!(snap.raw_bytes_decoded, run.index().raw_bytes);
            }
        }
    }

    #[test]
    fn compression_shrinks_compressible_blocks() {
        let records: Vec<Record> = (0..200)
            .map(|i| rec(&format!("k{i:04}"), "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"))
            .collect();
        let (_, raw_index) = build_run(&records, 4096, false);
        let (_, lz4_index) = build_run(&records, 4096, true);
        assert_eq!(raw_index.stored_bytes, raw_index.raw_bytes);
        assert!(lz4_index.stored_bytes < lz4_index.raw_bytes);
        assert!(lz4_index.blocks.iter().all(BlockMeta::is_compressed));
    }

    #[test]
    fn file_round_trip_and_guard_deletes() {
        let dir = std::env::temp_dir().join(format!("dmpi-spillfmt-{}", std::process::id()));
        let records = sorted_records(100);
        let (image, index) = build_run(&records, 512, true);
        let path = dir.join("t-0.spill");
        let run = SealedRun::to_file(&image, index, path.clone()).unwrap();
        assert!(run.is_disk());
        assert!(path.exists());
        let counters = SpillReadCounters::new();
        assert_eq!(read_all(&run, &counters), records);
        // Loading from disk reparses the same index.
        let loaded = SealedRun::load(path.clone()).unwrap();
        assert_eq!(loaded.index().blocks.len(), run.index().blocks.len());
        assert_eq!(read_all(&loaded, &SpillReadCounters::new()), records);
        drop(run);
        assert!(!path.exists(), "guard must delete the run file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_block_fails_before_record_decode() {
        let records = sorted_records(150);
        for compress in [false, true] {
            let (mut image, index) = build_run(&records, 256, compress);
            // Flip a byte inside the first block's stored span.
            let target = (index.blocks[0].offset + 1) as usize;
            image[target] ^= 0x40;
            let run = SealedRun::mem(image, index);
            let counters = SpillReadCounters::new();
            let mut reader = run.open(&counters, None).unwrap();
            let err = match reader.next_record() {
                Ok(Some(_)) => panic!("corrupt block must not yield records"),
                Ok(None) => panic!("corruption must surface as an error"),
                Err(e) => e,
            };
            let msg = format!("{err}");
            assert!(
                msg.contains("crc mismatch") || msg.contains("decompress"),
                "unexpected error: {msg}"
            );
        }
    }

    #[test]
    fn corrupt_footer_is_rejected() {
        let (mut image, _) = build_run(&sorted_records(10), 64, false);
        let at = image.len() - TRAILER_LEN - 1;
        image[at] ^= 1;
        assert!(parse_image(&image).is_err());
    }

    #[test]
    fn range_scan_skips_out_of_range_blocks() {
        let records = sorted_records(1000);
        let (image, index) = build_run(&records, 512, false);
        let total_blocks = index.blocks.len();
        assert!(total_blocks > 8, "need enough blocks to skip");
        let run = SealedRun::mem(image, index);
        let counters = SpillReadCounters::new();
        let range = KeyRange::new(&b"key00400"[..], &b"key00449"[..]);
        let mut reader = run.open(&counters, Some(range)).unwrap();
        let mut seen = Vec::new();
        while let Some(r) = reader.next_record().unwrap() {
            seen.push(r);
        }
        assert_eq!(seen, records[400..450].to_vec());
        let snap = counters.snapshot();
        assert!(
            snap.blocks_read < total_blocks as u64 / 2,
            "indexed skip must read fewer than half the blocks: read {} of {}",
            snap.blocks_read,
            total_blocks
        );
        assert!(snap.blocks_skipped > 0);
        assert!(snap.seeks >= 1, "range fast-forward counts as a seek");
    }

    #[test]
    fn point_lookup_finds_all_values() {
        let mut records = sorted_records(500);
        // Duplicate one key across a block boundary's worth of records.
        for i in 0..5 {
            records.insert(250, rec("key00250", &format!("dup{i}")));
        }
        let (image, index) = build_run(&records, 256, true);
        let run = SealedRun::mem(image, index);
        let counters = SpillReadCounters::new();
        let values = run.lookup(b"key00250", &counters).unwrap();
        assert_eq!(values.len(), 6);
        assert!(run.lookup(b"nope", &counters).unwrap().is_empty());
    }

    #[test]
    fn resume_from_block_boundary_rereads_only_the_tail() {
        let records = sorted_records(600);
        let (image, index) = build_run(&records, 512, false);
        let total_blocks = index.blocks.len();
        let run = SealedRun::mem(image, index);
        // Read the first half, note the frontier.
        let counters = SpillReadCounters::new();
        let mut reader = run.open(&counters, None).unwrap();
        let mut consumed = Vec::new();
        for _ in 0..300 {
            consumed.push(reader.next_record().unwrap().unwrap());
        }
        let frontier = reader.frontier_block();
        let last_key = consumed.last().unwrap().key.clone();
        // Resume: only blocks at/after the frontier are read.
        let resumed = SpillReadCounters::new();
        let mut reader = run
            .open_at(frontier, Some(last_key), &resumed, None)
            .unwrap();
        let mut tail = Vec::new();
        while let Some(r) = reader.next_record().unwrap() {
            tail.push(r);
        }
        assert_eq!(tail, records[300..].to_vec());
        let snap = resumed.snapshot();
        assert_eq!(
            snap.blocks_read + snap.blocks_skipped,
            total_blocks as u64,
            "every block is either read or skipped"
        );
        assert_eq!(snap.blocks_skipped, frontier as u64);
    }

    #[test]
    fn unsorted_run_tracks_honest_key_ranges() {
        let mut w = RunWriter::new(64, false, false);
        let records = vec![rec("m", "1"), rec("a", "2"), rec("z", "3"), rec("b", "4")];
        for r in &records {
            w.push(r);
        }
        let (image, index) = w.finish();
        assert!(!index.sorted);
        for b in &index.blocks {
            assert!(b.first_key <= b.last_key);
        }
        let run = SealedRun::mem(image, index);
        assert_eq!(read_all(&run, &SpillReadCounters::new()), records);
        assert!(run.lookup(b"a", &SpillReadCounters::new()).is_err());
    }

    #[test]
    fn empty_run_round_trips() {
        let (image, index) = build_run(&[], 64, true);
        assert_eq!(index.blocks.len(), 0);
        let reparsed = parse_image(&image).unwrap();
        assert_eq!(reparsed.blocks.len(), 0);
        let run = SealedRun::mem(image, index);
        let mut reader = run.open(&SpillReadCounters::new(), None).unwrap();
        assert!(reader.next_record().unwrap().is_none());
    }

    #[test]
    fn footer_round_trips_through_parse_image() {
        let records = sorted_records(64);
        let (image, index) = build_run(&records, 128, true);
        let reparsed = parse_image(&image).unwrap();
        assert_eq!(reparsed.blocks, index.blocks);
        assert_eq!(reparsed.sorted, index.sorted);
        assert_eq!(reparsed.raw_bytes, index.raw_bytes);
        assert_eq!(reparsed.stored_bytes, index.stored_bytes);
        assert_eq!(reparsed.records, index.records);
        assert_eq!(reparsed.file_len, index.file_len);
    }
}
