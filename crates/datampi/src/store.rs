//! The A-side intermediate store — DataMPI's "data-centric" leg.
//!
//! Frames arriving at an A partition are buffered **in worker memory**; the
//! A task later reads them locally, grouped by key. If the partition
//! outgrows its memory budget, whole buffers spill to (simulated) disk —
//! correctness is unchanged, but the spill counters feed the ablation
//! benches that quantify how much of DataMPI's win comes from avoiding
//! disk round trips.

use bytes::Bytes;

use dmpi_common::compare::{merge_sorted_runs, sort_records, BytesComparator};
use dmpi_common::ser;
use dmpi_common::{Record, Result};

use crate::observe::{SpanKind, Tracer};

/// Counters for one partition's store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Bytes currently resident in memory.
    pub mem_bytes: u64,
    /// Bytes spilled to disk.
    pub spilled_bytes: u64,
    /// Number of spill events.
    pub spills: u64,
    /// Frames ingested.
    pub frames: u64,
}

/// In-memory (with spill) store for one A partition.
pub struct PartitionStore {
    memory_budget: usize,
    resident: Vec<Bytes>,
    /// Spilled frame images ("disk": kept as owned buffers with separate
    /// accounting; a real deployment would write files).
    spilled: Vec<Vec<u8>>,
    stats: StoreStats,
    /// Observability: when set, spills record `Spill` spans and feed the
    /// spill counters.
    tracer: Option<Tracer>,
}

impl PartitionStore {
    /// Creates a store with the given per-partition memory budget.
    pub fn new(memory_budget: usize) -> Self {
        PartitionStore {
            memory_budget,
            resident: Vec::new(),
            spilled: Vec::new(),
            stats: StoreStats::default(),
            tracer: None,
        }
    }

    /// Installs an observability tracer.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Detaches the tracer (tracers are thread-local; a store that
    /// crosses threads — e.g. back from an ingest thread — must shed it
    /// first).
    pub fn clear_tracer(&mut self) {
        self.tracer = None;
    }

    /// Ingests one frame payload.
    pub fn ingest(&mut self, payload: Bytes) {
        self.stats.frames += 1;
        self.stats.mem_bytes += payload.len() as u64;
        self.resident.push(payload);
        if self.stats.mem_bytes as usize > self.memory_budget {
            self.spill();
        }
    }

    /// Forces resident data to disk (also used by checkpointing).
    pub fn spill(&mut self) {
        if self.resident.is_empty() {
            return;
        }
        let spill_start = self.tracer.as_ref().map(Tracer::start);
        let mut image = Vec::with_capacity(self.stats.mem_bytes as usize);
        for b in self.resident.drain(..) {
            image.extend_from_slice(&b);
        }
        self.stats.spilled_bytes += image.len() as u64;
        self.stats.spills += 1;
        self.stats.mem_bytes = 0;
        if let Some(t) = &self.tracer {
            t.registry().add_spill(image.len() as u64);
            t.span(
                SpanKind::Spill,
                spill_start.unwrap_or(0),
                vec![("bytes", image.len().to_string())],
            );
        }
        self.spilled.push(image);
    }

    /// Counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Total ingested bytes (resident + spilled).
    pub fn total_bytes(&self) -> u64 {
        self.stats.mem_bytes + self.stats.spilled_bytes
    }

    /// Decodes everything into records, merging resident and spilled data.
    /// If `sorted` is set, the result is key-ordered: spilled images are
    /// decoded and sorted individually, then k-way merged with the sorted
    /// resident set (the MapReduce-mode grouping); otherwise arrival order
    /// is preserved.
    pub fn into_records(self, sorted: bool) -> Result<Vec<Record>> {
        let mut runs: Vec<Vec<Record>> = Vec::with_capacity(self.spilled.len() + 1);
        let mut resident_records = Vec::new();
        for payload in &self.resident {
            let batch = ser::unframe_batch(payload)?;
            resident_records.extend(batch.into_records());
        }
        if !sorted {
            let mut all = resident_records;
            for image in &self.spilled {
                all.extend(ser::unframe_batch(image)?.into_records());
            }
            return Ok(all);
        }
        sort_records(&mut resident_records, &BytesComparator);
        runs.push(resident_records);
        for image in &self.spilled {
            let mut records = ser::unframe_batch(image)?.into_records();
            sort_records(&mut records, &BytesComparator);
            runs.push(records);
        }
        Ok(merge_sorted_runs(runs, &BytesComparator))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpi_common::compare::is_sorted;

    fn frame_of(records: &[Record]) -> Bytes {
        let batch: dmpi_common::RecordBatch = records.iter().cloned().collect();
        Bytes::from(ser::frame_batch(&batch))
    }

    fn rec(k: &str, v: &str) -> Record {
        Record::from_strs(k, v)
    }

    #[test]
    fn ingest_within_budget_stays_resident() {
        let mut s = PartitionStore::new(1 << 20);
        s.ingest(frame_of(&[rec("b", "2"), rec("a", "1")]));
        assert_eq!(s.stats().spills, 0);
        assert!(s.stats().mem_bytes > 0);
        let records = s.into_records(true).unwrap();
        assert_eq!(records.len(), 2);
        assert!(is_sorted(&records, &BytesComparator));
    }

    #[test]
    fn over_budget_spills_and_merge_is_correct() {
        let mut s = PartitionStore::new(64);
        let mut expected = Vec::new();
        for i in (0..50).rev() {
            let r = rec(&format!("key{i:03}"), &format!("{i}"));
            expected.push(r.clone());
            s.ingest(frame_of(&[r]));
        }
        assert!(s.stats().spills > 0, "tiny budget must spill");
        assert!(s.stats().spilled_bytes > 0);
        let records = s.into_records(true).unwrap();
        assert_eq!(records.len(), 50);
        assert!(is_sorted(&records, &BytesComparator));
        sort_records(&mut expected, &BytesComparator);
        assert_eq!(records, expected);
    }

    #[test]
    fn unsorted_mode_preserves_all_records() {
        let mut s = PartitionStore::new(32);
        for i in 0..20 {
            s.ingest(frame_of(&[rec(&format!("k{i}"), "v")]));
        }
        let records = s.into_records(false).unwrap();
        assert_eq!(records.len(), 20);
    }

    #[test]
    fn total_bytes_is_conserved_across_spills() {
        let mut s = PartitionStore::new(16);
        let mut sent = 0u64;
        for i in 0..10 {
            let f = frame_of(&[rec(&format!("{i}"), "abcdefgh")]);
            sent += f.len() as u64;
            s.ingest(f);
        }
        assert_eq!(s.total_bytes(), sent);
    }

    #[test]
    fn empty_store_yields_nothing() {
        let s = PartitionStore::new(1024);
        assert!(s.into_records(true).unwrap().is_empty());
    }

    #[test]
    fn manual_spill_then_more_ingest() {
        let mut s = PartitionStore::new(1 << 20);
        s.ingest(frame_of(&[rec("z", "1")]));
        s.spill();
        s.ingest(frame_of(&[rec("a", "2")]));
        let records = s.into_records(true).unwrap();
        assert_eq!(records[0].key_utf8(), "a");
        assert_eq!(records[1].key_utf8(), "z");
    }
}
